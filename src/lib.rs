//! # merlin-repro
//!
//! Umbrella crate of the MeRLiN reproduction workspace.  It re-exports the
//! member crates under stable module names so examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`isa`] — instruction set, program builder, macro→micro-op cracker.
//! * [`cpu`] — cycle-level out-of-order core with probes and fault hooks.
//! * [`workloads`] — MiBench and SPEC CPU2006 analog kernels.
//! * [`inject`] — statistical fault sampling, sessions, campaigns,
//!   classification.
//! * [`ace`] — ACE-like vulnerable-interval analysis.
//! * [`merlin`] — the MeRLiN methodology itself (grouping, representative
//!   injection, extrapolation, metrics, statistics, Relyzer baseline).
//!
//! The session-oriented campaign API is additionally re-exported at the
//! crate root: build a [`Session`] per (workload, configuration), or draw
//! sessions from a [`SessionCache`] so sweeps share golden runs, then run
//! phases as methods ([`SessionAce::ace_profile`],
//! [`SessionMethodology::merlin`], [`SessionMethodology::comprehensive`],
//! …).  See `README.md` for a quickstart.
//!
//! # Examples
//!
//! ```
//! use merlin_repro::cpu::{CpuConfig, Structure};
//! use merlin_repro::{Session, SessionMethodology};
//!
//! let w = merlin_repro::workloads::workload_by_name("sha").unwrap();
//! let session = Session::builder(&w.program, &CpuConfig::default())
//!     .max_cycles(10_000_000)
//!     .build()
//!     .unwrap();
//! let faults = session.fault_list(Structure::RegisterFile, 8, 1).unwrap();
//! let result = session.comprehensive(&faults).unwrap();
//! assert_eq!(result.classification.total(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use merlin_ace as ace;
pub use merlin_core as merlin;
pub use merlin_cpu as cpu;
pub use merlin_inject as inject;
pub use merlin_isa as isa;
pub use merlin_workloads as workloads;

pub use merlin_ace::SessionAce;
pub use merlin_core::SessionMethodology;
pub use merlin_inject::{
    CampaignScheduler, ScheduleStats, Session, SessionBuilder, SessionCache, SessionKey,
};
