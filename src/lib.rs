//! # merlin-repro
//!
//! Umbrella crate of the MeRLiN reproduction workspace.  It re-exports the
//! member crates under stable module names so examples, integration tests
//! and downstream users can depend on a single crate:
//!
//! * [`isa`] — instruction set, program builder, macro→micro-op cracker.
//! * [`cpu`] — cycle-level out-of-order core with probes and fault hooks.
//! * [`workloads`] — MiBench and SPEC CPU2006 analog kernels.
//! * [`inject`] — statistical fault sampling, campaigns, classification.
//! * [`ace`] — ACE-like vulnerable-interval analysis.
//! * [`merlin`] — the MeRLiN methodology itself (grouping, representative
//!   injection, extrapolation, metrics, statistics, Relyzer baseline).
//!
//! See `README.md` for a quickstart and `DESIGN.md`/`EXPERIMENTS.md` for the
//! system inventory and the per-experiment reproduction record.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use merlin_ace as ace;
pub use merlin_core as merlin;
pub use merlin_cpu as cpu;
pub use merlin_inject as inject;
pub use merlin_isa as isa;
pub use merlin_workloads as workloads;
