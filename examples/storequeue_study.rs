//! Store-queue sizing study: sweep the paper's 64/32/16-entry store queues,
//! report MeRLiN's classification, AVF and speedup, and show how the
//! reduction splits between the ACE-like pruning and the grouping step —
//! the decomposition plotted in Figure 9.
//!
//! Run with `cargo run --release --example storequeue_study`.

use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::workloads::workload_by_name;
use merlin_repro::{SessionCache, SessionMethodology};

fn main() {
    let cache = SessionCache::new();
    let workload = workload_by_name("caes").expect("caes is registered");
    println!("store-queue sizing study on `{}`\n", workload.name);
    println!(
        "{:<10} {:>8} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "entries", "faults", "post-ACE", "injections", "mean group", "ACE x", "total x"
    );
    for entries in [64usize, 32, 16] {
        let cfg = CpuConfig::default().with_store_queue(entries);
        let session = cache
            .session(workload.name, &workload.program, &cfg, |b| {
                b.max_cycles(100_000_000).threads(4)
            })
            .expect("session");
        let campaign = session
            .merlin(Structure::StoreQueue, 800, 5)
            .expect("campaign");
        let r = &campaign.report;
        println!(
            "{:<10} {:>8} {:>10} {:>12} {:>12.1} {:>9.1}x {:>9.1}x",
            entries,
            r.initial_faults,
            r.post_ace_faults,
            r.injections,
            r.mean_group_size,
            r.speedup_ace,
            r.speedup_total
        );
        println!("           classification: {}", r.classification);
    }
    println!("\nSmaller store queues keep each slot live for a larger fraction of time, so the");
    println!("ACE-like component of the speedup shrinks while the grouping component holds —");
    println!("the same trend as Figure 9 of the paper.");
}
