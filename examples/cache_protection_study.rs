//! Protection-decision study for the L1 data cache: measure the SDC and DUE
//! FIT contribution of the L1D data array at 16/32/64 KB with MeRLiN and
//! decide whether parity or ECC is warranted under a FIT budget, the kind of
//! early design decision the paper positions MeRLiN for.
//!
//! Run with `cargo run --release --example cache_protection_study`.

use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::inject::FaultEffect;
use merlin_repro::merlin::{fit_rate, structure_bits};
use merlin_repro::workloads::mibench_workloads;
use merlin_repro::{SessionCache, SessionMethodology};

/// FIT budget allotted to the L1D data array in this fictional product.
const FIT_BUDGET: f64 = 50.0;

fn main() {
    let cache = SessionCache::new();
    let benchmarks: Vec<_> = mibench_workloads()
        .into_iter()
        .filter(|w| ["susan_s", "fft", "cjpeg"].contains(&w.name))
        .collect();

    println!("L1D protection study (budget {FIT_BUDGET} FIT)\n");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12}  decision",
        "size", "SDC FIT", "DUE FIT", "total FIT", "speedup"
    );
    for kb in [16u64, 32, 64] {
        let cfg = CpuConfig::default().with_l1d_kb(kb);
        let bits = structure_bits(&cfg, Structure::L1DCache);
        let mut sdc = 0.0;
        let mut due = 0.0;
        let mut total = 0.0;
        let mut speedup = 0.0;
        for w in &benchmarks {
            let session = cache
                .session(w.name, &w.program, &cfg, |b| {
                    b.max_cycles(100_000_000).threads(4)
                })
                .expect("session");
            let campaign = session
                .merlin(Structure::L1DCache, 500, 99)
                .expect("campaign");
            let cls = &campaign.report.classification;
            sdc += fit_rate(cls.percentage(FaultEffect::Sdc) / 100.0, bits);
            due += fit_rate(cls.percentage(FaultEffect::Due) / 100.0, bits);
            total += fit_rate(cls.avf(), bits);
            speedup += campaign.report.speedup_total;
        }
        let n = benchmarks.len() as f64;
        let (sdc, due, total, speedup) = (sdc / n, due / n, total / n, speedup / n);
        let decision = if total > FIT_BUDGET {
            "ECC (SEC-DED) required"
        } else if sdc > FIT_BUDGET / 2.0 {
            "parity + write-through sufficient"
        } else {
            "no protection needed"
        };
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>10.2} {:>11.1}x  {decision}",
            format!("{kb}KB"),
            sdc,
            due,
            total,
            speedup
        );
    }
    println!("\nLarger caches hold more vulnerable bits, so the unprotected FIT grows with");
    println!("capacity even when the per-bit AVF stays flat — the classic argument for ECC on");
    println!("large L1D arrays that the paper's fine-grained classification supports.");
}
