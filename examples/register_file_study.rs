//! Design-space study: how does the physical register file's vulnerability
//! scale with its size (256 / 128 / 64 registers)?  Reproduces the paper's
//! motivating observation that injection-based AVF *rises* as the file
//! shrinks while ACE-style analysis over-estimates it, and converts both to
//! FIT rates a designer would use to pick a protection scheme.
//!
//! Run with `cargo run --release --example register_file_study`.

use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::merlin::{fit_rate, structure_bits};
use merlin_repro::workloads::mibench_workloads;
use merlin_repro::{SessionCache, SessionMethodology};

fn main() {
    // One cache for the whole sweep: each (benchmark, size) pair builds its
    // golden run exactly once, shared by every phase.
    let cache = SessionCache::new();
    let benchmarks: Vec<_> = mibench_workloads()
        .into_iter()
        .filter(|w| ["sha", "qsort", "stringsearch"].contains(&w.name))
        .collect();

    println!(
        "register-file sizing study ({} benchmarks, 600 faults each)\n",
        benchmarks.len()
    );
    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>12}",
        "size", "AVF(injection)", "AVF(ACE-like)", "FIT(inj)", "speedup"
    );
    for regs in [256usize, 128, 64] {
        let cfg = CpuConfig::default().with_phys_regs(regs);
        let mut avf_sum = 0.0;
        let mut ace_sum = 0.0;
        let mut speedup_sum = 0.0;
        for w in &benchmarks {
            let session = cache
                .session(w.name, &w.program, &cfg, |b| {
                    b.max_cycles(100_000_000).threads(4)
                })
                .expect("session");
            let campaign = session
                .merlin(Structure::RegisterFile, 600, 7)
                .expect("campaign");
            avf_sum += campaign.report.avf();
            ace_sum += campaign.report.ace_avf;
            speedup_sum += campaign.report.speedup_total;
        }
        let n = benchmarks.len() as f64;
        let avf = avf_sum / n;
        let ace_avf = ace_sum / n;
        let bits = structure_bits(&cfg, Structure::RegisterFile);
        println!(
            "{:<10} {:>13.2}% {:>13.2}% {:>12.3} {:>11.1}x",
            format!("{regs} regs"),
            100.0 * avf,
            100.0 * ace_avf,
            fit_rate(avf, bits),
            speedup_sum / n
        );
    }
    println!("\nSmaller register files are proportionally more vulnerable (fewer dead entries),");
    println!("while the ACE-like bound stays conservative — the paper's §1 observation.");
}
