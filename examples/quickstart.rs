//! Quickstart: assess the reliability of the physical register file for one
//! benchmark, first with a small comprehensive injection campaign and then
//! with MeRLiN, and compare cost and accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use merlin_repro::ace::AceAnalysis;
use merlin_repro::cpu::CheckpointPolicy;
use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::inject::{run_golden_checkpointed, SamplingPlan};
use merlin_repro::merlin::{
    initial_fault_list, run_comprehensive, run_merlin_with_faults, MerlinConfig,
};
use merlin_repro::workloads::workload_by_name;

fn main() {
    let workload = workload_by_name("qsort").expect("qsort is a registered workload");
    let cfg = CpuConfig::default().with_phys_regs(128);
    let structure = Structure::RegisterFile;

    // Phase 1a: one instrumented run records every vulnerable interval.
    let ace = AceAnalysis::run(&workload.program, &cfg, 100_000_000).expect("ACE analysis");
    let golden = run_golden_checkpointed(
        &workload.program,
        &cfg,
        100_000_000,
        &CheckpointPolicy::default(),
    )
    .expect("golden run");
    println!(
        "golden run: {} cycles, {} instructions, ACE-like AVF {:.2}%",
        golden.result.cycles,
        golden.result.committed_instructions,
        100.0 * ace.structure(structure).ace_avf()
    );

    // Phase 1b: statistical initial fault list.  The paper uses 60,000
    // faults (99.8% confidence, 0.63% margin); this example uses 1,000 so it
    // finishes in seconds.
    let plan = SamplingPlan::paper_baseline();
    println!(
        "paper-scale sample size for this run would be {} faults",
        plan.sample_size(cfg.register_file_bits() * golden.result.cycles)
    );
    let faults = initial_fault_list(&cfg, structure, golden.result.cycles, 1_000, 2017);

    // Baseline: inject every fault.
    let comprehensive = run_comprehensive(&workload.program, &cfg, &golden, &faults, 4);

    // MeRLiN: prune + group + inject representatives only.
    let merlin_cfg = MerlinConfig {
        threads: 4,
        max_cycles: 100_000_000,
        seed: 2017,
        ..Default::default()
    };
    let campaign = run_merlin_with_faults(
        &workload.program,
        &cfg,
        structure,
        &ace,
        &faults,
        &golden,
        &merlin_cfg,
    )
    .expect("MeRLiN campaign");

    println!(
        "\ncomprehensive ({} injections): {}",
        faults.len(),
        comprehensive.classification
    );
    println!(
        "MeRLiN        ({} injections): {}",
        campaign.report.injections, campaign.report.classification
    );
    println!(
        "\nspeedup: ACE-like {:.1}x, total {:.1}x; max inaccuracy {:.2} percentile units",
        campaign.report.speedup_ace,
        campaign.report.speedup_total,
        campaign
            .report
            .classification
            .max_inaccuracy(&comprehensive.classification)
    );
}
