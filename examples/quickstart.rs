//! Quickstart: assess the reliability of the physical register file for one
//! benchmark, first with a small comprehensive injection campaign and then
//! with MeRLiN, and compare cost and accuracy.
//!
//! Run with `cargo run --release --example quickstart`.

use merlin_repro::cpu::{CpuConfig, Structure};
use merlin_repro::inject::{SamplingPlan, Session};
use merlin_repro::{SessionAce, SessionMethodology};

fn main() {
    let workload =
        merlin_repro::workloads::workload_by_name("qsort").expect("qsort is a registered workload");
    let cfg = CpuConfig::default().with_phys_regs(128);
    let structure = Structure::RegisterFile;

    // One session owns the whole study: program, configuration, checkpoint
    // policy.  The golden run is built lazily (exactly once) and every phase
    // below shares it.
    let session = Session::builder(&workload.program, &cfg)
        .max_cycles(100_000_000)
        .threads(4)
        .build()
        .expect("session");

    // Phase 1a: one instrumented run records every vulnerable interval
    // (cached on the session).
    let ace = session.ace_profile().expect("ACE analysis");
    let golden = session.golden().expect("golden run");
    println!(
        "golden run: {} cycles, {} instructions, ACE-like AVF {:.2}%",
        golden.result.cycles,
        golden.result.committed_instructions,
        100.0 * ace.structure(structure).ace_avf()
    );

    // Phase 1b: statistical initial fault list.  The paper uses 60,000
    // faults (99.8% confidence, 0.63% margin); this example uses 1,000 so it
    // finishes in seconds.
    let plan = SamplingPlan::paper_baseline();
    println!(
        "paper-scale sample size for this run would be {} faults",
        plan.sample_size(cfg.register_file_bits() * golden.result.cycles)
    );
    let faults = session
        .fault_list(structure, 1_000, 2017)
        .expect("fault list");

    // Baseline: inject every fault.  The restore-aware scheduler buckets the
    // fault list by checkpoint range and reports how it executed.
    let comprehensive = session.comprehensive(&faults).expect("baseline campaign");
    let sched = &comprehensive.schedule;
    println!(
        "scheduler: {} ranges, {} restores, {} range steals, {} suffix cycles simulated \
         (vs ~{} from scratch)",
        sched.ranges,
        sched.restores,
        sched.range_steals,
        sched.suffix_cycles,
        golden.result.cycles * faults.len() as u64,
    );

    // MeRLiN: prune + group + inject representatives only — over the *same*
    // golden run and checkpoint store as the baseline.
    let campaign = session
        .merlin_with_faults(structure, &faults)
        .expect("MeRLiN campaign");
    assert_eq!(session.golden_builds(), 1, "one golden run for everything");

    println!(
        "\ncomprehensive ({} injections): {}",
        faults.len(),
        comprehensive.classification
    );
    println!(
        "MeRLiN        ({} injections): {}",
        campaign.report.injections, campaign.report.classification
    );
    println!(
        "\nspeedup: ACE-like {:.1}x, total {:.1}x; max inaccuracy {:.2} percentile units",
        campaign.report.speedup_ace,
        campaign.report.speedup_total,
        campaign
            .report
            .classification
            .max_inaccuracy(&comprehensive.classification)
    );
}
