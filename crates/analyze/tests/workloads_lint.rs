//! Every built-in workload must pass the session-boundary lint with zero
//! findings — the suite CI's `analysis` job runs.
//!
//! A finding here means either a workload kernel regressed (bad branch
//! target, uninitialised register, dead code) or the linter grew a false
//! positive; both block admission of the workload into a session, so both
//! fail the build.

use merlin_analyze::ProgramAnalysis;
use merlin_isa::DecodedProgram;
use merlin_workloads::all_workloads;

#[test]
fn all_builtin_workloads_lint_clean() {
    let workloads = all_workloads();
    assert!(!workloads.is_empty());
    for w in &workloads {
        let decoded = DecodedProgram::new(&w.program);
        let analysis = ProgramAnalysis::of(&w.program, &decoded);
        assert!(
            analysis.lint().is_clean(),
            "workload {}: {}",
            w.name,
            analysis.lint()
        );
    }
}

#[test]
fn every_workload_prunes_at_least_one_register_file_entry() {
    // The whole point of the static prune is that real kernels do not use
    // the full architectural register set: every built-in workload must
    // leave at least one identity physical entry provably dead.
    for w in all_workloads() {
        let decoded = DecodedProgram::new(&w.program);
        let analysis = ProgramAnalysis::of(&w.program, &decoded);
        let dead = analysis.statically_dead_regs().count();
        assert!(
            dead > 0,
            "workload {} uses every architectural register",
            w.name
        );
    }
}

#[test]
fn workload_liveness_is_consistent_with_the_census() {
    // A register live anywhere must be used somewhere; a register the text
    // never mentions must be live nowhere.
    for w in all_workloads() {
        let decoded = DecodedProgram::new(&w.program);
        let analysis = ProgramAnalysis::of(&w.program, &decoded);
        for rip in 0..w.program.instructions.len() {
            for reg in analysis.live_in(rip as u32) {
                assert!(
                    analysis.reg_used(reg),
                    "workload {}: {} live at {} but never used",
                    w.name,
                    reg,
                    rip
                );
            }
        }
    }
}
