//! Control-flow graph over a program's macro-instruction stream.
//!
//! The graph is built once per program from the static instruction text —
//! the same text the predecoded micro-op arena derives from — so every
//! consumer of a session shares one CFG exactly like they share one
//! [`merlin_isa::DecodedProgram`].
//!
//! Successor rules (instruction granularity, one node per RIP):
//!
//! * `Halt` has no successors,
//! * `Jump` flows only to its target,
//! * conditional branches flow to the target and the fall-through,
//! * `Call` flows to the target *and* the fall-through: the return RIP is
//!   reachable precisely because the callee's `JumpReg` return can land
//!   there,
//! * `JumpReg` is an indirect jump whose target is a register value, so it
//!   conservatively flows to **every** instruction — static analysis must
//!   never assume an indirect target it cannot prove,
//! * every other instruction falls through to `rip + 1` when in bounds.
//!
//! Direct targets outside the program text produce no edge; they are
//! recorded and surfaced as lint findings by
//! [`ProgramAnalysis`](crate::ProgramAnalysis).

use merlin_isa::{Inst, Program, Rip};

/// A maximal straight-line run of instructions: control enters only at
/// `start` and leaves only at `end - 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicBlock {
    /// First instruction of the block.
    pub start: Rip,
    /// One past the last instruction of the block.
    pub end: Rip,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// `true` for a degenerate empty block (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Per-instruction control-flow graph with reachability and a basic-block
/// partition of the program text.
#[derive(Debug, Clone)]
pub struct ControlFlowGraph {
    /// `successors[rip]` lists every RIP control can flow to from `rip`.
    successors: Vec<Vec<Rip>>,
    /// `reachable[rip]` is `true` when `rip` is reachable from the entry.
    reachable: Vec<bool>,
    /// The basic-block partition of the text, in address order.
    blocks: Vec<BasicBlock>,
    /// `block_index[rip]` indexes into `blocks`.
    block_index: Vec<usize>,
    /// Direct `(rip, target)` pairs whose target lies outside the text.
    out_of_range: Vec<(Rip, Rip)>,
    /// The program's entry RIP.
    entry: Rip,
}

impl ControlFlowGraph {
    /// Builds the graph for `program`.
    pub fn of(program: &Program) -> Self {
        let n = program.instructions.len();
        let len = n as Rip;
        let mut successors: Vec<Vec<Rip>> = Vec::with_capacity(n);
        let mut out_of_range = Vec::new();

        for (rip, inst) in program.instructions.iter().enumerate() {
            let rip = rip as Rip;
            let mut succ = Vec::new();
            let mut direct = |target: Rip, succ: &mut Vec<Rip>| {
                if target < len {
                    succ.push(target);
                } else {
                    out_of_range.push((rip, target));
                }
            };
            match inst {
                Inst::Halt => {}
                Inst::Jump { target } => direct(*target, &mut succ),
                Inst::BranchRR { target, .. }
                | Inst::BranchRI { target, .. }
                | Inst::Call { target, .. } => {
                    direct(*target, &mut succ);
                    if rip + 1 < len {
                        succ.push(rip + 1);
                    }
                }
                Inst::JumpReg { .. } => succ.extend(0..len),
                _ => {
                    if rip + 1 < len {
                        succ.push(rip + 1);
                    }
                }
            }
            succ.sort_unstable();
            succ.dedup();
            successors.push(succ);
        }

        let entry = program.entry;
        let reachable = reach(&successors, entry, n);
        let (blocks, block_index) = partition(program, n);

        ControlFlowGraph {
            successors,
            reachable,
            blocks,
            block_index,
            out_of_range,
            entry,
        }
    }

    /// The RIPs control can flow to from `rip`.
    ///
    /// # Panics
    ///
    /// Panics if `rip` is outside the program text.
    pub fn successors(&self, rip: Rip) -> &[Rip] {
        &self.successors[rip as usize]
    }

    /// Whether `rip` is reachable from the program entry.
    ///
    /// # Panics
    ///
    /// Panics if `rip` is outside the program text.
    pub fn is_reachable(&self, rip: Rip) -> bool {
        self.reachable[rip as usize]
    }

    /// The basic-block partition of the text, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The basic block containing `rip`.
    ///
    /// # Panics
    ///
    /// Panics if `rip` is outside the program text.
    pub fn block_of(&self, rip: Rip) -> BasicBlock {
        self.blocks[self.block_index[rip as usize]]
    }

    /// Direct `(rip, target)` pairs whose target lies outside the text.
    pub fn out_of_range_targets(&self) -> &[(Rip, Rip)] {
        &self.out_of_range
    }

    /// Number of instructions the graph covers.
    pub fn num_instructions(&self) -> usize {
        self.successors.len()
    }

    /// The program's entry RIP.
    pub fn entry(&self) -> Rip {
        self.entry
    }
}

/// Breadth-first reachability from `entry` over `successors`.
fn reach(successors: &[Vec<Rip>], entry: Rip, n: usize) -> Vec<bool> {
    let mut reachable = vec![false; n];
    let mut work = Vec::new();
    if (entry as usize) < n {
        reachable[entry as usize] = true;
        work.push(entry);
    }
    while let Some(rip) = work.pop() {
        for &succ in &successors[rip as usize] {
            if !reachable[succ as usize] {
                reachable[succ as usize] = true;
                work.push(succ);
            }
        }
    }
    reachable
}

/// Splits the text into basic blocks: a leader is the first instruction,
/// the entry, any in-bounds direct target, and any instruction following a
/// control instruction.
fn partition(program: &Program, n: usize) -> (Vec<BasicBlock>, Vec<usize>) {
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let len = n as Rip;
    let mut leader = vec![false; n];
    leader[0] = true;
    if (program.entry as usize) < n {
        leader[program.entry as usize] = true;
    }
    for (rip, inst) in program.instructions.iter().enumerate() {
        if let Some(target) = inst.direct_target() {
            if target < len {
                leader[target as usize] = true;
            }
        }
        if inst.is_control() && rip + 1 < n {
            leader[rip + 1] = true;
        }
    }
    let mut blocks = Vec::new();
    let mut block_index = vec![0usize; n];
    let mut start = 0usize;
    for rip in 0..n {
        if rip > start && leader[rip] {
            blocks.push(BasicBlock {
                start: start as Rip,
                end: rip as Rip,
            });
            start = rip;
        }
        block_index[rip] = blocks.len();
    }
    blocks.push(BasicBlock {
        start: start as Rip,
        end: len,
    });
    (blocks, block_index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::{reg, AluOp, Cond, ProgramBuilder};

    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 0); // 0
        let top = b.bind_label(); // 1
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1); // 1
        b.branch_ri(Cond::Lt, reg(1), 4, top); // 2
        b.out(reg(1)); // 3
        b.halt(); // 4
        b.build().unwrap()
    }

    #[test]
    fn loop_successors_and_reachability() {
        let p = loop_program();
        let cfg = ControlFlowGraph::of(&p);
        assert_eq!(cfg.num_instructions(), 5);
        assert_eq!(cfg.successors(0), &[1]);
        assert_eq!(cfg.successors(2), &[1, 3]);
        assert_eq!(cfg.successors(4), &[] as &[Rip]);
        for rip in 0..5 {
            assert!(cfg.is_reachable(rip), "rip {rip}");
        }
    }

    #[test]
    fn blocks_partition_the_text() {
        let p = loop_program();
        let cfg = ControlFlowGraph::of(&p);
        let blocks = cfg.blocks();
        // [movi], [alu; branch], [out; halt]
        assert_eq!(
            blocks,
            &[
                BasicBlock { start: 0, end: 1 },
                BasicBlock { start: 1, end: 3 },
                BasicBlock { start: 3, end: 5 },
            ]
        );
        for rip in 0..5 {
            let b = cfg.block_of(rip);
            assert!(b.start <= rip && rip < b.end);
            assert!(!b.is_empty());
            assert!(b.len() == (b.end - b.start) as usize);
        }
    }

    #[test]
    fn unreachable_after_jump_is_detected() {
        let mut b = ProgramBuilder::new();
        let done = b.label();
        b.jump(done); // 0
        b.movi(reg(1), 7); // 1: unreachable
        b.bind(done);
        b.halt(); // 2
        let p = b.build().unwrap();
        let cfg = ControlFlowGraph::of(&p);
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
    }

    #[test]
    fn jumpreg_reaches_everything() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(15), 2); // 0
        b.jump_reg(reg(15)); // 1
        b.halt(); // 2
        b.movi(reg(1), 1); // 3: no direct path, but indirect target set is
        b.halt(); // 4:    unknown, so statically reachable
        let p = b.build().unwrap();
        let cfg = ControlFlowGraph::of(&p);
        for rip in 0..5 {
            assert!(cfg.is_reachable(rip), "rip {rip}");
        }
        assert_eq!(cfg.successors(1).len(), 5);
    }

    #[test]
    fn out_of_range_target_records_no_edge() {
        // `ProgramBuilder::build` rejects out-of-range targets, so assemble
        // the broken program directly.
        let p = Program {
            instructions: vec![Inst::Jump { target: 99 }, Inst::Halt],
            data: vec![],
            data_size: 0,
            entry: 0,
        };
        let cfg = ControlFlowGraph::of(&p);
        assert_eq!(cfg.successors(0), &[] as &[Rip]);
        assert_eq!(cfg.out_of_range_targets(), &[(0, 99)]);
        assert!(!cfg.is_reachable(1));
    }
}
