//! Backward liveness, initialisation dataflow and the whole-program
//! register census, combined into one [`ProgramAnalysis`].
//!
//! All three run over the predecoded micro-op arena
//! ([`merlin_isa::DecodedProgram`]) — the exact stream the cycle-level core
//! fetches — so def/use sets match execution by construction instead of by
//! a parallel re-implementation of the cracker:
//!
//! * **liveness** (backward may-analysis): a register is live-in at an
//!   instruction when some path from it reads the register before writing
//!   it.  Fixed-point over the CFG with the per-micro-op transfer
//!   `live := (live \ dst) ∪ srcs` applied in reverse uPC order.
//! * **initialisation** (forward must-analysis): a register is
//!   definitely-initialised at an instruction when *every* path from the
//!   entry writes it first.  Reads outside that set are
//!   [`ProgramAnalysis::reads_before_init`] — path-sensitive advisories,
//!   deliberately not admission-blocking because registers reset to zero.
//! * **register census**: which architectural registers appear anywhere in
//!   the program text.  This is what makes the static fault prune *sound*
//!   (see [`ProgramAnalysis::rf_entry_statically_dead`]).

use crate::cfg::ControlFlowGraph;
use crate::lint::{LintFinding, LintKind, LintReport};
use merlin_isa::{ArchReg, DecodedProgram, Program, Rip, Upc, NUM_ARCH_REGS};
use std::fmt;

/// A compact set of architectural registers (`NUM_ARCH_REGS` ≤ 32 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct RegSet(u32);

impl RegSet {
    const EMPTY: RegSet = RegSet(0);

    fn insert(&mut self, r: ArchReg) {
        self.0 |= 1 << r.index();
    }

    fn remove(&mut self, r: ArchReg) {
        self.0 &= !(1 << r.index());
    }

    fn contains(self, r: ArchReg) -> bool {
        self.0 & (1 << r.index()) != 0
    }

    fn contains_index(self, idx: usize) -> bool {
        idx < NUM_ARCH_REGS && self.0 & (1 << idx) != 0
    }

    fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    fn intersect(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    fn iter(self) -> impl Iterator<Item = ArchReg> {
        ArchReg::all().filter(move |r| self.contains(*r))
    }
}

/// A static micro-op operand site: the `(rip, upc)` micro-op plus the
/// register the finding concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UopSite {
    /// Instruction pointer of the macro-instruction.
    pub rip: Rip,
    /// Micro-op index within the macro-instruction.
    pub upc: Upc,
    /// The register involved.
    pub reg: ArchReg,
}

impl fmt::Display for UopSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{} {}", self.rip, self.upc, self.reg)
    }
}

/// The complete static-analysis result for one program, computed once per
/// session and shared by every campaign worker (like the predecoded arena).
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    cfg: ControlFlowGraph,
    /// Registers appearing (as source or destination) in any micro-op of
    /// the whole program text, reachable or not.
    used: RegSet,
    /// Registers written (as destination) by any micro-op of the whole
    /// program text.
    written: RegSet,
    /// Per-instruction live-in sets (registers read before written on some
    /// path from that instruction).
    live_in: Vec<RegSet>,
    /// Writes whose value no path can read (cracker temporaries excluded).
    dead_writes: Vec<UopSite>,
    /// Reads not dominated by a write on every path from the entry.
    reads_before_init: Vec<UopSite>,
    /// The admission-control verdict.
    lint: LintReport,
}

impl ProgramAnalysis {
    /// Analyses `program` through its predecoded micro-op arena.
    ///
    /// # Panics
    ///
    /// Panics if `decoded` was not built from `program` — the same guard
    /// every other consumer of a shared arena runs.
    pub fn of(program: &Program, decoded: &DecodedProgram) -> Self {
        assert!(
            decoded.matches_program(program),
            "decoded arena does not belong to this program"
        );
        let n = program.instructions.len();
        let cfg = ControlFlowGraph::of(program);

        let (used, written) = census(decoded, n);
        let live_in = liveness(&cfg, decoded, n);
        let dead_writes = dead_writes(&cfg, decoded, &live_in, n);
        let reads_before_init = reads_before_init(&cfg, decoded, n);
        let lint = lint(&cfg, decoded, written, n);

        ProgramAnalysis {
            cfg,
            used,
            written,
            live_in,
            dead_writes,
            reads_before_init,
            lint,
        }
    }

    /// The control-flow graph the dataflow ran over.
    pub fn cfg(&self) -> &ControlFlowGraph {
        &self.cfg
    }

    /// The admission-control lint verdict.
    pub fn lint(&self) -> &LintReport {
        &self.lint
    }

    /// Whether `reg` appears — as a source or destination — in any micro-op
    /// of the program text.
    pub fn reg_used(&self, reg: ArchReg) -> bool {
        self.used.contains(reg)
    }

    /// Whether any micro-op of the program text writes `reg`.
    pub fn reg_written(&self, reg: ArchReg) -> bool {
        self.written.contains(reg)
    }

    /// Architectural registers no micro-op of the program mentions at all.
    pub fn statically_dead_regs(&self) -> impl Iterator<Item = ArchReg> + '_ {
        ArchReg::all().filter(move |r| !self.used.contains(*r))
    }

    /// Whether a fault into physical register-file entry `entry` is
    /// *provably* Masked without simulating it.
    ///
    /// The argument rests on the rename discipline of the core: at reset
    /// the rename table maps every architectural register to the identity
    /// physical entry (`ArchReg::index`), and the free list starts past
    /// them, at `NUM_ARCH_REGS`.  An architectural register that appears in
    /// **no** micro-op of the whole program text is never renamed (no
    /// destination allocates a new mapping), never written (writeback only
    /// touches allocated destinations) and never read (committed reads only
    /// go through micro-op sources) — so its identity entry keeps its reset
    /// mapping for the entire run and never feeds an architected output,
    /// exception or exit. Fault classification compares exactly those
    /// observables, so any bit flip, at any cycle, in that entry is Masked.
    ///
    /// The census deliberately scans the whole text rather than the
    /// reachable slice: speculative wrong-path execution can fetch any
    /// decoded micro-op, but never one outside the text.
    ///
    /// Entries at `NUM_ARCH_REGS` and beyond cycle through the free list
    /// and are never statically dead.
    pub fn rf_entry_statically_dead(&self, entry: usize) -> bool {
        entry < NUM_ARCH_REGS && !self.used.contains_index(entry)
    }

    /// Registers live on entry to the instruction at `rip` (read before
    /// written on some path from it).
    ///
    /// # Panics
    ///
    /// Panics if `rip` is outside the program text.
    pub fn live_in(&self, rip: Rip) -> impl Iterator<Item = ArchReg> + '_ {
        self.live_in[rip as usize].iter()
    }

    /// Writes whose value no path can read before it is overwritten.
    ///
    /// Cracker temporaries are excluded: the compare half of an
    /// immediate-form branch structurally discards its temporary result.
    pub fn dead_writes(&self) -> &[UopSite] {
        &self.dead_writes
    }

    /// Reads not preceded by a write on every path from the entry.  These
    /// observe the reset value (zero) — legal, but usually an accident, so
    /// they are advisory rather than admission-blocking.
    pub fn reads_before_init(&self) -> &[UopSite] {
        &self.reads_before_init
    }
}

/// Whole-text register census: (used anywhere, written anywhere).
fn census(decoded: &DecodedProgram, n: usize) -> (RegSet, RegSet) {
    let mut used = RegSet::EMPTY;
    let mut written = RegSet::EMPTY;
    for rip in 0..n {
        for uop in decoded.uops(rip as Rip) {
            for src in uop.sources() {
                used.insert(src);
            }
            if let Some(dst) = uop.dst {
                used.insert(dst);
                written.insert(dst);
            }
        }
    }
    (used, written)
}

/// Applies one instruction's micro-ops to a live-out set, yielding live-in.
fn transfer_backward(decoded: &DecodedProgram, rip: Rip, mut live: RegSet) -> RegSet {
    for uop in decoded.uops(rip).iter().rev() {
        if let Some(dst) = uop.dst {
            live.remove(dst);
        }
        for src in uop.sources() {
            live.insert(src);
        }
    }
    live
}

/// Backward may-liveness to a fixed point over the CFG.
fn liveness(cfg: &ControlFlowGraph, decoded: &DecodedProgram, n: usize) -> Vec<RegSet> {
    let mut live_in = vec![RegSet::EMPTY; n];
    let mut changed = true;
    while changed {
        changed = false;
        for rip in (0..n).rev() {
            let rip = rip as Rip;
            let live_out = cfg
                .successors(rip)
                .iter()
                .fold(RegSet::EMPTY, |acc, &s| acc.union(live_in[s as usize]));
            let new = transfer_backward(decoded, rip, live_out);
            if new != live_in[rip as usize] {
                live_in[rip as usize] = new;
                changed = true;
            }
        }
    }
    live_in
}

/// Scans reachable instructions for destinations that are dead immediately
/// after their write.
fn dead_writes(
    cfg: &ControlFlowGraph,
    decoded: &DecodedProgram,
    live_in: &[RegSet],
    n: usize,
) -> Vec<UopSite> {
    let mut found = Vec::new();
    for rip in 0..n {
        let rip = rip as Rip;
        if !cfg.is_reachable(rip) {
            continue;
        }
        let mut live = cfg
            .successors(rip)
            .iter()
            .fold(RegSet::EMPTY, |acc, &s| acc.union(live_in[s as usize]));
        // Reverse uPC walk mirrors the liveness transfer, observing the
        // live set just after each write.
        let uops = decoded.uops(rip);
        for uop in uops.iter().rev() {
            if let Some(dst) = uop.dst {
                if dst.is_gpr() && !live.contains(dst) {
                    found.push(UopSite {
                        rip,
                        upc: uop.upc,
                        reg: dst,
                    });
                }
                live.remove(dst);
            }
            for src in uop.sources() {
                live.insert(src);
            }
        }
    }
    found.sort_by_key(|s| (s.rip, s.upc));
    found
}

/// Forward must-initialisation to a fixed point, then one collection pass
/// for reads outside the definitely-initialised set.
fn reads_before_init(cfg: &ControlFlowGraph, decoded: &DecodedProgram, n: usize) -> Vec<UopSite> {
    // `None` is ⊤ (unvisited): intersect of nothing.
    let mut init_in: Vec<Option<RegSet>> = vec![None; n];
    if n > 0 && (cfg.entry() as usize) < n {
        init_in[cfg.entry() as usize] = Some(RegSet::EMPTY);
    }
    let mut changed = true;
    while changed {
        changed = false;
        for rip in 0..n {
            let rip_u = rip as Rip;
            let Some(inited) = init_in[rip] else { continue };
            let mut out = inited;
            for uop in decoded.uops(rip_u) {
                if let Some(dst) = uop.dst {
                    out.insert(dst);
                }
            }
            for &succ in cfg.successors(rip_u) {
                let merged = match init_in[succ as usize] {
                    None => out,
                    Some(prev) => prev.intersect(out),
                };
                if init_in[succ as usize] != Some(merged) {
                    init_in[succ as usize] = Some(merged);
                    changed = true;
                }
            }
        }
    }

    let mut found = Vec::new();
    for (rip, slot) in init_in.iter().enumerate() {
        let rip_u = rip as Rip;
        let Some(mut inited) = *slot else {
            continue;
        };
        for uop in decoded.uops(rip_u) {
            for src in uop.sources() {
                if src.is_gpr() && !inited.contains(src) {
                    found.push(UopSite {
                        rip: rip_u,
                        upc: uop.upc,
                        reg: src,
                    });
                }
            }
            if let Some(dst) = uop.dst {
                inited.insert(dst);
            }
        }
    }
    found.sort_by_key(|s| (s.rip, s.upc, s.reg.index()));
    found.dedup();
    found
}

/// Assembles the admission-control verdict: out-of-range direct targets,
/// reads of registers the whole program never writes, and unreachable
/// instructions.
fn lint(cfg: &ControlFlowGraph, decoded: &DecodedProgram, written: RegSet, n: usize) -> LintReport {
    let mut findings = Vec::new();
    for &(rip, target) in cfg.out_of_range_targets() {
        findings.push(LintFinding {
            rip,
            kind: LintKind::TargetOutOfRange {
                target,
                len: n as u32,
            },
        });
    }
    for rip in 0..n {
        let rip = rip as Rip;
        if !cfg.is_reachable(rip) {
            findings.push(LintFinding {
                rip,
                kind: LintKind::UnreachableInstruction,
            });
            continue;
        }
        for uop in decoded.uops(rip) {
            for src in uop.sources() {
                if src.is_gpr() && !written.contains(src) {
                    findings.push(LintFinding {
                        rip,
                        kind: LintKind::ReadOfNeverWrittenReg {
                            upc: uop.upc,
                            reg: src,
                        },
                    });
                }
            }
        }
    }
    LintReport::new(findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::{reg, AluOp, Cond, Inst, MemRef, ProgramBuilder};

    fn analyse(p: &Program) -> ProgramAnalysis {
        let decoded = DecodedProgram::new(p);
        ProgramAnalysis::of(p, &decoded)
    }

    fn sum_loop() -> Program {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 0); // 0: sum
        b.movi(reg(2), 1); // 1: i
        let top = b.bind_label();
        b.alu_rr(AluOp::Add, reg(1), reg(1), reg(2)); // 2
        b.alu_ri(AluOp::Add, reg(2), reg(2), 1); // 3
        b.branch_ri(Cond::Le, reg(2), 10, top); // 4
        b.out(reg(1)); // 5
        b.halt(); // 6
        b.build().unwrap()
    }

    #[test]
    fn clean_kernel_lints_clean() {
        let a = analyse(&sum_loop());
        assert!(a.lint().is_clean(), "{}", a.lint());
        assert!(a.dead_writes().is_empty(), "{:?}", a.dead_writes());
        assert!(a.reads_before_init().is_empty());
    }

    #[test]
    fn liveness_tracks_the_loop_carried_registers() {
        let a = analyse(&sum_loop());
        // At the loop head both sum and i are live.
        let live: Vec<ArchReg> = a.live_in(2).collect();
        assert!(live.contains(&reg(1)));
        assert!(live.contains(&reg(2)));
        // Before the first movi nothing is live: both are written first.
        assert_eq!(a.live_in(0).count(), 0);
        // After the loop only sum is read (by out).
        let live_out_block: Vec<ArchReg> = a.live_in(5).collect();
        assert_eq!(live_out_block, vec![reg(1)]);
    }

    #[test]
    fn census_and_static_death() {
        let a = analyse(&sum_loop());
        assert!(a.reg_used(reg(1)));
        assert!(a.reg_written(reg(2)));
        assert!(!a.reg_used(reg(7)));
        let dead: Vec<ArchReg> = a.statically_dead_regs().collect();
        assert!(dead.contains(&reg(0)));
        assert!(dead.contains(&reg(7)));
        assert!(!dead.contains(&reg(1)));
        // Identity physical entries of unused registers are provably dead…
        assert!(a.rf_entry_statically_dead(reg(7).index()));
        assert!(!a.rf_entry_statically_dead(reg(1).index()));
        // …but free-list entries never are.
        assert!(!a.rf_entry_statically_dead(NUM_ARCH_REGS));
        assert!(!a.rf_entry_statically_dead(63));
    }

    #[test]
    fn branch_compare_temp_is_not_a_dead_write() {
        // BranchRI cracks into a compare micro-op targeting a cracker
        // temporary whose value is structurally discarded; it must not be
        // reported.
        let a = analyse(&sum_loop());
        assert!(a.dead_writes().iter().all(|s| s.reg.is_gpr()));
    }

    #[test]
    fn dead_write_is_found() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 3); // 0
        b.movi(reg(1), 4); // 1: kills the write at 0
        b.out(reg(1)); // 2
        b.halt(); // 3
        let a = analyse(&b.build().unwrap());
        assert_eq!(
            a.dead_writes(),
            &[UopSite {
                rip: 0,
                upc: 0,
                reg: reg(1)
            }]
        );
        // The overwrite itself is a *reachable* overwrite, not a lint.
        assert!(a.lint().is_clean());
    }

    #[test]
    fn read_before_init_is_path_sensitive() {
        let mut b = ProgramBuilder::new();
        let skip = b.label();
        b.movi(reg(2), 1); // 0
        b.branch_ri(Cond::Eq, reg(2), 0, skip); // 1
        b.movi(reg(1), 7); // 2: initialises r1 on one path only
        b.bind(skip);
        b.out(reg(1)); // 3: r1 maybe-uninitialised here
        b.movi(reg(9), 0); // 4: r9 written → not a lint finding
        b.out(reg(9)); // 5
        b.halt(); // 6
        let a = analyse(&b.build().unwrap());
        assert_eq!(
            a.reads_before_init(),
            &[UopSite {
                rip: 3,
                upc: 0,
                reg: reg(1)
            }]
        );
        // r1 *is* written somewhere, so the whole-program lint stays clean.
        assert!(a.lint().is_clean(), "{}", a.lint());
    }

    #[test]
    fn read_of_never_written_reg_is_a_lint() {
        let mut b = ProgramBuilder::new();
        b.out(reg(5)); // 0: r5 never written anywhere
        b.halt(); // 1
        let a = analyse(&b.build().unwrap());
        assert_eq!(a.lint().len(), 1);
        assert_eq!(
            a.lint().findings()[0].kind,
            LintKind::ReadOfNeverWrittenReg {
                upc: 0,
                reg: reg(5)
            }
        );
        // It is also, by definition, a read-before-init.
        assert_eq!(a.reads_before_init().len(), 1);
    }

    #[test]
    fn unreachable_instruction_is_a_lint() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.jump(end); // 0
        b.movi(reg(1), 1); // 1: unreachable
        b.bind(end);
        b.halt(); // 2
        let a = analyse(&b.build().unwrap());
        assert_eq!(a.lint().len(), 1);
        assert_eq!(a.lint().findings()[0].rip, 1);
        assert_eq!(
            a.lint().findings()[0].kind,
            LintKind::UnreachableInstruction
        );
    }

    #[test]
    fn out_of_range_target_is_a_lint() {
        let p = Program {
            instructions: vec![Inst::Jump { target: 77 }, Inst::Halt],
            data: vec![],
            data_size: 0,
            entry: 0,
        };
        let a = analyse(&p);
        let kinds: Vec<&LintKind> = a.lint().findings().iter().map(|f| &f.kind).collect();
        assert!(kinds
            .iter()
            .any(|k| matches!(k, LintKind::TargetOutOfRange { target: 77, len: 2 })));
        // The halt behind the broken jump is unreachable too.
        assert!(kinds
            .iter()
            .any(|k| matches!(k, LintKind::UnreachableInstruction)));
    }

    #[test]
    fn load_op_temporary_flows_within_the_instruction() {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[5]);
        b.movi(reg(10), data as i64); // 0
        b.movi(reg(2), 1); // 1
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10))); // 2
        b.out(reg(2)); // 3
        b.halt(); // 4
        let a = analyse(&b.build().unwrap());
        assert!(a.lint().is_clean(), "{}", a.lint());
        assert!(a.reads_before_init().is_empty());
        // The load-op temporary is used, so its identity entry is not dead.
        assert!(!a.rf_entry_statically_dead(ArchReg::temp(0).index()));
    }
}
