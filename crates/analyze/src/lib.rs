//! # merlin-analyze
//!
//! Static control-flow and dataflow analysis over predecoded merlin
//! programs — the purely static counterpart to the *dynamic* ACE-like
//! profiling of `merlin-ace`.
//!
//! The crate builds a control-flow graph (basic blocks, successors,
//! reachability) over a program's macro-instruction text and runs classic
//! dataflow over the predecoded micro-op arena
//! ([`merlin_isa::DecodedProgram`]):
//!
//! * backward **liveness** of architectural registers via fixed-point
//!   iteration, with per-micro-op def/use sets taken from [`merlin_isa::Uop`]
//!   operands,
//! * **dead-write** and **read-before-init** detection (advisory),
//! * a whole-program **register census** that proves some physical
//!   register-file entries can never affect an architected outcome — the
//!   basis of the zero-simulation static fault prune
//!   ([`ProgramAnalysis::rf_entry_statically_dead`]),
//! * a structured **lint** ([`LintReport`]) used as admission control at
//!   the session boundary: out-of-range control targets, reads of registers
//!   the program never writes, unreachable instructions.
//!
//! Analysis results ride a fault-injection session exactly like the
//! predecoded arena does: computed once, shared by every worker.
//!
//! # Examples
//!
//! ```
//! use merlin_analyze::ProgramAnalysis;
//! use merlin_isa::{reg, AluOp, Cond, DecodedProgram, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! b.movi(reg(1), 1);
//! b.movi(reg(2), 5);
//! let top = b.bind_label();
//! b.alu_rr(AluOp::Mul, reg(1), reg(1), reg(2));
//! b.alu_ri(AluOp::Sub, reg(2), reg(2), 1);
//! b.branch_ri(Cond::Gt, reg(2), 0, top);
//! b.out(reg(1));
//! b.halt();
//! let program = b.build().unwrap();
//! let decoded = DecodedProgram::new(&program);
//!
//! let analysis = ProgramAnalysis::of(&program, &decoded);
//! assert!(analysis.lint().is_clean());
//! // r9 is never mentioned: faults into its identity physical entry are
//! // provably Masked and need no simulation.
//! assert!(analysis.rf_entry_statically_dead(reg(9).index()));
//! assert!(!analysis.rf_entry_statically_dead(reg(1).index()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod cfg;
mod lint;

pub use analysis::{ProgramAnalysis, UopSite};
pub use cfg::{BasicBlock, ControlFlowGraph};
pub use lint::{LintFinding, LintKind, LintReport};
