//! Structured program lint findings.
//!
//! The linter is the admission-control layer in front of a fault-injection
//! session: [`SessionBuilder::build`] runs it on every program and rejects
//! anything that would otherwise panic a worker core mid-campaign (an
//! out-of-range branch target) or silently depend on reset state (a read of
//! a register no instruction ever writes) — and anything that signals a
//! broken kernel (instructions no path can reach).
//!
//! Findings are data, not text: each one names the RIP it anchors to and
//! carries the evidence, so a campaign service can report them to the
//! program's author verbatim.
//!
//! [`SessionBuilder::build`]: https://docs.rs/merlin-inject

use merlin_isa::{ArchReg, Rip, Upc};
use std::fmt;

/// The class of a lint finding, with its evidence.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LintKind {
    /// A branch, jump or call targets an instruction outside the program
    /// text; fetching it would fault the core mid-campaign.
    TargetOutOfRange {
        /// The out-of-range target RIP.
        target: Rip,
        /// Number of instructions in the program.
        len: u32,
    },
    /// A micro-op reads a register that no instruction in the whole program
    /// writes: the value can only ever be the reset value, which is almost
    /// certainly a kernel bug.
    ReadOfNeverWrittenReg {
        /// Micro-op index within the instruction performing the read.
        upc: Upc,
        /// The register that is read but never written.
        reg: ArchReg,
    },
    /// No control-flow path from the entry reaches this instruction.
    UnreachableInstruction,
}

/// One lint finding, anchored to the instruction it concerns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LintFinding {
    /// Instruction pointer the finding anchors to.
    pub rip: Rip,
    /// What was found, with evidence.
    pub kind: LintKind,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            LintKind::TargetOutOfRange { target, len } => write!(
                f,
                "rip {}: control target {} is outside the program text (0..{})",
                self.rip, target, len
            ),
            LintKind::ReadOfNeverWrittenReg { upc, reg } => write!(
                f,
                "rip {}.{}: reads {} but no instruction ever writes it",
                self.rip, upc, reg
            ),
            LintKind::UnreachableInstruction => {
                write!(f, "rip {}: unreachable from the program entry", self.rip)
            }
        }
    }
}

/// The complete lint verdict for one program.
///
/// An empty report ([`LintReport::is_clean`]) is the admission criterion:
/// sessions reject programs whose report carries any finding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    findings: Vec<LintFinding>,
}

impl LintReport {
    /// Assembles a report from `findings`, sorting them by RIP for
    /// deterministic output.
    pub fn new(mut findings: Vec<LintFinding>) -> Self {
        findings.sort_by_key(|f| (f.rip, discriminant_rank(&f.kind)));
        LintReport { findings }
    }

    /// `true` when the program passed every lint.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.findings.len()
    }

    /// `true` when there are no findings (alias of [`LintReport::is_clean`]
    /// for collection-style call sites).
    pub fn is_empty(&self) -> bool {
        self.findings.is_empty()
    }

    /// The findings, sorted by RIP.
    pub fn findings(&self) -> &[LintFinding] {
        &self.findings
    }
}

/// Stable ordering rank for finding kinds sharing a RIP.
fn discriminant_rank(kind: &LintKind) -> u8 {
    match kind {
        LintKind::TargetOutOfRange { .. } => 0,
        LintKind::ReadOfNeverWrittenReg { .. } => 1,
        LintKind::UnreachableInstruction => 2,
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.findings.is_empty() {
            return write!(f, "clean (no findings)");
        }
        write!(f, "{} finding(s):", self.findings.len())?;
        for finding in &self.findings {
            write!(f, " [{finding}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::reg;

    #[test]
    fn report_sorts_by_rip_and_kind() {
        let report = LintReport::new(vec![
            LintFinding {
                rip: 7,
                kind: LintKind::UnreachableInstruction,
            },
            LintFinding {
                rip: 2,
                kind: LintKind::ReadOfNeverWrittenReg {
                    upc: 0,
                    reg: reg(3),
                },
            },
            LintFinding {
                rip: 2,
                kind: LintKind::TargetOutOfRange { target: 9, len: 8 },
            },
        ]);
        assert_eq!(report.len(), 3);
        assert!(!report.is_clean());
        assert_eq!(report.findings()[0].rip, 2);
        assert!(matches!(
            report.findings()[0].kind,
            LintKind::TargetOutOfRange { .. }
        ));
        assert_eq!(report.findings()[2].rip, 7);
    }

    #[test]
    fn display_is_actionable() {
        let clean = LintReport::default();
        assert!(clean.is_clean());
        assert!(clean.to_string().contains("clean"));

        let report = LintReport::new(vec![LintFinding {
            rip: 4,
            kind: LintKind::ReadOfNeverWrittenReg {
                upc: 1,
                reg: reg(9),
            },
        }]);
        let s = report.to_string();
        assert!(s.contains("rip 4.1"));
        assert!(s.contains("r9"));
        assert!(s.contains("ever writes"));
    }
}
