//! Property-based validation of the checkpoint/restore machinery: for random
//! programs and random checkpoint cycles, `snapshot → restore → run` must be
//! cycle-for-cycle identical to an uninterrupted run — with and without an
//! injected fault in the suffix.

use merlin_cpu::{Cpu, CpuConfig, FaultSpec, NullProbe, Structure};
use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};
use proptest::prelude::*;

/// A step of a random (but always-terminating) test program; a trimmed-down
/// version of the generator in `prop_pipeline.rs` biased toward memory
/// traffic so snapshots carry non-trivial cache and store-queue state.
#[derive(Debug, Clone)]
enum Step {
    Alu(AluOp, usize, usize, usize),
    Mov(usize, i64),
    Store(usize, i64),
    Load(usize, i64),
    Out(usize),
    Loop(usize, u8),
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Shl,
    ])
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (arb_alu(), 1usize..10, 1usize..10, 1usize..10)
            .prop_map(|(op, a, b, c)| Step::Alu(op, a, b, c)),
        (1usize..10, -1000i64..1000).prop_map(|(r, v)| Step::Mov(r, v)),
        (1usize..10, 0i64..32).prop_map(|(r, o)| Step::Store(r, o * 8)),
        (1usize..10, 0i64..32).prop_map(|(r, o)| Step::Load(r, o * 8)),
        (1usize..10).prop_map(Step::Out),
        (1usize..10, 2u8..10).prop_map(|(r, n)| Step::Loop(r, n)),
    ]
}

fn build_program(steps: &[Step]) -> merlin_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(64 * 8);
    b.movi(reg(10), buf as i64);
    for r in 1..10 {
        b.movi(reg(r), (r as i64) * 23 + 5);
    }
    for step in steps {
        match step {
            Step::Alu(op, a, s1, s2) => {
                b.alu_rr(*op, reg(*a), reg(*s1), reg(*s2));
            }
            Step::Mov(r, v) => {
                b.movi(reg(*r), *v);
            }
            Step::Store(r, off) => {
                b.store(reg(*r), MemRef::base(reg(10)).disp(*off));
            }
            Step::Load(r, off) => {
                b.load(reg(*r), MemRef::base(reg(10)).disp(*off));
            }
            Step::Out(r) => {
                b.out(reg(*r));
            }
            Step::Loop(r, n) => {
                b.movi(reg(11), *n as i64);
                let top = b.bind_label();
                b.alu_rr(AluOp::Add, reg(*r), reg(*r), reg(11));
                b.alu_ri(AluOp::Sub, reg(11), reg(11), 1);
                b.branch_ri(Cond::Gt, reg(11), 0, top);
            }
        }
    }
    for r in 1..10 {
        b.out(reg(r));
    }
    b.halt();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// snapshot → restore → run is identical to an uninterrupted run, both
    /// on the core the snapshot came from and on a freshly built core.
    #[test]
    fn restore_replays_the_run_exactly(
        steps in prop::collection::vec(arb_step(), 1..30),
        ckpt_frac in 0u64..20,
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let expected = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(expected.exit.is_halted(), "exit: {:?}", expected.exit);

        let ckpt_cycle = expected.cycles * ckpt_frac / 20;
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while cpu.cycle() < ckpt_cycle && !cpu.is_finished() {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();

        // Continuing the original core to completion matches.
        let cont = cpu.run(2_000_000, &mut NullProbe);
        prop_assert_eq!(&cont, &expected);

        // Restoring the same core rewinds it exactly.
        cpu.restore_from(&state);
        prop_assert!(cpu.matches_state(&state));
        let replay = cpu.run(2_000_000, &mut NullProbe);
        prop_assert_eq!(&replay, &expected);

        // A fresh core restored from the snapshot also matches.
        let mut fresh = Cpu::new(program, CpuConfig::default()).unwrap();
        fresh.restore_from(&state);
        let fresh_replay = fresh.run(2_000_000, &mut NullProbe);
        prop_assert_eq!(&fresh_replay, &expected);
    }

    /// The delta-encoded snapshot (memory as dirty chunks against the
    /// pristine image, including a trip through the binary codec that
    /// persists `.golden` files) restores to exactly the state a dense
    /// snapshot would have: the restored core is bit-identical to the
    /// snapshotted one and its continuation replays the run exactly.
    #[test]
    fn delta_encoded_restore_is_state_identical(
        steps in prop::collection::vec(arb_step(), 1..30),
        ckpt_frac in 0u64..20,
    ) {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let expected = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(expected.exit.is_halted());

        let ckpt_cycle = expected.cycles * ckpt_frac / 20;
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while cpu.cycle() < ckpt_cycle && !cpu.is_finished() {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();

        // The delta snapshot costs no more than a dense memory image, and
        // strictly less once the run is long enough to leave memory mostly
        // untouched.
        prop_assert!(state.memory_delta_bytes() <= state.memory_dense_bytes());

        // Through the binary codec (the on-disk representation) and onto a
        // fresh core: bit-identical state, identical continuation.
        let decoded: merlin_cpu::CpuState =
            decode_from_slice(&encode_to_vec(&state)).unwrap();
        prop_assert_eq!(&decoded, &state);
        let mut fresh = Cpu::new(program, CpuConfig::default()).unwrap();
        fresh.restore_from(&decoded);
        prop_assert!(fresh.matches_state(&state));
        let replay = fresh.run(2_000_000, &mut NullProbe);
        prop_assert_eq!(&replay, &expected);
    }

    /// The incremental same-snapshot restore path (taken when a core is
    /// restored from the snapshot it was last restored from, as campaign
    /// workers bound to a checkpoint range do per fault) is state-identical
    /// to a full restore, with an identical continuation — for an arbitrary
    /// faulty suffix that dirties every epoch-tagged structure (registers,
    /// rename state, ROB, load/store queues, predictor, caches and memory),
    /// and with the demotion semantics campaign correctness leans on: a
    /// foreign restore or a quarantine in between forces the next restore
    /// of the original snapshot back onto the full path.
    #[test]
    fn incremental_restore_matches_full_restore(
        steps in prop::collection::vec(arb_step(), 1..25),
        ckpt_frac in 0u64..10,
        run_frac in 0u64..10,
        entry in 0usize..64,
        bit in 0u8..64,
        structure in prop::sample::select(
            vec![Structure::RegisterFile, Structure::StoreQueue, Structure::L1DCache]),
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());
        let budget = golden.cycles * 3 + 1000;

        let ckpt_cycle = golden.cycles * ckpt_frac / 10;
        let mut golden_cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while golden_cpu.cycle() < ckpt_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let state = golden_cpu.snapshot();

        // Baseline: a fresh core full-restores the snapshot and runs to
        // completion.  The full path reports the state's whole footprint,
        // spread over the per-structure breakdown.
        let mut full = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let stats = full.restore_from(&state);
        prop_assert!(!stats.incremental, "first restore must be full");
        prop_assert!(stats.bytes.regfile > 0, "full restore rewrites the whole PRF");
        prop_assert!(stats.bytes.predictor > 0, "full restore rewrites the predictor tables");
        prop_assert!(stats.restored_bytes() >= stats.bytes.memory + stats.bytes.regfile);
        let full_result = full.run(budget, &mut NullProbe);
        prop_assert_eq!(&full_result, &golden);

        // Worker pattern: restore, dirty the state with a faulty partial
        // suffix (fault structure varies per case; natural execution dirties
        // the fetch buffer, rename state, ROB, LSQ and predictor besides),
        // then restore the *same* snapshot again — the second restore must
        // take the incremental path and still reproduce the state bit for
        // bit.
        let mut worker = Cpu::new(program, CpuConfig::default()).unwrap();
        let first = worker.restore_from(&state);
        prop_assert!(!first.incremental);
        let fault_cycle = (ckpt_cycle + 1).max(1);
        let fault_entry = entry % worker.structure_entries(structure).max(1);
        worker
            .inject_fault(FaultSpec::new(structure, fault_entry, bit, fault_cycle))
            .unwrap();
        let stop = ckpt_cycle + (golden.cycles - ckpt_cycle) * run_frac / 10 + 2;
        while worker.cycle() < stop && !worker.is_finished() {
            worker.step(&mut NullProbe);
        }
        let second = worker.restore_from(&state);
        prop_assert!(second.incremental, "same-snapshot restore must be incremental");
        prop_assert!(!second.from_quarantine);
        prop_assert!(worker.matches_state(&state));
        prop_assert_eq!(&worker.snapshot(), &state);
        let replay = worker.run(budget, &mut NullProbe);
        prop_assert_eq!(&replay, &full_result);

        // Foreign-restore demotion: restoring a *different* snapshot in
        // between (here: the golden core advanced past the checkpoint)
        // retargets the epoch, so the next restore of the original snapshot
        // is full again — and only the one after that re-earns the
        // incremental path.
        for _ in 0..3 {
            if !golden_cpu.is_finished() {
                golden_cpu.step(&mut NullProbe);
            }
        }
        let other = golden_cpu.snapshot();
        prop_assert!(!worker.restore_from(&other).incremental,
            "restore from a new snapshot starts a new epoch");
        let demoted = worker.restore_from(&state);
        prop_assert!(!demoted.incremental, "foreign restore must demote to full");
        prop_assert!(worker.matches_state(&state));
        prop_assert!(worker.restore_from(&state).incremental);

        // Quarantine demotion: even with the same-snapshot epoch intact, a
        // quarantined core's bookkeeping is untrusted — the next restore is
        // full and flagged, and the state still comes back bit-identical.
        worker.quarantine();
        let after_q = worker.restore_from(&state);
        prop_assert!(!after_q.incremental, "quarantine must force a full restore");
        prop_assert!(after_q.from_quarantine);
        prop_assert_eq!(&worker.snapshot(), &state);

        // A fresh core never starts incremental.
        let mut other_cpu = Cpu::new(build_program(&steps), CpuConfig::default()).unwrap();
        prop_assert!(!other_cpu.restore_from(&state).incremental);
    }

    /// A quarantined core (as campaign workers demote theirs after a caught
    /// per-fault panic) must not trust its incremental-restore bookkeeping:
    /// the next restore of even the *same* snapshot takes the full path, is
    /// flagged `from_quarantine`, and reproduces the state of a fresh-core
    /// full restore bit for bit.
    #[test]
    fn quarantine_forces_a_full_restore_identical_to_a_fresh_core(
        steps in prop::collection::vec(arb_step(), 1..25),
        ckpt_frac in 0u64..10,
        run_frac in 0u64..10,
        entry in 0usize..64,
        bit in 0u8..64,
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());
        let budget = golden.cycles * 3 + 1000;

        let ckpt_cycle = golden.cycles * ckpt_frac / 10;
        let mut golden_cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while golden_cpu.cycle() < ckpt_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let state = golden_cpu.snapshot();

        let mut worker = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let first = worker.restore_from(&state);
        prop_assert!(!first.incremental);
        prop_assert!(!first.from_quarantine);
        prop_assert!(!worker.is_quarantined());

        // Dirty the core with a faulty partial suffix, then quarantine it —
        // the worker pattern after a caught panic.
        let fault_cycle = (ckpt_cycle + 1).max(1);
        worker
            .inject_fault(FaultSpec::new(Structure::RegisterFile, entry, bit, fault_cycle))
            .unwrap();
        let stop = ckpt_cycle + (golden.cycles - ckpt_cycle) * run_frac / 10 + 2;
        while worker.cycle() < stop && !worker.is_finished() {
            worker.step(&mut NullProbe);
        }
        worker.quarantine();
        prop_assert!(worker.is_quarantined());

        // Without quarantine this same-snapshot restore would be
        // incremental; quarantine forces the full path exactly once.
        let restore = worker.restore_from(&state);
        prop_assert!(!restore.incremental, "quarantine must force a full restore");
        prop_assert!(restore.from_quarantine);
        prop_assert!(!worker.is_quarantined(), "quarantine clears on restore");
        prop_assert!(worker.matches_state(&state));
        prop_assert_eq!(&worker.snapshot(), &state);

        // Bit-for-bit parity with a fresh core restoring the same snapshot.
        let mut fresh = Cpu::new(program, CpuConfig::default()).unwrap();
        fresh.restore_from(&state);
        prop_assert_eq!(&fresh.snapshot(), &worker.snapshot());
        let replay = worker.run(budget, &mut NullProbe);
        let fresh_replay = fresh.run(budget, &mut NullProbe);
        prop_assert_eq!(&replay, &fresh_replay);
        prop_assert_eq!(&replay, &golden);

        // Trust is re-earned: the next same-snapshot restore is incremental
        // again.
        let again = worker.restore_from(&state);
        prop_assert!(again.incremental);
        prop_assert!(!again.from_quarantine);
    }

    /// A fault injected into a restored suffix behaves exactly as the same
    /// fault injected into a from-scratch run — the core property behind the
    /// checkpointed campaign engine's byte-identical guarantee.
    #[test]
    fn faulted_suffix_matches_faulted_full_run(
        steps in prop::collection::vec(arb_step(), 1..25),
        entry in 0usize..64,
        bit in 0u8..64,
        ckpt_frac in 0u64..10,
        fault_gap in 0u64..10,
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());

        let ckpt_cycle = golden.cycles * ckpt_frac / 10;
        let fault_cycle =
            (ckpt_cycle + (golden.cycles - ckpt_cycle) * fault_gap / 10).max(ckpt_cycle);
        let fault = FaultSpec::new(Structure::RegisterFile, entry, bit, fault_cycle.max(1));
        let budget = golden.cycles * 3 + 1000;

        // From-scratch faulty run.
        let mut scratch = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        scratch.inject_fault(fault).unwrap();
        let scratch_result = scratch.run(budget, &mut NullProbe);

        // Checkpointed faulty run: snapshot the golden run at ckpt_cycle,
        // restore on a fresh core, inject the same fault, run the suffix.
        let mut golden_cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while golden_cpu.cycle() < ckpt_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let state = golden_cpu.snapshot();
        let mut suffix = Cpu::new(program, CpuConfig::default()).unwrap();
        suffix.restore_from(&state);
        suffix.inject_fault(fault).unwrap();
        let suffix_result = suffix.run(budget, &mut NullProbe);

        prop_assert_eq!(&suffix_result, &scratch_result);
    }
}
