//! Property-based validation of copy-on-write forking: a fork that adopts
//! its parent's state by structural sharing must be indistinguishable — in
//! snapshot, in continuation, and under arbitrary faults — from a core that
//! materialised a full private copy of the same state, and writes on either
//! side of the share must never leak across it.

use merlin_cpu::{Cpu, CpuConfig, FaultSpec, NullProbe, Structure};
use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};
use proptest::prelude::*;

/// Random always-terminating test program biased toward memory traffic, so
/// forks carry non-trivial cache, store-queue and memory state (same shape
/// as the generator in `prop_snapshot.rs`).
#[derive(Debug, Clone)]
enum Step {
    Alu(AluOp, usize, usize, usize),
    Mov(usize, i64),
    Store(usize, i64),
    Load(usize, i64),
    Out(usize),
    Loop(usize, u8),
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Shl,
    ])
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (arb_alu(), 1usize..10, 1usize..10, 1usize..10)
            .prop_map(|(op, a, b, c)| Step::Alu(op, a, b, c)),
        (1usize..10, -1000i64..1000).prop_map(|(r, v)| Step::Mov(r, v)),
        (1usize..10, 0i64..32).prop_map(|(r, o)| Step::Store(r, o * 8)),
        (1usize..10, 0i64..32).prop_map(|(r, o)| Step::Load(r, o * 8)),
        (1usize..10).prop_map(Step::Out),
        (1usize..10, 2u8..10).prop_map(|(r, n)| Step::Loop(r, n)),
    ]
}

fn build_program(steps: &[Step]) -> merlin_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(64 * 8);
    b.movi(reg(10), buf as i64);
    for r in 1..10 {
        b.movi(reg(r), (r as i64) * 23 + 5);
    }
    for step in steps {
        match step {
            Step::Alu(op, a, s1, s2) => {
                b.alu_rr(*op, reg(*a), reg(*s1), reg(*s2));
            }
            Step::Mov(r, v) => {
                b.movi(reg(*r), *v);
            }
            Step::Store(r, off) => {
                b.store(reg(*r), MemRef::base(reg(10)).disp(*off));
            }
            Step::Load(r, off) => {
                b.load(reg(*r), MemRef::base(reg(10)).disp(*off));
            }
            Step::Out(r) => {
                b.out(reg(*r));
            }
            Step::Loop(r, n) => {
                b.movi(reg(11), *n as i64);
                let top = b.bind_label();
                b.alu_rr(AluOp::Add, reg(*r), reg(*r), reg(11));
                b.alu_ri(AluOp::Sub, reg(11), reg(11), 1);
                b.branch_ri(Cond::Gt, reg(11), 0, top);
            }
        }
    }
    for r in 1..10 {
        b.out(reg(r));
    }
    b.halt();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The batched driver's fork sequence — restore a pool core from the
    /// range snapshot, then [`Cpu::fork_from`] the live golden core — must
    /// produce a core bit-identical to an eager full copy of the golden
    /// state (a fresh core full-restoring the golden core's own snapshot),
    /// and both must classify an arbitrary fault identically.  Writes on
    /// the fork must never reach the golden parent through the shared
    /// structures: the parent's continuation stays bit-identical to an
    /// unshared reference run.
    #[test]
    fn cow_fork_is_bit_identical_to_an_eager_copy(
        steps in prop::collection::vec(arb_step(), 1..25),
        range_frac in 0u64..10,
        fork_gap in 0u64..10,
        entry in 0usize..64,
        bit in 0u8..64,
        structure in prop::sample::select(
            vec![Structure::RegisterFile, Structure::StoreQueue, Structure::L1DCache]),
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());
        let budget = golden.cycles * 3 + 1000;

        // Range snapshot, then the golden replay core advances to the
        // injection cycle — exactly the batched driver's prefix.
        let range_cycle = golden.cycles * range_frac / 10;
        let mut golden_cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while golden_cpu.cycle() < range_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let range_state = golden_cpu.snapshot();
        let fork_cycle = range_cycle + (golden.cycles - range_cycle) * fork_gap / 10;
        while golden_cpu.cycle() < fork_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let at_fork = golden_cpu.snapshot();

        // CoW fork, exactly as the batched driver spawns one.
        let mut fork = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        fork.restore_from(&range_state);
        let stats = fork.fork_from(&golden_cpu);
        prop_assert!(fork.matches_state(&at_fork));
        prop_assert_eq!(&fork.snapshot(), &at_fork);
        // Sharing replaces copying: the fork adopts the bulk of the state
        // by handle and moves almost nothing.
        prop_assert!(stats.shared.total() > 0, "a fork must share structurally");
        prop_assert!(
            stats.copied.total() < stats.shared.total(),
            "copied {} >= shared {}",
            stats.copied.total(),
            stats.shared.total()
        );

        // Eager baseline: a fresh core materialising a full private copy of
        // the same state through the dense restore path.
        let mut eager = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        eager.restore_from(&at_fork);
        prop_assert_eq!(&eager.snapshot(), &at_fork);

        // Same fault into both; identical classification-relevant results.
        let fault_entry = entry % fork.structure_entries(structure).max(1);
        let fault = FaultSpec::new(structure, fault_entry, bit, fork_cycle.max(1));
        fork.inject_fault(fault).unwrap();
        eager.inject_fault(fault).unwrap();
        let fork_result = fork.run(budget, &mut NullProbe);
        let eager_result = eager.run(budget, &mut NullProbe);
        prop_assert_eq!(&fork_result, &eager_result);

        // The faulty fork's writes never reach its parent: the golden core
        // continues bit-identically to the uninterrupted reference run.
        let cont = golden_cpu.run(budget, &mut NullProbe);
        prop_assert_eq!(&cont, &golden);
    }

    /// Quarantine on a forked core must drop every shared handle (the
    /// poisoned core may not keep references into a healthy parent), and a
    /// foreign restore after a fork must produce the foreign state exactly
    /// — sharing is invisible to restore semantics.
    #[test]
    fn fork_unshares_on_quarantine_and_survives_foreign_restore(
        steps in prop::collection::vec(arb_step(), 1..25),
        range_frac in 0u64..10,
        fork_gap in 0u64..10,
    ) {
        let program = build_program(&steps);
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = reference.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());
        let budget = golden.cycles * 3 + 1000;

        let range_cycle = golden.cycles * range_frac / 10;
        let mut golden_cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        while golden_cpu.cycle() < range_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }
        let range_state = golden_cpu.snapshot();
        let fork_cycle = range_cycle + (golden.cycles - range_cycle) * fork_gap / 10;
        while golden_cpu.cycle() < fork_cycle && !golden_cpu.is_finished() {
            golden_cpu.step(&mut NullProbe);
        }

        let mut fork = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        fork.restore_from(&range_state);
        fork.fork_from(&golden_cpu);

        // Quarantine severs every share: the core owns all of its state
        // privately (or shares only with its own immutable pristine image).
        fork.quarantine();
        prop_assert!(fork.fully_private(), "quarantine must un-share everything");
        // The forced full restore then rebuilds the range state bit for bit
        // and the replay matches the reference run.
        let restore = fork.restore_from(&range_state);
        prop_assert!(restore.from_quarantine);
        prop_assert_eq!(&fork.snapshot(), &range_state);
        let replay = fork.run(budget, &mut NullProbe);
        prop_assert_eq!(&replay, &golden);

        // Foreign restore after a fresh fork: advance the parent, snapshot,
        // and restore the forked core from that unrelated state — the fork's
        // shares from the earlier parent state must not bleed through.
        let mut fork2 = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        fork2.restore_from(&range_state);
        fork2.fork_from(&golden_cpu);
        for _ in 0..3 {
            if !golden_cpu.is_finished() {
                golden_cpu.step(&mut NullProbe);
            }
        }
        let foreign = golden_cpu.snapshot();
        fork2.restore_from(&foreign);
        prop_assert!(fork2.matches_state(&foreign));
        prop_assert_eq!(&fork2.snapshot(), &foreign);
        let replay2 = fork2.run(budget, &mut NullProbe);
        prop_assert_eq!(&replay2, &golden);

        // Writes after a fork surface as sharing breaks, and the tally
        // drains: bookkeeping, never state.
        let mut fork3 = Cpu::new(program, CpuConfig::default()).unwrap();
        fork3.restore_from(&range_state);
        fork3.fork_from(&golden_cpu);
        fork3.take_cow_breaks();
        let before = fork3.snapshot();
        let mut breaks = 0u64;
        let mut stepped = false;
        for _ in 0..500 {
            if fork3.is_finished() || breaks > 0 {
                break;
            }
            fork3.step(&mut NullProbe);
            stepped = true;
            breaks += fork3.take_cow_breaks();
        }
        if stepped {
            prop_assert!(breaks > 0, "running a fork must break at least one share");
        }
        prop_assert_eq!(fork3.take_cow_breaks(), 0, "the break tally drains on take");
        // Draining the tally is invisible to state equality.
        fork3.restore_from(&before);
        prop_assert_eq!(&fork3.snapshot(), &before);
    }
}
