//! Pins the per-structure restore accounting for backing memory.
//!
//! On the default configuration the bench workloads are L2-resident: backing
//! memory is only written on dirty L2 evictions, which never occur, so the
//! `memory` entry of the restored-bytes breakdown is a *true* zero there.
//! This test forces the missing case — caches small enough that stores spill
//! dirty lines all the way to memory — and asserts that both the full and
//! the incremental restore paths then report nonzero memory bytes.

use merlin_cpu::{CacheConfig, Cpu, CpuConfig, NullProbe};
use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

/// Stores across 32 distinct 64-byte lines, twice, under caches that hold
/// only a handful of lines — every pass evicts dirty lines into memory.
fn spilling_program() -> merlin_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(32 * 64);
    b.movi(reg(10), buf as i64);
    b.movi(reg(3), 0); // pass counter
    let pass = b.bind_label();
    b.movi(reg(1), 0); // byte offset, advances a line at a time
    b.movi(reg(2), 7);
    let top = b.bind_label();
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 1));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 13);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 64);
    b.branch_ri(Cond::Lt, reg(1), 32 * 64, top);
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), 2, pass);
    b.out(reg(2));
    b.halt();
    b.build().unwrap()
}

fn tiny_cache_config() -> CpuConfig {
    CpuConfig {
        l1d: CacheConfig {
            size_bytes: 128,
            line_bytes: 64,
            ways: 1,
            hit_latency: 1,
        },
        l2: CacheConfig {
            size_bytes: 256,
            line_bytes: 64,
            ways: 1,
            hit_latency: 4,
        },
        ..CpuConfig::default()
    }
}

#[test]
fn restore_reports_memory_bytes_when_evictions_dirty_it() {
    let program = spilling_program();
    let cfg = tiny_cache_config();
    let mut reference = Cpu::new(program.clone(), cfg.clone()).unwrap();
    let golden = reference.run(1_000_000, &mut NullProbe);
    assert!(golden.exit.is_halted());

    // Snapshot late enough that the first pass's dirty lines have been
    // evicted into backing memory.
    let ckpt_cycle = golden.cycles * 3 / 4;
    let mut golden_cpu = Cpu::new(program.clone(), cfg.clone()).unwrap();
    while golden_cpu.cycle() < ckpt_cycle && !golden_cpu.is_finished() {
        golden_cpu.step(&mut NullProbe);
    }
    let state = golden_cpu.snapshot();
    assert!(
        state.memory_delta_bytes() > 0,
        "precondition: the workload must dirty backing memory before the snapshot"
    );

    // Full restore onto a fresh core lays the snapshot's memory delta.
    let mut worker = Cpu::new(program.clone(), cfg.clone()).unwrap();
    let full = worker.restore_from(&state);
    assert!(!full.incremental);
    assert!(
        full.bytes.memory > 0,
        "full restore of a dirtied memory must report memory bytes, got {:?}",
        full.bytes
    );
    assert_eq!(&worker.snapshot(), &state);

    // Run the suffix — it spills more dirty lines — then restore the same
    // snapshot again: the incremental path must rewrite (and report) the
    // memory the suffix touched.
    let replay = worker.run(golden.cycles * 3 + 1000, &mut NullProbe);
    assert_eq!(&replay, &golden);
    let incremental = worker.restore_from(&state);
    assert!(incremental.incremental);
    assert!(
        incremental.bytes.memory > 0,
        "incremental restore after a memory-dirtying suffix must report memory bytes, got {:?}",
        incremental.bytes
    );
    assert_eq!(&worker.snapshot(), &state);
}
