//! Integration tests of the fault-injection hooks and the probe interface —
//! the properties MeRLiN's methodology relies on.

use merlin_cpu::{
    Cpu, CpuConfig, FaultSpec, NullProbe, Probe, ReadInfo, RecordingProbe, Structure,
};
use merlin_isa::{reg, AluOp, Cond, MemRef, Program, ProgramBuilder};

/// A small loop-heavy program with memory traffic used by most tests here.
fn sample_program() -> Program {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(&(0..32).map(|i| 3 * i + 1).collect::<Vec<u64>>());
    let out_buf = b.reserve(32 * 8);
    b.movi(reg(1), data as i64);
    b.movi(reg(10), out_buf as i64);
    b.movi(reg(2), 0);
    b.movi(reg(3), 0);
    let top = b.bind_label();
    b.load(reg(4), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(4));
    b.alu_ri(AluOp::Mul, reg(5), reg(4), 7);
    b.store(reg(5), MemRef::base(reg(10)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 32, top);
    // Emit the checksum and a few transformed values.
    b.out(reg(3));
    b.movi(reg(2), 0);
    let top2 = b.bind_label();
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(2), 8));
    b.out(reg(6));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 4);
    b.branch_ri(Cond::Lt, reg(2), 32, top2);
    b.halt();
    b.build().unwrap()
}

fn golden() -> merlin_cpu::RunResult {
    let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
    cpu.run(1_000_000, &mut NullProbe)
}

#[test]
fn golden_run_is_clean() {
    let g = golden();
    assert!(g.exit.is_halted());
    assert_eq!(g.output.len(), 1 + 8);
    assert_eq!(g.output[0], (0..32u64).map(|i| 3 * i + 1).sum::<u64>());
}

#[test]
fn fault_in_free_register_is_masked() {
    let g = golden();
    // The default configuration has 256 physical registers; a register near
    // the top of the file is never allocated by this tiny program.
    let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
    cpu.inject_fault(FaultSpec::new(
        Structure::RegisterFile,
        250,
        13,
        g.cycles / 2,
    ))
    .unwrap();
    let r = cpu.run(1_000_000, &mut NullProbe);
    assert!(r.exit.is_halted());
    assert_eq!(
        r.output, g.output,
        "fault in a dead register must be masked"
    );
}

#[test]
fn fault_after_program_end_is_masked() {
    let g = golden();
    let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
    cpu.inject_fault(FaultSpec::new(Structure::RegisterFile, 5, 3, g.cycles + 10))
        .unwrap();
    let r = cpu.run(1_000_000, &mut NullProbe);
    assert_eq!(r.output, g.output);
}

#[test]
fn some_register_file_fault_corrupts_output() {
    // Sweep a few fault sites until one produces an SDC: with a live
    // accumulator held in a low physical register early in the run this must
    // happen well within the sweep.
    let g = golden();
    let mut found_sdc = false;
    'outer: for entry in 0..24usize {
        for cycle in [20u64, 40, 60, 100, 200] {
            let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
            cpu.inject_fault(FaultSpec::new(Structure::RegisterFile, entry, 60, cycle))
                .unwrap();
            let r = cpu.run(1_000_000, &mut NullProbe);
            if r.exit.is_halted() && r.output != g.output {
                found_sdc = true;
                break 'outer;
            }
        }
    }
    assert!(found_sdc, "no register-file fault produced an SDC");
}

#[test]
fn store_queue_fault_can_corrupt_memory_values() {
    let g = golden();
    let mut found = false;
    'outer: for entry in 0..4usize {
        for cycle in 10..200u64 {
            let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
            cpu.inject_fault(FaultSpec::new(Structure::StoreQueue, entry, 62, cycle))
                .unwrap();
            let r = cpu.run(1_000_000, &mut NullProbe);
            if r.exit.is_halted() && r.output != g.output {
                found = true;
                break 'outer;
            }
        }
    }
    assert!(found, "no store-queue fault propagated to the output");
}

#[test]
fn l1d_fault_in_untouched_word_is_masked() {
    let g = golden();
    let cfg = CpuConfig::default();
    let mut cpu = Cpu::new(sample_program(), cfg.clone()).unwrap();
    // The program touches a few hundred bytes near the bottom of the address
    // space; a word in a far-away set is never accessed.
    let far_entry = cfg.l1d.total_words() - 1;
    cpu.inject_fault(FaultSpec::new(
        Structure::L1DCache,
        far_entry,
        7,
        g.cycles / 3,
    ))
    .unwrap();
    let r = cpu.run(1_000_000, &mut NullProbe);
    assert_eq!(r.output, g.output);
}

#[test]
fn injection_rejects_out_of_range_entries() {
    let cfg = CpuConfig::default();
    let mut cpu = Cpu::new(sample_program(), cfg.clone()).unwrap();
    assert!(cpu
        .inject_fault(FaultSpec::new(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            0,
            0
        ))
        .is_err());
    assert!(cpu
        .inject_fault(FaultSpec::new(Structure::StoreQueue, cfg.sq_entries, 0, 0))
        .is_err());
    assert!(cpu
        .inject_fault(FaultSpec::new(
            Structure::L1DCache,
            cfg.l1d.total_words(),
            0,
            0
        ))
        .is_err());
}

#[test]
fn probe_reads_only_come_from_committed_micro_ops() {
    // Build a program with a heavily mispredicted data-dependent branch so
    // that wrong-path micro-ops execute; then check that no committed read is
    // attributed to the instruction that only executes on the wrong path.
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(
        &(0..64)
            .map(|i| (i * 2654435761u64) >> 3)
            .collect::<Vec<u64>>(),
    );
    b.movi(reg(1), data as i64);
    b.movi(reg(2), 0);
    b.movi(reg(3), 0);
    b.movi(reg(7), 0);
    let top = b.label();
    let skip = b.label();
    b.bind(top);
    b.load(reg(4), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_ri(AluOp::And, reg(5), reg(4), 1);
    // Pseudo-random direction — the predictor will mispredict often.
    b.branch_ri(Cond::Eq, reg(5), 0, skip);
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(4)); // taken-path work
    b.bind(skip);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 64, top);
    b.out(reg(3));
    b.halt();
    let program = b.build().unwrap();

    let mut probe = RecordingProbe::default();
    let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
    let result = cpu.run(1_000_000, &mut probe);
    assert!(result.exit.is_halted());

    // Committed reads must reference RIPs inside the program (or the
    // writeback pseudo-RIP) and cycles no later than the end of the run.
    for (_, info) in &probe.reads {
        assert!(
            (info.rip as usize) < program.len() || info.rip == merlin_cpu::WRITEBACK_RIP,
            "read attributed to out-of-program rip {}",
            info.rip
        );
        assert!(info.cycle <= result.cycles);
    }
    // Register-file reads and writes were both observed, and the loads left
    // L1D read events (this program has no stores, so no SQ events).
    assert!(probe
        .reads
        .iter()
        .any(|(s, _)| *s == Structure::RegisterFile));
    assert!(probe
        .writes
        .iter()
        .any(|(s, _, _)| *s == Structure::RegisterFile));
    assert!(probe.reads.iter().any(|(s, _)| *s == Structure::L1DCache));
    assert!(probe
        .writes
        .iter()
        .any(|(s, _, _)| *s == Structure::L1DCache));
}

#[test]
fn committed_read_dynamic_instances_are_monotonic_per_rip() {
    struct MonotonicCheck {
        last: std::collections::HashMap<(u32, u8), u64>,
        violations: usize,
    }
    impl Probe for MonotonicCheck {
        fn committed_read(&mut self, _s: Structure, info: &ReadInfo) {
            if info.rip == merlin_cpu::WRITEBACK_RIP {
                return;
            }
            let key = (info.rip, info.upc);
            if let Some(prev) = self.last.get(&key) {
                if info.dyn_instance < *prev {
                    self.violations += 1;
                }
            }
            self.last.insert(key, info.dyn_instance);
        }
    }
    let mut probe = MonotonicCheck {
        last: Default::default(),
        violations: 0,
    };
    let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
    let r = cpu.run(1_000_000, &mut probe);
    assert!(r.exit.is_halted());
    assert_eq!(
        probe.violations, 0,
        "dynamic instance indices must not decrease per static micro-op"
    );
}

#[test]
fn register_file_writes_precede_reads_of_live_values() {
    // For every committed read of a register-file entry there must be a write
    // to that entry at an earlier-or-equal cycle (the initial architectural
    // state counts as written at cycle 0, which only applies to entries
    // 0..NUM_ARCH_REGS).
    let mut probe = RecordingProbe::default();
    let mut cpu = Cpu::new(sample_program(), CpuConfig::default()).unwrap();
    let r = cpu.run(1_000_000, &mut probe);
    assert!(r.exit.is_halted());
    use std::collections::HashMap;
    let mut writes_by_entry: HashMap<usize, Vec<u64>> = HashMap::new();
    for (s, entry, cycle) in &probe.writes {
        if *s == Structure::RegisterFile {
            writes_by_entry.entry(*entry).or_default().push(*cycle);
        }
    }
    for (s, info) in &probe.reads {
        if *s != Structure::RegisterFile {
            continue;
        }
        if info.entry < merlin_isa::NUM_ARCH_REGS {
            continue; // may legitimately read initial architectural zeros
        }
        let wrote_before = writes_by_entry
            .get(&info.entry)
            .map(|ws| ws.iter().any(|w| *w <= info.cycle))
            .unwrap_or(false);
        assert!(
            wrote_before,
            "entry {} read at cycle {} without a preceding write",
            info.entry, info.cycle
        );
    }
}

#[test]
fn timeout_fault_possible_on_loop_counter() {
    // Flipping a high bit of the loop induction variable while the loop is
    // running can make the loop far longer; with a tight cycle budget this
    // shows up as a timeout (the paper's Timeout class).
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 0);
    b.movi(reg(2), 0);
    let top = b.bind_label();
    b.alu_ri(AluOp::Add, reg(1), reg(1), 3);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 2000, top);
    b.out(reg(1));
    b.halt();
    let program = b.build().unwrap();
    // A small register file keeps the sweep over physical entries cheap.
    let cfg = CpuConfig::default().with_phys_regs(24);
    let mut cpu = Cpu::new(program.clone(), cfg.clone()).unwrap();
    let g = cpu.run(1_000_000, &mut NullProbe);
    assert!(g.exit.is_halted());

    // Flipping the sign bit of the physical register holding the loop
    // counter makes it hugely negative, so the loop runs far past the 3×
    // golden-cycle budget.  Sweep entries and injection times until one run
    // times out.
    let mut timed_out = false;
    'outer: for entry in 0..cfg.phys_int_regs {
        for frac in [4u64, 3, 2] {
            let mut cpu = Cpu::new(program.clone(), cfg.clone()).unwrap();
            cpu.inject_fault(FaultSpec::new(
                Structure::RegisterFile,
                entry,
                63,
                g.cycles / frac,
            ))
            .unwrap();
            let r = cpu.run(3 * g.cycles, &mut NullProbe);
            if r.exit == merlin_cpu::ExitReason::Timeout {
                timed_out = true;
                break 'outer;
            }
        }
    }
    assert!(timed_out, "no injected fault produced a timeout");
}
