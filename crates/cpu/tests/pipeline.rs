//! Integration tests of the out-of-order pipeline: architectural correctness
//! against the reference interpreter, control flow, memory ordering,
//! exceptions, crashes and determinism.

use merlin_cpu::{interpret, Cpu, CpuConfig, ExitReason, NullProbe};
use merlin_isa::{reg, AluOp, Cond, MemRef, MemSize, Program, ProgramBuilder};

fn run_both(program: Program) -> (merlin_cpu::InterpResult, merlin_cpu::RunResult) {
    let golden = interpret(&program, 10_000_000);
    let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
    let result = cpu.run(10_000_000, &mut NullProbe);
    (golden, result)
}

fn assert_matches_interpreter(program: Program) {
    let (golden, result) = run_both(program);
    assert!(
        result.exit.is_halted(),
        "pipeline did not halt: {:?}",
        result.exit
    );
    assert_eq!(result.output, golden.output, "output mismatch");
    assert_eq!(
        result.arithmetic_exceptions, golden.arithmetic_exceptions,
        "arithmetic exception mismatch"
    );
    assert_eq!(
        result.misaligned_exceptions, golden.misaligned_exceptions,
        "misalignment exception mismatch"
    );
    assert_eq!(
        result.committed_instructions, golden.instructions,
        "committed instruction count mismatch"
    );
}

#[test]
fn straight_line_arithmetic() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 1000);
    b.movi(reg(2), 37);
    b.alu_rr(AluOp::Add, reg(3), reg(1), reg(2));
    b.alu_rr(AluOp::Mul, reg(4), reg(3), reg(2));
    b.alu_ri(AluOp::Xor, reg(5), reg(4), 0x5555);
    b.alu_ri(AluOp::Shl, reg(6), reg(5), 3);
    b.alu_rr(AluOp::Sub, reg(7), reg(6), reg(1));
    b.alu_rr(AluOp::Div, reg(8), reg(7), reg(2));
    b.alu_rr(AluOp::Rem, reg(9), reg(7), reg(2));
    for r in 3..=9 {
        b.out(reg(r));
    }
    b.halt();
    assert_matches_interpreter(b.build().unwrap());
}

#[test]
fn dependent_chain_through_same_register() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 1);
    for i in 0..50 {
        b.alu_ri(AluOp::Add, reg(1), reg(1), i);
        b.alu_ri(AluOp::Xor, reg(1), reg(1), 0b1010);
    }
    b.out(reg(1));
    b.halt();
    assert_matches_interpreter(b.build().unwrap());
}

#[test]
fn nested_loops_with_data_dependent_branches() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 0); // acc
    b.movi(reg(2), 0); // i
    let outer = b.bind_label();
    b.movi(reg(3), 0); // j
    let inner = b.bind_label();
    b.alu_rr(AluOp::Mul, reg(4), reg(2), reg(3));
    b.alu_rr(AluOp::Add, reg(1), reg(1), reg(4));
    // Data-dependent branch: skip odd accumulations.
    b.alu_ri(AluOp::And, reg(5), reg(1), 1);
    let skip = b.label();
    b.branch_ri(Cond::Eq, reg(5), 0, skip);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 13);
    b.bind(skip);
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), 17, inner);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 13, outer);
    b.out(reg(1));
    b.halt();
    assert_matches_interpreter(b.build().unwrap());
}

#[test]
fn memory_store_load_roundtrip_all_widths() {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(256);
    b.movi(reg(1), buf as i64);
    b.movi(reg(2), 0x1122_3344_5566_7788);
    for (i, size) in [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8]
        .iter()
        .enumerate()
    {
        b.store_sized(reg(2), MemRef::base(reg(1)).disp(16 * i as i64), *size);
        b.load_sized(
            reg(3),
            MemRef::base(reg(1)).disp(16 * i as i64),
            *size,
            false,
        );
        b.out(reg(3));
        b.load_sized(
            reg(4),
            MemRef::base(reg(1)).disp(16 * i as i64),
            *size,
            true,
        );
        b.out(reg(4));
    }
    b.halt();
    assert_matches_interpreter(b.build().unwrap());
}

#[test]
fn store_to_load_forwarding_and_memory_ordering() {
    let mut b = ProgramBuilder::new();
    let buf = b.alloc_words(&[5, 6, 7, 8]);
    b.movi(reg(1), buf as i64);
    b.movi(reg(2), 0);
    b.movi(reg(6), 0);
    let top = b.bind_label();
    // Read, modify, write, then immediately re-read the same location: the
    // load must see the just-stored value (forwarded or drained).
    b.load(reg(3), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Mul, reg(3), reg(3), 3);
    b.store(reg(3), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.load(reg(4), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(4));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 4, top);
    b.out(reg(6));
    b.halt();
    assert_matches_interpreter(b.build().unwrap());
}

#[test]
fn load_op_and_indexed_addressing() {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(&[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]);
    b.movi(reg(1), data as i64);
    b.movi(reg(2), 0);
    b.movi(reg(3), 0);
    let top = b.bind_label();
    b.load_op(AluOp::Add, reg(3), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 11, top);
    b.out(reg(3));
    b.halt();
    let (golden, result) = run_both(b.build().unwrap());
    assert_eq!(golden.output, vec![44]);
    assert_eq!(result.output, vec![44]);
}

#[test]
fn call_and_return_through_link_register() {
    let mut b = ProgramBuilder::new();
    let func = b.label();
    b.movi(reg(1), 20);
    b.call(func, ProgramBuilder::link_reg());
    b.out(reg(2));
    b.movi(reg(1), 30);
    b.call(func, ProgramBuilder::link_reg());
    b.out(reg(2));
    b.halt();
    b.bind(func);
    // r2 = r1 * r1 + 1
    b.alu_rr(AluOp::Mul, reg(2), reg(1), reg(1));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.ret(ProgramBuilder::link_reg());
    let (golden, result) = run_both(b.build().unwrap());
    assert_eq!(golden.output, vec![401, 901]);
    assert_eq!(result.output, vec![401, 901]);
    assert!(result.exit.is_halted());
}

#[test]
fn division_by_zero_is_a_recoverable_exception() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 100);
    b.movi(reg(2), 0);
    b.alu_rr(AluOp::Div, reg(3), reg(1), reg(2));
    b.alu_rr(AluOp::Rem, reg(4), reg(1), reg(2));
    b.out(reg(3));
    b.out(reg(4));
    b.halt();
    let (golden, result) = run_both(b.build().unwrap());
    assert!(result.exit.is_halted());
    assert_eq!(result.output, golden.output);
    assert_eq!(result.arithmetic_exceptions, 2);
}

#[test]
fn misaligned_access_is_counted_but_completes() {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(64);
    b.movi(reg(1), buf as i64 + 1); // deliberately unaligned
    b.movi(reg(2), 0xABCD);
    b.store(reg(2), MemRef::base(reg(1)));
    b.load(reg(3), MemRef::base(reg(1)));
    b.out(reg(3));
    b.halt();
    let (golden, result) = run_both(b.build().unwrap());
    assert!(result.exit.is_halted());
    assert_eq!(result.output, vec![0xABCD]);
    assert_eq!(result.misaligned_exceptions, golden.misaligned_exceptions);
    assert!(result.misaligned_exceptions >= 2);
}

#[test]
fn out_of_bounds_load_crashes() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 0x7000_0000);
    b.load(reg(2), MemRef::base(reg(1)));
    b.out(reg(2));
    b.halt();
    let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
    let result = cpu.run(100_000, &mut NullProbe);
    assert!(
        matches!(result.exit, ExitReason::Crash(_)),
        "{:?}",
        result.exit
    );
    assert!(result.output.is_empty());
}

#[test]
fn store_to_code_region_asserts() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 0x10); // inside the code region
    b.movi(reg(2), 1);
    b.store(reg(2), MemRef::base(reg(1)));
    b.halt();
    let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
    let result = cpu.run(100_000, &mut NullProbe);
    assert!(
        matches!(result.exit, ExitReason::Assert(_)),
        "{:?}",
        result.exit
    );
}

#[test]
fn jump_to_invalid_target_crashes() {
    let mut b = ProgramBuilder::new();
    b.movi(reg(1), 1_000_000);
    b.jump_reg(reg(1));
    b.halt();
    let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
    let result = cpu.run(100_000, &mut NullProbe);
    assert!(
        matches!(result.exit, ExitReason::Crash(_)),
        "{:?}",
        result.exit
    );
}

#[test]
fn infinite_loop_times_out() {
    let mut b = ProgramBuilder::new();
    let top = b.bind_label();
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.jump(top);
    b.halt();
    let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
    let result = cpu.run(5_000, &mut NullProbe);
    assert_eq!(result.exit, ExitReason::Timeout);
    assert_eq!(result.cycles, 5_000);
}

#[test]
fn runs_are_deterministic() {
    let mut outputs = Vec::new();
    for _ in 0..2 {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&(0..64).map(|i| i * i + 7).collect::<Vec<u64>>());
        b.movi(reg(1), data as i64);
        b.movi(reg(2), 0);
        b.movi(reg(3), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Xor, reg(3), MemRef::base(reg(1)).indexed(reg(2), 8));
        b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
        b.branch_ri(Cond::Lt, reg(2), 64, top);
        b.out(reg(3));
        b.halt();
        let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
        let r = cpu.run(1_000_000, &mut NullProbe);
        outputs.push((r.output.clone(), r.cycles, r.committed_instructions));
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn small_structures_still_execute_correctly() {
    // Shrink every window resource to force stalls and replay paths.
    let cfg = CpuConfig::default()
        .with_phys_regs(24)
        .with_store_queue(2)
        .with_l1d_kb(1);
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(512);
    b.movi(reg(1), buf as i64);
    b.movi(reg(2), 0);
    let top = b.bind_label();
    b.alu_rr(AluOp::Mul, reg(3), reg(2), reg(2));
    b.store(reg(3), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 64, top);
    // Sum them back.
    b.movi(reg(2), 0);
    b.movi(reg(4), 0);
    let top2 = b.bind_label();
    b.load_op(AluOp::Add, reg(4), MemRef::base(reg(1)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 64, top2);
    b.out(reg(4));
    b.halt();
    let program = b.build().unwrap();
    let golden = interpret(&program, 1_000_000);
    let mut cpu = Cpu::new(program, cfg).unwrap();
    let result = cpu.run(1_000_000, &mut NullProbe);
    assert!(result.exit.is_halted(), "{:?}", result.exit);
    assert_eq!(result.output, golden.output);
    // sum of squares 0..63
    assert_eq!(result.output, vec![(0..64u64).map(|i| i * i).sum()]);
}

#[test]
fn ipc_is_plausible_for_an_out_of_order_core() {
    // Independent operations should achieve an IPC above 1 on a 4-wide core.
    let mut b = ProgramBuilder::new();
    for _ in 0..200 {
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.alu_ri(AluOp::Add, reg(2), reg(2), 2);
        b.alu_ri(AluOp::Add, reg(3), reg(3), 3);
        b.alu_ri(AluOp::Add, reg(4), reg(4), 4);
    }
    b.out(reg(1));
    b.halt();
    let mut cpu = Cpu::new(b.build().unwrap(), CpuConfig::default()).unwrap();
    let result = cpu.run(1_000_000, &mut NullProbe);
    assert!(result.exit.is_halted());
    let ipc = result.committed_instructions as f64 / result.cycles as f64;
    assert!(ipc > 1.0, "ipc {ipc} unexpectedly low");
    assert!(ipc <= 4.0, "ipc {ipc} exceeds commit width");
}
