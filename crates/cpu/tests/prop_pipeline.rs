//! Property-based validation: the cycle-level out-of-order core must be
//! architecturally equivalent to the reference interpreter on randomly
//! generated programs (same outputs, same exception counts, same committed
//! instruction count).

use merlin_cpu::{interpret, Cpu, CpuConfig, InterpExit, NullProbe};
use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};
use proptest::prelude::*;

/// A step of a random (but always-terminating) test program.
#[derive(Debug, Clone)]
enum Step {
    Alu(AluOp, usize, usize, usize),
    AluImm(AluOp, usize, usize, i64),
    Mov(usize, i64),
    Store(usize, usize, i64),
    Load(usize, usize, i64),
    LoadOp(AluOp, usize, usize, i64),
    Out(usize),
    /// A short counted inner loop accumulating into a register.
    Loop(usize, u8),
    /// A data-dependent conditional skip over one ALU instruction.
    CondSkip(Cond, usize, i64),
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Xor,
        AluOp::And,
        AluOp::Or,
        AluOp::Mul,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Min,
        AluOp::Max,
        AluOp::Div,
        AluOp::Rem,
    ])
}

// Registers r1..r9 are general scratch; r10 holds the data buffer base and is
// never clobbered.
fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (arb_alu(), 1usize..10, 1usize..10, 1usize..10)
            .prop_map(|(op, a, b, c)| Step::Alu(op, a, b, c)),
        (arb_alu(), 1usize..10, 1usize..10, -64i64..64)
            .prop_map(|(op, a, b, i)| Step::AluImm(op, a, b, i)),
        (1usize..10, -1000i64..1000).prop_map(|(r, v)| Step::Mov(r, v)),
        (1usize..10, 1usize..10, 0i64..32).prop_map(|(r, _b, o)| Step::Store(r, 10, o * 8)),
        (1usize..10, 1usize..10, 0i64..32).prop_map(|(r, _b, o)| Step::Load(r, 10, o * 8)),
        (arb_alu(), 1usize..10, 0i64..32).prop_map(|(op, r, o)| Step::LoadOp(op, r, 10, o * 8)),
        (1usize..10).prop_map(Step::Out),
        (1usize..10, 2u8..12).prop_map(|(r, n)| Step::Loop(r, n)),
        (
            prop::sample::select(Cond::all().to_vec()),
            1usize..10,
            -8i64..8
        )
            .prop_map(|(c, r, i)| Step::CondSkip(c, r, i)),
    ]
}

fn build_program(steps: &[Step]) -> merlin_isa::Program {
    let mut b = ProgramBuilder::new();
    let buf = b.reserve(64 * 8);
    b.movi(reg(10), buf as i64);
    // Give the scratch registers distinct, deterministic initial values.
    for r in 1..10 {
        b.movi(reg(r), (r as i64) * 17 + 1);
    }
    for step in steps {
        match step {
            Step::Alu(op, a, s1, s2) => {
                b.alu_rr(*op, reg(*a), reg(*s1), reg(*s2));
            }
            Step::AluImm(op, a, s1, imm) => {
                b.alu_ri(*op, reg(*a), reg(*s1), *imm);
            }
            Step::Mov(r, v) => {
                b.movi(reg(*r), *v);
            }
            Step::Store(r, base, off) => {
                b.store(reg(*r), MemRef::base(reg(*base)).disp(*off));
            }
            Step::Load(r, base, off) => {
                b.load(reg(*r), MemRef::base(reg(*base)).disp(*off));
            }
            Step::LoadOp(op, r, base, off) => {
                b.load_op(*op, reg(*r), MemRef::base(reg(*base)).disp(*off));
            }
            Step::Out(r) => {
                b.out(reg(*r));
            }
            Step::Loop(r, n) => {
                // r_tmp (r11) counts down from n; the body accumulates.
                b.movi(reg(11), *n as i64);
                let top = b.bind_label();
                b.alu_rr(AluOp::Add, reg(*r), reg(*r), reg(11));
                b.alu_ri(AluOp::Sub, reg(11), reg(11), 1);
                b.branch_ri(Cond::Gt, reg(11), 0, top);
            }
            Step::CondSkip(c, r, imm) => {
                let skip = b.label();
                b.branch_ri(*c, reg(*r), *imm, skip);
                b.alu_ri(AluOp::Xor, reg(*r), reg(*r), 0x3C3C);
                b.bind(skip);
            }
        }
    }
    for r in 1..10 {
        b.out(reg(r));
    }
    b.halt();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The out-of-order core is architecturally equivalent to the reference
    /// interpreter on arbitrary generated programs.
    #[test]
    fn pipeline_matches_interpreter(steps in prop::collection::vec(arb_step(), 1..40)) {
        let program = build_program(&steps);
        let golden = interpret(&program, 1_000_000);
        prop_assert_eq!(&golden.exit, &InterpExit::Halted);
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let result = cpu.run(2_000_000, &mut NullProbe);
        prop_assert!(result.exit.is_halted(), "exit: {:?}", result.exit);
        prop_assert_eq!(result.output, golden.output);
        prop_assert_eq!(result.arithmetic_exceptions, golden.arithmetic_exceptions);
        prop_assert_eq!(result.misaligned_exceptions, golden.misaligned_exceptions);
        prop_assert_eq!(result.committed_instructions, golden.instructions);
    }

    /// Equivalence also holds with small microarchitectural structures
    /// (maximum structural stalls and squash pressure).
    #[test]
    fn pipeline_matches_interpreter_with_tiny_structures(
        steps in prop::collection::vec(arb_step(), 1..25)
    ) {
        let program = build_program(&steps);
        let golden = interpret(&program, 1_000_000);
        let cfg = CpuConfig::default()
            .with_phys_regs(22)
            .with_store_queue(2)
            .with_l1d_kb(1);
        let mut cpu = Cpu::new(program, cfg).unwrap();
        let result = cpu.run(4_000_000, &mut NullProbe);
        prop_assert!(result.exit.is_halted(), "exit: {:?}", result.exit);
        prop_assert_eq!(result.output, golden.output);
        prop_assert_eq!(result.committed_instructions, golden.instructions);
    }

    /// A single injected register-file fault can never corrupt the machine's
    /// control integrity silently: the run either completes (halted, possibly
    /// with different output), times out, crashes or asserts — it never hangs
    /// the simulator loop itself.
    #[test]
    fn faulted_runs_always_terminate(
        steps in prop::collection::vec(arb_step(), 1..20),
        entry in 0usize..64,
        bit in 0u8..64,
        cycle_frac in 1u64..20,
    ) {
        let program = build_program(&steps);
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let golden = cpu.run(2_000_000, &mut NullProbe);
        prop_assert!(golden.exit.is_halted());
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let cycle = (golden.cycles * cycle_frac / 20).max(1);
        cpu.inject_fault(merlin_cpu::FaultSpec::new(
            merlin_cpu::Structure::RegisterFile, entry, bit, cycle)).unwrap();
        let r = cpu.run(golden.cycles * 3 + 1000, &mut NullProbe);
        // Any of the four outcomes is fine; the call itself must return.
        let _ = r.exit;
    }
}
