//! Core and cache configuration, mirroring Table 1 of the paper.

use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use serde::{Deserialize, Serialize};

/// Configuration of one set-associative cache level.
///
/// # Examples
///
/// ```
/// use merlin_cpu::CacheConfig;
/// let l1d = CacheConfig::l1d_kb(32);
/// assert_eq!(l1d.sets(), 128);
/// assert_eq!(l1d.words_per_line(), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// The three L1 data cache sizes evaluated in the paper (16/32/64 KB,
    /// 64-byte lines, 4-way, write-back).
    ///
    /// # Panics
    ///
    /// Panics if `kb` is not a power of two ≥ 1.
    pub fn l1d_kb(kb: u64) -> Self {
        assert!(kb.is_power_of_two(), "L1D size must be a power of two KB");
        CacheConfig {
            size_bytes: kb * 1024,
            line_bytes: 64,
            ways: 4,
            hit_latency: 3,
        }
    }

    /// The paper's 1 MB, 16-way L2.
    pub fn l2_1mb() -> Self {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            hit_latency: 12,
        }
    }

    /// The paper's 32 KB, 4-way L1 instruction cache (kept for configuration
    /// completeness; instruction fetch is modelled as ideal).
    pub fn l1i_32kb() -> Self {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 4,
            hit_latency: 1,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / (self.line_bytes * self.ways as u64)) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }

    /// Number of 8-byte words per line.
    pub fn words_per_line(&self) -> usize {
        (self.line_bytes / 8) as usize
    }

    /// Total number of 8-byte words in the data array (the entry count used
    /// by fault injection and interval tracking for the L1D).
    pub fn total_words(&self) -> usize {
        self.lines() * self.words_per_line()
    }

    /// Total data-array bits.
    pub fn total_bits(&self) -> u64 {
        self.size_bytes * 8
    }
}

impl BinCode for CacheConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.size_bytes.encode(out);
        self.line_bytes.encode(out);
        self.ways.encode(out);
        self.hit_latency.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CacheConfig {
            size_bytes: BinCode::decode(r)?,
            line_bytes: BinCode::decode(r)?,
            ways: BinCode::decode(r)?,
            hit_latency: BinCode::decode(r)?,
        })
    }
}

/// Full configuration of the modelled out-of-order core (Table 1).
///
/// The default configuration is the paper's baseline with the largest
/// structure sizes (256 physical integer registers, 64+64 LSQ entries,
/// 64 KB L1D); the `with_*` helpers select the alternative sizes evaluated
/// in the paper.
///
/// # Examples
///
/// ```
/// use merlin_cpu::CpuConfig;
/// let cfg = CpuConfig::default()
///     .with_phys_regs(128)
///     .with_store_queue(16)
///     .with_l1d_kb(32);
/// assert_eq!(cfg.phys_int_regs, 128);
/// assert_eq!(cfg.sq_entries, 16);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Physical integer register file size (paper: 256 / 128 / 64).
    pub phys_int_regs: usize,
    /// Re-order buffer entries (micro-ops).
    pub rob_entries: usize,
    /// Issue queue entries.
    pub iq_entries: usize,
    /// Load queue entries (paper: 64 / 32 / 16).
    pub lq_entries: usize,
    /// Store queue entries (paper: 64 / 32 / 16).
    pub sq_entries: usize,
    /// Macro-instruction fetch/decode width per cycle (in micro-ops after
    /// cracking).
    pub fetch_width: usize,
    /// Rename/dispatch width per cycle (micro-ops).
    pub rename_width: usize,
    /// Issue width per cycle (micro-ops).
    pub issue_width: usize,
    /// Commit width per cycle (micro-ops).
    pub commit_width: usize,
    /// Simple integer ALUs.
    pub int_alus: usize,
    /// Complex integer units (multiply/divide).
    pub complex_alus: usize,
    /// Load/store ports.
    pub mem_ports: usize,
    /// Branch resolution units.
    pub branch_units: usize,
    /// L1 instruction cache (not timed; kept for completeness).
    pub l1i: CacheConfig,
    /// L1 data cache configuration (fault-injection target).
    pub l1d: CacheConfig,
    /// Unified L2 configuration.
    pub l2: CacheConfig,
    /// Main-memory access latency in cycles.
    pub mem_latency: u64,
    /// Branch direction predictor table entries (2-bit counters).
    pub predictor_entries: usize,
    /// Branch target buffer entries (direct mapped).
    pub btb_entries: usize,
    /// Extra bytes of data memory beyond what the program image declares
    /// (heap/scratch head-room).
    pub extra_memory_bytes: u64,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            phys_int_regs: 256,
            rob_entries: 100,
            iq_entries: 32,
            lq_entries: 64,
            sq_entries: 64,
            fetch_width: 6,
            rename_width: 4,
            issue_width: 6,
            commit_width: 4,
            int_alus: 6,
            complex_alus: 2,
            mem_ports: 2,
            branch_units: 2,
            l1i: CacheConfig::l1i_32kb(),
            l1d: CacheConfig::l1d_kb(64),
            l2: CacheConfig::l2_1mb(),
            mem_latency: 60,
            predictor_entries: 4096,
            btb_entries: 4096,
            extra_memory_bytes: 64 * 1024,
        }
    }
}

impl BinCode for CpuConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.phys_int_regs.encode(out);
        self.rob_entries.encode(out);
        self.iq_entries.encode(out);
        self.lq_entries.encode(out);
        self.sq_entries.encode(out);
        self.fetch_width.encode(out);
        self.rename_width.encode(out);
        self.issue_width.encode(out);
        self.commit_width.encode(out);
        self.int_alus.encode(out);
        self.complex_alus.encode(out);
        self.mem_ports.encode(out);
        self.branch_units.encode(out);
        self.l1i.encode(out);
        self.l1d.encode(out);
        self.l2.encode(out);
        self.mem_latency.encode(out);
        self.predictor_entries.encode(out);
        self.btb_entries.encode(out);
        self.extra_memory_bytes.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CpuConfig {
            phys_int_regs: BinCode::decode(r)?,
            rob_entries: BinCode::decode(r)?,
            iq_entries: BinCode::decode(r)?,
            lq_entries: BinCode::decode(r)?,
            sq_entries: BinCode::decode(r)?,
            fetch_width: BinCode::decode(r)?,
            rename_width: BinCode::decode(r)?,
            issue_width: BinCode::decode(r)?,
            commit_width: BinCode::decode(r)?,
            int_alus: BinCode::decode(r)?,
            complex_alus: BinCode::decode(r)?,
            mem_ports: BinCode::decode(r)?,
            branch_units: BinCode::decode(r)?,
            l1i: BinCode::decode(r)?,
            l1d: BinCode::decode(r)?,
            l2: BinCode::decode(r)?,
            mem_latency: BinCode::decode(r)?,
            predictor_entries: BinCode::decode(r)?,
            btb_entries: BinCode::decode(r)?,
            extra_memory_bytes: BinCode::decode(r)?,
        })
    }
}

/// Errors returned by [`CpuConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The physical register file cannot hold the architectural state plus
    /// at least one rename.
    TooFewPhysRegs {
        /// Configured register count.
        have: usize,
        /// Minimum required.
        need: usize,
    },
    /// A structural parameter was zero.
    ZeroParameter(&'static str),
    /// Cache geometry is inconsistent (size not divisible by line × ways).
    BadCacheGeometry(&'static str),
    /// A pre-decoded micro-op table was built from a different program than
    /// the one the core is being constructed for (detected by instruction
    /// count or instruction-stream hash).
    DecodedProgramMismatch,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewPhysRegs { have, need } => {
                write!(f, "physical register file too small: {have} < {need}")
            }
            ConfigError::ZeroParameter(p) => write!(f, "configuration parameter {p} must be > 0"),
            ConfigError::BadCacheGeometry(c) => write!(f, "inconsistent cache geometry for {c}"),
            ConfigError::DecodedProgramMismatch => write!(
                f,
                "pre-decoded micro-op table was built from a different program"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl CpuConfig {
    /// Sets the physical integer register file size.
    pub fn with_phys_regs(mut self, n: usize) -> Self {
        self.phys_int_regs = n;
        self
    }

    /// Sets both load-queue and store-queue sizes (the paper always sizes
    /// them identically).
    pub fn with_store_queue(mut self, n: usize) -> Self {
        self.sq_entries = n;
        self.lq_entries = n;
        self
    }

    /// Sets the L1 data cache capacity in KB.
    pub fn with_l1d_kb(mut self, kb: u64) -> Self {
        self.l1d = CacheConfig::l1d_kb(kb);
        self
    }

    /// The SPEC-experiment configuration of the paper (§4.4.2.3): 128
    /// physical registers, 16+16 LSQ entries, 32 KB L1D.
    pub fn spec_experiment() -> Self {
        CpuConfig::default()
            .with_phys_regs(128)
            .with_store_queue(16)
            .with_l1d_kb(32)
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let need = merlin_isa::NUM_ARCH_REGS + 4;
        if self.phys_int_regs < need {
            return Err(ConfigError::TooFewPhysRegs {
                have: self.phys_int_regs,
                need,
            });
        }
        for (name, v) in [
            ("rob_entries", self.rob_entries),
            ("iq_entries", self.iq_entries),
            ("lq_entries", self.lq_entries),
            ("sq_entries", self.sq_entries),
            ("fetch_width", self.fetch_width),
            ("rename_width", self.rename_width),
            ("issue_width", self.issue_width),
            ("commit_width", self.commit_width),
            ("int_alus", self.int_alus),
            ("complex_alus", self.complex_alus),
            ("mem_ports", self.mem_ports),
            ("branch_units", self.branch_units),
            ("predictor_entries", self.predictor_entries),
            ("btb_entries", self.btb_entries),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroParameter(name));
            }
        }
        for (name, c) in [("l1i", &self.l1i), ("l1d", &self.l1d), ("l2", &self.l2)] {
            if c.size_bytes % (c.line_bytes * c.ways as u64) != 0
                || c.line_bytes % 8 != 0
                || c.ways == 0
            {
                return Err(ConfigError::BadCacheGeometry(name));
            }
        }
        Ok(())
    }

    /// Number of fault-injectable entries `structure` has under this
    /// configuration (the single source of the structure → entry-count
    /// mapping; the core, the session layer and fault-list generation all
    /// delegate here).
    pub fn structure_entries(&self, structure: crate::probe::Structure) -> usize {
        use crate::probe::Structure;
        match structure {
            Structure::RegisterFile => self.phys_int_regs,
            Structure::StoreQueue => self.sq_entries,
            Structure::L1DCache => self.l1d.total_words(),
        }
    }

    /// Number of fault-injectable bits in the physical integer register file.
    pub fn register_file_bits(&self) -> u64 {
        self.phys_int_regs as u64 * 64
    }

    /// Number of fault-injectable bits in the store-queue data field.
    pub fn store_queue_bits(&self) -> u64 {
        self.sq_entries as u64 * 64
    }

    /// Number of fault-injectable bits in the L1D data array.
    pub fn l1d_bits(&self) -> u64 {
        self.l1d.total_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CpuConfig::default();
        assert_eq!(c.phys_int_regs, 256);
        assert_eq!(c.rob_entries, 100);
        assert_eq!(c.iq_entries, 32);
        assert_eq!(c.int_alus, 6);
        assert_eq!(c.complex_alus, 2);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.ways, 16);
        assert_eq!(c.l1d.ways, 4);
        c.validate().unwrap();
    }

    #[test]
    fn l1d_geometries() {
        assert_eq!(CacheConfig::l1d_kb(16).sets(), 64);
        assert_eq!(CacheConfig::l1d_kb(32).sets(), 128);
        assert_eq!(CacheConfig::l1d_kb(64).sets(), 256);
        assert_eq!(CacheConfig::l1d_kb(64).total_words(), 64 * 1024 / 8);
    }

    #[test]
    fn spec_experiment_config() {
        let c = CpuConfig::spec_experiment();
        assert_eq!(c.phys_int_regs, 128);
        assert_eq!(c.sq_entries, 16);
        assert_eq!(c.lq_entries, 16);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        c.validate().unwrap();
    }

    #[test]
    fn too_few_registers_rejected() {
        let c = CpuConfig::default().with_phys_regs(8);
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TooFewPhysRegs { .. })
        ));
    }

    #[test]
    fn zero_parameter_rejected() {
        let c = CpuConfig {
            iq_entries: 0,
            ..CpuConfig::default()
        };
        assert!(matches!(c.validate(), Err(ConfigError::ZeroParameter(_))));
    }

    #[test]
    fn bit_counts() {
        let c = CpuConfig::default();
        assert_eq!(c.register_file_bits(), 256 * 64);
        assert_eq!(c.store_queue_bits(), 64 * 64);
        assert_eq!(c.l1d_bits(), 64 * 1024 * 8);
    }

    #[test]
    fn error_display_nonempty() {
        let e = ConfigError::ZeroParameter("iq_entries");
        assert!(!e.to_string().is_empty());
    }
}
