//! Architectural reference interpreter.
//!
//! Executes programs at macro-instruction granularity with no
//! microarchitecture at all: a flat register file, flat memory, sequential
//! control flow.  It is the golden model the cycle-level core is validated
//! against (same output stream, same exception counts) and a convenient tool
//! for workload authors to compute expected outputs.

use crate::memory::{MemError, Memory};
use merlin_isa::{branch_compare_immediate, Inst, Program, Rip, NUM_GPRS};
use serde::{Deserialize, Serialize};

/// How an architectural (reference) execution ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterpExit {
    /// The program executed `Halt`.
    Halted,
    /// The instruction limit was reached.
    InstructionLimit,
    /// A memory access faulted.
    MemoryFault(MemError),
    /// Control flow left the program text.
    InvalidPc(Rip),
}

/// Result of a reference execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterpResult {
    /// Why execution stopped.
    pub exit: InterpExit,
    /// Output stream produced by `Out` instructions.
    pub output: Vec<u64>,
    /// Macro-instructions executed.
    pub instructions: u64,
    /// Arithmetic exceptions (divide/remainder by zero).
    pub arithmetic_exceptions: u64,
    /// Misaligned data accesses.
    pub misaligned_exceptions: u64,
}

/// Executes `program` architecturally for at most `max_instructions`.
///
/// # Examples
///
/// ```
/// use merlin_cpu::interpret;
/// use merlin_isa::{reg, AluOp, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(reg(1), 6);
/// b.alu_ri(AluOp::Mul, reg(1), reg(1), 7);
/// b.out(reg(1));
/// b.halt();
/// let result = interpret(&b.build().unwrap(), 1000);
/// assert_eq!(result.output, vec![42]);
/// ```
pub fn interpret(program: &Program, max_instructions: u64) -> InterpResult {
    let mut regs = [0u64; NUM_GPRS];
    let mut mem = Memory::new(program.data_size + 64 * 1024);
    for seg in &program.data {
        mem.load_segment(seg.addr, &seg.bytes)
            .expect("program data segment must fit in memory");
    }
    let mut pc: Rip = program.entry;
    let mut output = Vec::new();
    let mut instructions = 0u64;
    let mut arithmetic_exceptions = 0u64;
    let mut misaligned_exceptions = 0u64;

    let exit = loop {
        if instructions >= max_instructions {
            break InterpExit::InstructionLimit;
        }
        let Some(&inst) = program.inst(pc) else {
            break InterpExit::InvalidPc(pc);
        };
        instructions += 1;
        let mut next = pc + 1;
        match inst {
            Inst::AluRR { op, rd, rs1, rs2 } => {
                let r = op.eval(regs[rs1.index()], regs[rs2.index()]);
                if r.arithmetic_exception {
                    arithmetic_exceptions += 1;
                }
                regs[rd.index()] = r.value;
            }
            Inst::AluRI { op, rd, rs1, imm } => {
                let r = op.eval(regs[rs1.index()], imm as u64);
                if r.arithmetic_exception {
                    arithmetic_exceptions += 1;
                }
                regs[rd.index()] = r.value;
            }
            Inst::MovImm { rd, imm } => regs[rd.index()] = imm as u64,
            Inst::Mov { rd, rs } => regs[rd.index()] = regs[rs.index()],
            Inst::Load {
                rd,
                mem: mref,
                size,
                signed,
            } => {
                let idx = mref.index.map(|r| regs[r.index()]).unwrap_or(0);
                let addr = mref.effective_address(regs[mref.base.index()], idx);
                if addr % size.bytes() != 0 {
                    misaligned_exceptions += 1;
                }
                match mem.read(addr, size) {
                    Ok(v) => {
                        regs[rd.index()] = if signed { size.sign_extend(v) } else { v };
                    }
                    Err(e) => break InterpExit::MemoryFault(e),
                }
            }
            Inst::Store {
                rs,
                mem: mref,
                size,
            } => {
                let idx = mref.index.map(|r| regs[r.index()]).unwrap_or(0);
                let addr = mref.effective_address(regs[mref.base.index()], idx);
                if addr % size.bytes() != 0 {
                    misaligned_exceptions += 1;
                }
                if let Err(e) = mem.write(addr, regs[rs.index()], size) {
                    break InterpExit::MemoryFault(e);
                }
            }
            Inst::LoadOp {
                op,
                rd,
                mem: mref,
                size,
            } => {
                let idx = mref.index.map(|r| regs[r.index()]).unwrap_or(0);
                let addr = mref.effective_address(regs[mref.base.index()], idx);
                if addr % size.bytes() != 0 {
                    misaligned_exceptions += 1;
                }
                match mem.read(addr, size) {
                    Ok(v) => {
                        let r = op.eval(regs[rd.index()], v);
                        if r.arithmetic_exception {
                            arithmetic_exceptions += 1;
                        }
                        regs[rd.index()] = r.value;
                    }
                    Err(e) => break InterpExit::MemoryFault(e),
                }
            }
            Inst::BranchRR {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(regs[rs1.index()], regs[rs2.index()]) {
                    next = target;
                }
            }
            Inst::BranchRI {
                cond, rs1, target, ..
            } => {
                let imm = branch_compare_immediate(&inst).expect("BranchRI has an immediate");
                if cond.eval(regs[rs1.index()], imm as u64) {
                    next = target;
                }
            }
            Inst::Jump { target } => next = target,
            Inst::JumpReg { rs } => {
                next = regs[rs.index()].min(u32::MAX as u64) as Rip;
            }
            Inst::Call { target, link } => {
                regs[link.index()] = pc as u64 + 1;
                next = target;
            }
            Inst::Out { rs } => output.push(regs[rs.index()]),
            Inst::Halt => break InterpExit::Halted,
            Inst::Nop => {}
        }
        pc = next;
    };

    InterpResult {
        exit,
        output,
        instructions,
        arithmetic_exceptions,
        misaligned_exceptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    #[test]
    fn loop_sum() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 0);
        b.movi(reg(2), 1);
        let top = b.bind_label();
        b.alu_rr(AluOp::Add, reg(1), reg(1), reg(2));
        b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
        b.branch_ri(Cond::Le, reg(2), 10, top);
        b.out(reg(1));
        b.halt();
        let r = interpret(&b.build().unwrap(), 10_000);
        assert_eq!(r.exit, InterpExit::Halted);
        assert_eq!(r.output, vec![55]);
    }

    #[test]
    fn memory_roundtrip_and_call() {
        let mut b = ProgramBuilder::new();
        let buf = b.alloc_words(&[7, 8, 9]);
        let func = b.label();
        b.movi(reg(1), buf as i64);
        b.call(func, ProgramBuilder::link_reg());
        b.out(reg(2));
        b.halt();
        b.bind(func);
        b.load(reg(2), MemRef::base(reg(1)).disp(8));
        b.ret(ProgramBuilder::link_reg());
        let r = interpret(&b.build().unwrap(), 10_000);
        assert_eq!(r.exit, InterpExit::Halted);
        assert_eq!(r.output, vec![8]);
    }

    #[test]
    fn division_by_zero_counts_exception() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 5);
        b.movi(reg(2), 0);
        b.alu_rr(AluOp::Div, reg(3), reg(1), reg(2));
        b.out(reg(3));
        b.halt();
        let r = interpret(&b.build().unwrap(), 100);
        assert_eq!(r.output, vec![0]);
        assert_eq!(r.arithmetic_exceptions, 1);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 0x4000_0000);
        b.load(reg(2), MemRef::base(reg(1)));
        b.halt();
        let r = interpret(&b.build().unwrap(), 100);
        assert!(matches!(r.exit, InterpExit::MemoryFault(_)));
    }

    #[test]
    fn instruction_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.jump(top);
        b.halt();
        let r = interpret(&b.build().unwrap(), 50);
        assert_eq!(r.exit, InterpExit::InstructionLimit);
        assert_eq!(r.instructions, 50);
    }
}
