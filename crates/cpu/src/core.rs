//! The out-of-order core: fetch/decode, rename/dispatch, issue/execute,
//! writeback, and commit, with branch misprediction squash, store-to-load
//! forwarding, precise exceptions and fault-injection hooks.
//!
//! The model is deliberately simple where timing fidelity does not matter to
//! MeRLiN (no MSHRs, instant store drain at commit) and faithful where it
//! does: data physically lives in the physical register file, the store-queue
//! data field and the L1D data array; wrong-path micro-ops execute and are
//! squashed; reads are attributed to the (RIP, uPC) of the reading micro-op
//! and reported only if that micro-op commits.

use crate::cache::MemSystem;
use crate::config::{ConfigError, CpuConfig};
use crate::cow::{CowBox, CowSeq, ForkBytes};
use crate::fault::FaultSpec;
use crate::lsq::{LoadQueue, StoreQueue};
use crate::memory::{MemError, Memory};
use crate::predictor::{BranchPredictor, Btb, PredictorDiff};
use crate::probe::{Probe, ReadInfo, Structure, WRITEBACK_RIP};
use crate::regfile::{FreeList, PhysReg, PhysRegFile, RenameTable};
use crate::touched::{fork_deque, restore_deque, Restorable, TouchedFlag, TouchedSet};
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{DecodedProgram, Inst, Program, Rip, Uop, UopKind, NUM_ARCH_REGS};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Reasons a run ends with a crash of the simulated program or system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashKind {
    /// A committed memory access fell outside the program's data region.
    MemoryOutOfBounds {
        /// Faulting address.
        addr: u64,
    },
    /// The committed control flow reached an instruction address outside the
    /// program text.
    InvalidFetchPc {
        /// Faulting instruction pointer.
        pc: Rip,
    },
}

/// Reasons the simulator itself refuses to continue (the paper's *Assert*
/// class: the simulator process stops on an internal assertion).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssertKind {
    /// A committed store targeted the read-only code region (self-modifying
    /// code is unsupported by the model).
    StoreToCode {
        /// Faulting address.
        addr: u64,
    },
    /// An internal invariant of the model was violated (captured panic).
    InternalInvariant(String),
}

/// How a simulation ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExitReason {
    /// The program committed its `Halt` instruction.
    Halted,
    /// The cycle limit was reached before the program halted.
    Timeout,
    /// The simulated program crashed.
    Crash(CrashKind),
    /// The simulator stopped on an internal assertion.
    Assert(AssertKind),
}

impl ExitReason {
    /// `true` when the program ran to completion.
    pub fn is_halted(&self) -> bool {
        matches!(self, ExitReason::Halted)
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitReason::Halted => write!(f, "halted"),
            ExitReason::Timeout => write!(f, "timeout"),
            ExitReason::Crash(CrashKind::MemoryOutOfBounds { addr }) => {
                write!(f, "crash: memory access out of bounds at {addr:#x}")
            }
            ExitReason::Crash(CrashKind::InvalidFetchPc { pc }) => {
                write!(f, "crash: invalid fetch pc {pc}")
            }
            ExitReason::Assert(AssertKind::StoreToCode { addr }) => {
                write!(f, "assert: store to code region at {addr:#x}")
            }
            ExitReason::Assert(AssertKind::InternalInvariant(msg)) => {
                write!(f, "assert: {msg}")
            }
        }
    }
}

/// Result of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunResult {
    /// Why the run ended.
    pub exit: ExitReason,
    /// The architected output stream (values emitted by `Out` instructions).
    pub output: Vec<u64>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Committed macro-instructions.
    pub committed_instructions: u64,
    /// Committed micro-ops.
    pub committed_uops: u64,
    /// Committed arithmetic exceptions (divide/remainder by zero).
    pub arithmetic_exceptions: u64,
    /// Committed misaligned-access exceptions.
    pub misaligned_exceptions: u64,
}

impl RunResult {
    /// Total architectural exceptions observed (the count compared against
    /// the golden run for DUE classification).
    pub fn exceptions(&self) -> u64 {
        self.arithmetic_exceptions + self.misaligned_exceptions
    }
}

/// Errors returned by [`Cpu::inject_fault`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InjectError {
    /// The fault's entry index is outside the target structure.
    EntryOutOfRange {
        /// Target structure.
        structure: Structure,
        /// Requested entry.
        entry: usize,
        /// Number of entries the structure has in this configuration.
        limit: usize,
    },
}

impl fmt::Display for InjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InjectError::EntryOutOfRange {
                structure,
                entry,
                limit,
            } => write!(
                f,
                "fault entry {entry} out of range for {structure} ({limit} entries)"
            ),
        }
    }
}

impl std::error::Error for InjectError {}

/// Exceptions recorded on a micro-op and handled precisely at commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exception {
    MemOutOfBounds { addr: u64 },
    StoreToCode { addr: u64 },
    DivByZero,
    Misaligned,
}

/// A micro-op waiting in the fetch buffer together with the next fetch PC the
/// front end assumed after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FetchedUop {
    uop: Uop,
    pred_next: Rip,
}

/// One re-order buffer entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RobEntry {
    seq: u64,
    uop: Uop,
    src_phys: [Option<PhysReg>; 3],
    dst_phys: Option<PhysReg>,
    prev_phys: Option<PhysReg>,
    in_iq: bool,
    complete_at: Option<u64>,
    completed: bool,
    pred_next: Rip,
    actual_next: Option<Rip>,
    result: Option<u64>,
    exception: Option<Exception>,
    lq_slot: Option<usize>,
    sq_slot: Option<usize>,
    reg_reads: Vec<(PhysReg, u64)>,
    sq_reads: Vec<(usize, u64)>,
    l1d_reads: Vec<(usize, u64)>,
}

/// The cycle-level out-of-order core.
///
/// # Examples
///
/// ```
/// use merlin_cpu::{Cpu, CpuConfig, NullProbe};
/// use merlin_isa::{reg, AluOp, Cond, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(reg(1), 0);
/// b.movi(reg(2), 1);
/// let top = b.bind_label();
/// b.alu_rr(AluOp::Add, reg(1), reg(1), reg(2));
/// b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
/// b.branch_ri(Cond::Le, reg(2), 100, top);
/// b.out(reg(1));
/// b.halt();
/// let program = b.build().unwrap();
///
/// let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
/// let result = cpu.run(1_000_000, &mut NullProbe);
/// assert!(result.exit.is_halted());
/// assert_eq!(result.output, vec![5050]);
/// ```
#[derive(Debug)]
pub struct Cpu {
    cfg: CpuConfig,
    program: Arc<Program>,
    /// Shared pre-decoded micro-op arena: every static instruction cracked
    /// exactly once, fetched from by copy (see [`merlin_isa::DecodedProgram`]).
    decoded: Arc<DecodedProgram>,
    cycle: u64,
    next_seq: u64,
    // Front end.
    fetch_pc: Rip,
    fetch_halted: bool,
    fetch_invalid: bool,
    fetch_buffer: CowSeq<FetchedUop>,
    /// Whole-structure mutation tag for the fetch buffer (queue-shaped, so
    /// no per-entry index survives the suffix; see [`TouchedFlag`]).
    fetch_buffer_touched: TouchedFlag,
    // Rename.
    rat: RenameTable,
    free_list: FreeList,
    prf: PhysRegFile,
    // Window.
    rob: CowSeq<RobEntry>,
    /// Whole-structure mutation tag for the ROB (queue-shaped, like the
    /// fetch buffer).
    rob_touched: TouchedFlag,
    iq_count: usize,
    lq: LoadQueue,
    sq: StoreQueue,
    pending_store_slot: Option<usize>,
    // Memory.
    mem: MemSystem,
    // Prediction.
    bp: BranchPredictor,
    btb: Btb,
    // Architectural results.
    output: CowBox<Vec<u64>>,
    committed_instructions: u64,
    committed_uops: u64,
    arithmetic_exceptions: u64,
    misaligned_exceptions: u64,
    dyn_counts: CowBox<HashMap<Rip, u64>>,
    path_history: VecDeque<(Rip, bool)>,
    path_sig: u64,
    // Faults pending application, sorted by cycle.
    faults: Vec<FaultSpec>,
    /// Cycle of the earliest pending fault (`u64::MAX` when none): the
    /// fault-free fast path of [`Cpu::step`] is one integer compare.
    next_fault_cycle: u64,
    finished: Option<ExitReason>,
    /// Identity of the snapshot this core was last restored from, while the
    /// core is known to have matched it exactly at that restore — the guard
    /// of the incremental same-snapshot restore path (see
    /// [`Cpu::restore_from`]).
    last_restored: Option<u64>,
    /// Set by [`Cpu::quarantine`] after the core's state became untrusted
    /// (typically a panic unwound through [`Cpu::step`]); cleared by the next
    /// [`Cpu::restore_from`], which is forced onto the full-rewrite path.
    quarantined: bool,
}

impl Cpu {
    /// Creates a core ready to run `program` under `cfg`.
    ///
    /// Accepts either an owned [`Program`] or an `Arc<Program>`; campaigns
    /// share one `Arc` across thousands of per-fault cores instead of cloning
    /// the program image for each one.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent.
    pub fn new(program: impl Into<Arc<Program>>, cfg: CpuConfig) -> Result<Self, ConfigError> {
        let program: Arc<Program> = program.into();
        let decoded = Arc::new(DecodedProgram::new(&program));
        Self::with_predecoded(program, decoded, cfg)
    }

    /// Creates a core sharing an already-built pre-decoded micro-op table.
    ///
    /// Campaigns decode the program exactly once ([`DecodedProgram::new`])
    /// and hand the same `Arc` to the golden run and every worker core;
    /// [`Cpu::new`] builds a private table for one-off cores.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the configuration is inconsistent or
    /// `decoded` was not built from `program`'s instruction stream (checked
    /// by count and content hash, so a table from a different program of
    /// equal length is rejected too).
    pub fn with_predecoded(
        program: impl Into<Arc<Program>>,
        decoded: Arc<DecodedProgram>,
        cfg: CpuConfig,
    ) -> Result<Self, ConfigError> {
        let program: Arc<Program> = program.into();
        if !decoded.matches_program(&program) {
            return Err(ConfigError::DecodedProgramMismatch);
        }
        cfg.validate()?;
        let mem_len = program.data_size + cfg.extra_memory_bytes;
        let mut memory = Memory::new(mem_len);
        for seg in &program.data {
            memory
                .load_segment(seg.addr, &seg.bytes)
                .expect("program data segment must fit in memory");
        }
        // Seal the loaded image as the pristine baseline: snapshots encode
        // memory as a delta against it, and any core built from the same
        // (program, config) pair — campaign workers included — shares a
        // byte-identical image to resolve those deltas against.
        memory.seal_pristine();
        let mem = MemSystem::new(cfg.l1d, cfg.l2, memory, cfg.mem_latency);
        let entry = program.entry;
        Ok(Cpu {
            fetch_pc: entry,
            fetch_halted: false,
            fetch_invalid: false,
            fetch_buffer: CowSeq::default(),
            fetch_buffer_touched: TouchedFlag::default(),
            rat: RenameTable::identity(),
            free_list: FreeList::new(NUM_ARCH_REGS, cfg.phys_int_regs),
            prf: PhysRegFile::new(cfg.phys_int_regs),
            rob: CowSeq::from_deque(VecDeque::with_capacity(cfg.rob_entries)),
            rob_touched: TouchedFlag::default(),
            iq_count: 0,
            lq: LoadQueue::new(cfg.lq_entries),
            sq: StoreQueue::new(cfg.sq_entries),
            pending_store_slot: None,
            mem,
            bp: BranchPredictor::new(cfg.predictor_entries),
            btb: Btb::new(cfg.btb_entries),
            output: CowBox::default(),
            committed_instructions: 0,
            committed_uops: 0,
            arithmetic_exceptions: 0,
            misaligned_exceptions: 0,
            dyn_counts: CowBox::default(),
            path_history: VecDeque::new(),
            path_sig: 0,
            faults: Vec::new(),
            next_fault_cycle: u64::MAX,
            finished: None,
            last_restored: None,
            quarantined: false,
            cycle: 0,
            next_seq: 0,
            program,
            decoded,
            cfg,
        })
    }

    /// The shared pre-decoded micro-op table this core fetches from.
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.decoded
    }

    /// The active configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The program this core executes.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `true` once the run has ended (halt, crash, assert).
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Why the run ended, if it has.
    pub fn exit_reason(&self) -> Option<&ExitReason> {
        self.finished.as_ref()
    }

    /// The architected output stream so far.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// Number of entries a fault may target in `structure` under this
    /// configuration.
    pub fn structure_entries(&self, structure: Structure) -> usize {
        self.cfg.structure_entries(structure)
    }

    /// Schedules a transient fault to be applied at the start of its cycle.
    ///
    /// # Errors
    ///
    /// Returns [`InjectError::EntryOutOfRange`] if the entry index does not
    /// exist in this configuration.
    pub fn inject_fault(&mut self, fault: FaultSpec) -> Result<(), InjectError> {
        let limit = self.structure_entries(fault.structure);
        if fault.entry >= limit {
            return Err(InjectError::EntryOutOfRange {
                structure: fault.structure,
                entry: fault.entry,
                limit,
            });
        }
        // Keep the pending list cycle-sorted (stable for equal cycles, so
        // same-cycle faults still apply in injection order): the per-cycle
        // check collapses to one compare against `next_fault_cycle` and
        // application walks a sorted prefix without allocating.
        let at = self.faults.partition_point(|f| f.cycle <= fault.cycle);
        self.faults.insert(at, fault);
        self.next_fault_cycle = self.faults[0].cycle;
        Ok(())
    }

    /// Runs until the program finishes or `max_cycles` is reached.
    pub fn run(&mut self, max_cycles: u64, probe: &mut dyn Probe) -> RunResult {
        while self.finished.is_none() && self.cycle < max_cycles {
            self.step(probe);
        }
        let exit = self.finished.clone().unwrap_or(ExitReason::Timeout);
        RunResult {
            exit,
            output: (*self.output).clone(),
            cycles: self.cycle,
            committed_instructions: self.committed_instructions,
            committed_uops: self.committed_uops,
            arithmetic_exceptions: self.arithmetic_exceptions,
            misaligned_exceptions: self.misaligned_exceptions,
        }
    }

    /// Simulates one cycle.
    pub fn step(&mut self, probe: &mut dyn Probe) {
        if self.finished.is_some() {
            return;
        }
        self.apply_faults();
        self.commit(probe);
        if self.finished.is_some() {
            self.cycle += 1;
            return;
        }
        self.writeback(probe);
        self.issue(probe);
        self.dispatch();
        self.fetch();
        self.cycle += 1;
    }

    // ----- fault application ---------------------------------------------

    fn apply_faults(&mut self) {
        // Fault-free cycles (nearly all of them) cost one compare: the
        // pending list is cycle-sorted and `next_fault_cycle` caches the
        // earliest cycle at which anything could fire.
        if self.cycle < self.next_fault_cycle {
            return;
        }
        let cycle = self.cycle;
        // Entries scheduled in the past never fire (unchanged semantics of
        // the old per-cycle equality scan); they stay pending but are
        // stepped over, and `next_fault_cycle` advances past them so the
        // fast path never scans again.
        let start = self.faults.partition_point(|f| f.cycle < cycle);
        let end = start + self.faults[start..].partition_point(|f| f.cycle == cycle);
        for i in start..end {
            let f = self.faults[i];
            match f.structure {
                Structure::RegisterFile => self.prf.flip_bit(f.entry, f.bit),
                Structure::StoreQueue => self.sq.flip_bit(f.entry, f.bit),
                Structure::L1DCache => {
                    let (set, way, word) = self.mem.l1d.entry_location(f.entry);
                    let byte_in_line = word * 8 + (f.bit / 8) as usize;
                    self.mem.l1d.flip_bit(set, way, byte_in_line, f.bit % 8);
                }
            }
        }
        self.faults.drain(start..end);
        self.next_fault_cycle = self.faults.get(start).map_or(u64::MAX, |f| f.cycle);
    }

    // ----- fetch -----------------------------------------------------------

    fn fetch(&mut self) {
        if self.fetch_halted || self.fetch_invalid {
            return;
        }
        let mut fetched = 0;
        while fetched < self.cfg.fetch_width && self.fetch_buffer.len() < self.cfg.fetch_width * 3 {
            if (self.fetch_pc as usize) >= self.program.len() {
                self.fetch_invalid = true;
                return;
            }
            let inst = self.program.instructions[self.fetch_pc as usize];
            let pc = self.fetch_pc;
            let next_pc = match inst {
                Inst::Jump { target } => target,
                Inst::Call { target, .. } => target,
                Inst::BranchRR { target, .. } | Inst::BranchRI { target, .. } => {
                    if self.bp.predict(pc) {
                        target
                    } else {
                        pc + 1
                    }
                }
                Inst::JumpReg { .. } => self.btb.predict(pc).unwrap_or(pc + 1),
                _ => pc + 1,
            };
            // Copy the instruction's micro-ops out of the shared pre-decoded
            // arena: no cracking, no allocation, on any fetch ever.
            self.fetch_buffer_touched.mark();
            for &uop in self.decoded.uops(pc) {
                self.fetch_buffer.make_mut().push_back(FetchedUop {
                    uop,
                    pred_next: next_pc,
                });
                fetched += 1;
            }
            self.fetch_pc = next_pc;
            if matches!(inst, Inst::Halt) {
                self.fetch_halted = true;
                return;
            }
        }
    }

    // ----- rename / dispatch ----------------------------------------------

    fn dispatch(&mut self) {
        let mut n = 0;
        while n < self.cfg.rename_width {
            let Some(front) = self.fetch_buffer.front() else {
                break;
            };
            let uop = front.uop;
            if self.rob.len() >= self.cfg.rob_entries
                || self.iq_count >= self.cfg.iq_entries
                || (uop.dst.is_some() && self.free_list.available() == 0)
                || (uop.kind.is_load() && self.lq.is_full())
                || (uop.kind == UopKind::StoreAddr && self.sq.is_full())
            {
                break;
            }
            self.fetch_buffer_touched.mark();
            let fetched = self
                .fetch_buffer
                .make_mut()
                .pop_front()
                .expect("checked front");
            let seq = self.next_seq;
            self.next_seq += 1;

            let mut src_phys = [None; 3];
            for (i, s) in fetched.uop.srcs.iter().enumerate() {
                if let Some(r) = s {
                    src_phys[i] = Some(self.rat.lookup(*r));
                }
            }
            let (dst_phys, prev_phys) = if let Some(d) = fetched.uop.dst {
                let p = self.free_list.allocate().expect("checked availability");
                self.prf.mark_pending(p);
                let prev = self.rat.remap(d, p);
                (Some(p), Some(prev))
            } else {
                (None, None)
            };
            let mut lq_slot = None;
            let mut sq_slot = None;
            match fetched.uop.kind {
                UopKind::Load => lq_slot = Some(self.lq.allocate(seq)),
                UopKind::StoreAddr => {
                    let slot = self.sq.allocate(seq, fetched.uop.rip);
                    self.sq.slot_mut(slot).size = fetched.uop.mem_size.expect("store has a size");
                    sq_slot = Some(slot);
                    self.pending_store_slot = Some(slot);
                }
                UopKind::StoreData => {
                    sq_slot = self.pending_store_slot.take();
                    debug_assert!(sq_slot.is_some(), "STD dispatched without its STA");
                }
                _ => {}
            }
            self.rob_touched.mark();
            self.rob.make_mut().push_back(RobEntry {
                seq,
                uop: fetched.uop,
                src_phys,
                dst_phys,
                prev_phys,
                in_iq: true,
                complete_at: None,
                completed: false,
                pred_next: fetched.pred_next,
                actual_next: None,
                result: None,
                exception: None,
                lq_slot,
                sq_slot,
                reg_reads: Vec::new(),
                sq_reads: Vec::new(),
                l1d_reads: Vec::new(),
            });
            self.iq_count += 1;
            n += 1;
        }
    }

    // ----- issue / execute -------------------------------------------------

    fn issue(&mut self, probe: &mut dyn Probe) {
        let mut issued = 0;
        let mut alu_used = 0;
        let mut complex_used = 0;
        let mut mem_used = 0;
        let mut branch_used = 0;
        let mut idx = 0;
        while idx < self.rob.len() && issued < self.cfg.issue_width {
            if !self.rob[idx].in_iq {
                idx += 1;
                continue;
            }
            let kind = self.rob[idx].uop.kind;
            let ready = self.rob[idx]
                .src_phys
                .iter()
                .flatten()
                .all(|&p| self.prf.is_ready(p));
            if !ready {
                idx += 1;
                continue;
            }
            let fu_ok = match kind {
                UopKind::Alu(op) if op.is_complex() => complex_used < self.cfg.complex_alus,
                UopKind::Alu(_) | UopKind::Out | UopKind::Nop | UopKind::Halt => {
                    alu_used < self.cfg.int_alus
                }
                UopKind::Load | UopKind::StoreAddr | UopKind::StoreData => {
                    mem_used < self.cfg.mem_ports
                }
                UopKind::Branch(_) | UopKind::Jump | UopKind::JumpReg | UopKind::Call => {
                    branch_used < self.cfg.branch_units
                }
            };
            if !fu_ok {
                idx += 1;
                continue;
            }
            if self.execute_uop(idx, probe) {
                self.rob.make_mut()[idx].in_iq = false;
                self.iq_count -= 1;
                issued += 1;
                match kind {
                    UopKind::Alu(op) if op.is_complex() => complex_used += 1,
                    UopKind::Alu(_) | UopKind::Out | UopKind::Nop | UopKind::Halt => alu_used += 1,
                    UopKind::Load | UopKind::StoreAddr | UopKind::StoreData => mem_used += 1,
                    _ => branch_used += 1,
                }
            }
            idx += 1;
        }
    }

    /// Attempts to execute the micro-op at ROB position `idx`.  Returns
    /// `false` if it cannot issue yet (load waiting on disambiguation or
    /// forwarding), `true` otherwise.
    fn execute_uop(&mut self, idx: usize, probe: &mut dyn Probe) -> bool {
        // Every arm below (and the issuer's `in_iq` clear on success) writes
        // the ROB entry in place; tag conservatively up front.
        self.rob_touched.mark();
        let cycle = self.cycle;
        let uop = self.rob[idx].uop;
        let seq = self.rob[idx].seq;
        let src_phys = self.rob[idx].src_phys;
        let mut vals = [0u64; 3];
        for (i, p) in src_phys.iter().enumerate() {
            if let Some(p) = p {
                vals[i] = self.prf.read(*p);
            }
        }
        // Any committed read of the register file is recorded here and
        // reported at commit; record lazily only when the uop really issues.
        let record_reg_reads = |entry: &mut RobEntry| {
            for p in src_phys.iter().flatten() {
                entry.reg_reads.push((*p, cycle));
            }
        };

        match uop.kind {
            UopKind::Alu(op) => {
                let b = if uop.cmp_with_imm {
                    uop.imm as u64
                } else {
                    vals[1]
                };
                let r = op.eval(vals[0], b);
                let exception = r.arithmetic_exception.then_some(Exception::DivByZero);
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.result = Some(r.value);
                entry.exception = exception;
                entry.complete_at = Some(cycle + op.latency());
                true
            }
            UopKind::Load => {
                if !self.sq.older_addresses_known(seq) {
                    return false;
                }
                let mem_ref = uop.mem.expect("load has a memory reference");
                let size = uop.mem_size.expect("load has a size");
                let index_val = if mem_ref.index.is_some() { vals[1] } else { 0 };
                let addr = mem_ref.effective_address(vals[0], index_val);
                let misaligned = !addr.is_multiple_of(size.bytes());
                // Store-to-load forwarding.
                if let Some((slot, covers)) = self.sq.forwarding_candidate(seq, addr, size.bytes())
                {
                    let (s_addr, s_data, s_ready) = {
                        let s = self.sq.slot(slot);
                        (
                            s.addr.expect("candidate has an address"),
                            s.data,
                            s.data_ready,
                        )
                    };
                    if !covers || !s_ready {
                        return false;
                    }
                    let shift = ((addr - s_addr) * 8) as u32;
                    let raw = (s_data >> shift) & size.mask();
                    let value = if uop.mem_signed {
                        size.sign_extend(raw)
                    } else {
                        raw
                    };
                    let entry = &mut self.rob.make_mut()[idx];
                    record_reg_reads(entry);
                    entry.sq_reads.push((slot, cycle));
                    entry.result = Some(value);
                    entry.exception = misaligned.then_some(Exception::Misaligned);
                    entry.complete_at = Some(cycle + self.cfg.l1d.hit_latency);
                    return true;
                }
                match self.mem.load(addr, size) {
                    Ok((raw, eff)) => {
                        let raw = raw & size.mask();
                        let value = if uop.mem_signed {
                            size.sign_extend(raw)
                        } else {
                            raw
                        };
                        // Physical side effects (refill writes, evictions,
                        // writebacks) are reported immediately; the data
                        // reads are commit-gated.
                        for w in &eff.word_writes {
                            probe.write(Structure::L1DCache, *w, cycle);
                        }
                        for w in &eff.writeback_reads {
                            probe.committed_read(
                                Structure::L1DCache,
                                &ReadInfo {
                                    entry: *w,
                                    cycle,
                                    rip: WRITEBACK_RIP,
                                    upc: 0,
                                    dyn_instance: 0,
                                    path_sig: 0,
                                },
                            );
                        }
                        for w in &eff.word_invalidates {
                            probe.invalidate(Structure::L1DCache, *w, cycle);
                        }
                        let latency = eff.latency;
                        let entry = &mut self.rob.make_mut()[idx];
                        record_reg_reads(entry);
                        for w in &eff.word_reads {
                            entry.l1d_reads.push((*w, cycle));
                        }
                        entry.result = Some(value);
                        entry.exception = misaligned.then_some(Exception::Misaligned);
                        entry.complete_at = Some(cycle + latency);
                        true
                    }
                    Err(e) => {
                        let exception = match e {
                            MemError::OutOfBounds { addr, .. } => {
                                Exception::MemOutOfBounds { addr }
                            }
                            MemError::StoreToCode { addr } => Exception::StoreToCode { addr },
                        };
                        let entry = &mut self.rob.make_mut()[idx];
                        record_reg_reads(entry);
                        entry.result = Some(0);
                        entry.exception = Some(exception);
                        entry.complete_at = Some(cycle + self.cfg.l1d.hit_latency);
                        true
                    }
                }
            }
            UopKind::StoreAddr => {
                let mem_ref = uop.mem.expect("store has a memory reference");
                let size = uop.mem_size.expect("store has a size");
                let index_val = if mem_ref.index.is_some() { vals[1] } else { 0 };
                let addr = mem_ref.effective_address(vals[0], index_val);
                let slot = self.rob[idx].sq_slot.expect("STA has a store-queue slot");
                self.sq.slot_mut(slot).addr = Some(addr);
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.exception =
                    (!addr.is_multiple_of(size.bytes())).then_some(Exception::Misaligned);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::StoreData => {
                let slot = self.rob[idx].sq_slot.expect("STD has a store-queue slot");
                {
                    let s = self.sq.slot_mut(slot);
                    s.data = vals[0];
                    s.data_ready = true;
                    s.upc_std = uop.upc;
                }
                // Depositing the data is a physical write of the SQ entry.
                probe.write(Structure::StoreQueue, slot, cycle);
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::Branch(cond) => {
                let b = if uop.cmp_with_imm {
                    uop.cmp_imm as u64
                } else {
                    vals[1]
                };
                let taken = cond.eval(vals[0], b);
                let next = if taken { uop.imm as Rip } else { uop.rip + 1 };
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.actual_next = Some(next);
                entry.result = None;
                // Branch outcome needed at commit for predictor training.
                entry.exception = None;
                entry.complete_at = Some(cycle + 1);
                // Stash the direction for commit-time training.
                entry.result = Some(taken as u64);
                true
            }
            UopKind::Jump => {
                let entry = &mut self.rob.make_mut()[idx];
                entry.actual_next = Some(uop.imm as Rip);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::JumpReg => {
                let target = vals[0].min(u32::MAX as u64) as Rip;
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.actual_next = Some(target);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::Call => {
                let entry = &mut self.rob.make_mut()[idx];
                entry.result = Some(uop.rip as u64 + 1);
                entry.actual_next = Some(uop.imm as Rip);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::Out => {
                let entry = &mut self.rob.make_mut()[idx];
                record_reg_reads(entry);
                entry.result = Some(vals[0]);
                entry.complete_at = Some(cycle + 1);
                true
            }
            UopKind::Halt | UopKind::Nop => {
                let entry = &mut self.rob.make_mut()[idx];
                entry.complete_at = Some(cycle + 1);
                true
            }
        }
    }

    // ----- writeback --------------------------------------------------------

    fn writeback(&mut self, probe: &mut dyn Probe) {
        let cycle = self.cycle;
        let mut idx = 0;
        while idx < self.rob.len() {
            let due = matches!(self.rob[idx].complete_at, Some(c) if c <= cycle)
                && !self.rob[idx].completed;
            if !due {
                idx += 1;
                continue;
            }
            if let Some(p) = self.rob[idx].dst_phys {
                let value = self.rob[idx].result.unwrap_or(0);
                self.prf.write(p, value);
                probe.write(Structure::RegisterFile, p as usize, cycle);
            }
            self.rob_touched.mark();
            self.rob.make_mut()[idx].completed = true;
            // Branch resolution: squash on a mispredicted next PC.
            if self.rob[idx].uop.kind.is_control() {
                let actual = self.rob[idx]
                    .actual_next
                    .expect("control uop resolved its target");
                if actual != self.rob[idx].pred_next {
                    let seq = self.rob[idx].seq;
                    self.squash_after(seq, actual, probe);
                    // Indices beyond the squash point are gone; the remaining
                    // completions are picked up next cycle.
                    return;
                }
            }
            idx += 1;
        }
    }

    fn squash_after(&mut self, branch_seq: u64, new_pc: Rip, probe: &mut dyn Probe) {
        let cycle = self.cycle;
        self.rob_touched.mark();
        self.fetch_buffer_touched.mark();
        while let Some(back) = self.rob.back() {
            if back.seq <= branch_seq {
                break;
            }
            let e = self.rob.make_mut().pop_back().expect("checked back");
            if let (Some(d), Some(prev)) = (e.uop.dst, e.prev_phys) {
                self.rat.restore(d, prev);
            }
            if let Some(p) = e.dst_phys {
                self.free_list.release(p);
                self.prf.mark_ready(p);
                probe.invalidate(Structure::RegisterFile, p as usize, cycle);
            }
            if e.in_iq {
                self.iq_count -= 1;
            }
            if let Some(l) = e.lq_slot {
                self.lq.release(l);
            }
            if e.uop.kind == UopKind::StoreAddr {
                if let Some(s) = e.sq_slot {
                    self.sq.release_tail(s);
                    probe.invalidate(Structure::StoreQueue, s, cycle);
                }
            }
        }
        self.fetch_buffer.make_mut().clear();
        self.pending_store_slot = None;
        self.fetch_pc = new_pc;
        self.fetch_halted = false;
        self.fetch_invalid = false;
    }

    // ----- commit ------------------------------------------------------------

    fn commit(&mut self, probe: &mut dyn Probe) {
        let cycle = self.cycle;
        let mut committed = 0;
        while committed < self.cfg.commit_width {
            let ready = matches!(self.rob.front(), Some(e) if e.completed);
            if !ready {
                break;
            }
            self.rob_touched.mark();
            let e = self.rob.make_mut().pop_front().expect("checked front");
            committed += 1;
            self.committed_uops += 1;

            if let Some(exc) = e.exception {
                match exc {
                    Exception::MemOutOfBounds { addr } => {
                        self.finished =
                            Some(ExitReason::Crash(CrashKind::MemoryOutOfBounds { addr }));
                        return;
                    }
                    Exception::StoreToCode { addr } => {
                        self.finished = Some(ExitReason::Assert(AssertKind::StoreToCode { addr }));
                        return;
                    }
                    Exception::DivByZero => self.arithmetic_exceptions += 1,
                    Exception::Misaligned => self.misaligned_exceptions += 1,
                }
            }

            let dyn_instance = *self.dyn_counts.get(&e.uop.rip).unwrap_or(&0);
            let path_sig = self.path_sig;
            for (p, read_cycle) in &e.reg_reads {
                probe.committed_read(
                    Structure::RegisterFile,
                    &ReadInfo {
                        entry: *p as usize,
                        cycle: *read_cycle,
                        rip: e.uop.rip,
                        upc: e.uop.upc,
                        dyn_instance,
                        path_sig,
                    },
                );
            }
            for (s, read_cycle) in &e.sq_reads {
                probe.committed_read(
                    Structure::StoreQueue,
                    &ReadInfo {
                        entry: *s,
                        cycle: *read_cycle,
                        rip: e.uop.rip,
                        upc: e.uop.upc,
                        dyn_instance,
                        path_sig,
                    },
                );
            }
            for (w, read_cycle) in &e.l1d_reads {
                probe.committed_read(
                    Structure::L1DCache,
                    &ReadInfo {
                        entry: *w,
                        cycle: *read_cycle,
                        rip: e.uop.rip,
                        upc: e.uop.upc,
                        dyn_instance,
                        path_sig,
                    },
                );
            }

            if let Some(prev) = e.prev_phys {
                self.free_list.release(prev);
                self.prf.mark_ready(prev);
                probe.invalidate(Structure::RegisterFile, prev as usize, cycle);
            }

            match e.uop.kind {
                UopKind::Out => self.output.make_mut().push(e.result.unwrap_or(0)),
                UopKind::Halt => {
                    self.finished = Some(ExitReason::Halted);
                }
                UopKind::Load => {
                    if let Some(l) = e.lq_slot {
                        self.lq.release(l);
                    }
                }
                UopKind::StoreData if self.drain_store(&e, dyn_instance, probe).is_err() => {
                    return;
                }
                UopKind::Branch(_) => {
                    let taken = e.result.unwrap_or(0) != 0;
                    self.bp.update(e.uop.rip, taken);
                    self.push_path(e.uop.rip, taken);
                }
                UopKind::JumpReg => {
                    if let Some(t) = e.actual_next {
                        self.btb.update(e.uop.rip, t);
                    }
                    self.push_path(e.uop.rip, true);
                }
                _ => {}
            }

            if e.uop.last_in_inst {
                self.committed_instructions += 1;
                *self.dyn_counts.make_mut().entry(e.uop.rip).or_insert(0) += 1;
            }
            if self.finished.is_some() {
                return;
            }
        }
        // The committed path reached an invalid instruction address: the
        // machine has drained and cannot make progress.
        if self.finished.is_none()
            && self.rob.is_empty()
            && self.fetch_buffer.is_empty()
            && self.fetch_invalid
        {
            self.finished = Some(ExitReason::Crash(CrashKind::InvalidFetchPc {
                pc: self.fetch_pc,
            }));
        }
    }

    /// Drains the committed store in ROB entry `e` to the cache hierarchy.
    fn drain_store(
        &mut self,
        e: &RobEntry,
        dyn_instance: u64,
        probe: &mut dyn Probe,
    ) -> Result<(), ()> {
        let cycle = self.cycle;
        let slot = e.sq_slot.expect("committed store has a slot");
        let (addr, size, data, rip, upc_std) = {
            let s = self.sq.slot(slot);
            (
                s.addr.expect("committed store has an address"),
                s.size,
                s.data,
                s.rip,
                s.upc_std,
            )
        };
        // Draining reads the store-queue data field.
        probe.committed_read(
            Structure::StoreQueue,
            &ReadInfo {
                entry: slot,
                cycle,
                rip,
                upc: upc_std,
                dyn_instance,
                path_sig: self.path_sig,
            },
        );
        match self.mem.store(addr, data, size) {
            Ok(eff) => {
                for w in &eff.word_writes {
                    probe.write(Structure::L1DCache, *w, cycle);
                }
                for w in &eff.writeback_reads {
                    probe.committed_read(
                        Structure::L1DCache,
                        &ReadInfo {
                            entry: *w,
                            cycle,
                            rip: WRITEBACK_RIP,
                            upc: 0,
                            dyn_instance: 0,
                            path_sig: 0,
                        },
                    );
                }
                for w in &eff.word_invalidates {
                    probe.invalidate(Structure::L1DCache, *w, cycle);
                }
                self.sq.release_head(slot);
                probe.invalidate(Structure::StoreQueue, slot, cycle);
                Ok(())
            }
            Err(MemError::OutOfBounds { addr, .. }) => {
                self.finished = Some(ExitReason::Crash(CrashKind::MemoryOutOfBounds { addr }));
                Err(())
            }
            Err(MemError::StoreToCode { addr }) => {
                self.finished = Some(ExitReason::Assert(AssertKind::StoreToCode { addr }));
                Err(())
            }
        }
    }

    fn push_path(&mut self, rip: Rip, taken: bool) {
        self.path_history.push_back((rip, taken));
        while self.path_history.len() > 5 {
            self.path_history.pop_front();
        }
        let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
        for (r, t) in &self.path_history {
            sig ^= (*r as u64) << 1 | *t as u64;
            sig = sig.wrapping_mul(0x1000_0000_01b3);
        }
        self.path_sig = sig;
    }

    // ----- checkpoint/restore ---------------------------------------------

    /// Captures the complete microarchitectural state of the core.
    ///
    /// The core is deterministic (no RNG anywhere), so
    /// `snapshot → restore_from → step*` is cycle-for-cycle identical to
    /// continuing the original run — the foundation of the checkpointed
    /// injection engine in `merlin-inject`.
    pub fn snapshot(&self) -> CpuState {
        CpuState {
            snap_id: SnapId::fresh(),
            cycle: self.cycle,
            next_seq: self.next_seq,
            fetch_pc: self.fetch_pc,
            fetch_halted: self.fetch_halted,
            fetch_invalid: self.fetch_invalid,
            fetch_buffer: self.fetch_buffer.clone(),
            rat: self.rat.clone(),
            free_list: self.free_list.clone(),
            prf: self.prf.clone(),
            rob: self.rob.clone(),
            iq_count: self.iq_count,
            lq: self.lq.clone(),
            sq: self.sq.clone(),
            pending_store_slot: self.pending_store_slot,
            mem: self.mem.snapshot(),
            bp: self.bp.clone(),
            btb: self.btb.clone(),
            output: self.output.clone(),
            committed_instructions: self.committed_instructions,
            committed_uops: self.committed_uops,
            arithmetic_exceptions: self.arithmetic_exceptions,
            misaligned_exceptions: self.misaligned_exceptions,
            dyn_counts: self.dyn_counts.clone(),
            path_history: self.path_history.clone(),
            path_sig: self.path_sig,
            faults: self.faults.clone(),
            finished: self.finished.clone(),
        }
    }

    /// Restores the core to a previously captured state.
    ///
    /// Every mutable field is overwritten, so the core behaves identically to
    /// the one the snapshot was taken from regardless of what it executed in
    /// between (including a run that panicked mid-cycle).  Existing heap
    /// buffers are reused where possible, making repeated restores on one
    /// core object allocation-light.
    ///
    /// **Incremental same-snapshot restores.**  Campaign workers are bound
    /// to checkpoint ranges, so they restore the *same* snapshot hundreds of
    /// times back-to-back.  Each snapshot carries a process-unique identity
    /// tag; when a core is restored from the snapshot it was last restored
    /// from, every structure is rewritten incrementally — cache lines and
    /// memory chunks, but also register-file entries, rename mappings,
    /// load/store-queue slots, predictor counters and BTB entries the suffix
    /// touched (all tracked live at mutation time; see [`TouchedSet`]), and
    /// the queue-shaped ROB/fetch buffer/free list, which are skipped
    /// entirely when their [`TouchedFlag`] is clear.  The result is
    /// bit-identical to a full restore; the returned [`RestoreStats`] says
    /// which path ran and how many bytes it rewrote, per structure.
    ///
    /// The state must come from a core running the same program under the
    /// same configuration; this is not checked.
    pub fn restore_from(&mut self, s: &CpuState) -> RestoreStats {
        // A quarantined core's state is untrusted (a panic unwound through
        // it), so the touched-entry bookkeeping backing the incremental path
        // cannot be believed either: force the full-rewrite path once (which
        // clears every tag).
        let from_quarantine = self.quarantined;
        self.quarantined = false;
        let incremental = !from_quarantine && self.last_restored == Some(s.snap_id.get());
        // Cleared across the restore so a panic mid-restore (impossible for
        // matching contexts, but cheap to guard) can never leave a stale
        // claim of having matched `s`.
        self.last_restored = None;
        self.cycle = s.cycle;
        self.next_seq = s.next_seq;
        self.fetch_pc = s.fetch_pc;
        self.fetch_halted = s.fetch_halted;
        self.fetch_invalid = s.fetch_invalid;
        let mut bytes = RestoredBytes {
            fetch: restore_deque(
                &mut self.fetch_buffer,
                &s.fetch_buffer,
                &mut self.fetch_buffer_touched,
                incremental,
            ),
            ..RestoredBytes::default()
        };
        bytes.rename = self.rat.restore_from(&s.rat, incremental)
            + self.free_list.restore_from(&s.free_list, incremental);
        bytes.regfile = self.prf.restore_from(&s.prf, incremental);
        bytes.rob = restore_deque(&mut self.rob, &s.rob, &mut self.rob_touched, incremental);
        self.iq_count = s.iq_count;
        bytes.lsq =
            self.lq.restore_from(&s.lq, incremental) + self.sq.restore_from(&s.sq, incremental);
        self.pending_store_slot = s.pending_store_slot;
        let (cache_bytes, mem_bytes) = if incremental {
            self.mem.restore_snapshot_incremental(&s.mem)
        } else {
            self.mem.restore_snapshot(&s.mem)
        };
        bytes.caches = cache_bytes as u64;
        bytes.memory = mem_bytes as u64;
        bytes.predictor =
            self.bp.restore_from(&s.bp, incremental) + self.btb.restore_from(&s.btb, incremental);
        self.output.share_from(&s.output);
        self.committed_instructions = s.committed_instructions;
        self.committed_uops = s.committed_uops;
        self.arithmetic_exceptions = s.arithmetic_exceptions;
        self.misaligned_exceptions = s.misaligned_exceptions;
        self.dyn_counts.share_from(&s.dyn_counts);
        self.path_history.clone_from(&s.path_history);
        self.path_sig = s.path_sig;
        self.faults.clone_from(&s.faults);
        self.next_fault_cycle = self.faults.first().map_or(u64::MAX, |f| f.cycle);
        self.finished.clone_from(&s.finished);
        self.last_restored = Some(s.snap_id.get());
        RestoreStats {
            incremental,
            from_quarantine,
            bytes,
        }
    }

    /// Forks this core from a live source core, making `self` bit-identical
    /// to `src` at O(metadata) cost — the lazy fork-spawn of the batched
    /// suffix driver.
    ///
    /// Every heavy structure shares `src`'s page handles structurally
    /// instead of copying entries (see [`crate::cow`]); sharing breaks
    /// lazily, per page, on whichever side writes first.  The fork therefore
    /// copies almost nothing up front — only scalars and the small
    /// eagerly-copied structures like the rename table — and is *total*:
    /// valid from any state of `self`, not just `src`'s restore base.
    /// Neither core may be quarantined (checked in debug builds).
    ///
    /// The fork inherits `src`'s divergence tags and restore identity
    /// verbatim (it is an exact replica, so its divergence from `src`'s
    /// restore base is exactly `src`'s), keeping its own incremental
    /// restores and [`Cpu::matches_state_with_diff`] probes against the
    /// shared [`StateDiff`]s sound.
    ///
    /// The returned [`ForkStats`] reports, per structure, the bytes
    /// physically copied, the bytes the pre-CoW fork path would have copied
    /// (`src`'s touched entries and diverged queues), and the bytes now
    /// referenced structurally.
    pub fn fork_from(&mut self, src: &Cpu) -> ForkStats {
        debug_assert!(!self.quarantined && !src.quarantined);
        fn acc(stats: &mut ForkStats, fb: ForkBytes, sel: fn(&mut RestoredBytes) -> &mut u64) {
            *sel(&mut stats.copied) += fb.copied;
            *sel(&mut stats.eager) += fb.eager;
            *sel(&mut stats.shared) += fb.shared;
        }
        self.cycle = src.cycle;
        self.next_seq = src.next_seq;
        self.fetch_pc = src.fetch_pc;
        self.fetch_halted = src.fetch_halted;
        self.fetch_invalid = src.fetch_invalid;
        let mut stats = ForkStats::default();
        acc(
            &mut stats,
            fork_deque(
                &mut self.fetch_buffer,
                &src.fetch_buffer,
                &src.fetch_buffer_touched,
                &mut self.fetch_buffer_touched,
            ),
            |b| &mut b.fetch,
        );
        acc(&mut stats, self.rat.fork_from(&src.rat), |b| &mut b.rename);
        acc(&mut stats, self.free_list.fork_from(&src.free_list), |b| {
            &mut b.rename
        });
        acc(&mut stats, self.prf.fork_from(&src.prf), |b| &mut b.regfile);
        acc(
            &mut stats,
            fork_deque(
                &mut self.rob,
                &src.rob,
                &src.rob_touched,
                &mut self.rob_touched,
            ),
            |b| &mut b.rob,
        );
        self.iq_count = src.iq_count;
        acc(&mut stats, self.lq.fork_from(&src.lq), |b| &mut b.lsq);
        acc(&mut stats, self.sq.fork_from(&src.sq), |b| &mut b.lsq);
        self.pending_store_slot = src.pending_store_slot;
        let (cache_fb, mem_fb) = self.mem.fork_from(&src.mem);
        acc(&mut stats, cache_fb, |b| &mut b.caches);
        acc(&mut stats, mem_fb, |b| &mut b.memory);
        acc(&mut stats, self.bp.fork_from(&src.bp), |b| &mut b.predictor);
        acc(&mut stats, self.btb.fork_from(&src.btb), |b| {
            &mut b.predictor
        });
        self.output.share_from(&src.output);
        self.committed_instructions = src.committed_instructions;
        self.committed_uops = src.committed_uops;
        self.arithmetic_exceptions = src.arithmetic_exceptions;
        self.misaligned_exceptions = src.misaligned_exceptions;
        self.dyn_counts.share_from(&src.dyn_counts);
        self.path_history.clone_from(&src.path_history);
        self.path_sig = src.path_sig;
        self.faults.clone_from(&src.faults);
        self.next_fault_cycle = src.next_fault_cycle;
        self.finished.clone_from(&src.finished);
        self.last_restored = src.last_restored;
        stats
    }

    /// Page un-share events accumulated across every CoW-backed structure
    /// since the last call (see [`crate::cow`]): each count is one page that
    /// was shared — with a fork sibling, a snapshot, or the pristine memory
    /// image — and had to be materialised privately on first write.
    pub fn take_cow_breaks(&mut self) -> u64 {
        self.prf.take_cow_breaks()
            + self.free_list.take_cow_breaks()
            + self.lq.take_cow_breaks()
            + self.sq.take_cow_breaks()
            + self.bp.take_cow_breaks()
            + self.btb.take_cow_breaks()
            + self.mem.take_cow_breaks()
            + self.fetch_buffer.take_cow_breaks()
            + self.rob.take_cow_breaks()
            + self.output.take_cow_breaks()
            + self.dyn_counts.take_cow_breaks()
    }

    /// Materialises a private copy of every structurally shared page, except
    /// memory chunks backed by this core's own pristine image (immutable and
    /// shared by design).  Called by [`Cpu::quarantine`] so a poisoned core
    /// holds no references into state shared with healthy cores or
    /// snapshots.
    pub fn unshare_all(&mut self) {
        self.prf.unshare_all();
        self.free_list.unshare_all();
        self.lq.unshare_all();
        self.sq.unshare_all();
        self.bp.unshare_all();
        self.btb.unshare_all();
        self.mem.unshare_all();
        self.fetch_buffer.unshare_all();
        self.rob.unshare_all();
        self.output.unshare_all();
        self.dyn_counts.unshare_all();
    }

    /// Whether no structure shares pages with any other core or snapshot
    /// (memory chunks backed by this core's own pristine image excepted).
    pub fn fully_private(&self) -> bool {
        self.prf.fully_private()
            && self.free_list.fully_private()
            && self.lq.fully_private()
            && self.sq.fully_private()
            && self.bp.fully_private()
            && self.btb.fully_private()
            && self.mem.fully_private()
            && self.fetch_buffer.fully_private()
            && self.rob.fully_private()
            && self.output.fully_private()
            && self.dyn_counts.fully_private()
    }

    /// An order-independent fingerprint of the core's cheap scalar state,
    /// used as a prefilter when testing two same-cycle forks for the paper's
    /// fault-equivalence merge: equal states always produce equal
    /// fingerprints (every input is architectural state, never bookkeeping),
    /// so a fingerprint mismatch proves the forks differ without touching
    /// any array.  Colliding fingerprints are confirmed with an exact
    /// [`Cpu::snapshot`] equality comparison.
    pub fn merge_fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        mix(self.cycle);
        mix(self.next_seq);
        mix(self.fetch_pc as u64);
        mix(self.fetch_halted as u64);
        mix(self.fetch_invalid as u64);
        mix(self.fetch_buffer.len() as u64);
        mix(self.rob.len() as u64);
        mix(self.iq_count as u64);
        mix(self.lq.len() as u64);
        mix(self.sq.len() as u64);
        mix(self.pending_store_slot.map_or(u64::MAX, |s| s as u64));
        mix(self.committed_instructions);
        mix(self.committed_uops);
        mix(self.arithmetic_exceptions);
        mix(self.misaligned_exceptions);
        mix(self.path_sig);
        mix(self.output.len() as u64);
        mix(self.output.last().copied().unwrap_or(0));
        mix(match &self.finished {
            None => 0,
            Some(ExitReason::Halted) => 1,
            Some(ExitReason::Timeout) => 2,
            Some(ExitReason::Crash(_)) => 3,
            Some(ExitReason::Assert(_)) => 4,
        });
        h
    }

    /// Demote this core after its state became untrusted — typically because
    /// a panic unwound through [`Cpu::step`] mid-instruction, leaving the
    /// pipeline, caches, or touched-line bookkeeping in an unknown state.
    ///
    /// Quarantine is cleared by the next [`Cpu::restore_from`], which is
    /// forced onto the full-rewrite path (never the same-snapshot
    /// incremental path) so no stale state survives into the next run.
    ///
    /// Quarantining also un-shares every structurally shared page (see
    /// [`Cpu::unshare_all`]): the safe CoW substrate already guarantees a
    /// poisoned core cannot corrupt a sibling through a shared handle, but
    /// dropping the references makes the isolation unconditional.
    pub fn quarantine(&mut self) {
        self.last_restored = None;
        self.quarantined = true;
        self.unshare_all();
    }

    /// `true` while the core is quarantined (see [`Cpu::quarantine`]): its
    /// state is untrusted and the next restore will be a forced full restore.
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Whether the core's current state is bit-identical to `s`.
    ///
    /// Used by the injection engine's early-exit test: once a faulty run's
    /// state re-converges with a golden checkpoint, the remainder of the run
    /// is guaranteed identical to the golden run, so the fault is Masked.
    /// Cheap scalar fields are compared first so divergent states bail out
    /// without touching the memory image.
    ///
    /// When the core was last restored from `s` itself (and not quarantined
    /// since), untagged entries still hold `s`'s bits by the epoch-tagging
    /// invariant, so only the entries the suffix touched are compared — the
    /// probe costs O(touched state), not O(machine state).
    pub fn matches_state(&self, s: &CpuState) -> bool {
        if !self.untagged_state_matches(s) {
            return false;
        }
        let structures = if !self.quarantined && self.last_restored == Some(s.snap_id.get()) {
            self.tagged_structures_match(s)
        } else {
            self.rat == s.rat
                && self.fetch_buffer == s.fetch_buffer
                && self.rob == s.rob
                && self.free_list == s.free_list
                && self.lq == s.lq
                && self.sq == s.sq
                && self.prf == s.prf
                && self.bp == s.bp
                && self.btb == s.btb
        };
        structures && self.mem.matches_snapshot(&s.mem)
    }

    /// Early-exit convergence probe against golden checkpoint `g`, given the
    /// precomputed [`StateDiff`] from the snapshot this core was restored
    /// from to `g`.
    ///
    /// Exactly equivalent to [`Cpu::matches_state`]`(g)` but cheaper: an
    /// epoch-tagged structure equals `g`'s copy iff the diff is a subset of
    /// its touched set (one word-parallel sweep) *and* every touched entry
    /// equals `g` — untouched entries still equal the restore source, whose
    /// disagreements with `g` are exactly the diff.  Falls back to the full
    /// comparison when the diff's precondition does not hold (the core was
    /// not last restored from the diff's source snapshot, or is
    /// quarantined).
    pub fn matches_state_with_diff(&self, g: &CpuState, diff: &StateDiff) -> bool {
        if self.quarantined || self.last_restored != Some(diff.from_snap) {
            return self.matches_state(g);
        }
        self.untagged_state_matches(g)
            && self.rat.converged_with(&g.rat, &diff.rat)
            && self.prf.converged_with(&g.prf, &diff.prf)
            && self.lq.converged_with(&g.lq, &diff.lq)
            && self.sq.converged_with(&g.sq, &diff.sq)
            && self.bp.converged_with(&g.bp, &diff.bp)
            && self.btb.converged_with(&g.btb, &diff.btb)
            && ((!diff.fetch_buffer && !self.fetch_buffer_touched.is_set())
                || self.fetch_buffer == g.fetch_buffer)
            && ((!diff.rob && !self.rob_touched.is_set()) || self.rob == g.rob)
            && ((!diff.free_list && !self.free_list.is_touched()) || self.free_list == g.free_list)
            && self.mem.matches_snapshot(&g.mem)
    }

    /// Compares the scalar fields and the untagged collections (output
    /// stream, path history, dynamic counts, pending faults) — everything
    /// both probe paths must check in full.
    fn untagged_state_matches(&self, s: &CpuState) -> bool {
        self.cycle == s.cycle
            && self.next_seq == s.next_seq
            && self.committed_instructions == s.committed_instructions
            && self.committed_uops == s.committed_uops
            && self.arithmetic_exceptions == s.arithmetic_exceptions
            && self.misaligned_exceptions == s.misaligned_exceptions
            && self.path_sig == s.path_sig
            && self.fetch_pc == s.fetch_pc
            && self.fetch_halted == s.fetch_halted
            && self.fetch_invalid == s.fetch_invalid
            && self.iq_count == s.iq_count
            && self.pending_store_slot == s.pending_store_slot
            && self.finished == s.finished
            && self.faults == s.faults
            && self.output == s.output
            && self.path_history == s.path_history
            && self.dyn_counts == s.dyn_counts
    }

    /// Same-snapshot structure comparison: only tagged entries can differ
    /// from `s`, so only they are checked.
    fn tagged_structures_match(&self, s: &CpuState) -> bool {
        self.rat.touched_matches(&s.rat)
            && self.prf.touched_matches(&s.prf)
            && self.lq.touched_matches(&s.lq)
            && self.sq.touched_matches(&s.sq)
            && self.bp.touched_matches(&s.bp)
            && self.btb.touched_matches(&s.btb)
            && (!self.fetch_buffer_touched.is_set() || self.fetch_buffer == s.fetch_buffer)
            && (!self.rob_touched.is_set() || self.rob == s.rob)
            && (!self.free_list.is_touched() || self.free_list == s.free_list)
    }
}

/// What one [`Cpu::restore_from`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreStats {
    /// `true` when the same-snapshot incremental path ran (only state
    /// touched since the previous restore of this snapshot was rewritten).
    pub incremental: bool,
    /// `true` when this restore lifted the core out of quarantine (see
    /// [`Cpu::quarantine`]) — such a restore is always a full restore.
    pub from_quarantine: bool,
    /// Bytes rewritten, broken down per structure — an honest all-structure
    /// count on both paths (the full path counts every entry it copies, the
    /// incremental path only what it actually rewrote).
    pub bytes: RestoredBytes,
}

impl RestoreStats {
    /// Total bytes rewritten across every structure.
    pub fn restored_bytes(&self) -> u64 {
        self.bytes.total()
    }
}

/// Per-structure breakdown of the bytes one restore rewrote (see
/// [`RestoreStats::bytes`]).  Structures are grouped the way the experiments
/// binary reports them; byte counts are the in-memory entry sizes, so they
/// measure copy work, not serialised footprint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RestoredBytes {
    /// Backing-memory chunks.
    pub memory: u64,
    /// L1D + L2 cache line data.
    pub caches: u64,
    /// Physical register file entries (value + ready bit).
    pub regfile: u64,
    /// Rename state: RAT mappings plus the free list.
    pub rename: u64,
    /// Fetch buffer entries.
    pub fetch: u64,
    /// Re-order buffer entries.
    pub rob: u64,
    /// Load-queue and store-queue slots.
    pub lsq: u64,
    /// Direction-predictor counters plus BTB entries.
    pub predictor: u64,
}

impl RestoredBytes {
    /// Sum over every structure.
    pub fn total(&self) -> u64 {
        self.memory
            + self.caches
            + self.regfile
            + self.rename
            + self.fetch
            + self.rob
            + self.lsq
            + self.predictor
    }
}

impl std::ops::AddAssign for RestoredBytes {
    fn add_assign(&mut self, rhs: Self) {
        self.memory += rhs.memory;
        self.caches += rhs.caches;
        self.regfile += rhs.regfile;
        self.rename += rhs.rename;
        self.fetch += rhs.fetch;
        self.rob += rhs.rob;
        self.lsq += rhs.lsq;
        self.predictor += rhs.predictor;
    }
}

/// Per-structure accounting of one [`Cpu::fork_from`] call.
///
/// `eager` is the counterfactual baseline — what the pre-CoW fork path
/// would have copied (the source's touched entries and diverged queues) —
/// so `copied` vs `eager` measures exactly what structural sharing saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Bytes physically copied (small eager structures like the rename
    /// table, whose map is cheaper to copy than a page handle).
    pub copied: RestoredBytes,
    /// Bytes the pre-CoW per-entry fork would have copied.
    pub eager: RestoredBytes,
    /// Bytes made equal to the source by sharing page handles.
    pub shared: RestoredBytes,
}

impl std::ops::AddAssign for ForkStats {
    fn add_assign(&mut self, rhs: Self) {
        self.copied += rhs.copied;
        self.eager += rhs.eager;
        self.shared += rhs.shared;
    }
}

/// Precomputed structure-level difference between two snapshots: the restore
/// source `k` (whose identity it remembers) and a later golden checkpoint
/// `g`, produced by [`CpuState::diff_to`] and consumed by
/// [`Cpu::matches_state_with_diff`].
///
/// Computed once per `(k, g)` checkpoint pair and amortised over every
/// early-exit probe of every fault injected in that range: the probe reduces
/// to a word-parallel subset test of the diff against the core's touched
/// sets plus an equality check of the touched entries alone.
#[derive(Debug, Clone)]
pub struct StateDiff {
    /// Identity of `k`, the snapshot the probing core must have been
    /// restored from for the diff decomposition to be sound.
    from_snap: u64,
    prf: TouchedSet,
    rat: TouchedSet,
    lq: TouchedSet,
    sq: TouchedSet,
    bp: PredictorDiff,
    btb: TouchedSet,
    fetch_buffer: bool,
    rob: bool,
    free_list: bool,
}

/// Process-unique identity of a snapshot, assigned at capture (and afresh on
/// decode, since a deserialised snapshot has no live provenance).
///
/// Identity is *provenance*, not content: it exists so a core can recognise
/// "this is the same snapshot I was restored from last time" and take the
/// incremental restore path.  It is deliberately transparent to equality —
/// two snapshots of identical microarchitectural state compare equal whatever
/// their tags — and is never serialised.
#[derive(Debug, Clone)]
struct SnapId(u64);

impl SnapId {
    fn fresh() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        SnapId(NEXT.fetch_add(1, Ordering::Relaxed))
    }

    fn get(&self) -> u64 {
        self.0
    }
}

impl PartialEq for SnapId {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

/// A complete snapshot of the core's microarchitectural state, produced by
/// [`Cpu::snapshot`] and consumed by [`Cpu::restore_from`].
///
/// The snapshot does not include the program or the configuration — those
/// are immutable over a run and shared (via `Arc`) between the cores of a
/// campaign.  Cache contents are stored sparsely (valid lines only) and the
/// backing memory as a chunk-level delta against the pristine program image
/// (see [`crate::MemoryDelta`]), so a snapshot's footprint tracks the data
/// the workload actually touched, not the configured cache or memory
/// capacity.  Restoring resolves the delta against the pristine image the
/// restoring core holds, which is byte-identical for every core built from
/// the same (program, configuration) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuState {
    /// Identity tag for incremental same-snapshot restores; transparent to
    /// equality and never serialised.
    snap_id: SnapId,
    cycle: u64,
    next_seq: u64,
    fetch_pc: Rip,
    fetch_halted: bool,
    fetch_invalid: bool,
    fetch_buffer: CowSeq<FetchedUop>,
    rat: RenameTable,
    free_list: FreeList,
    prf: PhysRegFile,
    rob: CowSeq<RobEntry>,
    iq_count: usize,
    lq: LoadQueue,
    sq: StoreQueue,
    pending_store_slot: Option<usize>,
    mem: crate::cache::MemSystemSnapshot,
    bp: BranchPredictor,
    btb: Btb,
    output: CowBox<Vec<u64>>,
    committed_instructions: u64,
    committed_uops: u64,
    arithmetic_exceptions: u64,
    misaligned_exceptions: u64,
    dyn_counts: CowBox<HashMap<Rip, u64>>,
    path_history: VecDeque<(Rip, bool)>,
    path_sig: u64,
    faults: Vec<FaultSpec>,
    finished: Option<ExitReason>,
}

impl CpuState {
    /// The cycle at which the snapshot was taken.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether the captured run had already ended.
    pub fn is_finished(&self) -> bool {
        self.finished.is_some()
    }

    /// Approximate heap footprint of the snapshot in bytes (dominated by the
    /// memory delta and the touched cache lines).
    pub fn footprint_bytes(&self) -> usize {
        self.mem.footprint_bytes()
            + self.prf.len() * 9
            + self.output.len() * 8
            + self.rob.len() * std::mem::size_of::<RobEntry>()
            + self.fetch_buffer.len() * std::mem::size_of::<FetchedUop>()
    }

    /// Bytes the chunk-level memory delta occupies within
    /// [`Self::footprint_bytes`].
    pub fn memory_delta_bytes(&self) -> usize {
        self.mem.memory_delta_bytes()
    }

    /// Bytes a dense memory image of this snapshot would occupy instead (the
    /// pre-delta representation; kept for footprint accounting).
    pub fn memory_dense_bytes(&self) -> usize {
        self.mem.memory_dense_bytes()
    }

    /// The structure-level difference from `self` (the snapshot a core
    /// restores from) to a later golden checkpoint `g`, for
    /// [`Cpu::matches_state_with_diff`].
    ///
    /// Both snapshots must come from the same program and configuration
    /// (same structure geometries); this is not checked beyond debug
    /// assertions.
    pub fn diff_to(&self, g: &CpuState) -> StateDiff {
        StateDiff {
            from_snap: self.snap_id.get(),
            prf: self.prf.diff(&g.prf),
            rat: self.rat.diff(&g.rat),
            lq: self.lq.diff(&g.lq),
            sq: self.sq.diff(&g.sq),
            bp: self.bp.diff(&g.bp),
            btb: self.btb.diff(&g.btb),
            fetch_buffer: self.fetch_buffer != g.fetch_buffer,
            rob: self.rob != g.rob,
            free_list: self.free_list != g.free_list,
        }
    }
}

// --- Binary encoding of the snapshot types -------------------------------
//
// The session cache persists checkpoint stores to disk, and `serde` is an
// offline marker stub, so every type reachable from `CpuState` carries a
// hand-written `BinCode` implementation.  Round-trip exactness is enforced
// by `CpuState` equality tests (the snapshot types all derive `PartialEq`).

impl BinCode for Exception {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Exception::MemOutOfBounds { addr } => {
                out.push(0);
                addr.encode(out);
            }
            Exception::StoreToCode { addr } => {
                out.push(1);
                addr.encode(out);
            }
            Exception::DivByZero => out.push(2),
            Exception::Misaligned => out.push(3),
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => Exception::MemOutOfBounds {
                addr: BinCode::decode(r)?,
            },
            1 => Exception::StoreToCode {
                addr: BinCode::decode(r)?,
            },
            2 => Exception::DivByZero,
            3 => Exception::Misaligned,
            _ => return Err(DecodeError::Invalid("Exception")),
        })
    }
}

impl BinCode for CrashKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            CrashKind::MemoryOutOfBounds { addr } => {
                out.push(0);
                addr.encode(out);
            }
            CrashKind::InvalidFetchPc { pc } => {
                out.push(1);
                pc.encode(out);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => CrashKind::MemoryOutOfBounds {
                addr: BinCode::decode(r)?,
            },
            1 => CrashKind::InvalidFetchPc {
                pc: BinCode::decode(r)?,
            },
            _ => return Err(DecodeError::Invalid("CrashKind")),
        })
    }
}

impl BinCode for AssertKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AssertKind::StoreToCode { addr } => {
                out.push(0);
                addr.encode(out);
            }
            AssertKind::InternalInvariant(msg) => {
                out.push(1);
                msg.encode(out);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => AssertKind::StoreToCode {
                addr: BinCode::decode(r)?,
            },
            1 => AssertKind::InternalInvariant(BinCode::decode(r)?),
            _ => return Err(DecodeError::Invalid("AssertKind")),
        })
    }
}

impl BinCode for ExitReason {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ExitReason::Halted => out.push(0),
            ExitReason::Timeout => out.push(1),
            ExitReason::Crash(k) => {
                out.push(2);
                k.encode(out);
            }
            ExitReason::Assert(k) => {
                out.push(3);
                k.encode(out);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => ExitReason::Halted,
            1 => ExitReason::Timeout,
            2 => ExitReason::Crash(BinCode::decode(r)?),
            3 => ExitReason::Assert(BinCode::decode(r)?),
            _ => return Err(DecodeError::Invalid("ExitReason")),
        })
    }
}

impl BinCode for RunResult {
    fn encode(&self, out: &mut Vec<u8>) {
        self.exit.encode(out);
        self.output.encode(out);
        self.cycles.encode(out);
        self.committed_instructions.encode(out);
        self.committed_uops.encode(out);
        self.arithmetic_exceptions.encode(out);
        self.misaligned_exceptions.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RunResult {
            exit: BinCode::decode(r)?,
            output: BinCode::decode(r)?,
            cycles: BinCode::decode(r)?,
            committed_instructions: BinCode::decode(r)?,
            committed_uops: BinCode::decode(r)?,
            arithmetic_exceptions: BinCode::decode(r)?,
            misaligned_exceptions: BinCode::decode(r)?,
        })
    }
}

impl BinCode for FetchedUop {
    fn encode(&self, out: &mut Vec<u8>) {
        self.uop.encode(out);
        self.pred_next.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(FetchedUop {
            uop: BinCode::decode(r)?,
            pred_next: BinCode::decode(r)?,
        })
    }
}

impl BinCode for RobEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.uop.encode(out);
        self.src_phys.encode(out);
        self.dst_phys.encode(out);
        self.prev_phys.encode(out);
        self.in_iq.encode(out);
        self.complete_at.encode(out);
        self.completed.encode(out);
        self.pred_next.encode(out);
        self.actual_next.encode(out);
        self.result.encode(out);
        self.exception.encode(out);
        self.lq_slot.encode(out);
        self.sq_slot.encode(out);
        self.reg_reads.encode(out);
        self.sq_reads.encode(out);
        self.l1d_reads.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RobEntry {
            seq: BinCode::decode(r)?,
            uop: BinCode::decode(r)?,
            src_phys: BinCode::decode(r)?,
            dst_phys: BinCode::decode(r)?,
            prev_phys: BinCode::decode(r)?,
            in_iq: BinCode::decode(r)?,
            complete_at: BinCode::decode(r)?,
            completed: BinCode::decode(r)?,
            pred_next: BinCode::decode(r)?,
            actual_next: BinCode::decode(r)?,
            result: BinCode::decode(r)?,
            exception: BinCode::decode(r)?,
            lq_slot: BinCode::decode(r)?,
            sq_slot: BinCode::decode(r)?,
            reg_reads: BinCode::decode(r)?,
            sq_reads: BinCode::decode(r)?,
            l1d_reads: BinCode::decode(r)?,
        })
    }
}

impl BinCode for CpuState {
    fn encode(&self, out: &mut Vec<u8>) {
        self.cycle.encode(out);
        self.next_seq.encode(out);
        self.fetch_pc.encode(out);
        self.fetch_halted.encode(out);
        self.fetch_invalid.encode(out);
        self.fetch_buffer.encode(out);
        self.rat.encode(out);
        self.free_list.encode(out);
        self.prf.encode(out);
        self.rob.encode(out);
        self.iq_count.encode(out);
        self.lq.encode(out);
        self.sq.encode(out);
        self.pending_store_slot.encode(out);
        self.mem.encode(out);
        self.bp.encode(out);
        self.btb.encode(out);
        self.output.encode(out);
        self.committed_instructions.encode(out);
        self.committed_uops.encode(out);
        self.arithmetic_exceptions.encode(out);
        self.misaligned_exceptions.encode(out);
        self.dyn_counts.encode(out);
        self.path_history.encode(out);
        self.path_sig.encode(out);
        self.faults.encode(out);
        self.finished.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CpuState {
            snap_id: SnapId::fresh(),
            cycle: BinCode::decode(r)?,
            next_seq: BinCode::decode(r)?,
            fetch_pc: BinCode::decode(r)?,
            fetch_halted: BinCode::decode(r)?,
            fetch_invalid: BinCode::decode(r)?,
            fetch_buffer: BinCode::decode(r)?,
            rat: BinCode::decode(r)?,
            free_list: BinCode::decode(r)?,
            prf: BinCode::decode(r)?,
            rob: BinCode::decode(r)?,
            iq_count: BinCode::decode(r)?,
            lq: BinCode::decode(r)?,
            sq: BinCode::decode(r)?,
            pending_store_slot: BinCode::decode(r)?,
            mem: BinCode::decode(r)?,
            bp: BinCode::decode(r)?,
            btb: BinCode::decode(r)?,
            output: BinCode::decode(r)?,
            committed_instructions: BinCode::decode(r)?,
            committed_uops: BinCode::decode(r)?,
            arithmetic_exceptions: BinCode::decode(r)?,
            misaligned_exceptions: BinCode::decode(r)?,
            dyn_counts: BinCode::decode(r)?,
            path_history: BinCode::decode(r)?,
            path_sig: BinCode::decode(r)?,
            faults: BinCode::decode(r)?,
            finished: BinCode::decode(r)?,
        })
    }
}
