//! Observation interface used by the ACE-like analysis.
//!
//! The core reports three kinds of events per microarchitectural structure
//! entry:
//!
//! * **Write** — the entry's storage was physically written (register
//!   writeback, store-data deposit into the store queue, cache-line refill or
//!   store drain).  Writes are reported even for wrong-path micro-ops,
//!   because the bits really change.
//! * **CommittedRead** — the entry was read by a micro-op that later
//!   committed, or consumed by a dirty-line writeback.  Reads performed by
//!   squashed (wrong-path) micro-ops are never reported; this is exactly the
//!   paper's ACE-like interval definition, where squashed reads do not end a
//!   vulnerable interval.  The event carries the cycle at which the physical
//!   read happened (not the commit cycle), plus the reading micro-op's RIP,
//!   uPC, dynamic-instance index and a depth-5 control-flow-path signature.
//! * **Invalidate** — the entry stopped holding live data (physical register
//!   returned to the free list, store-queue slot deallocated, cache line
//!   evicted).

use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{Rip, Upc};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The microarchitectural structures whose data bits can be profiled and
/// fault-injected — the three structures evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Structure {
    /// Physical integer register file (entry = physical register index,
    /// 64 bits per entry).
    RegisterFile,
    /// Store-queue data field (entry = store-queue slot index, 64 bits per
    /// entry).
    StoreQueue,
    /// L1 data cache data array (entry = 8-byte word index, flattened as
    /// `((set * ways) + way) * words_per_line + word`).
    L1DCache,
}

impl Structure {
    /// Bits per entry (all three structures are tracked at 64-bit/8-byte
    /// granularity).
    pub fn bits_per_entry(self) -> u32 {
        64
    }

    /// Bytes per entry.
    pub fn bytes_per_entry(self) -> u32 {
        8
    }

    /// All structures, for exhaustive sweeps.
    pub fn all() -> &'static [Structure] {
        &[
            Structure::RegisterFile,
            Structure::StoreQueue,
            Structure::L1DCache,
        ]
    }

    /// Short name used in reports ("RF", "SQ", "L1D").
    pub fn short_name(self) -> &'static str {
        match self {
            Structure::RegisterFile => "RF",
            Structure::StoreQueue => "SQ",
            Structure::L1DCache => "L1D",
        }
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl BinCode for Structure {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            Structure::RegisterFile => 0,
            Structure::StoreQueue => 1,
            Structure::L1DCache => 2,
        });
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => Structure::RegisterFile,
            1 => Structure::StoreQueue,
            2 => Structure::L1DCache,
            _ => return Err(DecodeError::Invalid("Structure")),
        })
    }
}

/// The pseudo instruction pointer attributed to dirty-line writebacks that
/// consume cache data without an associated program instruction.
pub const WRITEBACK_RIP: Rip = u32::MAX;

/// Details of a committed read of a structure entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReadInfo {
    /// Entry index within the structure.
    pub entry: usize,
    /// Cycle at which the physical read happened.
    pub cycle: u64,
    /// Instruction pointer of the reading static instruction
    /// ([`WRITEBACK_RIP`] for cache writebacks).
    pub rip: Rip,
    /// Micro program counter of the reading micro-op.
    pub upc: Upc,
    /// Dynamic instance index of the reading static instruction (how many
    /// times that RIP had committed before this instance).
    pub dyn_instance: u64,
    /// Signature of the depth-5 control-flow path that led to the reading
    /// instruction (used by the Relyzer control-equivalence baseline).
    pub path_sig: u64,
}

/// Observer of structure lifetime events.
///
/// All methods have empty default implementations so probes only override
/// what they need.
pub trait Probe {
    /// The entry's storage was physically written at `cycle`.
    fn write(&mut self, structure: Structure, entry: usize, cycle: u64) {
        let _ = (structure, entry, cycle);
    }

    /// The entry was read by a micro-op that committed (or by a writeback).
    fn committed_read(&mut self, structure: Structure, info: &ReadInfo) {
        let _ = (structure, info);
    }

    /// The entry stopped holding live data at `cycle`.
    fn invalidate(&mut self, structure: Structure, entry: usize, cycle: u64) {
        let _ = (structure, entry, cycle);
    }
}

/// A probe that ignores every event (used for plain simulation and fault
/// injection runs).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// A probe that records every event verbatim; convenient in tests.
#[derive(Debug, Default, Clone)]
pub struct RecordingProbe {
    /// All write events as (structure, entry, cycle).
    pub writes: Vec<(Structure, usize, u64)>,
    /// All committed-read events.
    pub reads: Vec<(Structure, ReadInfo)>,
    /// All invalidate events as (structure, entry, cycle).
    pub invalidates: Vec<(Structure, usize, u64)>,
}

impl Probe for RecordingProbe {
    fn write(&mut self, structure: Structure, entry: usize, cycle: u64) {
        self.writes.push((structure, entry, cycle));
    }

    fn committed_read(&mut self, structure: Structure, info: &ReadInfo) {
        self.reads.push((structure, *info));
    }

    fn invalidate(&mut self, structure: Structure, entry: usize, cycle: u64) {
        self.invalidates.push((structure, entry, cycle));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_metadata() {
        for &s in Structure::all() {
            assert_eq!(s.bits_per_entry(), 64);
            assert_eq!(s.bytes_per_entry(), 8);
            assert!(!s.short_name().is_empty());
            assert_eq!(s.to_string(), s.short_name());
        }
        assert_eq!(Structure::all().len(), 3);
    }

    #[test]
    fn recording_probe_collects_events() {
        let mut p = RecordingProbe::default();
        p.write(Structure::RegisterFile, 3, 10);
        p.invalidate(Structure::StoreQueue, 1, 20);
        p.committed_read(
            Structure::L1DCache,
            &ReadInfo {
                entry: 7,
                cycle: 15,
                rip: 2,
                upc: 0,
                dyn_instance: 4,
                path_sig: 0xabc,
            },
        );
        assert_eq!(p.writes.len(), 1);
        assert_eq!(p.invalidates.len(), 1);
        assert_eq!(p.reads.len(), 1);
        assert_eq!(p.reads[0].1.entry, 7);
    }

    #[test]
    fn null_probe_is_a_no_op() {
        let mut p = NullProbe;
        p.write(Structure::RegisterFile, 0, 0);
        p.invalidate(Structure::RegisterFile, 0, 0);
        p.committed_read(
            Structure::RegisterFile,
            &ReadInfo {
                entry: 0,
                cycle: 0,
                rip: 0,
                upc: 0,
                dyn_instance: 0,
                path_sig: 0,
            },
        );
    }
}
