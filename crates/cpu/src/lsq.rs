//! Load queue and store queue.
//!
//! The store queue's *data field* is one of the paper's fault-injection
//! targets: store-data micro-ops physically deposit the value to be stored
//! in the slot, loads may forward from it, and the value is read out again
//! when the store drains to the cache at commit.  Slots are allocated
//! circularly so a fault specification's entry index denotes a physical slot.

use crate::cow::{CowTable, ForkBytes};
use crate::touched::{Restorable, TouchedSet};
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{MemSize, Rip, Upc};

/// Copy-on-write page size for the queue slot arrays, in slots.
const LSQ_PAGE: usize = 16;

/// One store-queue slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqSlot {
    /// Whether the slot currently holds an in-flight store.
    pub valid: bool,
    /// Sequence number of the owning store's STA micro-op.
    pub seq: u64,
    /// Effective address once the STA micro-op has executed.
    pub addr: Option<u64>,
    /// Access width.
    pub size: MemSize,
    /// The data field (fault-injection target).
    pub data: u64,
    /// Whether the STD micro-op has deposited the data.
    pub data_ready: bool,
    /// RIP of the owning store.
    pub rip: Rip,
    /// uPC of the store-data micro-op (the reader attributed when the store
    /// drains or forwards).
    pub upc_std: Upc,
}

impl SqSlot {
    fn empty() -> Self {
        SqSlot {
            valid: false,
            seq: 0,
            addr: None,
            size: MemSize::B8,
            data: 0,
            data_ready: false,
            rip: 0,
            upc_std: 0,
        }
    }
}

impl BinCode for SqSlot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.valid.encode(out);
        self.seq.encode(out);
        self.addr.encode(out);
        self.size.encode(out);
        self.data.encode(out);
        self.data_ready.encode(out);
        self.rip.encode(out);
        self.upc_std.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(SqSlot {
            valid: BinCode::decode(r)?,
            seq: BinCode::decode(r)?,
            addr: BinCode::decode(r)?,
            size: BinCode::decode(r)?,
            data: BinCode::decode(r)?,
            data_ready: BinCode::decode(r)?,
            rip: BinCode::decode(r)?,
            upc_std: BinCode::decode(r)?,
        })
    }
}

/// Circular store queue.  Slots are epoch-tagged ([`TouchedSet`]): every
/// mutation tags its slot, so same-snapshot restores rewrite only slots the
/// suffix changed (head/tail/count are scalars and always re-assigned).
/// Slots live on copy-on-write pages, so a fork shares them structurally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreQueue {
    slots: CowTable<SqSlot>,
    head: usize,
    tail: usize,
    count: usize,
    touched: TouchedSet,
}

impl StoreQueue {
    /// Creates a store queue with `n` slots.
    pub fn new(n: usize) -> Self {
        StoreQueue {
            slots: CowTable::from_fn(n, LSQ_PAGE, |_| SqSlot::empty()),
            head: 0,
            tail: 0,
            count: 0,
            touched: TouchedSet::new(n),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no stores are in flight.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `true` when no more stores can be dispatched.
    pub fn is_full(&self) -> bool {
        self.count == self.capacity()
    }

    /// Allocates the next slot (at the tail) for a store with the given
    /// sequence number; returns the physical slot index.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full (the dispatcher must check first).
    pub fn allocate(&mut self, seq: u64, rip: Rip) -> usize {
        assert!(!self.is_full(), "store queue overflow");
        let slot = self.tail;
        self.touched.mark(slot);
        *self.slots.get_mut(slot) = SqSlot {
            valid: true,
            seq,
            addr: None,
            size: MemSize::B8,
            data: 0,
            data_ready: false,
            rip,
            upc_std: 1,
        };
        self.tail = (self.tail + 1) % self.capacity();
        self.count += 1;
        slot
    }

    /// Frees the oldest store (commit-time drain).
    ///
    /// # Panics
    ///
    /// Panics if the freed slot is not the oldest valid slot.
    pub fn release_head(&mut self, slot: usize) {
        assert_eq!(slot, self.head, "stores must drain in order");
        assert!(self.slots.get(slot).valid);
        self.touched.mark(slot);
        self.slots.get_mut(slot).valid = false;
        self.head = (self.head + 1) % self.capacity();
        self.count -= 1;
    }

    /// Frees the youngest store (squash recovery).
    ///
    /// # Panics
    ///
    /// Panics if the freed slot is not the youngest valid slot.
    pub fn release_tail(&mut self, slot: usize) {
        let youngest = (self.tail + self.capacity() - 1) % self.capacity();
        assert_eq!(slot, youngest, "squash must free stores youngest-first");
        assert!(self.slots.get(slot).valid);
        self.touched.mark(slot);
        self.slots.get_mut(slot).valid = false;
        self.tail = youngest;
        self.count -= 1;
    }

    /// Immutable access to a slot.
    pub fn slot(&self, idx: usize) -> &SqSlot {
        self.slots.get(idx)
    }

    /// Mutable access to a slot.  Conservatively tags the slot as mutated —
    /// callers take this only to write.
    pub fn slot_mut(&mut self, idx: usize) -> &mut SqSlot {
        self.touched.mark(idx);
        self.slots.get_mut(idx)
    }

    /// Iterates over the valid slots (any order).
    pub fn valid_slots(&self) -> impl Iterator<Item = (usize, &SqSlot)> {
        self.slots.iter().enumerate().filter(|(_, s)| s.valid)
    }

    /// Checks whether every older (by sequence number) valid store has a
    /// known address — the conservative memory-disambiguation condition a
    /// load must satisfy before issuing.
    pub fn older_addresses_known(&self, load_seq: u64) -> bool {
        self.valid_slots()
            .filter(|(_, s)| s.seq < load_seq)
            .all(|(_, s)| s.addr.is_some())
    }

    /// Finds the youngest older store that overlaps `[addr, addr+len)`.
    /// Returns `(slot index, fully_covers)`.
    pub fn forwarding_candidate(
        &self,
        load_seq: u64,
        addr: u64,
        len: u64,
    ) -> Option<(usize, bool)> {
        let mut best: Option<(usize, u64, bool)> = None;
        for (i, s) in self.valid_slots() {
            if s.seq >= load_seq {
                continue;
            }
            let Some(saddr) = s.addr else { continue };
            let slen = s.size.bytes();
            let overlap = saddr < addr + len && addr < saddr + slen;
            if !overlap {
                continue;
            }
            let covers = saddr <= addr && saddr + slen >= addr + len;
            if best.is_none_or(|(_, bseq, _)| s.seq > bseq) {
                best = Some((i, s.seq, covers));
            }
        }
        best.map(|(i, _, covers)| (i, covers))
    }

    /// Flips one bit of a slot's data field — the store-queue fault-injection
    /// hook.  Applies regardless of slot validity.
    pub fn flip_bit(&mut self, slot: usize, bit: u8) {
        self.touched.mark(slot);
        self.slots.get_mut(slot).data ^= 1u64 << bit;
    }

    /// Slots where `self` and `other` differ (head/tail/count are compared
    /// directly by the convergence probe).  Shared pages are skipped.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(self.slots.len());
        self.slots.for_each_diff(&other.slots, |i| d.mark(i));
        d
    }

    /// Whether the scalars and every tagged slot equal `g`'s copies.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.head == g.head
            && self.tail == g.tail
            && self.count == g.count
            && self
                .touched
                .iter()
                .all(|i| self.slots.get(i) == g.slots.get(i))
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }

    /// Forks from `src` by sharing its page handles and mirroring its tags.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.slots.len(), src.slots.len());
        self.head = src.head;
        self.tail = src.tail;
        self.count = src.count;
        self.slots.share_from(&src.slots);
        self.touched.copy_from(&src.touched);
        let slot_bytes = std::mem::size_of::<SqSlot>() as u64;
        ForkBytes {
            copied: 0,
            eager: src.touched.count() as u64 * slot_bytes,
            shared: src.slots.len() as u64 * slot_bytes,
        }
    }

    /// Un-share counter of the slot array, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.slots.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.slots.unshare_all();
    }

    /// Whether no page is shared with any other queue.
    pub(crate) fn fully_private(&self) -> bool {
        self.slots.fully_private()
    }
}

impl Restorable for StoreQueue {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.slots.len(), snap.slots.len());
        self.head = snap.head;
        self.tail = snap.tail;
        self.count = snap.count;
        let slot_bytes = std::mem::size_of::<SqSlot>() as u64;
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                *self.slots.get_mut(i) = snap.slots.get(i).clone();
                n += slot_bytes;
            }
            n
        } else {
            self.slots.share_from(&snap.slots);
            self.touched.clear_all();
            self.slots.len() as u64 * slot_bytes
        }
    }
}

impl BinCode for StoreQueue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.slots.encode_seq(out);
        self.head.encode(out);
        self.tail.encode(out);
        self.count.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let slots = CowTable::<SqSlot>::decode_seq(r, LSQ_PAGE)?;
        let head = usize::decode(r)?;
        let tail = usize::decode(r)?;
        let count = usize::decode(r)?;
        if slots.is_empty()
            || head >= slots.len()
            || tail >= slots.len()
            || count > slots.len()
            || count != slots.iter().filter(|s| s.valid).count()
        {
            return Err(DecodeError::Invalid("store queue shape"));
        }
        let touched = TouchedSet::new(slots.len());
        Ok(StoreQueue {
            slots,
            head,
            tail,
            count,
            touched,
        })
    }
}

/// Load queue: only tracks occupancy (Gem5 models no data field in the load
/// queue, and neither does the paper).  Slots are epoch-tagged like the
/// store queue's and live on copy-on-write pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadQueue {
    seqs: CowTable<Option<u64>>,
    count: usize,
    touched: TouchedSet,
}

impl LoadQueue {
    /// Creates a load queue with `n` slots.
    pub fn new(n: usize) -> Self {
        LoadQueue {
            seqs: CowTable::new(n, None, LSQ_PAGE),
            count: 0,
            touched: TouchedSet::new(n),
        }
    }

    /// Occupied slots.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when no loads are in flight.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// `true` when no more loads can be dispatched.
    pub fn is_full(&self) -> bool {
        self.count == self.seqs.len()
    }

    /// Allocates a slot for the load with sequence number `seq`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full.
    pub fn allocate(&mut self, seq: u64) -> usize {
        assert!(!self.is_full(), "load queue overflow");
        let slot = self
            .seqs
            .iter()
            .position(|s| s.is_none())
            .expect("free load-queue slot");
        self.touched.mark(slot);
        *self.seqs.get_mut(slot) = Some(seq);
        self.count += 1;
        slot
    }

    /// Releases the slot of the load with sequence number `seq` (commit or
    /// squash).
    pub fn release(&mut self, slot: usize) {
        if self.seqs.get(slot).is_some() {
            *self.seqs.get_mut(slot) = None;
            self.touched.mark(slot);
            self.count -= 1;
        }
    }

    /// Slots where `self` and `other` differ.  Shared pages are skipped.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(self.seqs.len());
        self.seqs.for_each_diff(&other.seqs, |i| d.mark(i));
        d
    }

    /// Whether the occupancy count and every tagged slot equal `g`'s copies.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.count == g.count
            && self
                .touched
                .iter()
                .all(|i| self.seqs.get(i) == g.seqs.get(i))
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }

    /// Forks from `src` by sharing its page handles and mirroring its tags.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.seqs.len(), src.seqs.len());
        self.count = src.count;
        self.seqs.share_from(&src.seqs);
        self.touched.copy_from(&src.touched);
        let slot_bytes = std::mem::size_of::<Option<u64>>() as u64;
        ForkBytes {
            copied: 0,
            eager: src.touched.count() as u64 * slot_bytes,
            shared: src.seqs.len() as u64 * slot_bytes,
        }
    }

    /// Un-share counter of the slot array, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.seqs.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.seqs.unshare_all();
    }

    /// Whether no page is shared with any other queue.
    pub(crate) fn fully_private(&self) -> bool {
        self.seqs.fully_private()
    }
}

impl Restorable for LoadQueue {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.seqs.len(), snap.seqs.len());
        self.count = snap.count;
        let slot_bytes = std::mem::size_of::<Option<u64>>() as u64;
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                *self.seqs.get_mut(i) = *snap.seqs.get(i);
                n += slot_bytes;
            }
            n
        } else {
            self.seqs.share_from(&snap.seqs);
            self.touched.clear_all();
            self.seqs.len() as u64 * slot_bytes
        }
    }
}

impl BinCode for LoadQueue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seqs.encode_seq(out);
        self.count.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let seqs = CowTable::<Option<u64>>::decode_seq(r, LSQ_PAGE)?;
        let count = usize::decode(r)?;
        if count != seqs.iter().filter(|s| s.is_some()).count() {
            return Err(DecodeError::Invalid("load queue count"));
        }
        let touched = TouchedSet::new(seqs.len());
        Ok(LoadQueue {
            seqs,
            count,
            touched,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circular_allocation_and_ordered_release() {
        let mut sq = StoreQueue::new(4);
        let a = sq.allocate(10, 1);
        let b = sq.allocate(11, 2);
        let c = sq.allocate(12, 3);
        assert_eq!((a, b, c), (0, 1, 2));
        assert_eq!(sq.len(), 3);
        sq.release_head(a);
        sq.release_head(b);
        let d = sq.allocate(13, 4);
        let e = sq.allocate(14, 5);
        assert_eq!(d, 3);
        assert_eq!(e, 0, "allocation wraps around");
        assert!(!sq.is_full());
        sq.allocate(15, 6);
        assert!(sq.is_full());
    }

    #[test]
    fn squash_releases_youngest_first() {
        let mut sq = StoreQueue::new(4);
        let a = sq.allocate(1, 0);
        let b = sq.allocate(2, 0);
        sq.release_tail(b);
        sq.release_tail(a);
        assert!(sq.is_empty());
        // Queue is usable again.
        assert_eq!(sq.allocate(3, 0), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_head_release_panics() {
        let mut sq = StoreQueue::new(4);
        let _a = sq.allocate(1, 0);
        let b = sq.allocate(2, 0);
        sq.release_head(b);
    }

    #[test]
    fn forwarding_picks_youngest_covering_store() {
        let mut sq = StoreQueue::new(8);
        let s0 = sq.allocate(10, 0);
        sq.slot_mut(s0).addr = Some(0x1000);
        sq.slot_mut(s0).size = MemSize::B8;
        sq.slot_mut(s0).data = 0xAAAA;
        sq.slot_mut(s0).data_ready = true;
        let s1 = sq.allocate(20, 0);
        sq.slot_mut(s1).addr = Some(0x1000);
        sq.slot_mut(s1).size = MemSize::B8;
        sq.slot_mut(s1).data = 0xBBBB;
        sq.slot_mut(s1).data_ready = true;
        // A load younger than both forwards from the youngest older store.
        let (slot, covers) = sq.forwarding_candidate(30, 0x1000, 8).unwrap();
        assert_eq!(slot, s1);
        assert!(covers);
        // A load between the two stores only sees the older one.
        let (slot, _) = sq.forwarding_candidate(15, 0x1000, 8).unwrap();
        assert_eq!(slot, s0);
        // Partial overlap is flagged as not covering.
        let (_, covers) = sq.forwarding_candidate(30, 0x1004, 8).unwrap();
        assert!(!covers);
        // No overlap at all.
        assert!(sq.forwarding_candidate(30, 0x2000, 8).is_none());
    }

    #[test]
    fn older_address_disambiguation() {
        let mut sq = StoreQueue::new(4);
        let s0 = sq.allocate(5, 0);
        assert!(!sq.older_addresses_known(10));
        sq.slot_mut(s0).addr = Some(0x1000);
        assert!(sq.older_addresses_known(10));
        // Stores younger than the load do not matter.
        let _s1 = sq.allocate(20, 0);
        assert!(sq.older_addresses_known(10));
    }

    #[test]
    fn flip_bit_touches_only_data_field() {
        let mut sq = StoreQueue::new(2);
        let s = sq.allocate(1, 0);
        sq.slot_mut(s).data = 0;
        sq.flip_bit(s, 7);
        assert_eq!(sq.slot(s).data, 1 << 7);
        assert_eq!(sq.slot(s).addr, None);
    }

    #[test]
    fn load_queue_capacity() {
        let mut lq = LoadQueue::new(2);
        assert!(lq.is_empty());
        let a = lq.allocate(1);
        let b = lq.allocate(2);
        assert!(lq.is_full());
        lq.release(a);
        assert_eq!(lq.len(), 1);
        lq.release(b);
        assert!(lq.is_empty());
    }
}
