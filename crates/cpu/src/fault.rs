//! Transient-fault specification applied to live microarchitectural state.

use crate::Structure;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single-bit transient fault: at the start of `cycle`, bit `bit` of entry
/// `entry` of `structure` is flipped in the live simulator state, exactly as
/// the paper's GeFIN injector flips a physical bit of a Gem5 structure.
///
/// # Examples
///
/// ```
/// use merlin_cpu::{FaultSpec, Structure};
/// let f = FaultSpec::new(Structure::RegisterFile, 17, 5, 1000);
/// assert_eq!(f.byte(), 0);
/// let f = FaultSpec::new(Structure::StoreQueue, 3, 63, 42);
/// assert_eq!(f.byte(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target structure.
    pub structure: Structure,
    /// Entry index within the structure (physical register index, store
    /// queue slot, or flattened L1D word index).
    pub entry: usize,
    /// Bit position within the 64-bit entry (0 = least significant).
    pub bit: u8,
    /// Cycle at whose start the flip is applied.
    pub cycle: u64,
}

impl FaultSpec {
    /// Creates a fault specification.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`.
    pub fn new(structure: Structure, entry: usize, bit: u8, cycle: u64) -> Self {
        assert!(bit < 64, "bit index {bit} out of range");
        FaultSpec {
            structure,
            entry,
            bit,
            cycle,
        }
    }

    /// The byte position (0–7) within the entry that this fault hits — the
    /// key of MeRLiN's second grouping step.
    pub fn byte(&self) -> u8 {
        self.bit / 8
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] bit {} @ cycle {}",
            self.structure, self.entry, self.bit, self.cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_positions() {
        for bit in 0u8..64 {
            let f = FaultSpec::new(Structure::L1DCache, 0, bit, 0);
            assert_eq!(f.byte(), bit / 8);
        }
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        let _ = FaultSpec::new(Structure::RegisterFile, 0, 64, 0);
    }

    #[test]
    fn display_mentions_structure_and_cycle() {
        let f = FaultSpec::new(Structure::StoreQueue, 2, 9, 77);
        let s = f.to_string();
        assert!(s.contains("SQ"));
        assert!(s.contains("77"));
    }
}
