//! Transient-fault specification applied to live microarchitectural state.

use crate::Structure;
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned by [`FaultSpec::try_new`] for specifications that violate
/// the single-bit-per-64-bit-entry fault model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpecError {
    /// The offending bit index (`>= 64`).
    pub bit: u8,
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bit index {} out of range (entries are 64 bits)",
            self.bit
        )
    }
}

impl std::error::Error for FaultSpecError {}

/// A single-bit transient fault: at the start of `cycle`, bit `bit` of entry
/// `entry` of `structure` is flipped in the live simulator state, exactly as
/// the paper's GeFIN injector flips a physical bit of a Gem5 structure.
///
/// # Examples
///
/// ```
/// use merlin_cpu::{FaultSpec, Structure};
/// let f = FaultSpec::new(Structure::RegisterFile, 17, 5, 1000);
/// assert_eq!(f.byte(), 0);
/// let f = FaultSpec::new(Structure::StoreQueue, 3, 63, 42);
/// assert_eq!(f.byte(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Target structure.
    pub structure: Structure,
    /// Entry index within the structure (physical register index, store
    /// queue slot, or flattened L1D word index).
    pub entry: usize,
    /// Bit position within the 64-bit entry (0 = least significant).
    pub bit: u8,
    /// Cycle at whose start the flip is applied.
    pub cycle: u64,
}

impl FaultSpec {
    /// Creates a fault specification, rejecting bit indices outside the
    /// 64-bit entry width.
    ///
    /// Fault lists handed to a campaign session are validated with
    /// [`FaultSpec::validate`] at the session boundary, so a bad
    /// specification surfaces as an error result rather than a worker panic
    /// mid-campaign.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] if `bit >= 64`.
    ///
    /// # Examples
    ///
    /// ```
    /// use merlin_cpu::{FaultSpec, Structure};
    /// assert!(FaultSpec::try_new(Structure::RegisterFile, 0, 63, 1).is_ok());
    /// assert!(FaultSpec::try_new(Structure::RegisterFile, 0, 64, 1).is_err());
    /// ```
    pub fn try_new(
        structure: Structure,
        entry: usize,
        bit: u8,
        cycle: u64,
    ) -> Result<Self, FaultSpecError> {
        if bit >= 64 {
            return Err(FaultSpecError { bit });
        }
        Ok(FaultSpec {
            structure,
            entry,
            bit,
            cycle,
        })
    }

    /// Creates a fault specification.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 64`; use [`FaultSpec::try_new`] to handle the error
    /// instead.
    pub fn new(structure: Structure, entry: usize, bit: u8, cycle: u64) -> Self {
        Self::try_new(structure, entry, bit, cycle)
            .unwrap_or_else(|_| panic!("bit index {bit} out of range"))
    }

    /// Checks the specification against the fault model (the fields are
    /// public, so a specification built with a struct literal may bypass
    /// [`FaultSpec::try_new`]).
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] if `bit >= 64`.
    pub fn validate(&self) -> Result<(), FaultSpecError> {
        if self.bit >= 64 {
            return Err(FaultSpecError { bit: self.bit });
        }
        Ok(())
    }

    /// The byte position (0–7) within the entry that this fault hits — the
    /// key of MeRLiN's second grouping step.
    pub fn byte(&self) -> u8 {
        self.bit / 8
    }
}

impl BinCode for FaultSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.structure.encode(out);
        self.entry.encode(out);
        self.bit.encode(out);
        self.cycle.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let spec = FaultSpec {
            structure: BinCode::decode(r)?,
            entry: BinCode::decode(r)?,
            bit: BinCode::decode(r)?,
            cycle: BinCode::decode(r)?,
        };
        spec.validate()
            .map_err(|_| DecodeError::Invalid("fault bit index"))?;
        Ok(spec)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] bit {} @ cycle {}",
            self.structure, self.entry, self.bit, self.cycle
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_positions() {
        for bit in 0u8..64 {
            let f = FaultSpec::new(Structure::L1DCache, 0, bit, 0);
            assert_eq!(f.byte(), bit / 8);
        }
    }

    #[test]
    #[should_panic]
    fn bit_out_of_range_panics() {
        let _ = FaultSpec::new(Structure::RegisterFile, 0, 64, 0);
    }

    #[test]
    fn display_mentions_structure_and_cycle() {
        let f = FaultSpec::new(Structure::StoreQueue, 2, 9, 77);
        let s = f.to_string();
        assert!(s.contains("SQ"));
        assert!(s.contains("77"));
    }

    #[test]
    fn try_new_rejects_wide_bits_and_validate_catches_literals() {
        assert!(FaultSpec::try_new(Structure::L1DCache, 0, 63, 5).is_ok());
        let err = FaultSpec::try_new(Structure::L1DCache, 0, 64, 5).unwrap_err();
        assert_eq!(err.bit, 64);
        assert!(err.to_string().contains("64"));
        let literal = FaultSpec {
            structure: Structure::RegisterFile,
            entry: 0,
            bit: 200,
            cycle: 1,
        };
        assert!(literal.validate().is_err());
        assert!(FaultSpec::new(Structure::RegisterFile, 0, 0, 1)
            .validate()
            .is_ok());
    }

    #[test]
    fn bincode_roundtrip_validates() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let f = FaultSpec::new(Structure::StoreQueue, 3, 17, 12345);
        let bytes = encode_to_vec(&f);
        assert_eq!(decode_from_slice::<FaultSpec>(&bytes).unwrap(), f);
        // An encoding carrying an invalid bit index is rejected.
        let bad = FaultSpec { bit: 99, ..f };
        let bytes = encode_to_vec(&bad);
        assert!(decode_from_slice::<FaultSpec>(&bytes).is_err());
    }
}
