//! Set-associative write-back caches and the two-level memory system.
//!
//! The L1 data cache's data array is one of the paper's three fault-injection
//! targets, so the cache stores *actual data bytes*: a bit flipped in a line
//! propagates to loads, writebacks and refills exactly as it would in
//! hardware.  The L2 is modelled with the same structure (1 MB, 16-way in the
//! baseline configuration) but is not a fault target.

use crate::config::CacheConfig;
use crate::cow::{CowTable, ForkBytes};
use crate::memory::{MemError, Memory, MemoryDelta};
use crate::touched::TouchedSet;
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::MemSize;
use serde::{Deserialize, Serialize};

/// One cache line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct CacheLine {
    valid: bool,
    dirty: bool,
    tag: u64,
    data: Vec<u8>,
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache with true data
/// storage and LRU replacement.
///
/// Besides the lines themselves, the cache keeps a *touched* bitset: one bit
/// per line, set whenever any snapshotted per-line state (valid, dirty, tag,
/// LRU stamp or data) may have changed, and cleared by every restore.  The
/// bitset is what makes same-snapshot restores incremental — only lines
/// touched since the previous restore need rewriting (see
/// [`Cache::restore_snapshot_incremental`]).  It is bookkeeping about *how*
/// the cache diverged from the last restore point, not architectural state:
/// equality compares lines and the LRU counter only.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Lines in `set * ways + way` order, on copy-on-write pages of one set
    /// each — a fork shares every set the faulty suffix never writes.
    lines: CowTable<CacheLine>,
    use_counter: u64,
    /// One bit per line (`set * ways + way`), set on any line mutation since
    /// the last restore.
    touched: TouchedSet,
}

impl PartialEq for Cache {
    fn eq(&self, other: &Self) -> bool {
        self.cfg == other.cfg && self.use_counter == other.use_counter && self.lines == other.lines
    }
}

impl Cache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let line = CacheLine {
            valid: false,
            dirty: false,
            tag: 0,
            data: vec![0; cfg.line_bytes as usize],
            last_use: 0,
        };
        let lines = cfg.sets() * cfg.ways;
        Cache {
            lines: CowTable::new(lines, line, cfg.ways),
            cfg,
            use_counter: 0,
            touched: TouchedSet::new(lines),
        }
    }

    /// Flattened line index of `(set, way)`.
    #[inline]
    fn line_index(&self, set: usize, way: usize) -> usize {
        set * self.cfg.ways + way
    }

    /// Marks the line at `(set, way)` as touched since the last restore.
    #[inline]
    fn mark_touched(&mut self, set: usize, way: usize) {
        self.touched.mark(set * self.cfg.ways + way);
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) % self.cfg.sets() as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets() as u64
    }

    /// The line-aligned base address containing `addr`.
    pub fn line_base(&self, addr: u64) -> u64 {
        addr - addr % self.cfg.line_bytes
    }

    /// Looks up `addr`; returns `(set, way)` on a hit.
    pub fn lookup(&mut self, addr: u64) -> Option<(usize, usize)> {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        for way in 0..self.cfg.ways {
            let l = self.lines.get(self.line_index(set, way));
            if l.valid && l.tag == tag {
                return Some((set, way));
            }
        }
        None
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.use_counter += 1;
        let idx = self.line_index(set, way);
        self.lines.get_mut(idx).last_use = self.use_counter;
        self.mark_touched(set, way);
    }

    /// Picks the LRU victim way within `set` (invalid ways first).
    pub fn victim_way(&self, set: usize) -> usize {
        for way in 0..self.cfg.ways {
            if !self.lines.get(self.line_index(set, way)).valid {
                return way;
            }
        }
        (0..self.cfg.ways)
            .min_by_key(|&w| self.lines.get(self.line_index(set, w)).last_use)
            .expect("cache has at least one way")
    }

    /// Reads bytes `[offset, offset+len)` of the line at `(set, way)`.
    pub fn read_bytes(&mut self, set: usize, way: usize, offset: usize, len: usize) -> u64 {
        self.touch(set, way);
        let line = self.lines.get(self.line_index(set, way));
        let mut v = 0u64;
        for i in 0..len {
            v |= (line.data[offset + i] as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `len` bytes of `value` at `offset` of the line at
    /// `(set, way)` and marks it dirty.
    pub fn write_bytes(&mut self, set: usize, way: usize, offset: usize, len: usize, value: u64) {
        self.touch(set, way);
        let idx = self.line_index(set, way);
        let line = self.lines.get_mut(idx);
        for i in 0..len {
            line.data[offset + i] = ((value >> (8 * i)) & 0xFF) as u8;
        }
        line.dirty = true;
    }

    /// Installs a whole line for `addr`, returning the evicted victim
    /// `(set, way, dirty, victim_line_addr, old_data)` if a valid line had to
    /// be displaced.
    #[allow(clippy::type_complexity)]
    pub fn install(
        &mut self,
        addr: u64,
        data: Vec<u8>,
        dirty: bool,
    ) -> (usize, usize, Option<(bool, u64, Vec<u8>)>) {
        assert_eq!(data.len(), self.cfg.line_bytes as usize);
        // If the line is already resident, update it in place (no duplicate
        // copies, no eviction).
        if let Some((set, way)) = self.lookup(addr) {
            self.use_counter += 1;
            let last_use = self.use_counter;
            self.mark_touched(set, way);
            let idx = self.line_index(set, way);
            let line = self.lines.get_mut(idx);
            line.data = data;
            line.dirty = line.dirty || dirty;
            line.last_use = last_use;
            return (set, way, None);
        }
        let set = self.set_index(addr);
        let way = self.victim_way(set);
        let evicted = {
            let l = self.lines.get(self.line_index(set, way));
            if l.valid {
                let victim_addr =
                    (l.tag * self.cfg.sets() as u64 + set as u64) * self.cfg.line_bytes;
                Some((l.dirty, victim_addr, l.data.clone()))
            } else {
                None
            }
        };
        let tag = self.tag(addr);
        self.use_counter += 1;
        let last_use = self.use_counter;
        self.mark_touched(set, way);
        let idx = self.line_index(set, way);
        let line = self.lines.get_mut(idx);
        line.valid = true;
        line.dirty = dirty;
        line.tag = tag;
        line.data = data;
        line.last_use = last_use;
        (set, way, evicted)
    }

    /// A copy of the line data at `(set, way)`.
    pub fn line_data(&self, set: usize, way: usize) -> &[u8] {
        &self.lines.get(self.line_index(set, way)).data
    }

    /// Whether the line at `(set, way)` is valid.
    pub fn is_valid(&self, set: usize, way: usize) -> bool {
        self.lines.get(self.line_index(set, way)).valid
    }

    /// Whether the line at `(set, way)` is dirty.
    pub fn is_dirty(&self, set: usize, way: usize) -> bool {
        self.lines.get(self.line_index(set, way)).dirty
    }

    /// Flips a single stored bit — the L1D fault-injection hook.  The flip
    /// happens regardless of the line's valid bit (the SRAM cell exists
    /// either way); faults in invalid lines are naturally masked because the
    /// next refill overwrites them.
    pub fn flip_bit(&mut self, set: usize, way: usize, byte: usize, bit: u8) {
        self.mark_touched(set, way);
        let idx = self.line_index(set, way);
        self.lines.get_mut(idx).data[byte] ^= 1 << bit;
    }

    /// Flattened 8-byte-word entry index of `(set, way, word_in_line)` used
    /// by probes and fault specifications.
    pub fn word_entry(&self, set: usize, way: usize, word_in_line: usize) -> usize {
        (set * self.cfg.ways + way) * self.cfg.words_per_line() + word_in_line
    }

    /// Inverse of [`Cache::word_entry`].
    pub fn entry_location(&self, entry: usize) -> (usize, usize, usize) {
        let wpl = self.cfg.words_per_line();
        let line = entry / wpl;
        let word = entry % wpl;
        let set = line / self.cfg.ways;
        let way = line % self.cfg.ways;
        (set, way, word)
    }

    /// Captures the live contents of the cache.  Only valid lines are stored,
    /// so the snapshot footprint is proportional to the data actually cached,
    /// not to the cache's capacity (a mostly-idle 1 MB L2 snapshots in a few
    /// hundred bytes).
    pub fn snapshot(&self) -> CacheSnapshot {
        let mut lines = Vec::new();
        for (idx, l) in self.lines.iter().enumerate() {
            if l.valid {
                lines.push(LineSnapshot {
                    set: (idx / self.cfg.ways) as u32,
                    way: (idx % self.cfg.ways) as u32,
                    tag: l.tag,
                    dirty: l.dirty,
                    last_use: l.last_use,
                    data: l.data.clone().into_boxed_slice(),
                });
            }
        }
        CacheSnapshot {
            use_counter: self.use_counter,
            lines,
        }
    }

    /// Restores the cache to a previously captured snapshot, reusing the
    /// existing line buffers (no allocation on the restore path).  Returns
    /// the number of line-data bytes copied from the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a cache with different geometry.
    pub fn restore_snapshot(&mut self, snap: &CacheSnapshot) -> usize {
        let mut restored = 0;
        for idx in 0..self.lines.len() {
            // Invalidating a line that is already invalid is a no-op; the
            // guard keeps idle pages shared instead of breaking them.
            if self.lines.get(idx).valid {
                self.lines.get_mut(idx).valid = false;
            }
        }
        for s in &snap.lines {
            let idx = s.set as usize * self.cfg.ways + s.way as usize;
            let line = self.lines.get_mut(idx);
            line.valid = true;
            line.dirty = s.dirty;
            line.tag = s.tag;
            line.last_use = s.last_use;
            line.data.copy_from_slice(&s.data);
            restored += s.data.len();
        }
        self.use_counter = snap.use_counter;
        self.touched.clear_all();
        restored
    }

    /// Restores only the lines touched since the last restore, for a cache
    /// that is known to have matched `snap` exactly at that restore (the
    /// same-snapshot fast path of `Cpu::restore_from`).  Untouched lines
    /// still equal the snapshot by construction, so rewriting the touched
    /// set alone reproduces [`Cache::restore_snapshot`] bit for bit at
    /// O(lines touched by the suffix run) cost.  Returns the number of
    /// line-data bytes copied.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot was taken from a cache with different geometry.
    pub fn restore_snapshot_incremental(&mut self, snap: &CacheSnapshot) -> usize {
        let mut restored = 0;
        let ways = self.cfg.ways;
        // `snap.lines` is (set, way)-ascending (snapshot iterates set-major),
        // and the touched set drains in ascending line index, so one merge
        // pointer finds each touched line's snapshot entry, if any.
        let mut si = 0;
        for idx in self.touched.drain() {
            while si < snap.lines.len()
                && (snap.lines[si].set as usize * ways + snap.lines[si].way as usize) < idx
            {
                si += 1;
            }
            let line = self.lines.get_mut(idx);
            match snap.lines.get(si) {
                Some(s) if s.set as usize * ways + s.way as usize == idx => {
                    line.valid = true;
                    line.dirty = s.dirty;
                    line.tag = s.tag;
                    line.last_use = s.last_use;
                    line.data.copy_from_slice(&s.data);
                    restored += s.data.len();
                }
                _ => line.valid = false,
            }
        }
        self.use_counter = snap.use_counter;
        restored
    }

    /// Forks from `src` by sharing its page handles — one set per page, no
    /// line data copied — and mirroring its tags, so `self` becomes
    /// bit-identical to `src` at O(pages) cost.
    pub fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.cfg, src.cfg);
        self.lines.share_from(&src.lines);
        self.touched.copy_from(&src.touched);
        self.use_counter = src.use_counter;
        ForkBytes {
            copied: 0,
            eager: src.touched.count() as u64 * self.cfg.line_bytes,
            shared: self.lines.len() as u64 * self.cfg.line_bytes,
        }
    }

    /// Un-share counter of the line array, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.lines.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.lines.unshare_all();
    }

    /// Whether no page is shared with any other cache.
    pub(crate) fn fully_private(&self) -> bool {
        self.lines.fully_private()
    }

    /// Whether the cache's live contents are bit-identical to the snapshot.
    pub fn matches_snapshot(&self, snap: &CacheSnapshot) -> bool {
        if self.use_counter != snap.use_counter {
            return false;
        }
        let mut it = snap.lines.iter();
        for (idx, l) in self.lines.iter().enumerate() {
            if !l.valid {
                continue;
            }
            let Some(s) = it.next() else { return false };
            if s.set as usize != idx / self.cfg.ways
                || s.way as usize != idx % self.cfg.ways
                || s.tag != l.tag
                || s.dirty != l.dirty
                || s.last_use != l.last_use
                || *s.data != *l.data
            {
                return false;
            }
        }
        it.next().is_none()
    }
}

/// One valid line captured by [`Cache::snapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct LineSnapshot {
    set: u32,
    way: u32,
    tag: u64,
    dirty: bool,
    last_use: u64,
    data: Box<[u8]>,
}

impl BinCode for LineSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.set.encode(out);
        self.way.encode(out);
        self.tag.encode(out);
        self.dirty.encode(out);
        self.last_use.encode(out);
        self.data.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(LineSnapshot {
            set: BinCode::decode(r)?,
            way: BinCode::decode(r)?,
            tag: BinCode::decode(r)?,
            dirty: BinCode::decode(r)?,
            last_use: BinCode::decode(r)?,
            data: BinCode::decode(r)?,
        })
    }
}

/// The live contents of one cache, valid lines only (see
/// [`Cache::snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheSnapshot {
    use_counter: u64,
    lines: Vec<LineSnapshot>,
}

impl BinCode for CacheSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.use_counter.encode(out);
        self.lines.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let use_counter = u64::decode(r)?;
        let lines = Vec::<LineSnapshot>::decode(r)?;
        // `Cache::snapshot` emits lines strictly (set, way)-ascending and
        // the incremental restore's merge walk silently depends on it, so a
        // corrupt `.golden` payload must fail decode rather than produce a
        // snapshot whose second restore quietly diverges (the same posture
        // as `MemoryDelta`'s ascending-index validation).
        let ascending = lines
            .windows(2)
            .all(|w| (w[0].set, w[0].way) < (w[1].set, w[1].way));
        if !ascending {
            return Err(DecodeError::Invalid("cache snapshot lines not ascending"));
        }
        Ok(CacheSnapshot { use_counter, lines })
    }
}

impl CacheSnapshot {
    /// Number of valid lines captured.
    pub fn lines(&self) -> usize {
        self.lines.len()
    }

    /// Approximate heap footprint of the snapshot in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.lines
            .iter()
            .map(|l| l.data.len() + std::mem::size_of::<LineSnapshot>())
            .sum()
    }
}

/// The full memory-hierarchy state captured by [`MemSystem::snapshot`]:
/// sparse cache images plus a chunk-level [`MemoryDelta`] of the backing
/// memory against the pristine program image (see
/// [`Memory::delta_snapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemSystemSnapshot {
    l1d: CacheSnapshot,
    l2: CacheSnapshot,
    mem: MemoryDelta,
}

impl MemSystemSnapshot {
    /// Approximate heap footprint of the snapshot in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.l1d.footprint_bytes() + self.l2.footprint_bytes() + self.mem.footprint_bytes()
    }

    /// Bytes the memory delta occupies (the memory part of
    /// [`Self::footprint_bytes`]).
    pub fn memory_delta_bytes(&self) -> usize {
        self.mem.footprint_bytes()
    }

    /// Bytes a dense memory image of the same snapshot would occupy.
    pub fn memory_dense_bytes(&self) -> usize {
        self.mem.dense_len()
    }
}

impl BinCode for MemSystemSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.l1d.encode(out);
        self.l2.encode(out);
        self.mem.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(MemSystemSnapshot {
            l1d: BinCode::decode(r)?,
            l2: BinCode::decode(r)?,
            mem: BinCode::decode(r)?,
        })
    }
}

/// Per-access side effects on the L1D data array, expressed as flattened
/// word-entry indices (see [`Cache::word_entry`]).  The core turns these into
/// probe events: reads are attached to the requesting micro-op and reported
/// only if it commits; writes, invalidates and writeback reads are physical
/// effects reported immediately.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CacheEffects {
    /// Words read by this access.
    pub word_reads: Vec<usize>,
    /// Words written by this access (stores covering the full word, refills,
    /// drains).
    pub word_writes: Vec<usize>,
    /// Words of lines that were evicted (their storage no longer holds live
    /// data for the old address).
    pub word_invalidates: Vec<usize>,
    /// Words of dirty lines that were read out and written back to L2.
    pub writeback_reads: Vec<usize>,
    /// Total access latency in cycles.
    pub latency: u64,
}

impl CacheEffects {
    fn merge(&mut self, other: CacheEffects) {
        self.word_reads.extend(other.word_reads);
        self.word_writes.extend(other.word_writes);
        self.word_invalidates.extend(other.word_invalidates);
        self.writeback_reads.extend(other.writeback_reads);
        self.latency = self.latency.max(other.latency);
    }
}

/// The two-level data memory system: L1D + L2 backed by flat [`Memory`].
#[derive(Debug, Clone, PartialEq)]
pub struct MemSystem {
    /// L1 data cache (fault-injection target).
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    /// Backing memory.
    pub mem: Memory,
    mem_latency: u64,
}

impl MemSystem {
    /// Creates the memory system with empty caches.
    pub fn new(l1d: CacheConfig, l2: CacheConfig, mem: Memory, mem_latency: u64) -> Self {
        MemSystem {
            l1d: Cache::new(l1d),
            l2: Cache::new(l2),
            mem,
            mem_latency,
        }
    }

    /// Architectural load: reads `size` bytes at `addr` through the cache
    /// hierarchy, returning the zero-extended value and the L1D side
    /// effects.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] for unmapped addresses; the cache
    /// state is left unchanged in that case.
    pub fn load(&mut self, addr: u64, size: MemSize) -> Result<(u64, CacheEffects), MemError> {
        self.mem.check_range(addr, size.bytes(), false)?;
        self.access(addr, size, None)
    }

    /// Architectural store: writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped addresses or stores into the code
    /// region.
    pub fn store(
        &mut self,
        addr: u64,
        value: u64,
        size: MemSize,
    ) -> Result<CacheEffects, MemError> {
        self.mem.check_range(addr, size.bytes(), true)?;
        let (_, eff) = self.access(addr, size, Some(value))?;
        Ok(eff)
    }

    fn access(
        &mut self,
        addr: u64,
        size: MemSize,
        write: Option<u64>,
    ) -> Result<(u64, CacheEffects), MemError> {
        let line_bytes = self.l1d.config().line_bytes;
        let first_line = addr / line_bytes;
        let last_line = (addr + size.bytes() - 1) / line_bytes;
        if first_line == last_line {
            return self.access_within_line(addr, size.bytes() as usize, write);
        }
        // Line-crossing access (possible when a fault corrupts an address):
        // split at the line boundary.
        let lo_bytes = (line_bytes - addr % line_bytes) as usize;
        let hi_bytes = size.bytes() as usize - lo_bytes;
        let mut effects = CacheEffects::default();
        let (lo_write, hi_write) = match write {
            Some(v) => (
                Some(v & low_mask(lo_bytes)),
                Some(v >> (8 * lo_bytes as u32)),
            ),
            None => (None, None),
        };
        let (lo_val, lo_eff) = self.access_within_line(addr, lo_bytes, lo_write)?;
        effects.merge(lo_eff);
        let (hi_val, hi_eff) =
            self.access_within_line(addr + lo_bytes as u64, hi_bytes, hi_write)?;
        effects.merge(hi_eff);
        let value = lo_val | hi_val.wrapping_shl(8 * lo_bytes as u32);
        Ok((value, effects))
    }

    /// Access fully contained in one L1D line.
    fn access_within_line(
        &mut self,
        addr: u64,
        len: usize,
        write: Option<u64>,
    ) -> Result<(u64, CacheEffects), MemError> {
        let mut effects = CacheEffects::default();
        let (set, way) = match self.l1d.lookup(addr) {
            Some(sw) => {
                effects.latency = self.l1d.config().hit_latency;
                sw
            }
            None => {
                let (sw, lat) = self.refill_l1d(addr, &mut effects);
                effects.latency = self.l1d.config().hit_latency + lat;
                sw
            }
        };
        let offset = (addr % self.l1d.config().line_bytes) as usize;
        let wpl_bytes = 8;
        let first_word = offset / wpl_bytes;
        let last_word = (offset + len - 1) / wpl_bytes;
        let value = match write {
            Some(v) => {
                self.l1d.write_bytes(set, way, offset, len, v);
                for w in first_word..=last_word {
                    // Only fully covered words are reported as overwritten;
                    // partially covered words keep their old vulnerable
                    // interval open (conservative, see DESIGN.md).
                    let word_start = w * wpl_bytes;
                    let word_end = word_start + wpl_bytes;
                    if offset <= word_start && offset + len >= word_end {
                        effects.word_writes.push(self.l1d.word_entry(set, way, w));
                    }
                }
                v & low_mask(len)
            }
            None => {
                let v = self.l1d.read_bytes(set, way, offset, len);
                for w in first_word..=last_word {
                    effects.word_reads.push(self.l1d.word_entry(set, way, w));
                }
                v
            }
        };
        Ok((value, effects))
    }

    /// Brings the line containing `addr` into the L1D, handling the victim
    /// writeback.  Returns the (set, way) it landed in and the extra latency.
    fn refill_l1d(&mut self, addr: u64, effects: &mut CacheEffects) -> ((usize, usize), u64) {
        let line_bytes = self.l1d.config().line_bytes;
        let line_addr = addr - addr % line_bytes;
        let (data, lat) = self.l2_get_line(line_addr);
        let (set, way, evicted) = self.l1d.install(line_addr, data, false);
        let wpl = self.l1d.config().words_per_line();
        if let Some((dirty, victim_addr, old_data)) = evicted {
            for w in 0..wpl {
                let e = self.l1d.word_entry(set, way, w);
                if dirty {
                    effects.writeback_reads.push(e);
                }
                effects.word_invalidates.push(e);
            }
            if dirty {
                self.l2_put_line(victim_addr, old_data);
            }
        }
        for w in 0..wpl {
            effects.word_writes.push(self.l1d.word_entry(set, way, w));
        }
        ((set, way), lat)
    }

    /// Fetches a line from the L2 (refilling from memory on an L2 miss).
    fn l2_get_line(&mut self, line_addr: u64) -> (Vec<u8>, u64) {
        if let Some((set, way)) = self.l2.lookup(line_addr) {
            let data = self.l2.line_data(set, way).to_vec();
            self.l2.read_bytes(set, way, 0, 1); // LRU touch
            return (data, self.l2.config().hit_latency);
        }
        let data = self.mem.read_line(line_addr, self.l2.config().line_bytes);
        let (_, _, evicted) = self.l2.install(line_addr, data.clone(), false);
        if let Some((dirty, victim_addr, old)) = evicted {
            if dirty {
                self.mem.write_line(victim_addr, &old);
            }
        }
        (data, self.l2.config().hit_latency + self.mem_latency)
    }

    /// Writes an evicted dirty L1D line into the L2.
    fn l2_put_line(&mut self, line_addr: u64, data: Vec<u8>) {
        let (_, _, evicted) = self.l2.install(line_addr, data, true);
        if let Some((dirty, victim_addr, old)) = evicted {
            if dirty {
                self.mem.write_line(victim_addr, &old);
            }
        }
    }

    /// Architecturally visible value at `addr` considering every level of the
    /// hierarchy (L1D, then L2, then memory) without disturbing any state —
    /// used by tests and by output extraction.
    pub fn peek(&mut self, addr: u64, size: MemSize) -> Result<u64, MemError> {
        self.mem.check_range(addr, size.bytes(), false)?;
        let mut v = 0u64;
        for i in 0..size.bytes() {
            let a = addr + i;
            let byte = self.peek_byte(a);
            v |= (byte as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Captures the full state of the memory hierarchy: sparse cache images
    /// plus a chunk-level delta of the backing memory against the pristine
    /// program image.
    pub fn snapshot(&self) -> MemSystemSnapshot {
        MemSystemSnapshot {
            l1d: self.l1d.snapshot(),
            l2: self.l2.snapshot(),
            mem: self.mem.delta_snapshot(),
        }
    }

    /// Restores a previously captured snapshot in place, reusing existing
    /// buffers where possible; the memory delta is resolved against this
    /// system's own pristine image.  Returns the bytes rewritten as
    /// `(cache line data, memory chunks)`.
    pub fn restore_snapshot(&mut self, snap: &MemSystemSnapshot) -> (usize, usize) {
        (
            self.l1d.restore_snapshot(&snap.l1d) + self.l2.restore_snapshot(&snap.l2),
            self.mem.restore_delta(&snap.mem),
        )
    }

    /// Same-snapshot fast path: restores only cache lines touched and
    /// memory chunks written since the last restore, valid when the
    /// hierarchy matched `snap` exactly at that restore (see
    /// [`Cache::restore_snapshot_incremental`] and
    /// [`Memory::restore_delta_incremental`]).  Returns the bytes rewritten
    /// as `(cache line data, memory chunks)`.
    pub fn restore_snapshot_incremental(&mut self, snap: &MemSystemSnapshot) -> (usize, usize) {
        (
            self.l1d.restore_snapshot_incremental(&snap.l1d)
                + self.l2.restore_snapshot_incremental(&snap.l2),
            self.mem.restore_delta_incremental(&snap.mem),
        )
    }

    /// Structural fork: shares the caches' set pages and the memory's chunk
    /// handles from `src` (see [`Cache::fork_from`] and
    /// [`Memory::fork_from`]).  Returns per-level fork accounting as
    /// `(cache line data, memory chunks)`.
    pub fn fork_from(&mut self, src: &Self) -> (ForkBytes, ForkBytes) {
        (
            self.l1d.fork_from(&src.l1d) + self.l2.fork_from(&src.l2),
            self.mem.fork_from(&src.mem),
        )
    }

    /// Un-share counters of both caches and the backing memory, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.l1d.take_cow_breaks() + self.l2.take_cow_breaks() + self.mem.take_cow_breaks()
    }

    /// Materialises private copies of all shared cache pages and memory
    /// chunks (the quarantine reuse guarantee).
    pub(crate) fn unshare_all(&mut self) {
        self.l1d.unshare_all();
        self.l2.unshare_all();
        self.mem.unshare_all();
    }

    /// Whether no cache page or live memory chunk is shared with any other
    /// hierarchy (the pristine image is deliberately excluded — it is
    /// immutable and shared by design).
    pub(crate) fn fully_private(&self) -> bool {
        self.l1d.fully_private() && self.l2.fully_private() && self.mem.fully_private()
    }

    /// Whether the hierarchy's state is bit-identical to the snapshot.
    pub fn matches_snapshot(&self, snap: &MemSystemSnapshot) -> bool {
        self.l1d.matches_snapshot(&snap.l1d)
            && self.l2.matches_snapshot(&snap.l2)
            && self.mem.matches_delta(&snap.mem)
    }

    fn peek_byte(&mut self, addr: u64) -> u8 {
        if let Some((set, way)) = self.l1d.lookup(addr) {
            let off = (addr % self.l1d.config().line_bytes) as usize;
            return self.l1d.line_data(set, way)[off];
        }
        if let Some((set, way)) = self.l2.lookup(addr) {
            let off = (addr % self.l2.config().line_bytes) as usize;
            return self.l2.line_data(set, way)[off];
        }
        self.mem.read_line(addr, 1)[0]
    }
}

fn low_mask(bytes: usize) -> u64 {
    if bytes >= 8 {
        u64::MAX
    } else {
        (1u64 << (8 * bytes)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::DATA_BASE;

    fn small_system() -> MemSystem {
        let l1d = CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            ways: 2,
            hit_latency: 3,
        };
        let l2 = CacheConfig {
            size_bytes: 4096,
            line_bytes: 64,
            ways: 4,
            hit_latency: 10,
        };
        MemSystem::new(l1d, l2, Memory::new(64 * 1024), 50)
    }

    #[test]
    fn load_after_store_returns_value() {
        let mut ms = small_system();
        let addr = DATA_BASE + 0x100;
        ms.store(addr, 0xDEAD_BEEF_1234_5678, MemSize::B8).unwrap();
        let (v, eff) = ms.load(addr, MemSize::B8).unwrap();
        assert_eq!(v, 0xDEAD_BEEF_1234_5678);
        assert_eq!(eff.word_reads.len(), 1);
        assert!(eff.latency >= 3);
    }

    #[test]
    fn miss_then_hit_latency() {
        let mut ms = small_system();
        let addr = DATA_BASE + 0x200;
        let (_, miss) = ms.load(addr, MemSize::B8).unwrap();
        let (_, hit) = ms.load(addr, MemSize::B8).unwrap();
        assert!(miss.latency > hit.latency);
        assert_eq!(hit.latency, 3);
        // The refill reported writes for every word of the line.
        assert_eq!(miss.word_writes.len(), 8);
    }

    #[test]
    fn dirty_eviction_writes_back_and_reports_reads() {
        let mut ms = small_system();
        // 1 KB, 2-way, 64 B lines → 8 sets; addresses 512 bytes apart map to
        // the same set.  Three distinct lines in one set force an eviction.
        let a0 = DATA_BASE;
        let a1 = DATA_BASE + 512;
        let a2 = DATA_BASE + 1024;
        ms.store(a0, 0x1111, MemSize::B8).unwrap();
        ms.store(a1, 0x2222, MemSize::B8).unwrap();
        let eff = ms.store(a2, 0x3333, MemSize::B8).unwrap();
        assert!(
            !eff.writeback_reads.is_empty(),
            "dirty victim must be read out for writeback"
        );
        assert!(!eff.word_invalidates.is_empty());
        // The evicted value is still architecturally visible (now in L2).
        let (v, _) = ms.load(a0, MemSize::B8).unwrap();
        assert_eq!(v, 0x1111);
    }

    #[test]
    fn flipped_bit_is_visible_to_loads() {
        let mut ms = small_system();
        let addr = DATA_BASE + 0x40;
        ms.store(addr, 0, MemSize::B8).unwrap();
        let (set, way) = ms.l1d.lookup(addr).unwrap();
        let offset = (addr % 64) as usize;
        ms.l1d.flip_bit(set, way, offset, 5);
        let (v, _) = ms.load(addr, MemSize::B8).unwrap();
        assert_eq!(v, 1 << 5);
    }

    #[test]
    fn flipped_bit_in_clean_line_discarded_on_eviction() {
        let mut ms = small_system();
        let a0 = DATA_BASE;
        ms.store(a0, 0xAB, MemSize::B8).unwrap();
        // Make the line clean by forcing it through an eviction+reload cycle:
        // evict dirty, reload clean.
        let a1 = DATA_BASE + 512;
        let a2 = DATA_BASE + 1024;
        ms.load(a1, MemSize::B8).unwrap();
        ms.load(a2, MemSize::B8).unwrap(); // a0 evicted (dirty → L2)
        ms.load(a0, MemSize::B8).unwrap(); // reloaded, clean copy
        let (set, way) = ms.l1d.lookup(a0).unwrap();
        assert!(!ms.l1d.is_dirty(set, way));
        ms.l1d.flip_bit(set, way, 0, 0);
        // Evict the clean, corrupted line.
        ms.load(a1, MemSize::B8).unwrap();
        ms.load(a2, MemSize::B8).unwrap();
        // The corruption was dropped with the clean line.
        let (v, _) = ms.load(a0, MemSize::B8).unwrap();
        assert_eq!(v, 0xAB);
    }

    #[test]
    fn line_crossing_access_is_consistent() {
        let mut ms = small_system();
        let addr = DATA_BASE + 64 - 4; // crosses a line boundary
        ms.store(addr, 0x1122_3344_5566_7788, MemSize::B8).unwrap();
        let (v, _) = ms.load(addr, MemSize::B8).unwrap();
        assert_eq!(v, 0x1122_3344_5566_7788);
    }

    #[test]
    fn partial_word_store_does_not_report_word_write() {
        let mut ms = small_system();
        let addr = DATA_BASE + 0x80;
        // Bring the line in first so the refill's word writes do not obscure
        // what the store itself reports.
        ms.load(addr, MemSize::B8).unwrap();
        let eff = ms.store(addr, 0xFF, MemSize::B1).unwrap();
        assert!(eff.word_writes.is_empty());
        let eff = ms.store(addr, 0xFFFF_FFFF_FFFF_FFFF, MemSize::B8).unwrap();
        assert_eq!(eff.word_writes.len(), 1);
    }

    #[test]
    fn out_of_bounds_rejected_without_state_change() {
        let mut ms = small_system();
        let bad = DATA_BASE + 10 * 1024 * 1024;
        assert!(ms.load(bad, MemSize::B8).is_err());
        assert!(ms.store(bad, 0, MemSize::B8).is_err());
        assert!(ms.store(0x10, 0, MemSize::B8).is_err());
    }

    #[test]
    fn word_entry_roundtrip() {
        let ms = small_system();
        for entry in 0..ms.l1d.config().total_words() {
            let (s, w, word) = ms.l1d.entry_location(entry);
            assert_eq!(ms.l1d.word_entry(s, w, word), entry);
        }
    }

    #[test]
    fn incremental_cache_restore_matches_full_restore() {
        let mut ms = small_system();
        ms.store(DATA_BASE, 0x1111, MemSize::B8).unwrap();
        ms.store(DATA_BASE + 512, 0x2222, MemSize::B8).unwrap();
        let snap = ms.snapshot();
        ms.restore_snapshot(&snap);
        // Suffix work: touch an existing line, install a new one, flip a bit.
        ms.store(DATA_BASE, 0x3333, MemSize::B8).unwrap();
        ms.load(DATA_BASE + 1024, MemSize::B8).unwrap();
        ms.l1d.flip_bit(0, 0, 0, 3);
        let (cache_bytes, _) = ms.restore_snapshot_incremental(&snap);
        assert!(ms.matches_snapshot(&snap));
        assert!(cache_bytes > 0);
        // Continuing from the incrementally restored state reads the
        // snapshot's values.
        assert_eq!(ms.load(DATA_BASE, MemSize::B8).unwrap().0, 0x1111);
        assert_eq!(ms.load(DATA_BASE + 512, MemSize::B8).unwrap().0, 0x2222);
    }

    #[test]
    fn unordered_cache_snapshot_lines_rejected_on_decode() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let mut ms = small_system();
        ms.store(DATA_BASE, 0x11, MemSize::B8).unwrap();
        ms.store(DATA_BASE + 64, 0x22, MemSize::B8).unwrap();
        let mut snap = ms.l1d.snapshot();
        assert!(snap.lines.len() >= 2);
        let back: CacheSnapshot = decode_from_slice(&encode_to_vec(&snap)).unwrap();
        assert_eq!(back, snap);
        // Out-of-(set,way)-order lines must fail decode, not silently build
        // a snapshot the incremental merge walk would mis-restore.
        snap.lines.swap(0, 1);
        assert!(decode_from_slice::<CacheSnapshot>(&encode_to_vec(&snap)).is_err());
    }

    #[test]
    fn peek_sees_all_levels() {
        let mut ms = small_system();
        let a0 = DATA_BASE;
        ms.store(a0, 0x77, MemSize::B8).unwrap();
        // Evict to L2.
        ms.load(DATA_BASE + 512, MemSize::B8).unwrap();
        ms.load(DATA_BASE + 1024, MemSize::B8).unwrap();
        assert_eq!(ms.peek(a0, MemSize::B8).unwrap(), 0x77);
    }
}
