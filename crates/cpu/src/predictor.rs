//! Branch direction predictor and branch target buffer.
//!
//! Prediction exists so that the core executes *wrong-path* micro-ops that
//! later get squashed — the paper's ACE-like interval definition explicitly
//! excludes reads performed by squashed instructions, so a reproduction
//! without wrong-path execution would have nothing to exclude.

use crate::cow::{CowTable, ForkBytes};
use crate::touched::{Restorable, TouchedSet};
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::Rip;

/// Copy-on-write page size for the direction counter tables, in counters.
const COUNTER_PAGE: usize = 512;

/// Copy-on-write page size for the BTB entry array, in entries.
const BTB_PAGE: usize = 128;

/// A 2-bit saturating counter direction predictor (bimodal) combined with a
/// global-history gshare table; the stronger of the two provides the
/// prediction, loosely mirroring the tournament predictor of Table 1.
///
/// Counters are epoch-tagged ([`TouchedSet`]) **per table**: the bimodal and
/// gshare tables each carry their own set, so a same-snapshot restore and
/// the fork path rewrite only the counters the suffix actually bumped in
/// that table, with no index translation across a concatenated space (the
/// history register is a scalar and always re-assigned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPredictor {
    bimodal: CowTable<u8>,
    gshare: CowTable<u8>,
    history: u64,
    history_bits: u32,
    bimodal_touched: TouchedSet,
    gshare_touched: TouchedSet,
}

/// Per-table counter diff between two predictor snapshots, consumed by the
/// convergence probe (`StateDiff` keeps one per checkpoint pair).
#[derive(Debug, Clone)]
pub(crate) struct PredictorDiff {
    bimodal: TouchedSet,
    gshare: TouchedSet,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters per table (rounded up to a
    /// power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        BranchPredictor {
            bimodal: CowTable::new(n, 2, COUNTER_PAGE),
            gshare: CowTable::new(n, 2, COUNTER_PAGE),
            history: 0,
            history_bits: 12,
            bimodal_touched: TouchedSet::new(n),
            gshare_touched: TouchedSet::new(n),
        }
    }

    fn bimodal_index(&self, rip: Rip) -> usize {
        (rip as usize) & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, rip: Rip) -> usize {
        ((rip as u64 ^ self.history) as usize) & (self.gshare.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `rip`.
    pub fn predict(&self, rip: Rip) -> bool {
        let b = *self.bimodal.get(self.bimodal_index(rip));
        let g = *self.gshare.get(self.gshare_index(rip));
        // "Tournament": trust whichever table is more confident; ties go to
        // the global-history table.
        let (bc, gc) = (confidence(b), confidence(g));
        if bc > gc {
            b >= 2
        } else {
            g >= 2
        }
    }

    /// Updates the predictor with the resolved direction of the branch at
    /// `rip`.
    pub fn update(&mut self, rip: Rip, taken: bool) {
        let bi = self.bimodal_index(rip);
        let gi = self.gshare_index(rip);
        self.bimodal_touched.mark(bi);
        self.gshare_touched.mark(gi);
        *self.bimodal.get_mut(bi) = bump(*self.bimodal.get(bi), taken);
        *self.gshare.get_mut(gi) = bump(*self.gshare.get(gi), taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }

    /// Per-table counter diff between `self` and `other`.  Pages sharing a
    /// handle are skipped without being read.
    pub(crate) fn diff(&self, other: &Self) -> PredictorDiff {
        let n = self.bimodal.len();
        let mut d = PredictorDiff {
            bimodal: TouchedSet::new(n),
            gshare: TouchedSet::new(n),
        };
        self.bimodal
            .for_each_diff(&other.bimodal, |i| d.bimodal.mark(i));
        self.gshare
            .for_each_diff(&other.gshare, |i| d.gshare.mark(i));
        d
    }

    /// Whether the history register and every tagged counter equal `g`'s.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.history == g.history
            && self.history_bits == g.history_bits
            && self
                .bimodal_touched
                .iter()
                .all(|i| self.bimodal.get(i) == g.bimodal.get(i))
            && self
                .gshare_touched
                .iter()
                .all(|i| self.gshare.get(i) == g.gshare.get(i))
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &PredictorDiff) -> bool {
        self.bimodal_touched.contains_all(&diff.bimodal)
            && self.gshare_touched.contains_all(&diff.gshare)
            && self.touched_matches(g)
    }

    /// Forks from `src` by sharing its page handles — no counter is copied —
    /// and mirroring its tags, so `self` becomes bit-identical to `src` at
    /// O(pages) cost.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.bimodal.len(), src.bimodal.len());
        self.history = src.history;
        self.history_bits = src.history_bits;
        self.bimodal.share_from(&src.bimodal);
        self.gshare.share_from(&src.gshare);
        self.bimodal_touched.copy_from(&src.bimodal_touched);
        self.gshare_touched.copy_from(&src.gshare_touched);
        ForkBytes {
            copied: 0,
            eager: (src.bimodal_touched.count() + src.gshare_touched.count()) as u64,
            shared: (src.bimodal.len() + src.gshare.len()) as u64,
        }
    }

    /// Un-share counters of both tables, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.bimodal.take_cow_breaks() + self.gshare.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.bimodal.unshare_all();
        self.gshare.unshare_all();
    }

    /// Whether no page is shared with any other predictor.
    pub(crate) fn fully_private(&self) -> bool {
        self.bimodal.fully_private() && self.gshare.fully_private()
    }
}

impl Restorable for BranchPredictor {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.bimodal.len(), snap.bimodal.len());
        self.history = snap.history;
        self.history_bits = snap.history_bits;
        if incremental {
            let mut bytes = 0u64;
            for i in self.bimodal_touched.drain() {
                *self.bimodal.get_mut(i) = *snap.bimodal.get(i);
                bytes += 1;
            }
            for i in self.gshare_touched.drain() {
                *self.gshare.get_mut(i) = *snap.gshare.get(i);
                bytes += 1;
            }
            bytes
        } else {
            self.bimodal.share_from(&snap.bimodal);
            self.gshare.share_from(&snap.gshare);
            self.bimodal_touched.clear_all();
            self.gshare_touched.clear_all();
            (self.bimodal.len() + self.gshare.len()) as u64
        }
    }
}

impl BinCode for BranchPredictor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bimodal.encode_seq(out);
        self.gshare.encode_seq(out);
        self.history.encode(out);
        self.history_bits.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let bimodal = CowTable::<u8>::decode_seq(r, COUNTER_PAGE)?;
        let gshare = CowTable::<u8>::decode_seq(r, COUNTER_PAGE)?;
        if bimodal.is_empty() || !bimodal.len().is_power_of_two() || gshare.len() != bimodal.len() {
            return Err(DecodeError::Invalid("predictor table shape"));
        }
        let n = bimodal.len();
        Ok(BranchPredictor {
            bimodal,
            gshare,
            history: BinCode::decode(r)?,
            history_bits: BinCode::decode(r)?,
            bimodal_touched: TouchedSet::new(n),
            gshare_touched: TouchedSet::new(n),
        })
    }
}

fn bump(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

fn confidence(counter: u8) -> u8 {
    // Distance from the weakly-taken/weakly-not-taken boundary.
    if counter >= 2 {
        counter - 1
    } else {
        2 - counter
    }
}

/// Direct-mapped branch target buffer for indirect jumps, epoch-tagged per
/// entry like the direction predictor's tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btb {
    entries: CowTable<Option<(Rip, Rip)>>,
    touched: TouchedSet,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Btb {
            entries: CowTable::new(n, None, BTB_PAGE),
            touched: TouchedSet::new(n),
        }
    }

    fn index(&self, rip: Rip) -> usize {
        (rip as usize) & (self.entries.len() - 1)
    }

    /// The last observed target of the indirect branch at `rip`, if any.
    pub fn predict(&self, rip: Rip) -> Option<Rip> {
        match *self.entries.get(self.index(rip)) {
            Some((tag, target)) if tag == rip => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of the indirect branch at `rip`.
    pub fn update(&mut self, rip: Rip, target: Rip) {
        let idx = self.index(rip);
        self.touched.mark(idx);
        *self.entries.get_mut(idx) = Some((rip, target));
    }

    /// Entries where `self` and `other` differ.  Shared pages are skipped.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(self.entries.len());
        self.entries.for_each_diff(&other.entries, |i| d.mark(i));
        d
    }

    /// Whether every tagged entry equals `g`'s copy.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.touched
            .iter()
            .all(|i| self.entries.get(i) == g.entries.get(i))
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }

    /// Forks from `src` by sharing its page handles and mirroring its tags.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.entries.len(), src.entries.len());
        self.entries.share_from(&src.entries);
        self.touched.copy_from(&src.touched);
        let entry_bytes = std::mem::size_of::<Option<(Rip, Rip)>>() as u64;
        ForkBytes {
            copied: 0,
            eager: src.touched.count() as u64 * entry_bytes,
            shared: src.entries.len() as u64 * entry_bytes,
        }
    }

    /// Un-share counter of the entry array, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.entries.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.entries.unshare_all();
    }

    /// Whether no page is shared with any other BTB.
    pub(crate) fn fully_private(&self) -> bool {
        self.entries.fully_private()
    }
}

impl Restorable for Btb {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.entries.len(), snap.entries.len());
        let entry_bytes = std::mem::size_of::<Option<(Rip, Rip)>>() as u64;
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                *self.entries.get_mut(i) = *snap.entries.get(i);
                n += entry_bytes;
            }
            n
        } else {
            self.entries.share_from(&snap.entries);
            self.touched.clear_all();
            self.entries.len() as u64 * entry_bytes
        }
    }
}

impl BinCode for Btb {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode_seq(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let entries = CowTable::<Option<(Rip, Rip)>>::decode_seq(r, BTB_PAGE)?;
        if entries.is_empty() || !entries.len().is_power_of_two() {
            return Err(DecodeError::Invalid("BTB shape"));
        }
        let touched = TouchedSet::new(entries.len());
        Ok(Btb { entries, touched })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_biased_branch() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..16 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        for _ in 0..16 {
            p.update(5, false);
        }
        assert!(!p.predict(5));
    }

    #[test]
    fn predictor_learns_loop_pattern_reasonably() {
        let mut p = BranchPredictor::new(256);
        // A loop branch taken 9 times then not taken once, repeatedly; the
        // predictor should be right most of the time.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..50 {
            for i in 0..10 {
                let taken = i != 9;
                if p.predict(7) == taken {
                    correct += 1;
                }
                total += 1;
                p.update(7, taken);
            }
        }
        assert!(correct * 100 / total > 70, "accuracy {correct}/{total}");
    }

    #[test]
    fn btb_remembers_last_target() {
        let mut btb = Btb::new(32);
        assert_eq!(btb.predict(9), None);
        btb.update(9, 123);
        assert_eq!(btb.predict(9), Some(123));
        btb.update(9, 456);
        assert_eq!(btb.predict(9), Some(456));
        // Aliasing entry with a different tag does not hit.
        btb.update(9 + 32, 7);
        assert_eq!(btb.predict(9), None);
    }

    #[test]
    fn counters_saturate() {
        assert_eq!(bump(3, true), 3);
        assert_eq!(bump(0, false), 0);
        assert_eq!(bump(1, true), 2);
    }
}
