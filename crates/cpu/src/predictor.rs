//! Branch direction predictor and branch target buffer.
//!
//! Prediction exists so that the core executes *wrong-path* micro-ops that
//! later get squashed — the paper's ACE-like interval definition explicitly
//! excludes reads performed by squashed instructions, so a reproduction
//! without wrong-path execution would have nothing to exclude.

use crate::touched::{Restorable, TouchedSet};
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::Rip;

/// A 2-bit saturating counter direction predictor (bimodal) combined with a
/// global-history gshare table; the stronger of the two provides the
/// prediction, loosely mirroring the tournament predictor of Table 1.
///
/// Counters are epoch-tagged ([`TouchedSet`]): one concatenated set covers
/// the bimodal table (indices `0..n`) and the gshare table (`n..2n`), so a
/// same-snapshot restore rewrites only counters the suffix bumped (the
/// history register is a scalar and always re-assigned).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BranchPredictor {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    history: u64,
    history_bits: u32,
    touched: TouchedSet,
}

impl BranchPredictor {
    /// Creates a predictor with `entries` counters per table (rounded up to a
    /// power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        BranchPredictor {
            bimodal: vec![2; n],
            gshare: vec![2; n],
            history: 0,
            history_bits: 12,
            touched: TouchedSet::new(2 * n),
        }
    }

    fn bimodal_index(&self, rip: Rip) -> usize {
        (rip as usize) & (self.bimodal.len() - 1)
    }

    fn gshare_index(&self, rip: Rip) -> usize {
        ((rip as u64 ^ self.history) as usize) & (self.gshare.len() - 1)
    }

    /// Predicts the direction of the conditional branch at `rip`.
    pub fn predict(&self, rip: Rip) -> bool {
        let b = self.bimodal[self.bimodal_index(rip)];
        let g = self.gshare[self.gshare_index(rip)];
        // "Tournament": trust whichever table is more confident; ties go to
        // the global-history table.
        let (bc, gc) = (confidence(b), confidence(g));
        if bc > gc {
            b >= 2
        } else {
            g >= 2
        }
    }

    /// Updates the predictor with the resolved direction of the branch at
    /// `rip`.
    pub fn update(&mut self, rip: Rip, taken: bool) {
        let bi = self.bimodal_index(rip);
        let gi = self.gshare_index(rip);
        self.touched.mark(bi);
        self.touched.mark(self.bimodal.len() + gi);
        self.bimodal[bi] = bump(self.bimodal[bi], taken);
        self.gshare[gi] = bump(self.gshare[gi], taken);
        self.history = ((self.history << 1) | taken as u64) & ((1 << self.history_bits) - 1);
    }

    fn counter(&self, idx: usize) -> u8 {
        if idx < self.bimodal.len() {
            self.bimodal[idx]
        } else {
            self.gshare[idx - self.bimodal.len()]
        }
    }

    /// Counters (concatenated bimodal + gshare index space) where `self` and
    /// `other` differ.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let n = self.bimodal.len();
        let mut d = TouchedSet::new(2 * n);
        for i in 0..n {
            if self.bimodal[i] != other.bimodal[i] {
                d.mark(i);
            }
            if self.gshare[i] != other.gshare[i] {
                d.mark(n + i);
            }
        }
        d
    }

    /// Whether the history register and every tagged counter equal `g`'s.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.history == g.history
            && self.history_bits == g.history_bits
            && self.touched.iter().all(|i| self.counter(i) == g.counter(i))
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }
}

impl Restorable for BranchPredictor {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.bimodal.len(), snap.bimodal.len());
        self.history = snap.history;
        self.history_bits = snap.history_bits;
        if incremental {
            let n = self.bimodal.len();
            let mut bytes = 0u64;
            for i in self.touched.drain() {
                if i < n {
                    self.bimodal[i] = snap.bimodal[i];
                } else {
                    self.gshare[i - n] = snap.gshare[i - n];
                }
                bytes += 1;
            }
            bytes
        } else {
            self.bimodal.copy_from_slice(&snap.bimodal);
            self.gshare.copy_from_slice(&snap.gshare);
            self.touched.clear_all();
            (self.bimodal.len() + self.gshare.len()) as u64
        }
    }
}

impl BinCode for BranchPredictor {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bimodal.encode(out);
        self.gshare.encode(out);
        self.history.encode(out);
        self.history_bits.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let bimodal = Vec::<u8>::decode(r)?;
        let gshare = Vec::<u8>::decode(r)?;
        if bimodal.is_empty() || !bimodal.len().is_power_of_two() || gshare.len() != bimodal.len() {
            return Err(DecodeError::Invalid("predictor table shape"));
        }
        let touched = TouchedSet::new(bimodal.len() + gshare.len());
        Ok(BranchPredictor {
            bimodal,
            gshare,
            history: BinCode::decode(r)?,
            history_bits: BinCode::decode(r)?,
            touched,
        })
    }
}

fn bump(counter: u8, taken: bool) -> u8 {
    if taken {
        (counter + 1).min(3)
    } else {
        counter.saturating_sub(1)
    }
}

fn confidence(counter: u8) -> u8 {
    // Distance from the weakly-taken/weakly-not-taken boundary.
    if counter >= 2 {
        counter - 1
    } else {
        2 - counter
    }
}

/// Direct-mapped branch target buffer for indirect jumps, epoch-tagged per
/// entry like the direction predictor's tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btb {
    entries: Vec<Option<(Rip, Rip)>>,
    touched: TouchedSet,
}

impl Btb {
    /// Creates a BTB with `entries` slots (rounded up to a power of two).
    pub fn new(entries: usize) -> Self {
        let n = entries.next_power_of_two().max(16);
        Btb {
            entries: vec![None; n],
            touched: TouchedSet::new(n),
        }
    }

    fn index(&self, rip: Rip) -> usize {
        (rip as usize) & (self.entries.len() - 1)
    }

    /// The last observed target of the indirect branch at `rip`, if any.
    pub fn predict(&self, rip: Rip) -> Option<Rip> {
        match self.entries[self.index(rip)] {
            Some((tag, target)) if tag == rip => Some(target),
            _ => None,
        }
    }

    /// Records the resolved target of the indirect branch at `rip`.
    pub fn update(&mut self, rip: Rip, target: Rip) {
        let idx = self.index(rip);
        self.touched.mark(idx);
        self.entries[idx] = Some((rip, target));
    }

    /// Entries where `self` and `other` differ.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(self.entries.len());
        for i in 0..self.entries.len() {
            if self.entries[i] != other.entries[i] {
                d.mark(i);
            }
        }
        d
    }

    /// Whether every tagged entry equals `g`'s copy.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.touched.iter().all(|i| self.entries[i] == g.entries[i])
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }
}

impl Restorable for Btb {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.entries.len(), snap.entries.len());
        let entry_bytes = std::mem::size_of::<Option<(Rip, Rip)>>() as u64;
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                self.entries[i] = snap.entries[i];
                n += entry_bytes;
            }
            n
        } else {
            self.entries.copy_from_slice(&snap.entries);
            self.touched.clear_all();
            self.entries.len() as u64 * entry_bytes
        }
    }
}

impl BinCode for Btb {
    fn encode(&self, out: &mut Vec<u8>) {
        self.entries.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let entries = Vec::<Option<(Rip, Rip)>>::decode(r)?;
        if entries.is_empty() || !entries.len().is_power_of_two() {
            return Err(DecodeError::Invalid("BTB shape"));
        }
        let touched = TouchedSet::new(entries.len());
        Ok(Btb { entries, touched })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_learns_a_biased_branch() {
        let mut p = BranchPredictor::new(64);
        for _ in 0..16 {
            p.update(5, true);
        }
        assert!(p.predict(5));
        for _ in 0..16 {
            p.update(5, false);
        }
        assert!(!p.predict(5));
    }

    #[test]
    fn predictor_learns_loop_pattern_reasonably() {
        let mut p = BranchPredictor::new(256);
        // A loop branch taken 9 times then not taken once, repeatedly; the
        // predictor should be right most of the time.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..50 {
            for i in 0..10 {
                let taken = i != 9;
                if p.predict(7) == taken {
                    correct += 1;
                }
                total += 1;
                p.update(7, taken);
            }
        }
        assert!(correct * 100 / total > 70, "accuracy {correct}/{total}");
    }

    #[test]
    fn btb_remembers_last_target() {
        let mut btb = Btb::new(32);
        assert_eq!(btb.predict(9), None);
        btb.update(9, 123);
        assert_eq!(btb.predict(9), Some(123));
        btb.update(9, 456);
        assert_eq!(btb.predict(9), Some(456));
        // Aliasing entry with a different tag does not hit.
        btb.update(9 + 32, 7);
        assert_eq!(btb.predict(9), None);
    }

    #[test]
    fn counters_saturate() {
        assert_eq!(bump(3, true), 3);
        assert_eq!(bump(0, false), 0);
        assert_eq!(bump(1, true), 2);
    }
}
