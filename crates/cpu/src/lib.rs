//! # merlin-cpu
//!
//! A cycle-level out-of-order core with true data storage in its
//! microarchitectural structures, built as the Gem5 substitute for the MeRLiN
//! reproduction (see DESIGN.md at the workspace root).
//!
//! The model provides everything the paper's methodology depends on:
//!
//! * a physical integer register file of configurable size (256/128/64) that
//!   architectural registers are renamed onto,
//! * a store queue whose data field holds the value to be stored, with
//!   store-to-load forwarding and commit-time drain,
//! * write-back L1D and L2 caches storing real bytes,
//! * branch prediction with wrong-path execution and squash,
//! * precise exceptions (crashes, simulator asserts, recoverable arithmetic
//!   and alignment exceptions),
//! * a [`Probe`] interface reporting per-entry writes, committed reads
//!   (with RIP, uPC, dynamic instance and control-flow-path signature) and
//!   invalidations — the raw material of the ACE-like analysis,
//! * a [`FaultSpec`] hook that flips one stored bit at a chosen cycle — the
//!   raw material of the injection campaigns,
//! * an architectural reference interpreter ([`interpret`]) used as the
//!   golden model.
//!
//! # Examples
//!
//! ```
//! use merlin_cpu::{interpret, Cpu, CpuConfig, NullProbe};
//! use merlin_isa::{reg, AluOp, Cond, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new();
//! b.movi(reg(1), 1);
//! b.movi(reg(2), 10);
//! let top = b.bind_label();
//! b.alu_rr(AluOp::Mul, reg(1), reg(1), reg(2));
//! b.alu_ri(AluOp::Sub, reg(2), reg(2), 1);
//! b.branch_ri(Cond::Gt, reg(2), 0, top);
//! b.out(reg(1));
//! b.halt();
//! let program = b.build().unwrap();
//!
//! // The cycle-level core and the architectural interpreter agree.
//! let golden = interpret(&program, 1_000_000);
//! let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
//! let result = cpu.run(1_000_000, &mut NullProbe);
//! assert_eq!(result.output, golden.output);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cache;
mod config;
mod core;
mod cow;
mod fault;
mod interp;
mod lsq;
mod memory;
mod predictor;
mod probe;
mod regfile;
mod snapshot;
mod touched;

pub use cache::{Cache, CacheEffects, CacheSnapshot, MemSystem, MemSystemSnapshot};
pub use config::{CacheConfig, ConfigError, CpuConfig};
pub use core::{
    AssertKind, Cpu, CpuState, CrashKind, ExitReason, ForkStats, InjectError, RestoreStats,
    RestoredBytes, RunResult, StateDiff,
};
pub use cow::{CowBox, CowBytes, CowSeq, CowTable, ForkBytes};
// The pre-decoded micro-op arena `Cpu::with_predecoded` shares across cores.
pub use fault::{FaultSpec, FaultSpecError};
pub use interp::{interpret, InterpExit, InterpResult};
pub use lsq::{LoadQueue, SqSlot, StoreQueue};
pub use memory::{MemError, Memory, MemoryDelta, CHUNK_BYTES};
pub use merlin_isa::DecodedProgram;
pub use predictor::{BranchPredictor, Btb};
pub use probe::{NullProbe, Probe, ReadInfo, RecordingProbe, Structure, WRITEBACK_RIP};
pub use regfile::{FreeList, PhysReg, PhysRegFile, RenameTable};
pub use snapshot::{CheckpointPolicy, CheckpointStore, SpacingStrategy};
pub use touched::{Restorable, TouchedFlag, TouchedSet};
