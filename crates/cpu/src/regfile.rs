//! Physical register file, free list and register alias table (RAT).

use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{ArchReg, NUM_ARCH_REGS};
use std::collections::VecDeque;

/// Index of a physical register.
pub type PhysReg = u16;

/// The physical integer register file: actual 64-bit storage plus per-entry
/// ready bits.  The value array is a fault-injection target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysRegFile {
    values: Vec<u64>,
    ready: Vec<bool>,
}

impl PhysRegFile {
    /// Creates a register file of `n` physical registers, all zero and ready.
    pub fn new(n: usize) -> Self {
        PhysRegFile {
            values: vec![0; n],
            ready: vec![true; n],
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the register file has no entries (never the case in a valid
    /// configuration).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads a physical register's current value.
    pub fn read(&self, p: PhysReg) -> u64 {
        self.values[p as usize]
    }

    /// Writes a physical register and marks it ready.
    pub fn write(&mut self, p: PhysReg, value: u64) {
        self.values[p as usize] = value;
        self.ready[p as usize] = true;
    }

    /// Marks a freshly allocated register as not-ready (its producer has not
    /// executed yet).
    pub fn mark_pending(&mut self, p: PhysReg) {
        self.ready[p as usize] = false;
    }

    /// Marks a register ready without changing its value (used when squash
    /// recovery returns a register to the free pool).
    pub fn mark_ready(&mut self, p: PhysReg) {
        self.ready[p as usize] = true;
    }

    /// Whether the register's value has been produced.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        self.ready[p as usize]
    }

    /// Flips one stored bit — the register-file fault-injection hook.  The
    /// flip applies whether or not the register is currently mapped; faults
    /// in free registers are naturally masked because allocation writes the
    /// register before any read.
    pub fn flip_bit(&mut self, p: usize, bit: u8) {
        self.values[p] ^= 1u64 << bit;
    }
}

impl BinCode for PhysRegFile {
    fn encode(&self, out: &mut Vec<u8>) {
        self.values.encode(out);
        self.ready.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let values = Vec::<u64>::decode(r)?;
        let ready = Vec::<bool>::decode(r)?;
        if values.len() != ready.len() {
            return Err(DecodeError::Invalid("register file array lengths"));
        }
        Ok(PhysRegFile { values, ready })
    }
}

/// FIFO free list of physical registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    free: VecDeque<PhysReg>,
}

impl FreeList {
    /// Creates a free list containing registers `first..n`.
    pub fn new(first: usize, n: usize) -> Self {
        FreeList {
            free: (first as PhysReg..n as PhysReg).collect(),
        }
    }

    /// Takes a register from the free list.
    pub fn allocate(&mut self) -> Option<PhysReg> {
        self.free.pop_front()
    }

    /// Returns a register to the free list.
    pub fn release(&mut self, p: PhysReg) {
        debug_assert!(
            !self.free.contains(&p),
            "physical register {p} released twice"
        );
        self.free.push_back(p);
    }

    /// Registers currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

impl BinCode for FreeList {
    fn encode(&self, out: &mut Vec<u8>) {
        self.free.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(FreeList {
            free: VecDeque::decode(r)?,
        })
    }
}

/// Register alias table: the speculative architectural → physical mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameTable {
    map: [PhysReg; NUM_ARCH_REGS],
}

impl RenameTable {
    /// Identity-initialised table: architectural register `i` maps to
    /// physical register `i`.
    pub fn identity() -> Self {
        let mut map = [0; NUM_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PhysReg;
        }
        RenameTable { map }
    }

    /// Current mapping of an architectural register.
    pub fn lookup(&self, r: ArchReg) -> PhysReg {
        self.map[r.index()]
    }

    /// Remaps `r` to `p`, returning the previous mapping.
    pub fn remap(&mut self, r: ArchReg, p: PhysReg) -> PhysReg {
        std::mem::replace(&mut self.map[r.index()], p)
    }

    /// Restores a previous mapping (squash recovery).
    pub fn restore(&mut self, r: ArchReg, previous: PhysReg) {
        self.map[r.index()] = previous;
    }
}

impl BinCode for RenameTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.map.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RenameTable {
            map: BinCode::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::reg;

    #[test]
    fn read_write_and_ready_bits() {
        let mut prf = PhysRegFile::new(32);
        assert!(prf.is_ready(5));
        prf.mark_pending(5);
        assert!(!prf.is_ready(5));
        prf.write(5, 42);
        assert!(prf.is_ready(5));
        assert_eq!(prf.read(5), 42);
        assert_eq!(prf.len(), 32);
        assert!(!prf.is_empty());
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut prf = PhysRegFile::new(8);
        prf.write(3, 0b1010);
        prf.flip_bit(3, 1);
        assert_eq!(prf.read(3), 0b1000);
        prf.flip_bit(3, 63);
        assert_eq!(prf.read(3), 0b1000 | (1 << 63));
    }

    #[test]
    fn free_list_allocate_release_cycle() {
        let mut fl = FreeList::new(18, 22);
        assert_eq!(fl.available(), 4);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(fl.available(), 2);
        fl.release(a);
        assert_eq!(fl.available(), 3);
        // FIFO order: the released register comes back last.
        assert_eq!(fl.allocate().unwrap(), 20);
        assert_eq!(fl.allocate().unwrap(), 21);
        assert_eq!(fl.allocate().unwrap(), a);
        assert_eq!(fl.allocate(), None);
    }

    #[test]
    fn rename_table_remap_and_restore() {
        let mut rat = RenameTable::identity();
        assert_eq!(rat.lookup(reg(3)), 3);
        let prev = rat.remap(reg(3), 40);
        assert_eq!(prev, 3);
        assert_eq!(rat.lookup(reg(3)), 40);
        rat.restore(reg(3), prev);
        assert_eq!(rat.lookup(reg(3)), 3);
    }
}
