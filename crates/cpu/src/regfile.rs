//! Physical register file, free list and register alias table (RAT).
//!
//! All three are epoch-tagged (see [`crate::TouchedSet`]): every mutation
//! tags the touched entry, so same-snapshot restores rewrite only what the
//! suffix changed and the convergence probe compares only tagged entries.

use crate::cow::{CowSeq, CowTable, ForkBytes};
use crate::touched::{fork_deque, restore_deque, Restorable, TouchedFlag, TouchedSet};
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{ArchReg, NUM_ARCH_REGS};

/// Index of a physical register.
pub type PhysReg = u16;

/// Bytes one physical register occupies in the restore accounting (64-bit
/// value plus its ready bit).
const PRF_ENTRY_BYTES: u64 = 9;

/// Copy-on-write page size for the register-file arrays, in entries.
const PRF_PAGE: usize = 64;

/// The physical integer register file: actual 64-bit storage plus per-entry
/// ready bits, both on copy-on-write pages so forks share untouched pages
/// with their parent.  The value array is a fault-injection target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysRegFile {
    values: CowTable<u64>,
    ready: CowTable<bool>,
    touched: TouchedSet,
}

impl PhysRegFile {
    /// Creates a register file of `n` physical registers, all zero and ready.
    pub fn new(n: usize) -> Self {
        PhysRegFile {
            values: CowTable::new(n, 0, PRF_PAGE),
            ready: CowTable::new(n, true, PRF_PAGE),
            touched: TouchedSet::new(n),
        }
    }

    /// Number of physical registers.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the register file has no entries (never the case in a valid
    /// configuration).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Reads a physical register's current value.
    pub fn read(&self, p: PhysReg) -> u64 {
        *self.values.get(p as usize)
    }

    /// Writes a physical register and marks it ready.
    pub fn write(&mut self, p: PhysReg, value: u64) {
        *self.values.get_mut(p as usize) = value;
        *self.ready.get_mut(p as usize) = true;
        self.touched.mark(p as usize);
    }

    /// Marks a freshly allocated register as not-ready (its producer has not
    /// executed yet).
    pub fn mark_pending(&mut self, p: PhysReg) {
        *self.ready.get_mut(p as usize) = false;
        self.touched.mark(p as usize);
    }

    /// Marks a register ready without changing its value (used when squash
    /// recovery returns a register to the free pool).
    pub fn mark_ready(&mut self, p: PhysReg) {
        *self.ready.get_mut(p as usize) = true;
        self.touched.mark(p as usize);
    }

    /// Whether the register's value has been produced.
    pub fn is_ready(&self, p: PhysReg) -> bool {
        *self.ready.get(p as usize)
    }

    /// Flips one stored bit — the register-file fault-injection hook.  The
    /// flip applies whether or not the register is currently mapped; faults
    /// in free registers are naturally masked because allocation writes the
    /// register before any read.
    pub fn flip_bit(&mut self, p: usize, bit: u8) {
        *self.values.get_mut(p) ^= 1u64 << bit;
        self.touched.mark(p);
    }

    /// Entries where `self` and `other` hold different values or ready bits.
    /// Pages sharing a handle are skipped without being read.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(self.values.len());
        self.values.for_each_diff(&other.values, |i| d.mark(i));
        self.ready.for_each_diff(&other.ready, |i| d.mark(i));
        d
    }

    /// Whether every tagged entry equals `g`'s copy (untagged entries are
    /// trusted to equal the restore source — the epoch-tagging invariant).
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.touched
            .iter()
            .all(|i| self.values.get(i) == g.values.get(i) && self.ready.get(i) == g.ready.get(i))
    }

    /// Convergence probe: `self == g` given that untagged entries equal the
    /// restore source, whose disagreements with `g` are exactly `diff`.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }

    /// Forks from `src` by sharing its page handles — O(pages), no entry is
    /// copied — and mirroring its tags (the fork's divergence from the
    /// shared restore base is exactly the source's).
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.values.len(), src.values.len());
        self.values.share_from(&src.values);
        self.ready.share_from(&src.ready);
        self.touched.copy_from(&src.touched);
        ForkBytes {
            copied: 0,
            eager: src.touched.count() as u64 * PRF_ENTRY_BYTES,
            shared: src.values.len() as u64 * PRF_ENTRY_BYTES,
        }
    }

    /// Un-share counters of both arrays, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.values.take_cow_breaks() + self.ready.take_cow_breaks()
    }

    /// Materialises private copies of all shared pages.
    pub(crate) fn unshare_all(&mut self) {
        self.values.unshare_all();
        self.ready.unshare_all();
    }

    /// Whether no page is shared with any other register file.
    pub(crate) fn fully_private(&self) -> bool {
        self.values.fully_private() && self.ready.fully_private()
    }
}

impl Restorable for PhysRegFile {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        debug_assert_eq!(self.values.len(), snap.values.len());
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                *self.values.get_mut(i) = *snap.values.get(i);
                *self.ready.get_mut(i) = *snap.ready.get(i);
                n += PRF_ENTRY_BYTES;
            }
            n
        } else {
            self.values.share_from(&snap.values);
            self.ready.share_from(&snap.ready);
            self.touched.clear_all();
            self.values.len() as u64 * PRF_ENTRY_BYTES
        }
    }
}

impl BinCode for PhysRegFile {
    fn encode(&self, out: &mut Vec<u8>) {
        // Tags and page boundaries are bookkeeping, never serialised — the
        // on-disk format is identical to the pre-epoch, pre-CoW layout.
        self.values.encode_seq(out);
        self.ready.encode_seq(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let values = CowTable::<u64>::decode_seq(r, PRF_PAGE)?;
        let ready = CowTable::<bool>::decode_seq(r, PRF_PAGE)?;
        if values.len() != ready.len() {
            return Err(DecodeError::Invalid("register file array lengths"));
        }
        let touched = TouchedSet::new(values.len());
        Ok(PhysRegFile {
            values,
            ready,
            touched,
        })
    }
}

/// FIFO free list of physical registers.  Queue-shaped, so it carries a
/// whole-structure [`TouchedFlag`] instead of per-entry tags, and sits
/// behind one copy-on-write handle a fork shares instead of copying.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeList {
    free: CowSeq<PhysReg>,
    touched: TouchedFlag,
}

impl FreeList {
    /// Creates a free list containing registers `first..n`.
    pub fn new(first: usize, n: usize) -> Self {
        FreeList {
            free: CowSeq::from_deque((first as PhysReg..n as PhysReg).collect()),
            touched: TouchedFlag::default(),
        }
    }

    /// Takes a register from the free list.
    pub fn allocate(&mut self) -> Option<PhysReg> {
        self.touched.mark();
        self.free.make_mut().pop_front()
    }

    /// Returns a register to the free list.
    pub fn release(&mut self, p: PhysReg) {
        debug_assert!(
            !self.free.contains(&p),
            "physical register {p} released twice"
        );
        self.touched.mark();
        self.free.make_mut().push_back(p);
    }

    /// Registers currently free.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Whether the free list was mutated since the last restore.
    pub(crate) fn is_touched(&self) -> bool {
        self.touched.is_set()
    }

    /// Queue-shaped fork: one handle share, mirroring the source's tag.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        fork_deque(&mut self.free, &src.free, &src.touched, &mut self.touched)
    }

    /// Un-share counter of the queue, reset.
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.free.take_cow_breaks()
    }

    /// Materialises a private copy if the queue is shared.
    pub(crate) fn unshare_all(&mut self) {
        self.free.unshare_all();
    }

    /// Whether the queue is privately owned.
    pub(crate) fn fully_private(&self) -> bool {
        self.free.fully_private()
    }
}

impl Restorable for FreeList {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        restore_deque(&mut self.free, &snap.free, &mut self.touched, incremental)
    }
}

impl BinCode for FreeList {
    fn encode(&self, out: &mut Vec<u8>) {
        self.free.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(FreeList {
            free: CowSeq::decode(r)?,
            touched: TouchedFlag::default(),
        })
    }
}

/// Register alias table: the speculative architectural → physical mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameTable {
    map: [PhysReg; NUM_ARCH_REGS],
    touched: TouchedSet,
}

impl RenameTable {
    /// Identity-initialised table: architectural register `i` maps to
    /// physical register `i`.
    pub fn identity() -> Self {
        let mut map = [0; NUM_ARCH_REGS];
        for (i, m) in map.iter_mut().enumerate() {
            *m = i as PhysReg;
        }
        RenameTable {
            map,
            touched: TouchedSet::new(NUM_ARCH_REGS),
        }
    }

    /// Current mapping of an architectural register.
    pub fn lookup(&self, r: ArchReg) -> PhysReg {
        self.map[r.index()]
    }

    /// Remaps `r` to `p`, returning the previous mapping.
    pub fn remap(&mut self, r: ArchReg, p: PhysReg) -> PhysReg {
        self.touched.mark(r.index());
        std::mem::replace(&mut self.map[r.index()], p)
    }

    /// Restores a previous mapping (squash recovery).
    pub fn restore(&mut self, r: ArchReg, previous: PhysReg) {
        self.touched.mark(r.index());
        self.map[r.index()] = previous;
    }

    /// Entries where `self` and `other` map differently.
    pub(crate) fn diff(&self, other: &Self) -> TouchedSet {
        let mut d = TouchedSet::new(NUM_ARCH_REGS);
        for i in 0..NUM_ARCH_REGS {
            if self.map[i] != other.map[i] {
                d.mark(i);
            }
        }
        d
    }

    /// Whether every tagged entry equals `g`'s copy.
    pub(crate) fn touched_matches(&self, g: &Self) -> bool {
        self.touched.iter().all(|i| self.map[i] == g.map[i])
    }

    /// Convergence probe against `g` given the restore-source diff.
    pub(crate) fn converged_with(&self, g: &Self, diff: &TouchedSet) -> bool {
        self.touched.contains_all(diff) && self.touched_matches(g)
    }

    /// Forks from `src` by copying the whole map — at [`NUM_ARCH_REGS`]
    /// entries it is smaller than a page handle, so eager is the cheap
    /// option — and mirroring the source's tags.
    pub(crate) fn fork_from(&mut self, src: &Self) -> ForkBytes {
        self.map = src.map;
        self.touched.copy_from(&src.touched);
        ForkBytes {
            copied: (NUM_ARCH_REGS * std::mem::size_of::<PhysReg>()) as u64,
            eager: src.touched.count() as u64 * std::mem::size_of::<PhysReg>() as u64,
            shared: 0,
        }
    }
}

impl Restorable for RenameTable {
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64 {
        if incremental {
            let mut n = 0u64;
            for i in self.touched.drain() {
                self.map[i] = snap.map[i];
                n += std::mem::size_of::<PhysReg>() as u64;
            }
            n
        } else {
            self.map = snap.map;
            self.touched.clear_all();
            (NUM_ARCH_REGS * std::mem::size_of::<PhysReg>()) as u64
        }
    }
}

impl BinCode for RenameTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.map.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(RenameTable {
            map: BinCode::decode(r)?,
            touched: TouchedSet::new(NUM_ARCH_REGS),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_isa::reg;

    #[test]
    fn read_write_and_ready_bits() {
        let mut prf = PhysRegFile::new(32);
        assert!(prf.is_ready(5));
        prf.mark_pending(5);
        assert!(!prf.is_ready(5));
        prf.write(5, 42);
        assert!(prf.is_ready(5));
        assert_eq!(prf.read(5), 42);
        assert_eq!(prf.len(), 32);
        assert!(!prf.is_empty());
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        let mut prf = PhysRegFile::new(8);
        prf.write(3, 0b1010);
        prf.flip_bit(3, 1);
        assert_eq!(prf.read(3), 0b1000);
        prf.flip_bit(3, 63);
        assert_eq!(prf.read(3), 0b1000 | (1 << 63));
    }

    #[test]
    fn free_list_allocate_release_cycle() {
        let mut fl = FreeList::new(18, 22);
        assert_eq!(fl.available(), 4);
        let a = fl.allocate().unwrap();
        let b = fl.allocate().unwrap();
        assert_ne!(a, b);
        assert_eq!(fl.available(), 2);
        fl.release(a);
        assert_eq!(fl.available(), 3);
        // FIFO order: the released register comes back last.
        assert_eq!(fl.allocate().unwrap(), 20);
        assert_eq!(fl.allocate().unwrap(), 21);
        assert_eq!(fl.allocate().unwrap(), a);
        assert_eq!(fl.allocate(), None);
    }

    #[test]
    fn rename_table_remap_and_restore() {
        let mut rat = RenameTable::identity();
        assert_eq!(rat.lookup(reg(3)), 3);
        let prev = rat.remap(reg(3), 40);
        assert_eq!(prev, 3);
        assert_eq!(rat.lookup(reg(3)), 40);
        rat.restore(reg(3), prev);
        assert_eq!(rat.lookup(reg(3)), 3);
    }
}
