//! Copy-on-write storage substrate for the forkable pipeline structures.
//!
//! The fork-on-divergence driver (`merlin-inject`'s batched engine) spawns
//! one faulty core per injection cycle from a shared golden parent.  Before
//! this substrate, `Cpu::fork_from` deep-copied every entry the parent had
//! touched since its restore — O(touched) bytes per fork, dominated by the
//! predictor counter tables and the ROB.  The types here make that copy
//! structural instead: heavy storage is split into fixed-size pages behind
//! [`Arc`] handles, a fork clones the *handles* (O(pages) pointer copies),
//! and the first write to a shared page breaks sharing for that page alone
//! via [`Arc::make_mut`].  Everything a faulty suffix never writes stays
//! shared across the parent, its snapshot, and every sibling fork.
//!
//! Three shapes of storage need three wrappers:
//!
//! * [`CowTable<T>`] — array-shaped structures with stable entry indices
//!   (register file, LSQ slots, predictor counter tables, BTB, cache
//!   lines).  Entries live in power-of-two-sized pages; reads index through
//!   one extra pointer, writes go through [`CowTable::get_mut`].
//! * [`CowSeq<T>`] — queue-shaped structures (ROB, fetch buffer, free
//!   list).  The whole queue sits behind one handle; any mutation breaks it
//!   via [`CowSeq::make_mut`].  Matches the all-or-nothing granularity of
//!   the existing [`crate::TouchedFlag`] tags.
//! * [`CowBytes`] — the backing memory's byte store, paged at the existing
//!   delta-snapshot chunk granularity so a chunk can also share its handle
//!   with a pristine-image chunk or a checkpoint's delta chunk.
//!
//! Sharing metadata is **bookkeeping, not state**, exactly like `SnapId`
//! and the epoch tags: it is never serialised (the `binio` wire formats
//! below re-encode plain `len + elements`, byte-identical to the pre-CoW
//! layouts), and equality compares contents — with an `Arc::ptr_eq` fast
//! path per page, so probes over structurally shared state short-circuit.
//! Each wrapper counts how many pages it un-shared (`cow_breaks`), feeding
//! the `fork_bytes_copied` / `fork_bytes_shared` / `cow_breaks` telemetry
//! in the campaign scheduler.

use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::Arc;

/// An array of `T` split into power-of-two-sized pages behind [`Arc`]
/// handles.  Cloning (and [`CowTable::share_from`]) copies handles only;
/// writes break sharing per page.
#[derive(Debug, Clone)]
pub struct CowTable<T> {
    pages: Vec<Arc<Vec<T>>>,
    len: usize,
    /// log2 of the page size in entries.
    shift: u32,
    /// Pages un-shared by writes since construction or the last
    /// [`CowTable::take_cow_breaks`]; bookkeeping, not state.
    breaks: u64,
}

impl<T: Clone> CowTable<T> {
    /// A table of `len` copies of `init`, paged in `page_len` entries
    /// (rounded up to a power of two).
    pub fn new(len: usize, init: T, page_len: usize) -> Self {
        Self::from_fn(len, page_len, |_| init.clone())
    }

    /// A table of `len` entries produced by `f(index)`.
    pub fn from_fn(len: usize, page_len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let page_len = page_len.max(1).next_power_of_two();
        let shift = page_len.trailing_zeros();
        let mut pages = Vec::with_capacity(len.div_ceil(page_len));
        let mut i = 0;
        while i < len {
            let n = page_len.min(len - i);
            pages.push(Arc::new((i..i + n).map(&mut f).collect()));
            i += n;
        }
        CowTable {
            pages,
            len,
            shift,
            breaks: 0,
        }
    }

    /// A table owning the entries of `v`, paged in `page_len` entries
    /// (rounded up to a power of two).  Used by `binio` decode.
    pub fn from_vec(v: Vec<T>, page_len: usize) -> Self {
        let len = v.len();
        let mut it = v.into_iter();
        Self::from_fn(len, page_len, |_| it.next().expect("length just measured"))
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared read access to entry `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        debug_assert!(i < self.len);
        &self.pages[i >> self.shift][i & ((1 << self.shift) - 1)]
    }

    /// Mutable access to entry `i`, breaking the containing page's sharing
    /// if it is currently shared.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        let page = &mut self.pages[i >> self.shift];
        if Arc::strong_count(page) != 1 {
            self.breaks += 1;
        }
        &mut Arc::make_mut(page)[i & ((1 << self.shift) - 1)]
    }

    /// Iterates the entries in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.pages.iter().flat_map(|p| p.iter())
    }

    /// Replaces this table's contents with `src`'s by cloning page handles —
    /// O(pages), no entry is copied.  Both tables must have the same
    /// geometry (same length, built with the same page size).
    pub fn share_from(&mut self, src: &Self) {
        debug_assert_eq!(self.len, src.len);
        debug_assert_eq!(self.shift, src.shift);
        self.pages.clone_from(&src.pages);
    }

    /// Calls `f(i)` for every index where `self` and `other` differ, in
    /// ascending order.  Pages sharing a handle are skipped without being
    /// read.
    pub fn for_each_diff(&self, other: &Self, mut f: impl FnMut(usize))
    where
        T: PartialEq,
    {
        debug_assert_eq!(self.len, other.len);
        debug_assert_eq!(self.shift, other.shift);
        let page_len = 1usize << self.shift;
        for (pi, (a, b)) in self.pages.iter().zip(&other.pages).enumerate() {
            if Arc::ptr_eq(a, b) {
                continue;
            }
            for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                if x != y {
                    f(pi * page_len + j);
                }
            }
        }
    }

    /// Pages un-shared by writes since the last
    /// [`CowTable::take_cow_breaks`].
    pub fn cow_breaks(&self) -> u64 {
        self.breaks
    }

    /// Returns and resets the un-share counter.
    pub fn take_cow_breaks(&mut self) -> u64 {
        std::mem::take(&mut self.breaks)
    }

    /// Materialises a private copy of every shared page, so no storage is
    /// shared with any other table (the quarantine reuse guarantee).
    pub fn unshare_all(&mut self) {
        for page in &mut self.pages {
            if Arc::strong_count(page) != 1 {
                self.breaks += 1;
                Arc::make_mut(page);
            }
        }
    }

    /// Whether every page is privately owned (no sharing with snapshots,
    /// parents or forks).
    pub fn fully_private(&self) -> bool {
        self.pages.iter().all(|p| Arc::strong_count(p) == 1)
    }
}

/// Contents-only equality with a per-page `Arc::ptr_eq` fast path; the
/// un-share counter is bookkeeping and invisible, like the epoch tags.
impl<T: PartialEq> PartialEq for CowTable<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .pages
                .iter()
                .zip(&other.pages)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}
impl<T: Eq> Eq for CowTable<T> {}

impl<T: BinCode + Clone> CowTable<T> {
    /// Encodes as a plain `len + elements` sequence — byte-identical to the
    /// `Vec<T>` the structure held before the CoW substrate.  Page
    /// boundaries and sharing are never serialised.
    pub fn encode_seq(&self, out: &mut Vec<u8>) {
        self.len.encode(out);
        for v in self.iter() {
            v.encode(out);
        }
    }

    /// Decodes a `len + elements` sequence into a freshly paged, fully
    /// private table.
    pub fn decode_seq(r: &mut ByteReader<'_>, page_len: usize) -> Result<Self, DecodeError> {
        Ok(Self::from_vec(Vec::<T>::decode(r)?, page_len))
    }
}

/// Byte accounting one structure reports from its fork path (summed into
/// [`crate::ForkStats`] by `Cpu::fork_from`).
///
/// * `copied` — bytes the fork physically copied (eager, unconditional).
/// * `eager` — bytes the pre-CoW fork path would have copied for the same
///   source state (its touched entries plus diverged queues): the PR 9
///   baseline the `fork_bytes_copied` reduction is measured against.
/// * `shared` — bytes now referenced structurally through shared page
///   handles instead of being copied.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkBytes {
    /// Bytes physically copied by the fork.
    pub copied: u64,
    /// Bytes an eager (pre-CoW) fork of the same source would have copied.
    pub eager: u64,
    /// Bytes shared structurally instead of copied.
    pub shared: u64,
}

impl std::ops::Add for ForkBytes {
    type Output = ForkBytes;
    fn add(self, rhs: ForkBytes) -> ForkBytes {
        ForkBytes {
            copied: self.copied + rhs.copied,
            eager: self.eager + rhs.eager,
            shared: self.shared + rhs.shared,
        }
    }
}

/// A single value behind an [`Arc`] handle with copy-on-write mutation —
/// for irregular structures (the dynamic-instance counter map, the output
/// stream) that are cheaper to share wholesale than to page.
#[derive(Debug, Clone)]
pub struct CowBox<T> {
    inner: Arc<T>,
    /// Un-share count; bookkeeping, not state.
    breaks: u64,
}

impl<T: Default> Default for CowBox<T> {
    fn default() -> Self {
        CowBox {
            inner: Arc::new(T::default()),
            breaks: 0,
        }
    }
}

impl<T> Deref for CowBox<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: Clone> CowBox<T> {
    /// A box owning `value`.
    pub fn new(value: T) -> Self {
        CowBox {
            inner: Arc::new(value),
            breaks: 0,
        }
    }

    /// Mutable access, breaking sharing if the handle is shared.
    #[inline]
    pub fn make_mut(&mut self) -> &mut T {
        if Arc::strong_count(&self.inner) != 1 {
            self.breaks += 1;
        }
        Arc::make_mut(&mut self.inner)
    }

    /// Replaces this value with `src`'s by cloning the handle.
    pub fn share_from(&mut self, src: &Self) {
        self.inner.clone_from(&src.inner);
    }

    /// Un-shares since the last [`CowBox::take_cow_breaks`].
    pub fn cow_breaks(&self) -> u64 {
        self.breaks
    }

    /// Returns and resets the un-share counter.
    pub fn take_cow_breaks(&mut self) -> u64 {
        std::mem::take(&mut self.breaks)
    }

    /// Materialises a private copy if the handle is shared.
    pub fn unshare_all(&mut self) {
        if Arc::strong_count(&self.inner) != 1 {
            self.breaks += 1;
            Arc::make_mut(&mut self.inner);
        }
    }

    /// Whether the value is privately owned.
    pub fn fully_private(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }
}

/// Contents-only equality with an `Arc::ptr_eq` fast path.
impl<T: PartialEq> PartialEq for CowBox<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}
impl<T: Eq> Eq for CowBox<T> {}

impl<T: BinCode + Clone> BinCode for CowBox<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Self::new(T::decode(r)?))
    }
}

/// A queue behind a single [`Arc`] handle: reads deref straight to the
/// [`VecDeque`], mutation goes through [`CowSeq::make_mut`], and a fork or
/// restore is one handle clone.  The whole-queue granularity matches the
/// [`crate::TouchedFlag`] tag these structures already carry.
#[derive(Debug, Clone)]
pub struct CowSeq<T> {
    inner: Arc<VecDeque<T>>,
    /// Un-share count; bookkeeping, not state.
    breaks: u64,
}

impl<T> Default for CowSeq<T> {
    fn default() -> Self {
        CowSeq {
            inner: Arc::new(VecDeque::new()),
            breaks: 0,
        }
    }
}

impl<T> Deref for CowSeq<T> {
    type Target = VecDeque<T>;
    #[inline]
    fn deref(&self) -> &VecDeque<T> {
        &self.inner
    }
}

impl<T: Clone> CowSeq<T> {
    /// A queue owning `inner`.
    pub fn from_deque(inner: VecDeque<T>) -> Self {
        CowSeq {
            inner: Arc::new(inner),
            breaks: 0,
        }
    }

    /// Mutable access to the queue, breaking sharing if the handle is
    /// currently shared.
    #[inline]
    pub fn make_mut(&mut self) -> &mut VecDeque<T> {
        if Arc::strong_count(&self.inner) != 1 {
            self.breaks += 1;
        }
        Arc::make_mut(&mut self.inner)
    }

    /// Replaces this queue's contents with `src`'s by cloning the handle.
    pub fn share_from(&mut self, src: &Self) {
        self.inner.clone_from(&src.inner);
    }

    /// Queue un-shares since the last [`CowSeq::take_cow_breaks`].
    pub fn cow_breaks(&self) -> u64 {
        self.breaks
    }

    /// Returns and resets the un-share counter.
    pub fn take_cow_breaks(&mut self) -> u64 {
        std::mem::take(&mut self.breaks)
    }

    /// Materialises a private copy if the handle is shared.
    pub fn unshare_all(&mut self) {
        if Arc::strong_count(&self.inner) != 1 {
            self.breaks += 1;
            Arc::make_mut(&mut self.inner);
        }
    }

    /// Whether the queue is privately owned.
    pub fn fully_private(&self) -> bool {
        Arc::strong_count(&self.inner) == 1
    }
}

/// Contents-only equality with an `Arc::ptr_eq` fast path.
impl<T: PartialEq> PartialEq for CowSeq<T> {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner) || self.inner == other.inner
    }
}
impl<T: Eq> Eq for CowSeq<T> {}

impl<T: BinCode + Clone> BinCode for CowSeq<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inner.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(Self::from_deque(VecDeque::decode(r)?))
    }
}

/// A flat byte store split into fixed-size chunk pages behind [`Arc`]
/// handles — the backing memory's storage.  The chunk size is the delta
/// snapshot granularity, so a chunk can share its handle three ways: with
/// the sealed pristine image (clean chunks cost nothing to revert), with a
/// checkpoint's delta chunks (captured and restored by handle), and with a
/// fork parent's live chunks.
#[derive(Debug, Clone)]
pub struct CowBytes {
    chunks: Vec<Arc<Vec<u8>>>,
    len: usize,
    /// log2 of the chunk size in bytes.
    shift: u32,
    /// Un-share count; bookkeeping, not state.
    breaks: u64,
}

impl CowBytes {
    /// A zeroed store of `len` bytes in chunks of `chunk_len` (must be a
    /// power of two); the last chunk may be short.
    pub fn new(len: usize, chunk_len: usize) -> Self {
        assert!(chunk_len.is_power_of_two());
        let shift = chunk_len.trailing_zeros();
        let mut chunks = Vec::with_capacity(len.div_ceil(chunk_len));
        let mut i = 0;
        while i < len {
            let n = chunk_len.min(len - i);
            chunks.push(Arc::new(vec![0u8; n]));
            i += n;
        }
        CowBytes {
            chunks,
            len,
            shift,
            breaks: 0,
        }
    }

    /// Total length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    #[inline]
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk index containing byte offset `off`.
    #[inline]
    pub fn chunk_of(&self, off: usize) -> usize {
        off >> self.shift
    }

    /// Shared read access to chunk `c`'s bytes.
    #[inline]
    pub fn chunk(&self, c: usize) -> &[u8] {
        &self.chunks[c]
    }

    /// Mutable access to chunk `c`'s bytes, breaking its sharing if shared.
    #[inline]
    pub fn chunk_mut(&mut self, c: usize) -> &mut [u8] {
        let chunk = &mut self.chunks[c];
        if Arc::strong_count(chunk) != 1 {
            self.breaks += 1;
        }
        Arc::make_mut(chunk).as_mut_slice()
    }

    /// Reads the byte at offset `off`.
    #[inline]
    pub fn byte(&self, off: usize) -> u8 {
        let mask = (1usize << self.shift) - 1;
        self.chunks[off >> self.shift][off & mask]
    }

    /// The handle of chunk `c`, for capturing a zero-copy delta snapshot.
    pub fn chunk_handle(&self, c: usize) -> Arc<Vec<u8>> {
        Arc::clone(&self.chunks[c])
    }

    /// Replaces chunk `c`'s contents with the bytes behind `handle` by
    /// cloning the handle — the zero-copy restore of a delta chunk.
    ///
    /// # Panics
    ///
    /// Panics if `handle`'s length differs from the chunk's physical size
    /// (a corrupt delta would otherwise silently change the memory length).
    pub fn set_chunk_handle(&mut self, c: usize, handle: &Arc<Vec<u8>>) {
        assert_eq!(
            handle.len(),
            self.chunks[c].len(),
            "delta chunk length does not match the memory's chunk size"
        );
        self.chunks[c].clone_from(handle);
    }

    /// Replaces chunk `c`'s contents with `src`'s chunk `c` by cloning the
    /// handle — the zero-copy revert to a pristine-image chunk.
    pub fn share_chunk_from(&mut self, c: usize, src: &Self) {
        debug_assert_eq!(self.len, src.len);
        self.chunks[c].clone_from(&src.chunks[c]);
    }

    /// Replaces the whole store's contents with `src`'s by cloning every
    /// chunk handle — O(chunks), no byte is copied.
    pub fn share_from(&mut self, src: &Self) {
        debug_assert_eq!(self.len, src.len);
        debug_assert_eq!(self.shift, src.shift);
        self.chunks.clone_from(&src.chunks);
    }

    /// Whether chunk `c` shares its handle with `other`'s chunk `c` — lets
    /// comparisons skip shared chunks without reading them.
    #[inline]
    pub fn chunk_ptr_eq(&self, c: usize, other: &Self) -> bool {
        Arc::ptr_eq(&self.chunks[c], &other.chunks[c])
    }

    /// Whether chunk `c` is privately owned.
    #[inline]
    pub fn chunk_private(&self, c: usize) -> bool {
        Arc::strong_count(&self.chunks[c]) == 1
    }

    /// Materialises a private copy of chunk `c` if it is shared.
    pub fn unshare_chunk(&mut self, c: usize) {
        let chunk = &mut self.chunks[c];
        if Arc::strong_count(chunk) != 1 {
            self.breaks += 1;
            Arc::make_mut(chunk);
        }
    }

    /// Chunk un-shares since the last [`CowBytes::take_cow_breaks`].
    pub fn cow_breaks(&self) -> u64 {
        self.breaks
    }

    /// Returns and resets the un-share counter.
    pub fn take_cow_breaks(&mut self) -> u64 {
        std::mem::take(&mut self.breaks)
    }

    /// Materialises a private copy of every shared chunk.
    pub fn unshare_all(&mut self) {
        for chunk in &mut self.chunks {
            if Arc::strong_count(chunk) != 1 {
                self.breaks += 1;
                Arc::make_mut(chunk);
            }
        }
    }

    /// Whether every chunk is privately owned.
    pub fn fully_private(&self) -> bool {
        self.chunks.iter().all(|c| Arc::strong_count(c) == 1)
    }
}

/// Contents-only equality with a per-chunk `Arc::ptr_eq` fast path.
impl PartialEq for CowBytes {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len
            && self
                .chunks
                .iter()
                .zip(&other.chunks)
                .all(|(a, b)| Arc::ptr_eq(a, b) || a == b)
    }
}
impl Eq for CowBytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_pages_share_until_written() {
        let mut a = CowTable::new(100, 0u64, 16);
        for i in 0..100 {
            *a.get_mut(i) = i as u64;
        }
        a.take_cow_breaks();
        let mut b = a.clone();
        assert_eq!(a, b);
        assert!(!b.fully_private());
        // A write to one entry breaks exactly one page.
        *b.get_mut(17) = 999;
        assert_eq!(b.cow_breaks(), 1);
        assert_eq!(*b.get(17), 999);
        assert_eq!(*a.get(17), 17, "parent unaffected by the fork's write");
        assert_ne!(a, b);
        // Rewriting another entry of the same (now private) page is free.
        *b.get_mut(18) = 1000;
        assert_eq!(b.cow_breaks(), 1);
        // Diff walk skips shared pages and reports exact indices.
        let mut diff = Vec::new();
        a.for_each_diff(&b, |i| diff.push(i));
        assert_eq!(diff, vec![17, 18]);
    }

    #[test]
    fn table_share_from_and_unshare() {
        let a = CowTable::from_fn(50, 8, |i| i as u32);
        let mut b = CowTable::new(50, 0u32, 8);
        b.share_from(&a);
        assert_eq!(a, b);
        assert!(!b.fully_private());
        b.unshare_all();
        assert!(b.fully_private());
        assert_eq!(a, b);
        assert!(b.cow_breaks() > 0);
    }

    #[test]
    fn table_encode_matches_vec_layout() {
        let v: Vec<u64> = (0..37).collect();
        let t = CowTable::from_vec(v.clone(), 8);
        let mut from_vec = Vec::new();
        v.encode(&mut from_vec);
        let mut from_table = Vec::new();
        t.encode_seq(&mut from_table);
        assert_eq!(from_vec, from_table, "CoW paging must be wire-invisible");
        let mut r = ByteReader::new(&from_table);
        let back = CowTable::<u64>::decode_seq(&mut r, 8).unwrap();
        assert_eq!(back, t);
        assert!(back.fully_private());
    }

    #[test]
    fn seq_breaks_on_first_write_only() {
        let mut a = CowSeq::from_deque((0..5u32).collect());
        let mut b = a.clone();
        assert_eq!(a, b);
        b.make_mut().push_back(9);
        assert_eq!(b.cow_breaks(), 1);
        assert_eq!(a.len(), 5);
        assert_eq!(b.len(), 6);
        assert_ne!(a, b);
        b.make_mut().push_back(10);
        assert_eq!(b.cow_breaks(), 1);
        a.make_mut().clear();
        assert_eq!(a.cow_breaks(), 0, "unique handles mutate in place");
    }

    #[test]
    fn bytes_chunks_share_with_pristine_and_break_on_write() {
        let mut m = CowBytes::new(1024 + 100, 256);
        assert_eq!(m.chunk_count(), 5);
        m.chunk_mut(1)[3] = 7;
        let pristine = m.clone();
        m.take_cow_breaks();
        m.chunk_mut(1)[3] = 9;
        assert_eq!(m.cow_breaks(), 1);
        assert_eq!(pristine.chunk(1)[3], 7);
        assert_eq!(m.byte(256 + 3), 9);
        assert!(!m.chunk_ptr_eq(1, &pristine));
        assert!(m.chunk_ptr_eq(0, &pristine));
        // Handle-revert makes the chunk pristine again without a copy.
        m.share_chunk_from(1, &pristine);
        assert_eq!(m, pristine);
        assert!(m.chunk_ptr_eq(1, &pristine));
        // Short last chunk keeps its physical size across handle swaps.
        assert_eq!(m.chunk(4).len(), 100);
    }

    #[test]
    #[should_panic(expected = "delta chunk length")]
    fn bytes_rejects_mis_sized_chunk_handles() {
        let mut m = CowBytes::new(1024, 256);
        let wrong = Arc::new(vec![0u8; 17]);
        m.set_chunk_handle(0, &wrong);
    }
}
