//! Touched-entry tracking shared by every restorable pipeline structure.
//!
//! The incremental same-snapshot restore path (see [`crate::Cpu::restore_from`])
//! rests on one invariant per structure: *every entry mutated since the last
//! restore is tagged*.  A core restored from the snapshot it was last restored
//! from then rewrites only tagged entries — untagged entries still hold the
//! snapshot's bits by construction — and the early-exit convergence probe
//! compares only the union of tagged entries against a precomputed
//! checkpoint-to-checkpoint diff.
//!
//! Two shapes of structure need two shapes of tag:
//!
//! * **Array-shaped** structures (physical register file, RAT, store/load
//!   queue slots, predictor counter tables, BTB, cache lines, memory chunks)
//!   have stable per-entry indices, so they carry a [`TouchedSet`] — one bit
//!   per entry, set at every mutation site, drained by the restore walk.
//! * **Queue-shaped** structures (ROB, fetch buffer, free list) push, pop and
//!   clear; entries have no index that survives the suffix, so they carry a
//!   single whole-structure [`TouchedFlag`].  An untouched queue is skipped
//!   entirely on restore; a touched one is rewritten element-wise in place
//!   (no reallocation once capacity is warm) via [`restore_deque`].
//!
//! Tags are bookkeeping, not state: like `SnapId`, they are **never
//! serialised** (`binio` formats are unchanged; decode constructs cleared
//! tags) and they compare equal to everything, so structures embedding them
//! can keep `#[derive(PartialEq)]` and snapshot comparisons see only real
//! data.

use crate::cow::{CowSeq, ForkBytes};

/// A fixed-capacity bitset tagging which entries of an array-shaped
/// structure were mutated since the last restore.
///
/// Compares equal to any other `TouchedSet` (tags are bookkeeping, not
/// state) and is never serialised.
#[derive(Debug, Clone)]
pub struct TouchedSet {
    words: Vec<u64>,
}

impl TouchedSet {
    /// An all-clear set covering `entries` entries.
    pub fn new(entries: usize) -> Self {
        TouchedSet {
            words: vec![0; entries.div_ceil(64)],
        }
    }

    /// Tags entry `idx` as mutated.
    #[inline]
    pub fn mark(&mut self, idx: usize) {
        self.words[idx / 64] |= 1u64 << (idx % 64);
    }

    /// Tags every entry (used when a structure is rewritten wholesale, e.g.
    /// a full squash that the caller cannot attribute to single entries).
    pub fn mark_all(&mut self) {
        self.words.fill(u64::MAX);
    }

    /// Whether entry `idx` is tagged.
    #[inline]
    pub fn is_marked(&self, idx: usize) -> bool {
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Clears the tag of entry `idx`.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        self.words[idx / 64] &= !(1u64 << (idx % 64));
    }

    /// Clears every tag (a full restore trusts no tag and resets them all).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Whether any entry is tagged.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of tagged entries.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether every entry tagged in `other` is also tagged in `self`
    /// (`other ⊆ self`) — the word-parallel subset test the convergence
    /// probe uses against a checkpoint-pair diff.
    pub fn contains_all(&self, other: &TouchedSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .all(|(s, o)| o & !s == 0)
    }

    /// Tags every entry tagged in `other` (`self ∪= other`) — the
    /// word-parallel union the fork path uses to inherit the source core's
    /// since-restore tags in one pass.
    pub fn merge(&mut self, other: &TouchedSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (s, o) in self.words.iter_mut().zip(&other.words) {
            *s |= o;
        }
    }

    /// Replaces this set's tags with `other`'s in one word-parallel pass —
    /// the CoW fork path, where the fork's state *is* the source's state
    /// (page handles included), discards its own stale tags wholesale.
    pub fn copy_from(&mut self, other: &TouchedSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates the tagged entry indices in ascending order without
    /// clearing them (the convergence probe must not disturb the tags).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut word = w;
            std::iter::from_fn(move || {
                if word == 0 {
                    return None;
                }
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Iterates the tagged entry indices in ascending order, clearing each
    /// as it is produced — the restore walk's single pass.
    pub fn drain(&mut self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter_mut().enumerate().flat_map(|(wi, w)| {
            std::iter::from_fn(move || {
                if *w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                *w &= *w - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// Tags never participate in state comparison: two sets always compare
/// equal, exactly like `SnapId`, so embedding structures can keep derived
/// `PartialEq` without leaking bookkeeping into snapshot identity.
impl PartialEq for TouchedSet {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for TouchedSet {}

/// Whole-structure mutation tag for queue-shaped structures whose entries
/// have no stable index (ROB, fetch buffer, free list).  Compares equal to
/// everything and is never serialised, like [`TouchedSet`].
#[derive(Debug, Clone, Default)]
pub struct TouchedFlag {
    touched: bool,
}

impl TouchedFlag {
    /// Tags the structure as mutated since the last restore.
    #[inline]
    pub fn mark(&mut self) {
        self.touched = true;
    }

    /// Whether the structure was mutated since the last restore.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.touched
    }

    /// Clears the tag (restore complete — structure equals the snapshot).
    pub fn clear(&mut self) {
        self.touched = false;
    }

    /// Replaces this tag's state with `other`'s (the CoW fork path, which
    /// makes the fork's queue identical to the source's, tags included).
    pub fn copy_from(&mut self, other: &TouchedFlag) {
        self.touched = other.touched;
    }
}

impl PartialEq for TouchedFlag {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for TouchedFlag {}

/// A pipeline structure that can rewrite itself to equal its snapshot copy,
/// either wholesale or — on the same-snapshot path — only where its tags
/// say the suffix mutated it.
///
/// `restore_from` returns the number of bytes rewritten, feeding the honest
/// per-structure `restored_bytes` accounting in
/// [`crate::RestoreStats`].  After it returns, `self` is bit-identical to
/// `snap` (in state terms; tags are cleared) on **both** paths; the
/// incremental path is purely a cost optimisation whose soundness rests on
/// the every-mutation-is-tagged invariant.
pub trait Restorable {
    /// Rewrites `self` to equal `snap`.  When `incremental` is true the
    /// caller guarantees every entry of `self` not tagged since the last
    /// restore already equals `snap`'s copy, so only tagged entries are
    /// rewritten.  Returns bytes rewritten.
    fn restore_from(&mut self, snap: &Self, incremental: bool) -> u64;
}

/// Restores a queue to equal its snapshot copy, skipping the work entirely
/// when `incremental` holds and the queue's tag is clear.  A rewrite is one
/// handle share (O(1)); the returned byte count is the queue state made
/// equal to the snapshot, mirroring the pre-CoW element-wise accounting.
pub fn restore_deque<T: Clone>(
    live: &mut CowSeq<T>,
    snap: &CowSeq<T>,
    tag: &mut TouchedFlag,
    incremental: bool,
) -> u64 {
    if incremental && !tag.is_set() {
        debug_assert_eq!(live.len(), snap.len());
        return 0;
    }
    live.share_from(snap);
    tag.clear();
    (snap.len() * std::mem::size_of::<T>()) as u64
}

/// Forks a queue from its source by cloning the handle — the fork shares the
/// source's storage until one of them writes — and mirrors the source's tag
/// (the fork's divergence from the shared restore base is exactly the
/// source's).  The returned [`ForkBytes`] reports the whole queue as shared
/// and, as the eager baseline, the bytes the pre-CoW path would have copied
/// (the full queue iff the source had diverged).
pub fn fork_deque<T: Clone>(
    live: &mut CowSeq<T>,
    src: &CowSeq<T>,
    src_tag: &TouchedFlag,
    live_tag: &mut TouchedFlag,
) -> ForkBytes {
    let bytes = (src.len() * std::mem::size_of::<T>()) as u64;
    live.share_from(src);
    live_tag.copy_from(src_tag);
    ForkBytes {
        copied: 0,
        eager: if src_tag.is_set() { bytes } else { 0 },
        shared: bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_iter_and_drain() {
        let mut t = TouchedSet::new(130);
        assert!(!t.any());
        t.mark(0);
        t.mark(63);
        t.mark(64);
        t.mark(129);
        assert!(t.any());
        assert_eq!(t.count(), 4);
        assert!(t.is_marked(63) && t.is_marked(129));
        assert!(!t.is_marked(1));
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        // `iter` does not clear.
        assert_eq!(t.count(), 4);
        assert_eq!(t.drain().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert!(!t.any());
    }

    #[test]
    fn subset_test_is_exact() {
        let mut a = TouchedSet::new(100);
        let mut b = TouchedSet::new(100);
        assert!(a.contains_all(&b));
        b.mark(70);
        assert!(!a.contains_all(&b));
        a.mark(70);
        a.mark(3);
        assert!(a.contains_all(&b));
        assert!(!b.contains_all(&a));
        a.mark_all();
        assert!(a.contains_all(&b));
        a.clear_all();
        assert!(!a.any());
    }

    #[test]
    fn merge_unions_tags_word_parallel() {
        let mut a = TouchedSet::new(130);
        let mut b = TouchedSet::new(130);
        a.mark(1);
        b.mark(64);
        b.mark(129);
        a.merge(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 64, 129]);
        assert!(a.contains_all(&b));
        // `other` is untouched by the union.
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn fork_deque_shares_and_mirrors_divergence() {
        let base: CowSeq<u32> = CowSeq::from_deque((0..4).collect());
        let mut src = base.clone();
        let src_tag = TouchedFlag::default();
        let mut live = base.clone();
        let mut live_tag = TouchedFlag::default();
        // Source still equals the shared base: the fork shares the handle and
        // nothing would have been copied eagerly.
        let fb = fork_deque(&mut live, &src, &src_tag, &mut live_tag);
        assert_eq!((fb.copied, fb.eager, fb.shared), (0, 0, 4 * 4));
        assert!(!live_tag.is_set());
        // A diverged source is shared too, but the eager baseline records the
        // wholesale copy the pre-CoW path would have made, and the fork's tag
        // mirrors the source's divergence.
        src.make_mut().push_back(9);
        let mut src_tag = TouchedFlag::default();
        src_tag.mark();
        let fb = fork_deque(&mut live, &src, &src_tag, &mut live_tag);
        assert_eq!((fb.copied, fb.eager, fb.shared), (0, 5 * 4, 5 * 4));
        assert_eq!(live, src);
        assert!(live_tag.is_set());
    }

    #[test]
    fn tags_are_invisible_to_equality() {
        let mut a = TouchedSet::new(10);
        let b = TouchedSet::new(10);
        a.mark(3);
        assert_eq!(a, b);
        let mut f = TouchedFlag::default();
        let g = TouchedFlag::default();
        f.mark();
        assert_eq!(f, g);
        assert!(f.is_set() && !g.is_set());
        f.clear();
        assert!(!f.is_set());
    }

    #[test]
    fn deque_restore_skips_clean_and_rewrites_dirty() {
        let snap: CowSeq<u32> = CowSeq::from_deque((0..8).collect());
        let mut live = snap.clone();
        let mut tag = TouchedFlag::default();
        // Clean incremental restore touches nothing.
        assert_eq!(restore_deque(&mut live, &snap, &mut tag, true), 0);
        // A mutated queue is rewritten (by re-sharing the snapshot's handle)
        // and the tag cleared.
        live.make_mut().pop_front();
        tag.mark();
        let bytes = restore_deque(&mut live, &snap, &mut tag, true);
        assert_eq!(bytes, 8 * 4);
        assert_eq!(live, snap);
        assert!(!tag.is_set());
        // The full path rewrites regardless of the tag.
        assert_eq!(restore_deque(&mut live, &snap, &mut tag, false), 8 * 4);
        assert_eq!(live, snap);
    }
}
