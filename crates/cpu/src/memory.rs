//! Flat backing memory behind the cache hierarchy, with chunk-level dirty
//! tracking for delta snapshots.
//!
//! Checkpoint stores snapshot the backing memory once per checkpoint, and a
//! workload typically writes only a small fraction of its data region.  The
//! memory therefore tracks which fixed-size chunks ([`CHUNK_BYTES`] each)
//! have been written since the *pristine* program image was sealed
//! ([`Memory::seal_pristine`], called once by `Cpu::new` after the data
//! segments are loaded), and snapshots capture only those chunks as a
//! [`MemoryDelta`].  Restoring resolves the delta against the pristine image
//! the core already holds: untouched chunks revert to the program image,
//! dirty chunks are copied from the delta — byte-exact, with no dense copy
//! anywhere.

use crate::cow::{CowBytes, ForkBytes};
use crate::touched::TouchedSet;
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use merlin_isa::{MemSize, DATA_BASE};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Granularity of dirty tracking and of [`MemoryDelta`] chunks.
///
/// Small enough that one written word does not drag in a whole page, large
/// enough that the per-chunk bookkeeping (4-byte index + bitset bit) stays
/// negligible against the chunk payload.
pub const CHUNK_BYTES: usize = 256;

/// The implicit pristine image of an unsealed memory (see
/// [`Memory::seal_pristine`]), one chunk at a time.
static ZERO_CHUNK: [u8; CHUNK_BYTES] = [0; CHUNK_BYTES];

/// Memory access faults detected by the memory system.
///
/// Out-of-bounds accesses correspond to the paper's *Crash* outcomes
/// (the simulated process dies); stores into the read-only code region
/// correspond to *Assert* outcomes (the simulator refuses to continue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// Access outside the program's data region.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// A store targeted the code region below [`DATA_BASE`].
    StoreToCode {
        /// Faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(
                    f,
                    "memory access of {size} bytes at {addr:#x} out of bounds"
                )
            }
            MemError::StoreToCode { addr } => {
                write!(f, "store to code region at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable backing memory covering `[DATA_BASE, DATA_BASE + len)`.
///
/// The live bytes are a [`CowBytes`] store chunked at the delta-snapshot
/// granularity, so a chunk can share its `Arc` handle with the pristine
/// image (clean chunks), with a checkpoint's delta chunks (restores are
/// handle swaps), and with a fork parent's live chunks ([`Memory::fork_from`]
/// copies nothing).  The per-chunk dirty bitset records which chunks have
/// been written since the image was sealed — the machinery behind
/// [`Memory::delta_snapshot`].  Equality compares the live bytes only; the
/// dirty bookkeeping is an encoding of *how* the bytes diverge from the
/// image, not part of the architectural state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Memory {
    bytes: CowBytes,
    /// The sealed program image (empty until [`Memory::seal_pristine`]),
    /// sharing chunk handles with every clean live chunk.
    pristine: CowBytes,
    /// One bit per chunk: set when the chunk may differ from `pristine`.
    dirty: TouchedSet,
    /// One bit per chunk: set when the chunk was written since the last
    /// restore — the incremental same-snapshot restore rewrites only these
    /// (see [`Memory::restore_delta_incremental`]).
    touched: TouchedSet,
}

impl PartialEq for Memory {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Memory {}

impl Memory {
    /// Creates a zero-initialised memory of `len` bytes starting at
    /// [`DATA_BASE`].  Until [`Memory::seal_pristine`] is called the
    /// pristine image is implicitly all zeros (no allocation is paid for
    /// consumers, like the reference interpreter, that never snapshot).
    pub fn new(len: u64) -> Self {
        let chunks = (len as usize).div_ceil(CHUNK_BYTES);
        Memory {
            bytes: CowBytes::new(len as usize, CHUNK_BYTES),
            pristine: CowBytes::new(0, CHUNK_BYTES),
            dirty: TouchedSet::new(chunks),
            touched: TouchedSet::new(chunks),
        }
    }

    /// Number of chunks the memory is divided into for dirty tracking.
    fn chunk_count(&self) -> usize {
        self.bytes.chunk_count()
    }

    /// Byte range of chunk `idx` (the last chunk may be short).
    fn chunk_range(&self, idx: usize) -> std::ops::Range<usize> {
        let start = idx * CHUNK_BYTES;
        start..(start + CHUNK_BYTES).min(self.bytes.len())
    }

    fn is_dirty(&self, chunk: usize) -> bool {
        self.dirty.is_marked(chunk)
    }

    /// The pristine bytes of chunk `c` (implicitly zeros before
    /// [`Memory::seal_pristine`]).
    fn pristine_chunk(&self, c: usize) -> &[u8] {
        if self.pristine.is_empty() && !self.bytes.is_empty() {
            &ZERO_CHUNK[..self.chunk_range(c).len()]
        } else {
            self.pristine.chunk(c)
        }
    }

    /// Marks every chunk overlapping `[off, off+len)` (byte offsets into the
    /// data region) as dirty.
    fn mark_dirty(&mut self, off: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = off / CHUNK_BYTES;
        let last = (off + len - 1) / CHUNK_BYTES;
        for c in first..=last {
            self.dirty.mark(c);
            self.touched.mark(c);
        }
    }

    /// Seals the current contents as the pristine image: subsequent
    /// [`Memory::delta_snapshot`]s encode only chunks written after this
    /// point.  `Cpu::new` calls this once, after loading the program's data
    /// segments; cores running the same program share byte-identical images,
    /// so a delta taken on one core restores exactly on another.
    pub fn seal_pristine(&mut self) {
        // A CowBytes clone is a handle clone per chunk: sealing copies no
        // bytes, and every live chunk starts out sharing with the image.
        self.pristine = self.bytes.clone();
        self.dirty.clear_all();
        self.touched.clear_all();
    }

    /// Total size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// `true` when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Checks that `[addr, addr+size)` lies inside the data region.
    pub fn check_range(&self, addr: u64, size: u64, is_store: bool) -> Result<(), MemError> {
        if is_store && addr < DATA_BASE {
            return Err(MemError::StoreToCode { addr });
        }
        if addr < DATA_BASE
            || addr.checked_add(size).is_none()
            || addr + size > DATA_BASE + self.len()
        {
            return Err(MemError::OutOfBounds { addr, size });
        }
        Ok(())
    }

    /// Reads `size` bytes at `addr`, zero-extended into a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is not mapped.
    pub fn read(&self, addr: u64, size: MemSize) -> Result<u64, MemError> {
        self.check_range(addr, size.bytes(), false)?;
        let off = (addr - DATA_BASE) as usize;
        let n = size.bytes() as usize;
        let mut v: u64 = 0;
        for i in 0..n {
            v |= (self.bytes.byte(off + i) as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is not mapped or lies in the code
    /// region.
    pub fn write(&mut self, addr: u64, value: u64, size: MemSize) -> Result<(), MemError> {
        self.check_range(addr, size.bytes(), true)?;
        let off = (addr - DATA_BASE) as usize;
        let n = size.bytes() as usize;
        for i in 0..n {
            let o = off + i;
            let c = self.bytes.chunk_of(o);
            self.bytes.chunk_mut(c)[o % CHUNK_BYTES] = ((value >> (8 * i)) & 0xFF) as u8;
        }
        self.mark_dirty(off, n);
        Ok(())
    }

    /// Copies a byte slice into memory (used to load program data segments).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the segment does not fit.
    pub fn load_segment(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, data.len() as u64, false)?;
        let off = (addr - DATA_BASE) as usize;
        let mut pos = 0;
        while pos < data.len() {
            let o = off + pos;
            let c = self.bytes.chunk_of(o);
            let co = o % CHUNK_BYTES;
            let n = (CHUNK_BYTES - co).min(data.len() - pos);
            self.bytes.chunk_mut(c)[co..co + n].copy_from_slice(&data[pos..pos + n]);
            pos += n;
        }
        self.mark_dirty(off, data.len());
        Ok(())
    }

    /// Reads an entire cache line (`len` bytes, `addr` assumed line-aligned).
    ///
    /// Bytes outside the mapped region read as zero so that cache refills
    /// near the end of memory do not fault (only architectural accesses
    /// fault).
    pub fn read_line(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        for (i, b) in out.iter_mut().enumerate() {
            let a = addr + i as u64;
            if a >= DATA_BASE && a < DATA_BASE + self.len() {
                *b = self.bytes.byte((a - DATA_BASE) as usize);
            }
        }
        out
    }

    /// Writes an entire cache line back; bytes outside the mapped region are
    /// silently dropped (mirrors `read_line`).
    pub fn write_line(&mut self, addr: u64, data: &[u8]) {
        let mut first: Option<usize> = None;
        let mut last = 0usize;
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            if a >= DATA_BASE && a < DATA_BASE + self.len() {
                let off = (a - DATA_BASE) as usize;
                let c = self.bytes.chunk_of(off);
                self.bytes.chunk_mut(c)[off % CHUNK_BYTES] = b;
                first.get_or_insert(off);
                last = off;
            }
        }
        if let Some(first) = first {
            self.mark_dirty(first, last - first + 1);
        }
    }

    // ----- delta snapshots -------------------------------------------------

    /// Captures the memory as a delta against the pristine image: every
    /// chunk whose dirty bit is set, with its live bytes.  Footprint is
    /// proportional to the data the workload has written, not to the memory
    /// size.  Each captured chunk shares the live chunk's handle — no bytes
    /// move; the live chunk un-shares lazily if written afterwards.
    pub fn delta_snapshot(&self) -> MemoryDelta {
        let mut chunks = Vec::new();
        for c in 0..self.chunk_count() {
            if self.is_dirty(c) {
                chunks.push(DeltaChunk {
                    index: c as u32,
                    data: self.bytes.chunk_handle(c),
                });
            }
        }
        MemoryDelta {
            len: self.len(),
            chunks,
        }
    }

    /// Restores the memory to the state `delta` captured: chunks absent from
    /// the delta revert to the pristine image, chunks present are copied from
    /// it, and the dirty bitset becomes exactly the delta's chunk set — so a
    /// restored memory is indistinguishable (bytes and future snapshots) from
    /// the one the delta was taken on.
    ///
    /// Only chunks in (currently dirty ∪ delta) are rewritten — O(touched
    /// data), never O(memory size) — and every delta chunk is copied
    /// unconditionally; for back-to-back restores of the *same* delta,
    /// [`Memory::restore_delta_incremental`] additionally skips delta
    /// chunks the run never rewrote.  Returns the number of bytes actually
    /// rewritten.
    ///
    /// The delta must come from a memory with the same length and pristine
    /// image (same program, same configuration); the length is checked.
    ///
    /// # Panics
    ///
    /// Panics if `delta` was captured from a memory of a different size.
    pub fn restore_delta(&mut self, delta: &MemoryDelta) -> usize {
        assert_eq!(
            delta.len,
            self.len(),
            "delta snapshot from a different memory size"
        );
        let mut restored = 0;
        // Revert everything currently dirty, then lay the delta on top.
        // Both steps are handle swaps (share the pristine chunk, share the
        // delta's chunk); the returned count is the semantic bytes made
        // equal to the snapshot, whether or not they physically moved.
        for c in 0..self.chunk_count() {
            if self.is_dirty(c) {
                restored += self.chunk_range(c).len();
                if self.pristine.is_empty() {
                    // Unsealed: the pristine image is implicitly zeros.
                    self.bytes.chunk_mut(c).fill(0);
                } else {
                    self.bytes.share_chunk_from(c, &self.pristine);
                }
            }
        }
        self.dirty.clear_all();
        for chunk in &delta.chunks {
            let c = chunk.index as usize;
            restored += self.chunk_range(c).len();
            self.bytes.set_chunk_handle(c, &chunk.data);
            self.dirty.mark(c);
        }
        self.touched.clear_all();
        restored
    }

    /// Same-delta fast path: restores only the chunks written since the
    /// last restore, valid when the memory is known to have matched `delta`
    /// exactly at that restore (the caller's snapshot-identity guard).
    /// Chunks the run never wrote still match the delta by construction —
    /// including delta chunks, which [`Memory::restore_delta`] would re-copy
    /// unconditionally — so the rewrite is O(bytes the run wrote), not
    /// O(delta size).  Returns the number of bytes rewritten.
    ///
    /// # Panics
    ///
    /// Panics if `delta` was captured from a memory of a different size.
    pub fn restore_delta_incremental(&mut self, delta: &MemoryDelta) -> usize {
        assert_eq!(
            delta.len,
            self.len(),
            "delta snapshot from a different memory size"
        );
        let mut restored = 0;
        // Touched chunks are walked in ascending index against the delta's
        // ascending chunk list: present in the delta → copy its bytes back
        // (dirty stays set), absent → revert to pristine (dirty cleared).
        // Untouched chunks keep both their bytes and their dirty bit from
        // the previous restore of this same delta.
        let mut di = 0;
        let total = self.bytes.len();
        let bytes = &mut self.bytes;
        let dirty = &mut self.dirty;
        let pristine = &self.pristine;
        for c in self.touched.drain() {
            while di < delta.chunks.len() && (delta.chunks[di].index as usize) < c {
                di += 1;
            }
            let start = c * CHUNK_BYTES;
            restored += (start + CHUNK_BYTES).min(total) - start;
            match delta.chunks.get(di) {
                Some(chunk) if chunk.index as usize == c => {
                    bytes.set_chunk_handle(c, &chunk.data);
                    dirty.mark(c);
                }
                _ => {
                    if pristine.is_empty() {
                        bytes.chunk_mut(c).fill(0);
                    } else {
                        bytes.share_chunk_from(c, pristine);
                    }
                    dirty.clear(c);
                }
            }
        }
        restored
    }

    /// Makes `self` an exact structural replica of `src`: every live chunk
    /// shares `src`'s handle, and the dirty/touched bitsets are copied
    /// verbatim.  No bytes move — a written chunk un-shares lazily on either
    /// side's first subsequent write.  `eager` in the returned [`ForkBytes`]
    /// is what the pre-CoW fork path would have copied (the chunks `src`
    /// wrote since its last restore).
    pub fn fork_from(&mut self, src: &Self) -> ForkBytes {
        debug_assert_eq!(self.len(), src.len());
        let eager: u64 = src
            .touched
            .iter()
            .map(|c| src.chunk_range(c).len() as u64)
            .sum();
        self.bytes.share_from(&src.bytes);
        if !self.pristine.is_empty() && !src.pristine.is_empty() {
            // Byte-identical by construction (same program image); sharing
            // the handles deduplicates the image across the pool.
            self.pristine.share_from(&src.pristine);
        }
        self.dirty.copy_from(&src.dirty);
        self.touched.copy_from(&src.touched);
        ForkBytes {
            copied: 0,
            eager,
            shared: self.len(),
        }
    }

    /// Chunk un-share events since the last call (see
    /// [`CowBytes::take_cow_breaks`]).
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        self.bytes.take_cow_breaks()
    }

    /// Materialises private copies of every live chunk not backed by this
    /// memory's own pristine image — quarantine hygiene for a poisoned core.
    /// Chunks sharing with the pristine image stay shared: the image is
    /// immutable after sealing, so that sharing cannot leak state.
    pub(crate) fn unshare_all(&mut self) {
        for c in 0..self.bytes.chunk_count() {
            if !self.pristine.is_empty() && self.bytes.chunk_ptr_eq(c, &self.pristine) {
                continue;
            }
            self.bytes.unshare_chunk(c);
        }
    }

    /// Whether every live chunk is privately owned or shares only with this
    /// memory's own pristine image (immutable, shared by design).
    pub(crate) fn fully_private(&self) -> bool {
        (0..self.bytes.chunk_count()).all(|c| {
            (!self.pristine.is_empty() && self.bytes.chunk_ptr_eq(c, &self.pristine))
                || self.bytes.chunk_private(c)
        })
    }

    /// Whether the live bytes are identical to the state `delta` captured.
    ///
    /// Chunks that are clean on both sides equal the shared pristine image by
    /// construction, so only the union of the two dirty sets is compared —
    /// the check costs O(touched data), not O(memory size).
    pub fn matches_delta(&self, delta: &MemoryDelta) -> bool {
        if delta.len != self.len() {
            return false;
        }
        let mut in_delta = delta.chunks.iter().peekable();
        for c in 0..self.chunk_count() {
            let chunk = match in_delta.peek() {
                Some(d) if d.index as usize == c => in_delta.next(),
                _ => None,
            };
            match chunk {
                Some(d) => {
                    // Handle equality (the common case after a handle-swap
                    // restore) proves byte equality without reading.
                    if !Arc::ptr_eq(&self.bytes.chunk_handle(c), &d.data)
                        && self.bytes.chunk(c) != &d.data[..]
                    {
                        return false;
                    }
                }
                None => {
                    if self.is_dirty(c) {
                        let pristine_handle =
                            !self.pristine.is_empty() && self.bytes.chunk_ptr_eq(c, &self.pristine);
                        if !pristine_handle && self.bytes.chunk(c) != self.pristine_chunk(c) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// One dirty chunk captured by [`Memory::delta_snapshot`]: its index and its
/// live bytes (`CHUNK_BYTES` long except for a short final chunk).  The
/// bytes sit behind an `Arc` so capture and restore are handle swaps against
/// the memory's [`CowBytes`] store; the sharing never reaches the wire — the
/// binary encoding is the raw bytes, unchanged from the owned layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct DeltaChunk {
    index: u32,
    data: Arc<Vec<u8>>,
}

/// A chunk-level delta of the backing memory against the pristine program
/// image, produced by [`Memory::delta_snapshot`] and resolved against a
/// core's own pristine image by [`Memory::restore_delta`].
///
/// Chunk indices are strictly ascending and every chunk carries exactly the
/// bytes of its range; both invariants are validated on decode so a corrupt
/// `.golden` file surfaces as a [`DecodeError`], not a bogus restore.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryDelta {
    len: u64,
    chunks: Vec<DeltaChunk>,
}

impl MemoryDelta {
    /// Total size of the memory the delta was captured from, in bytes (the
    /// size a dense snapshot of the same memory would occupy).
    pub fn dense_len(&self) -> usize {
        self.len as usize
    }

    /// Number of dirty chunks captured.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Approximate heap footprint of the delta in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| c.data.len() + std::mem::size_of::<DeltaChunk>())
            .sum()
    }
}

impl BinCode for MemoryDelta {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len.encode(out);
        self.chunks.len().encode(out);
        for c in &self.chunks {
            c.index.encode(out);
            out.extend_from_slice(&c.data);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let len = u64::decode(r)?;
        let n = usize::decode(r)?;
        let chunk_total = (len as usize).div_ceil(CHUNK_BYTES);
        if n > chunk_total {
            return Err(DecodeError::Invalid("more delta chunks than memory has"));
        }
        // Every chunk consumes at least its 4-byte index, so `remaining`
        // bounds the plausible count and a corrupt prefix (huge `len` and
        // `n`) cannot trigger a huge up-front allocation.
        if n > r.remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let mut chunks = Vec::with_capacity(n);
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let index = u32::decode(r)?;
            if (index as usize) >= chunk_total {
                return Err(DecodeError::Invalid("delta chunk index out of range"));
            }
            if prev.is_some_and(|p| index <= p) {
                return Err(DecodeError::Invalid("delta chunk indices not ascending"));
            }
            prev = Some(index);
            let start = index as usize * CHUNK_BYTES;
            let size = (len as usize - start).min(CHUNK_BYTES);
            chunks.push(DeltaChunk {
                index,
                data: Arc::new(r.take(size)?.to_vec()),
            });
        }
        Ok(MemoryDelta { len, chunks })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = Memory::new(4096);
        for (i, &size) in MemSize::all().iter().enumerate() {
            let addr = DATA_BASE + 64 * i as u64;
            let value = 0x1122_3344_5566_7788u64;
            m.write(addr, value, size).unwrap();
            assert_eq!(m.read(addr, size).unwrap(), value & size.mask());
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(64);
        m.write(DATA_BASE, 0x0102_0304, MemSize::B4).unwrap();
        assert_eq!(m.read(DATA_BASE, MemSize::B1).unwrap(), 0x04);
        assert_eq!(m.read(DATA_BASE + 1, MemSize::B1).unwrap(), 0x03);
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = Memory::new(64);
        assert!(matches!(
            m.read(DATA_BASE + 60, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read(DATA_BASE - 8, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read(u64::MAX - 2, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn store_to_code_detected() {
        let mut m = Memory::new(64);
        assert!(matches!(
            m.write(0x100, 1, MemSize::B8),
            Err(MemError::StoreToCode { .. })
        ));
    }

    #[test]
    fn segments_and_lines() {
        let mut m = Memory::new(256);
        m.load_segment(DATA_BASE + 8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(DATA_BASE + 8, MemSize::B4).unwrap(), 0x0403_0201);
        let line = m.read_line(DATA_BASE, 64);
        assert_eq!(line[8], 1);
        let mut line2 = line.clone();
        line2[0] = 0xFF;
        m.write_line(DATA_BASE, &line2);
        assert_eq!(m.read(DATA_BASE, MemSize::B1).unwrap(), 0xFF);
    }

    #[test]
    fn line_access_beyond_bounds_is_zero_and_dropped() {
        let mut m = Memory::new(32);
        let line = m.read_line(DATA_BASE + 16, 64);
        assert_eq!(line.len(), 64);
        assert!(line.iter().all(|&b| b == 0));
        m.write_line(DATA_BASE + 16, &[0xAA; 64]);
        assert_eq!(m.read(DATA_BASE + 31, MemSize::B1).unwrap(), 0xAA);
    }

    #[test]
    fn delta_tracks_only_written_chunks() {
        let mut m = Memory::new(16 * CHUNK_BYTES as u64);
        m.load_segment(DATA_BASE, &[1, 2, 3, 4]).unwrap();
        m.seal_pristine();
        // Nothing written since seal: the delta is empty.
        let d = m.delta_snapshot();
        assert_eq!(d.chunk_count(), 0);
        assert_eq!(d.dense_len(), 16 * CHUNK_BYTES);
        assert_eq!(d.footprint_bytes(), 0);
        // One store dirties exactly one chunk; a line write two more.
        m.write(DATA_BASE + 3 * CHUNK_BYTES as u64, 0xAB, MemSize::B8)
            .unwrap();
        m.write_line(DATA_BASE + 8 * CHUNK_BYTES as u64 - 32, &[0xCD; 64]);
        let d = m.delta_snapshot();
        assert_eq!(d.chunk_count(), 3);
        assert!(d.footprint_bytes() < 16 * CHUNK_BYTES);
    }

    #[test]
    fn delta_restore_is_exact() {
        let mut m = Memory::new(4 * CHUNK_BYTES as u64 + 100); // short last chunk
        m.load_segment(DATA_BASE + 10, &[9; 40]).unwrap();
        m.seal_pristine();
        m.write(DATA_BASE, 0x1111, MemSize::B8).unwrap();
        m.write(DATA_BASE + 4 * CHUNK_BYTES as u64 + 90, 0x22, MemSize::B1)
            .unwrap();
        let snap_bytes = m.clone();
        let d = m.delta_snapshot();
        assert!(m.matches_delta(&d));
        // Diverge (including a chunk the delta does not carry), then restore.
        m.write(DATA_BASE + 2 * CHUNK_BYTES as u64, 0x3333, MemSize::B4)
            .unwrap();
        m.write(DATA_BASE, 0x4444, MemSize::B8).unwrap();
        assert!(!m.matches_delta(&d));
        m.restore_delta(&d);
        assert_eq!(m, snap_bytes);
        assert!(m.matches_delta(&d));
        // The restored memory's own delta equals the original.
        assert_eq!(m.delta_snapshot(), d);
        // A fresh memory with the same pristine image restores identically.
        let mut other = Memory::new(4 * CHUNK_BYTES as u64 + 100);
        other.load_segment(DATA_BASE + 10, &[9; 40]).unwrap();
        other.seal_pristine();
        other.restore_delta(&d);
        assert_eq!(other, snap_bytes);
    }

    #[test]
    fn incremental_delta_restore_matches_full_restore() {
        let mut m = Memory::new(8 * CHUNK_BYTES as u64);
        m.load_segment(DATA_BASE, &[7; 16]).unwrap();
        m.seal_pristine();
        m.write(DATA_BASE + CHUNK_BYTES as u64, 0xAAAA, MemSize::B8)
            .unwrap();
        m.write(DATA_BASE + 5 * CHUNK_BYTES as u64, 0xBBBB, MemSize::B8)
            .unwrap();
        let d = m.delta_snapshot();
        let full = m.restore_delta(&d);
        let reference = m.clone();
        // A suffix run rewrites one delta chunk and dirties one fresh chunk;
        // the other delta chunk is untouched.
        m.write(DATA_BASE + CHUNK_BYTES as u64, 0xCCCC, MemSize::B8)
            .unwrap();
        m.write(DATA_BASE + 3 * CHUNK_BYTES as u64, 0xDDDD, MemSize::B8)
            .unwrap();
        let incremental = m.restore_delta_incremental(&d);
        assert_eq!(m, reference);
        assert!(m.matches_delta(&d));
        // Future snapshots are indistinguishable from the full-restore path.
        assert_eq!(m.delta_snapshot(), d);
        // Only the two written chunks were rewritten, not the whole delta.
        assert_eq!(incremental, 2 * CHUNK_BYTES);
        assert!(incremental < full, "{incremental} vs full {full}");
        // Nothing written since the last restore: the next incremental
        // restore rewrites nothing at all.
        assert_eq!(m.restore_delta_incremental(&d), 0);
        assert!(m.matches_delta(&d));
        assert_eq!(m.delta_snapshot(), d);
    }

    #[test]
    fn delta_binary_roundtrip_and_validation() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let mut m = Memory::new(3 * CHUNK_BYTES as u64 + 17);
        m.seal_pristine();
        m.write(DATA_BASE + 5, 0xDEAD, MemSize::B8).unwrap();
        m.write(DATA_BASE + 3 * CHUNK_BYTES as u64 + 9, 0xBE, MemSize::B1)
            .unwrap();
        let d = m.delta_snapshot();
        let bytes = encode_to_vec(&d);
        let back: MemoryDelta = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, d);
        // Truncated input is an error, not a bogus delta.
        assert!(decode_from_slice::<MemoryDelta>(&bytes[..bytes.len() - 1]).is_err());
        // A corrupt prefix claiming a huge memory and chunk count errors out
        // before any allocation proportional to the claimed count.
        let mut bad = Vec::new();
        u64::MAX.encode(&mut bad);
        (1u64 << 50).encode(&mut bad);
        assert!(decode_from_slice::<MemoryDelta>(&bad).is_err());
        // Chunk index out of range is rejected.
        let mut bad = Vec::new();
        (CHUNK_BYTES as u64).encode(&mut bad); // one-chunk memory
        1usize.encode(&mut bad);
        7u32.encode(&mut bad); // index 7 of 1
        bad.extend_from_slice(&[0; CHUNK_BYTES]);
        assert!(decode_from_slice::<MemoryDelta>(&bad).is_err());
        // Non-ascending indices are rejected.
        let mut bad = Vec::new();
        (4 * CHUNK_BYTES as u64).encode(&mut bad);
        2usize.encode(&mut bad);
        for _ in 0..2 {
            1u32.encode(&mut bad);
            bad.extend_from_slice(&[0; CHUNK_BYTES]);
        }
        assert!(decode_from_slice::<MemoryDelta>(&bad).is_err());
    }

    #[test]
    fn error_display() {
        assert!(!MemError::OutOfBounds { addr: 1, size: 8 }
            .to_string()
            .is_empty());
        assert!(!MemError::StoreToCode { addr: 1 }.to_string().is_empty());
    }
}
