//! Flat backing memory behind the cache hierarchy.

use merlin_isa::{MemSize, DATA_BASE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Memory access faults detected by the memory system.
///
/// Out-of-bounds accesses correspond to the paper's *Crash* outcomes
/// (the simulated process dies); stores into the read-only code region
/// correspond to *Assert* outcomes (the simulator refuses to continue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemError {
    /// Access outside the program's data region.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access size in bytes.
        size: u64,
    },
    /// A store targeted the code region below [`DATA_BASE`].
    StoreToCode {
        /// Faulting address.
        addr: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, size } => {
                write!(
                    f,
                    "memory access of {size} bytes at {addr:#x} out of bounds"
                )
            }
            MemError::StoreToCode { addr } => {
                write!(f, "store to code region at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Byte-addressable backing memory covering `[DATA_BASE, DATA_BASE + len)`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl merlin_isa::binio::BinCode for Memory {
    fn encode(&self, out: &mut Vec<u8>) {
        self.bytes.len().encode(out);
        out.extend_from_slice(&self.bytes);
    }
    fn decode(
        r: &mut merlin_isa::binio::ByteReader<'_>,
    ) -> Result<Self, merlin_isa::binio::DecodeError> {
        let n = usize::decode(r)?;
        Ok(Memory {
            bytes: r.take(n)?.to_vec(),
        })
    }
}

impl Memory {
    /// Creates a zero-initialised memory of `len` bytes starting at
    /// [`DATA_BASE`].
    pub fn new(len: u64) -> Self {
        Memory {
            bytes: vec![0; len as usize],
        }
    }

    /// Total size in bytes.
    pub fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// `true` when the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Checks that `[addr, addr+size)` lies inside the data region.
    pub fn check_range(&self, addr: u64, size: u64, is_store: bool) -> Result<(), MemError> {
        if is_store && addr < DATA_BASE {
            return Err(MemError::StoreToCode { addr });
        }
        if addr < DATA_BASE
            || addr.checked_add(size).is_none()
            || addr + size > DATA_BASE + self.len()
        {
            return Err(MemError::OutOfBounds { addr, size });
        }
        Ok(())
    }

    /// Reads `size` bytes at `addr`, zero-extended into a `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the range is not mapped.
    pub fn read(&self, addr: u64, size: MemSize) -> Result<u64, MemError> {
        self.check_range(addr, size.bytes(), false)?;
        let off = (addr - DATA_BASE) as usize;
        let n = size.bytes() as usize;
        let mut v: u64 = 0;
        for i in 0..n {
            v |= (self.bytes[off + i] as u64) << (8 * i);
        }
        Ok(v)
    }

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is not mapped or lies in the code
    /// region.
    pub fn write(&mut self, addr: u64, value: u64, size: MemSize) -> Result<(), MemError> {
        self.check_range(addr, size.bytes(), true)?;
        let off = (addr - DATA_BASE) as usize;
        let n = size.bytes() as usize;
        for i in 0..n {
            self.bytes[off + i] = ((value >> (8 * i)) & 0xFF) as u8;
        }
        Ok(())
    }

    /// Copies a byte slice into memory (used to load program data segments).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the segment does not fit.
    pub fn load_segment(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        self.check_range(addr, data.len() as u64, false)?;
        let off = (addr - DATA_BASE) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads an entire cache line (`len` bytes, `addr` assumed line-aligned).
    ///
    /// Bytes outside the mapped region read as zero so that cache refills
    /// near the end of memory do not fault (only architectural accesses
    /// fault).
    pub fn read_line(&self, addr: u64, len: u64) -> Vec<u8> {
        let mut out = vec![0u8; len as usize];
        for (i, b) in out.iter_mut().enumerate() {
            let a = addr + i as u64;
            if a >= DATA_BASE && a < DATA_BASE + self.len() {
                *b = self.bytes[(a - DATA_BASE) as usize];
            }
        }
        out
    }

    /// Writes an entire cache line back; bytes outside the mapped region are
    /// silently dropped (mirrors `read_line`).
    pub fn write_line(&mut self, addr: u64, data: &[u8]) {
        for (i, &b) in data.iter().enumerate() {
            let a = addr + i as u64;
            if a >= DATA_BASE && a < DATA_BASE + self.len() {
                self.bytes[(a - DATA_BASE) as usize] = b;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_all_sizes() {
        let mut m = Memory::new(4096);
        for (i, &size) in MemSize::all().iter().enumerate() {
            let addr = DATA_BASE + 64 * i as u64;
            let value = 0x1122_3344_5566_7788u64;
            m.write(addr, value, size).unwrap();
            assert_eq!(m.read(addr, size).unwrap(), value & size.mask());
        }
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(64);
        m.write(DATA_BASE, 0x0102_0304, MemSize::B4).unwrap();
        assert_eq!(m.read(DATA_BASE, MemSize::B1).unwrap(), 0x04);
        assert_eq!(m.read(DATA_BASE + 1, MemSize::B1).unwrap(), 0x03);
    }

    #[test]
    fn out_of_bounds_detected() {
        let m = Memory::new(64);
        assert!(matches!(
            m.read(DATA_BASE + 60, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read(DATA_BASE - 8, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m.read(u64::MAX - 2, MemSize::B8),
            Err(MemError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn store_to_code_detected() {
        let mut m = Memory::new(64);
        assert!(matches!(
            m.write(0x100, 1, MemSize::B8),
            Err(MemError::StoreToCode { .. })
        ));
    }

    #[test]
    fn segments_and_lines() {
        let mut m = Memory::new(256);
        m.load_segment(DATA_BASE + 8, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(DATA_BASE + 8, MemSize::B4).unwrap(), 0x0403_0201);
        let line = m.read_line(DATA_BASE, 64);
        assert_eq!(line[8], 1);
        let mut line2 = line.clone();
        line2[0] = 0xFF;
        m.write_line(DATA_BASE, &line2);
        assert_eq!(m.read(DATA_BASE, MemSize::B1).unwrap(), 0xFF);
    }

    #[test]
    fn line_access_beyond_bounds_is_zero_and_dropped() {
        let mut m = Memory::new(32);
        let line = m.read_line(DATA_BASE + 16, 64);
        assert_eq!(line.len(), 64);
        assert!(line.iter().all(|&b| b == 0));
        m.write_line(DATA_BASE + 16, &[0xAA; 64]);
        assert_eq!(m.read(DATA_BASE + 31, MemSize::B1).unwrap(), 0xAA);
    }

    #[test]
    fn error_display() {
        assert!(!MemError::OutOfBounds { addr: 1, size: 8 }
            .to_string()
            .is_empty());
        assert!(!MemError::StoreToCode { addr: 1 }.to_string().is_empty());
    }
}
