//! Checkpointing of golden runs: policy, store and the instrumented run that
//! builds the store.
//!
//! A fault-injection campaign re-executes the same program once per fault,
//! and every faulty run is bit-identical to the fault-free (golden) run up to
//! the fault's injection cycle.  Recording periodic [`CpuState`] snapshots
//! during one golden run lets each faulty run restore the latest checkpoint
//! at or before its injection cycle and simulate only the suffix, turning
//! per-fault cost from O(program length) into O(checkpoint interval +
//! post-injection length).
//!
//! # Snapshot representation and store footprint
//!
//! Each [`CpuState`] stores cache contents sparsely (valid lines only) and
//! the backing memory as a chunk-level delta against the pristine program
//! image ([`crate::MemoryDelta`], [`crate::CHUNK_BYTES`]-sized chunks): only
//! chunks the workload has written since program load are carried, and
//! restore resolves the delta against the pristine image the restoring core
//! already holds.  A store's in-memory footprint — and the size of the
//! `.golden` files the session cache persists under `MERLIN_CHECKPOINT_DIR`
//! — therefore scales with the data each checkpoint has actually touched
//! (typically a few KB per snapshot) instead of with the configured memory
//! size (formerly a dense ~64 KB+ image per snapshot, ~1 MB per persisted
//! store).  [`CheckpointStore::footprint_bytes`] reports the delta-based
//! footprint; [`CheckpointStore::dense_footprint_bytes`] reports what the
//! dense representation would have occupied, so the saving is measurable.
//!
//! Both instrumented runs snapshot unconditionally at entry, so a store is
//! never empty and always holds a snapshot at or before any later cycle of
//! the run that built it (the cycle-0 reset state when the core is fresh).
//!
//! Restoring a retained snapshot is cheap to repeat: each [`CpuState`]
//! carries a process-unique identity tag, and a core restored from the
//! snapshot it was last restored from takes an incremental path that
//! rewrites only the state mutated since — see [`Cpu::restore_from`] and
//! the epoch tags ([`crate::TouchedSet`]/[`crate::TouchedFlag`], module
//! [`crate::touched`]) every pipeline structure maintains at mutation time:
//! cache lines, memory chunks, physical registers, rename entries,
//! load/store-queue slots, predictor/BTB counters, and whole-structure
//! flags on the fetch buffer, ROB and free list.  Range-bound campaign
//! workers, which restore one snapshot hundreds of times back-to-back, pay
//! O(suffix-touched state) per restore instead of O(snapshot size), and
//! [`crate::RestoreStats`] reports the bytes actually rewritten per
//! structure ([`crate::RestoredBytes`]).  The tags are runtime-only
//! bookkeeping: they are never serialised (decoding a snapshot yields
//! cleared tags, like the identity tag itself), so the on-disk `binio`
//! format is unchanged by epoch tagging.

use crate::core::{Cpu, CpuState, RunResult};
use crate::probe::Probe;
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use serde::{Deserialize, Serialize};

/// How the retained checkpoints of a golden run are spaced over its cycles.
///
/// Campaign fault lists are sampled uniformly over cycles, so the expected
/// number of faults restoring from a checkpoint is proportional to the cycle
/// width of its range — but the *work* a fault costs is dominated by its
/// suffix (everything from the restore point to the run's end).  The two
/// strategies trade those off differently; both preserve byte-identical
/// campaign classifications, since checkpoint placement only decides where
/// restores happen, never what a faulty run computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpacingStrategy {
    /// Checkpoints every `interval` cycles — equal fault count per range.
    EqualCycles,
    /// Balances estimated *suffix work* per checkpoint range — the expected
    /// faults per range (uniform sampling density × range width) times the
    /// estimated cycles remaining at the range's checkpoint.  A uniform
    /// grid gives every range the same fault count but lets per-range
    /// suffix work vary with the full remaining-cycles factor, so the
    /// earliest ranges (whose faults simulate most of the run) carry ~3×
    /// the work of mid-run ranges.  This strategy keeps the uniform body
    /// and spends the checkpoint budget's headroom halving the ranges of
    /// the suffix-heavy head of the run — cutting the replay and
    /// early-exit wait of exactly the tail-latency faults at unchanged
    /// body cost.
    SuffixWork,
}

/// How (and whether) a golden run is checkpointed.
///
/// The default targets 32 checkpoints per run (plus the cycle-0 snapshot),
/// clamped by a minimum interval so very short runs do not snapshot every few
/// cycles for no gain, spaced by equal estimated suffix work
/// ([`SpacingStrategy::SuffixWork`]).  The density is paid for by the delta
/// snapshot representation (store size scales with touched data, not memory
/// size) and by incremental same-snapshot restores (restore cost scales with
/// the suffix run's footprint, not the snapshot's) — halving the expected
/// per-fault suffix at near-zero marginal restore cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Whether campaigns build and use checkpoints at all.
    pub enabled: bool,
    /// Desired number of checkpoints across the golden run (8–32 is the
    /// sensible band; the cycle-0 snapshot comes on top).
    pub target_checkpoints: u32,
    /// Lower bound on the checkpoint interval in cycles.
    pub min_interval: u64,
    /// Whether faulty runs may classify as Masked early when their state
    /// re-converges with the golden checkpoint stream (sound: identical state
    /// implies an identical remainder of the run).
    pub early_exit: bool,
    /// How retained checkpoints are spaced over the run.
    pub spacing: SpacingStrategy,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 32,
            min_interval: 256,
            early_exit: true,
            spacing: SpacingStrategy::SuffixWork,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that disables checkpointing entirely (campaigns fall back to
    /// from-scratch simulation).
    pub fn disabled() -> Self {
        CheckpointPolicy {
            enabled: false,
            ..CheckpointPolicy::default()
        }
    }

    /// A policy targeting `n` checkpoints per run.
    pub fn with_target(n: u32) -> Self {
        CheckpointPolicy {
            target_checkpoints: n.max(1),
            ..CheckpointPolicy::default()
        }
    }

    /// The same policy with a different spacing strategy.
    pub fn with_spacing(self, spacing: SpacingStrategy) -> Self {
        CheckpointPolicy { spacing, ..self }
    }

    /// The snapshot interval this policy picks for a golden run of
    /// `golden_cycles` cycles.
    pub fn interval_for(&self, golden_cycles: u64) -> u64 {
        (golden_cycles / self.target_checkpoints.max(1) as u64)
            .max(self.min_interval)
            .max(1)
    }
}

/// Checkpoints of one golden run, cycle-ascending and never empty: the
/// instrumented runs snapshot unconditionally at entry, so a store built on
/// a fresh core always starts with the cycle-0 (reset) state and every
/// injection cycle has a checkpoint at or before it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    interval: u64,
    checkpoints: Vec<CpuState>,
}

impl CheckpointStore {
    /// The body-grid interval the store converged to.  Checkpoints sit on
    /// multiples of this interval under [`SpacingStrategy::EqualCycles`];
    /// a [`SpacingStrategy::SuffixWork`] store additionally holds head
    /// midpoints at odd multiples of half this interval, so consumers must
    /// walk [`CheckpointStore::cycles`] rather than reconstruct the grid
    /// from the interval alone.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of checkpoints held (including the cycle-0 snapshot).
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// `true` when the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The latest checkpoint at or before `cycle` — the restore point for a
    /// fault injected at `cycle`.
    pub fn latest_at_or_before(&self, cycle: u64) -> Option<&CpuState> {
        match self.checkpoints.partition_point(|s| s.cycle() <= cycle) {
            0 => None,
            n => Some(&self.checkpoints[n - 1]),
        }
    }

    /// The checkpoint taken exactly at `cycle`, if one exists (used by the
    /// early-exit convergence test).
    pub fn at_cycle(&self, cycle: u64) -> Option<&CpuState> {
        let idx = self.checkpoints.partition_point(|s| s.cycle() < cycle);
        self.checkpoints.get(idx).filter(|s| s.cycle() == cycle)
    }

    /// Cycles at which checkpoints were taken.
    pub fn cycles(&self) -> impl Iterator<Item = u64> + '_ {
        self.checkpoints.iter().map(|s| s.cycle())
    }

    /// The checkpoints themselves, cycle-ascending (used by consumers that
    /// validate a decoded store against their simulation context).
    pub fn snapshots(&self) -> impl Iterator<Item = &CpuState> {
        self.checkpoints.iter()
    }

    /// `true` when the store begins with the cycle-0 (reset) snapshot — the
    /// precondition for serving *any* injection cycle of a campaign.  Holds
    /// for every store built on a fresh core; a store built on a mid-run
    /// core (or a hand-crafted decoded one) starts later.
    pub fn starts_at_reset(&self) -> bool {
        self.checkpoints.first().is_some_and(|s| s.cycle() == 0)
    }

    /// Approximate heap footprint of the whole store in bytes (memory held
    /// as chunk-level deltas).
    pub fn footprint_bytes(&self) -> usize {
        self.checkpoints.iter().map(|s| s.footprint_bytes()).sum()
    }

    /// What [`Self::footprint_bytes`] would be with each snapshot's memory
    /// stored densely instead of as a delta — the pre-delta representation,
    /// kept so benchmarks can report the size win.
    pub fn dense_footprint_bytes(&self) -> usize {
        self.checkpoints
            .iter()
            .map(|s| s.footprint_bytes() - s.memory_delta_bytes() + s.memory_dense_bytes())
            .sum()
    }
}

impl BinCode for SpacingStrategy {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            SpacingStrategy::EqualCycles => 0,
            SpacingStrategy::SuffixWork => 1,
        };
        tag.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(SpacingStrategy::EqualCycles),
            1 => Ok(SpacingStrategy::SuffixWork),
            _ => Err(DecodeError::Invalid("spacing strategy")),
        }
    }
}

impl BinCode for CheckpointPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.enabled.encode(out);
        self.target_checkpoints.encode(out);
        self.min_interval.encode(out);
        self.early_exit.encode(out);
        self.spacing.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CheckpointPolicy {
            enabled: BinCode::decode(r)?,
            target_checkpoints: BinCode::decode(r)?,
            min_interval: BinCode::decode(r)?,
            early_exit: BinCode::decode(r)?,
            spacing: BinCode::decode(r)?,
        })
    }
}

impl BinCode for CheckpointStore {
    fn encode(&self, out: &mut Vec<u8>) {
        self.interval.encode(out);
        self.checkpoints.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let interval = u64::decode(r)?;
        if interval == 0 {
            return Err(DecodeError::Invalid("checkpoint interval"));
        }
        // Accept exactly what `encode` can produce: any cycle-ascending
        // checkpoint list, including an empty one and one starting past
        // cycle 0 (a store built on a mid-run core).  Consumers that need
        // the cycle-0 snapshot check `starts_at_reset` instead of relying
        // on decode-time rejection — a decode stricter than encode turned
        // validly saved stores into silent, permanent cache misses.
        let checkpoints = Vec::<CpuState>::decode(r)?;
        let ascending = checkpoints.windows(2).all(|w| w[0].cycle() < w[1].cycle());
        if !ascending {
            return Err(DecodeError::Invalid("store cycles not ascending"));
        }
        Ok(CheckpointStore {
            interval,
            checkpoints,
        })
    }
}

impl Cpu {
    /// Runs like [`Cpu::run`] while snapshotting the state every `interval`
    /// cycles (including cycle 0), returning the run result together with the
    /// populated [`CheckpointStore`].
    /// Regardless of `max_cycles` and of the core's current cycle, the state
    /// at entry is always snapshotted, so the returned store is never empty
    /// and can serve any injection cycle from the entry cycle on (cycle 0 on
    /// a fresh core) — the invariant the campaign engine restores against.
    pub fn run_with_checkpoints(
        &mut self,
        max_cycles: u64,
        probe: &mut dyn Probe,
        interval: u64,
    ) -> (RunResult, CheckpointStore) {
        let interval = interval.max(1);
        let entry_cycle = self.cycle();
        let mut checkpoints = vec![self.snapshot()];
        while !self.is_finished() && self.cycle() < max_cycles {
            if self.cycle() > entry_cycle && self.cycle().is_multiple_of(interval) {
                checkpoints.push(self.snapshot());
            }
            self.step(probe);
        }
        let result = self.run(max_cycles, probe);
        (
            result,
            CheckpointStore {
                interval,
                checkpoints,
            },
        )
    }

    /// Runs like [`Cpu::run`] while building a checkpoint store in a single
    /// pass, without knowing the run length in advance.
    ///
    /// With [`SpacingStrategy::EqualCycles`], snapshots are taken every
    /// `min_interval` cycles; whenever the store exceeds `2 × target`
    /// checkpoints the interval doubles and every snapshot not on the new
    /// grid is dropped, so the store converges to `target..2 × target`
    /// equally spaced checkpoints regardless of how long the run turns out
    /// to be.
    ///
    /// With [`SpacingStrategy::SuffixWork`], the uniform body grid is built
    /// by the *identical* doubling process — the retained body checkpoints
    /// are the same cycles the equal-cycles strategy would retain — and the
    /// budget headroom left in the `2 × target` band is spent on **head
    /// midpoints**: snapshots halfway into each of the earliest body
    /// ranges, where the estimated per-fault suffix work is largest (see
    /// [`SpacingStrategy`]).  The suffix-work store is therefore a strict
    /// superset of the equal-cycles store for the same run, so every
    /// fault's restore point is at least as late and every per-fault
    /// latency at most as long — the tail (p95) can only improve.  Head
    /// midpoints exist only once the grid has doubled at least once (they
    /// are the previous, finer grid's snapshots), so they always respect
    /// `min_interval`.
    ///
    /// Under both strategies the live store never holds more than
    /// `2 × target + 1` snapshots plus the bounded head extras, and this
    /// replaces the two-pass construction (an uninstrumented pre-pass
    /// sizing the interval, then an instrumented re-run): the entire golden
    /// run is simulated exactly once.
    ///
    /// Like [`Cpu::run_with_checkpoints`], the state at entry is snapshotted
    /// unconditionally and survives every thinning round — on either
    /// strategy — so the store is never empty and a store built on a fresh
    /// core always starts at the cycle-0 reset state.
    pub fn run_with_adaptive_checkpoints(
        &mut self,
        max_cycles: u64,
        probe: &mut dyn Probe,
        min_interval: u64,
        target: u32,
        spacing: SpacingStrategy,
    ) -> (RunResult, CheckpointStore) {
        let min_interval = min_interval.max(1);
        let mut interval = min_interval;
        let target = target.max(1) as usize;
        let entry_cycle = self.cycle();
        let mut checkpoints = vec![self.snapshot()];
        let head_extras = spacing == SpacingStrategy::SuffixWork;
        while !self.is_finished() && self.cycle() < max_cycles {
            let cycle = self.cycle();
            if cycle > entry_cycle && cycle.is_multiple_of(interval) {
                checkpoints.push(self.snapshot());
                // The thinning trigger counts only body-grid snapshots
                // (entry included), so the doubling sequence — and with it
                // the retained body grid — is identical under both
                // strategies.  Head midpoints need no capture of their own:
                // when the interval doubles, the old body snapshots at odd
                // multiples of the new half-interval become the midpoints,
                // and `retain_grid` keeps the earliest of them.
                while body_len(&checkpoints, entry_cycle, interval) > 2 * target {
                    interval *= 2;
                    retain_grid(&mut checkpoints, entry_cycle, interval, target, head_extras);
                }
            }
            self.step(probe);
        }
        let result = self.run(max_cycles, probe);
        if head_extras {
            // Re-apply the retention filter: the budget headroom for head
            // midpoints depends on the now-final body count.
            retain_grid(&mut checkpoints, entry_cycle, interval, target, true);
        }
        (
            result,
            CheckpointStore {
                interval,
                checkpoints,
            },
        )
    }
}

/// Number of snapshots on the body grid (entry snapshot included) — the
/// count the doubling trigger compares against `2 × target`, identical for
/// both spacing strategies.
fn body_len(checkpoints: &[CpuState], entry_cycle: u64, interval: u64) -> usize {
    checkpoints
        .iter()
        .filter(|s| s.cycle() == entry_cycle || s.cycle().is_multiple_of(interval))
        .count()
}

/// Retains the entry snapshot, the body grid (multiples of `interval`) and
/// — for the suffix-work strategy — head midpoints: odd multiples of
/// `interval/2` within the earliest body ranges, as many as fit in the
/// `2 × target` budget after the body.
///
/// Head midpoints sit where the estimated per-fault suffix work (uniform
/// fault density × remaining cycles) is largest: the faults of the earliest
/// ranges simulate most of the run, so halving exactly those ranges cuts
/// the replay and early-exit wait of the latency tail while the body —
/// and therefore mean campaign cost — matches the equal-cycles grid.
fn retain_grid(
    checkpoints: &mut Vec<CpuState>,
    entry_cycle: u64,
    interval: u64,
    target: usize,
    head_extras: bool,
) {
    let head_end = if head_extras {
        let body = body_len(checkpoints, entry_cycle, interval);
        let allowed = (target / 2).min((2 * target + 1).saturating_sub(body)) as u64;
        entry_cycle + allowed * interval
    } else {
        entry_cycle
    };
    let half = interval / 2;
    checkpoints.retain(|s| {
        let c = s.cycle();
        c == entry_cycle
            || c.is_multiple_of(interval)
            || (half > 0 && c.is_multiple_of(half) && c <= head_end)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuConfig, NullProbe};
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn looped_program() -> merlin_isa::Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn policy_interval_bands() {
        let p = CheckpointPolicy::default();
        assert_eq!(p.interval_for(32_000), 1_000);
        // Short runs are clamped by the minimum interval.
        assert_eq!(p.interval_for(100), p.min_interval);
        assert_eq!(
            CheckpointPolicy::with_target(8).interval_for(80_000),
            10_000
        );
        assert!(!CheckpointPolicy::disabled().enabled);
    }

    #[test]
    fn store_lookup_semantics() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        assert!(result.exit.is_halted());
        assert!(store.len() >= 2, "expected several checkpoints");
        assert_eq!(store.latest_at_or_before(0).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(9).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(10).unwrap().cycle(), 10);
        assert_eq!(
            store.latest_at_or_before(u64::MAX).unwrap().cycle(),
            store.cycles().last().unwrap()
        );
        assert!(store.at_cycle(10).is_some());
        assert!(store.at_cycle(11).is_none());
        let cycles: Vec<u64> = store.cycles().collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(store.footprint_bytes() > 0);
    }

    #[test]
    fn restored_run_is_identical_to_uninterrupted_run() {
        let program = looped_program();
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let expected = reference.run(100_000, &mut NullProbe);

        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        // Diverge: run the original to completion, then restore and re-run.
        let first = cpu.run(100_000, &mut NullProbe);
        assert_eq!(first, expected);
        cpu.restore_from(&state);
        assert_eq!(cpu.cycle(), 17);
        let second = cpu.run(100_000, &mut NullProbe);
        assert_eq!(second, expected);

        // A fresh core restored from the same state also agrees.
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(&state);
        assert!(other.matches_state(&state));
        let third = other.run(100_000, &mut NullProbe);
        assert_eq!(third, expected);
    }

    #[test]
    fn adaptive_store_converges_to_target_band() {
        let program = looped_program();
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_adaptive_checkpoints(
            100_000,
            &mut NullProbe,
            2,
            8,
            SpacingStrategy::EqualCycles,
        );
        assert!(result.exit.is_halted());
        // Identical run result to the non-instrumented execution.
        let mut plain = Cpu::new(program, CpuConfig::default()).unwrap();
        assert_eq!(plain.run(100_000, &mut NullProbe), result);
        // Store shape: starts at cycle 0, strictly ascending, on the final
        // interval's grid, within the (target, 2*target] band whenever the
        // run is long enough to have thinned at least once.
        let cycles: Vec<u64> = store.cycles().collect();
        assert_eq!(cycles[0], 0);
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(cycles.iter().all(|c| c.is_multiple_of(store.interval())));
        assert!(
            store.len() <= 2 * 8 + 1,
            "store kept {} snapshots",
            store.len()
        );
        assert!(store.len() >= 2);
        assert!(store.interval() >= 2);
    }

    #[test]
    fn suffix_work_store_is_dense_early_and_retains_cycle_zero() {
        let program = looped_program();
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let target = 8;
        let (result, store) = cpu.run_with_adaptive_checkpoints(
            100_000,
            &mut NullProbe,
            2,
            target,
            SpacingStrategy::SuffixWork,
        );
        assert!(result.exit.is_halted());
        // Identical run result to the non-instrumented execution.
        let mut plain = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        assert_eq!(plain.run(100_000, &mut NullProbe), result);
        let cycles: Vec<u64> = store.cycles().collect();
        // Regression (`usable_for_campaigns`): the cycle-0 snapshot must
        // survive every suffix-work thinning round.
        assert_eq!(cycles[0], 0);
        assert!(store.starts_at_reset());
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(
            store.len() <= 2 * target as usize + 1,
            "store kept {} snapshots",
            store.len()
        );
        assert!(store.len() >= 2);
        // Denser early than late: the first retained range must be no wider
        // than the last (strictly narrower once the run thinned at least
        // once, but degenerate short runs only guarantee ≤).
        if store.len() >= 4 {
            let first = cycles[1] - cycles[0];
            let last = cycles[cycles.len() - 1] - cycles[cycles.len() - 2];
            assert!(
                first <= last,
                "suffix-work spacing must not be denser late: first {first}, last {last} ({cycles:?})"
            );
        }
        // Every retained snapshot supports exact restore.
        let mid = store.latest_at_or_before(result.cycles / 3).unwrap();
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(mid);
        assert!(other.matches_state(mid));
        assert_eq!(other.run(100_000, &mut NullProbe), result);
    }

    #[test]
    fn suffix_work_entry_snapshot_survives_on_mid_run_cores() {
        // The entry snapshot of a store built on a mid-run core sits off
        // every ideal boundary; thinning must still retain it.
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let (result, store) = cpu.run_with_adaptive_checkpoints(
            100_000,
            &mut NullProbe,
            2,
            4,
            SpacingStrategy::SuffixWork,
        );
        assert!(result.exit.is_halted());
        assert_eq!(store.cycles().next(), Some(17));
        assert!(!store.starts_at_reset());
        let cycles: Vec<u64> = store.cycles().collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn spacing_strategy_roundtrips_in_policies() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        for spacing in [SpacingStrategy::EqualCycles, SpacingStrategy::SuffixWork] {
            let policy = CheckpointPolicy::with_target(5).with_spacing(spacing);
            let back: CheckpointPolicy = decode_from_slice(&encode_to_vec(&policy)).unwrap();
            assert_eq!(back, policy);
            assert_eq!(back.spacing, spacing);
        }
        // A corrupt spacing tag is rejected.
        let mut bytes = encode_to_vec(&CheckpointPolicy::default());
        *bytes.last_mut().unwrap() = 9;
        assert!(decode_from_slice::<CheckpointPolicy>(&bytes).is_err());
    }

    #[test]
    fn adaptive_store_supports_exact_restore() {
        let program = looped_program();
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (expected, store) = cpu.run_with_adaptive_checkpoints(
            100_000,
            &mut NullProbe,
            4,
            4,
            SpacingStrategy::EqualCycles,
        );
        // Restoring any kept checkpoint and re-running reproduces the run.
        let mid = store.latest_at_or_before(expected.cycles / 2).unwrap();
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(mid);
        assert!(other.matches_state(mid));
        assert_eq!(other.run(100_000, &mut NullProbe), expected);
    }

    #[test]
    fn store_and_policy_binary_roundtrip() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (_, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        let bytes = encode_to_vec(&store);
        let back: CheckpointStore = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, store);
        let policy = CheckpointPolicy::with_target(9);
        let back: CheckpointPolicy = decode_from_slice(&encode_to_vec(&policy)).unwrap();
        assert_eq!(back, policy);
        // Corrupting the interval to zero is rejected.
        let mut bytes = encode_to_vec(&store);
        bytes[..8].fill(0);
        assert!(decode_from_slice::<CheckpointStore>(&bytes).is_err());
    }

    #[test]
    fn stores_are_never_empty_even_in_degenerate_calls() {
        // Regression: these calls used to build a store with no cycle-0
        // snapshot (empty, or starting mid-run off the interval grid),
        // which later panicked the campaign worker's restore lookup.
        let program = looped_program();

        // Zero cycle budget on a fresh core.
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (_, store) = cpu.run_with_checkpoints(0, &mut NullProbe, 10);
        assert_eq!(store.len(), 1);
        assert!(store.starts_at_reset());
        assert_eq!(store.latest_at_or_before(u64::MAX).unwrap().cycle(), 0);
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (_, store) = cpu.run_with_adaptive_checkpoints(
            0,
            &mut NullProbe,
            4,
            4,
            SpacingStrategy::EqualCycles,
        );
        assert!(store.starts_at_reset());

        // A core that already ran 17 cycles (17 is off any power-of-two
        // interval grid): the entry state is still snapshotted and survives
        // adaptive thinning.
        for run_adaptive in [false, true] {
            let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
            for _ in 0..17 {
                cpu.step(&mut NullProbe);
            }
            let (result, store) = if run_adaptive {
                cpu.run_with_adaptive_checkpoints(
                    100_000,
                    &mut NullProbe,
                    2,
                    4,
                    SpacingStrategy::EqualCycles,
                )
            } else {
                cpu.run_with_checkpoints(100_000, &mut NullProbe, 10)
            };
            assert!(result.exit.is_halted());
            assert!(!store.is_empty());
            assert!(!store.starts_at_reset());
            assert_eq!(store.cycles().next(), Some(17));
            assert_eq!(store.latest_at_or_before(17).unwrap().cycle(), 17);
            assert!(store.latest_at_or_before(16).is_none());
            let cycles: Vec<u64> = store.cycles().collect();
            assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn empty_and_mid_run_stores_roundtrip() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        // Regression: encode used to accept what decode rejected, so a
        // saved store could become a silent, permanent cache miss.  Both
        // now agree on every encodable store.
        let empty = CheckpointStore {
            interval: 8,
            checkpoints: Vec::new(),
        };
        let back: CheckpointStore = decode_from_slice(&encode_to_vec(&empty)).unwrap();
        assert_eq!(back, empty);
        assert!(back.is_empty());
        assert!(!back.starts_at_reset());

        // A store starting past cycle 0 round-trips too.
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let (_, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        let back: CheckpointStore = decode_from_slice(&encode_to_vec(&store)).unwrap();
        assert_eq!(back, store);
        assert!(!back.starts_at_reset());
    }

    #[test]
    fn delta_snapshots_shrink_store_footprint() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        assert!(result.exit.is_halted());
        let delta = store.footprint_bytes();
        let dense = store.dense_footprint_bytes();
        // The looped program touches one 64-byte buffer out of a 64 KB+
        // memory; the delta representation must be far below dense.
        assert!(
            delta * 2 <= dense,
            "delta {delta} not at least 2x below dense {dense}"
        );
    }

    #[test]
    fn matches_state_detects_divergence() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        for _ in 0..5 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        assert!(cpu.matches_state(&state));
        cpu.step(&mut NullProbe);
        assert!(!cpu.matches_state(&state));
    }
}
