//! Checkpointing of golden runs: policy, store and the instrumented run that
//! builds the store.
//!
//! A fault-injection campaign re-executes the same program once per fault,
//! and every faulty run is bit-identical to the fault-free (golden) run up to
//! the fault's injection cycle.  Recording periodic [`CpuState`] snapshots
//! during one golden run lets each faulty run restore the latest checkpoint
//! at or before its injection cycle and simulate only the suffix, turning
//! per-fault cost from O(program length) into O(checkpoint interval +
//! post-injection length).

use crate::core::{Cpu, CpuState, RunResult};
use crate::probe::Probe;
use serde::{Deserialize, Serialize};

/// How (and whether) a golden run is checkpointed.
///
/// The default targets 16 checkpoints per run (plus the cycle-0 snapshot),
/// clamped by a minimum interval so very short runs do not snapshot every few
/// cycles for no gain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Whether campaigns build and use checkpoints at all.
    pub enabled: bool,
    /// Desired number of checkpoints across the golden run (8–32 is the
    /// sensible band; the cycle-0 snapshot comes on top).
    pub target_checkpoints: u32,
    /// Lower bound on the checkpoint interval in cycles.
    pub min_interval: u64,
    /// Whether faulty runs may classify as Masked early when their state
    /// re-converges with the golden checkpoint stream (sound: identical state
    /// implies an identical remainder of the run).
    pub early_exit: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 16,
            min_interval: 256,
            early_exit: true,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that disables checkpointing entirely (campaigns fall back to
    /// from-scratch simulation).
    pub fn disabled() -> Self {
        CheckpointPolicy {
            enabled: false,
            ..CheckpointPolicy::default()
        }
    }

    /// A policy targeting `n` checkpoints per run.
    pub fn with_target(n: u32) -> Self {
        CheckpointPolicy {
            target_checkpoints: n.max(1),
            ..CheckpointPolicy::default()
        }
    }

    /// The snapshot interval this policy picks for a golden run of
    /// `golden_cycles` cycles.
    pub fn interval_for(&self, golden_cycles: u64) -> u64 {
        (golden_cycles / self.target_checkpoints.max(1) as u64)
            .max(self.min_interval)
            .max(1)
    }
}

/// Checkpoints of one golden run, cycle-ascending, always starting with the
/// cycle-0 (reset) state so every injection cycle has a checkpoint at or
/// before it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    interval: u64,
    checkpoints: Vec<CpuState>,
}

impl CheckpointStore {
    /// The snapshot interval the store was built with.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of checkpoints held (including the cycle-0 snapshot).
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// `true` when the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The latest checkpoint at or before `cycle` — the restore point for a
    /// fault injected at `cycle`.
    pub fn latest_at_or_before(&self, cycle: u64) -> Option<&CpuState> {
        match self.checkpoints.partition_point(|s| s.cycle() <= cycle) {
            0 => None,
            n => Some(&self.checkpoints[n - 1]),
        }
    }

    /// The checkpoint taken exactly at `cycle`, if one exists (used by the
    /// early-exit convergence test).
    pub fn at_cycle(&self, cycle: u64) -> Option<&CpuState> {
        let idx = self.checkpoints.partition_point(|s| s.cycle() < cycle);
        self.checkpoints.get(idx).filter(|s| s.cycle() == cycle)
    }

    /// Cycles at which checkpoints were taken.
    pub fn cycles(&self) -> impl Iterator<Item = u64> + '_ {
        self.checkpoints.iter().map(|s| s.cycle())
    }

    /// Approximate heap footprint of the whole store in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.checkpoints.iter().map(|s| s.footprint_bytes()).sum()
    }
}

impl Cpu {
    /// Runs like [`Cpu::run`] while snapshotting the state every `interval`
    /// cycles (including cycle 0), returning the run result together with the
    /// populated [`CheckpointStore`].
    pub fn run_with_checkpoints(
        &mut self,
        max_cycles: u64,
        probe: &mut dyn Probe,
        interval: u64,
    ) -> (RunResult, CheckpointStore) {
        let interval = interval.max(1);
        let mut checkpoints = Vec::new();
        while !self.is_finished() && self.cycle() < max_cycles {
            if self.cycle().is_multiple_of(interval) {
                checkpoints.push(self.snapshot());
            }
            self.step(probe);
        }
        let result = self.run(max_cycles, probe);
        (
            result,
            CheckpointStore {
                interval,
                checkpoints,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuConfig, NullProbe};
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn looped_program() -> merlin_isa::Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn policy_interval_bands() {
        let p = CheckpointPolicy::default();
        assert_eq!(p.interval_for(16_000), 1_000);
        // Short runs are clamped by the minimum interval.
        assert_eq!(p.interval_for(100), p.min_interval);
        assert_eq!(
            CheckpointPolicy::with_target(8).interval_for(80_000),
            10_000
        );
        assert!(!CheckpointPolicy::disabled().enabled);
    }

    #[test]
    fn store_lookup_semantics() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        assert!(result.exit.is_halted());
        assert!(store.len() >= 2, "expected several checkpoints");
        assert_eq!(store.latest_at_or_before(0).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(9).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(10).unwrap().cycle(), 10);
        assert_eq!(
            store.latest_at_or_before(u64::MAX).unwrap().cycle(),
            store.cycles().last().unwrap()
        );
        assert!(store.at_cycle(10).is_some());
        assert!(store.at_cycle(11).is_none());
        let cycles: Vec<u64> = store.cycles().collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(store.footprint_bytes() > 0);
    }

    #[test]
    fn restored_run_is_identical_to_uninterrupted_run() {
        let program = looped_program();
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let expected = reference.run(100_000, &mut NullProbe);

        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        // Diverge: run the original to completion, then restore and re-run.
        let first = cpu.run(100_000, &mut NullProbe);
        assert_eq!(first, expected);
        cpu.restore_from(&state);
        assert_eq!(cpu.cycle(), 17);
        let second = cpu.run(100_000, &mut NullProbe);
        assert_eq!(second, expected);

        // A fresh core restored from the same state also agrees.
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(&state);
        assert!(other.matches_state(&state));
        let third = other.run(100_000, &mut NullProbe);
        assert_eq!(third, expected);
    }

    #[test]
    fn matches_state_detects_divergence() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        for _ in 0..5 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        assert!(cpu.matches_state(&state));
        cpu.step(&mut NullProbe);
        assert!(!cpu.matches_state(&state));
    }
}
