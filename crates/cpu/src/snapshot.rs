//! Checkpointing of golden runs: policy, store and the instrumented run that
//! builds the store.
//!
//! A fault-injection campaign re-executes the same program once per fault,
//! and every faulty run is bit-identical to the fault-free (golden) run up to
//! the fault's injection cycle.  Recording periodic [`CpuState`] snapshots
//! during one golden run lets each faulty run restore the latest checkpoint
//! at or before its injection cycle and simulate only the suffix, turning
//! per-fault cost from O(program length) into O(checkpoint interval +
//! post-injection length).

use crate::core::{Cpu, CpuState, RunResult};
use crate::probe::Probe;
use merlin_isa::binio::{BinCode, ByteReader, DecodeError};
use serde::{Deserialize, Serialize};

/// How (and whether) a golden run is checkpointed.
///
/// The default targets 16 checkpoints per run (plus the cycle-0 snapshot),
/// clamped by a minimum interval so very short runs do not snapshot every few
/// cycles for no gain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Whether campaigns build and use checkpoints at all.
    pub enabled: bool,
    /// Desired number of checkpoints across the golden run (8–32 is the
    /// sensible band; the cycle-0 snapshot comes on top).
    pub target_checkpoints: u32,
    /// Lower bound on the checkpoint interval in cycles.
    pub min_interval: u64,
    /// Whether faulty runs may classify as Masked early when their state
    /// re-converges with the golden checkpoint stream (sound: identical state
    /// implies an identical remainder of the run).
    pub early_exit: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 16,
            min_interval: 256,
            early_exit: true,
        }
    }
}

impl CheckpointPolicy {
    /// A policy that disables checkpointing entirely (campaigns fall back to
    /// from-scratch simulation).
    pub fn disabled() -> Self {
        CheckpointPolicy {
            enabled: false,
            ..CheckpointPolicy::default()
        }
    }

    /// A policy targeting `n` checkpoints per run.
    pub fn with_target(n: u32) -> Self {
        CheckpointPolicy {
            target_checkpoints: n.max(1),
            ..CheckpointPolicy::default()
        }
    }

    /// The snapshot interval this policy picks for a golden run of
    /// `golden_cycles` cycles.
    pub fn interval_for(&self, golden_cycles: u64) -> u64 {
        (golden_cycles / self.target_checkpoints.max(1) as u64)
            .max(self.min_interval)
            .max(1)
    }
}

/// Checkpoints of one golden run, cycle-ascending, always starting with the
/// cycle-0 (reset) state so every injection cycle has a checkpoint at or
/// before it.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointStore {
    interval: u64,
    checkpoints: Vec<CpuState>,
}

impl CheckpointStore {
    /// The snapshot interval the store was built with.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of checkpoints held (including the cycle-0 snapshot).
    pub fn len(&self) -> usize {
        self.checkpoints.len()
    }

    /// `true` when the store holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.checkpoints.is_empty()
    }

    /// The latest checkpoint at or before `cycle` — the restore point for a
    /// fault injected at `cycle`.
    pub fn latest_at_or_before(&self, cycle: u64) -> Option<&CpuState> {
        match self.checkpoints.partition_point(|s| s.cycle() <= cycle) {
            0 => None,
            n => Some(&self.checkpoints[n - 1]),
        }
    }

    /// The checkpoint taken exactly at `cycle`, if one exists (used by the
    /// early-exit convergence test).
    pub fn at_cycle(&self, cycle: u64) -> Option<&CpuState> {
        let idx = self.checkpoints.partition_point(|s| s.cycle() < cycle);
        self.checkpoints.get(idx).filter(|s| s.cycle() == cycle)
    }

    /// Cycles at which checkpoints were taken.
    pub fn cycles(&self) -> impl Iterator<Item = u64> + '_ {
        self.checkpoints.iter().map(|s| s.cycle())
    }

    /// Approximate heap footprint of the whole store in bytes.
    pub fn footprint_bytes(&self) -> usize {
        self.checkpoints.iter().map(|s| s.footprint_bytes()).sum()
    }
}

impl BinCode for CheckpointPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.enabled.encode(out);
        self.target_checkpoints.encode(out);
        self.min_interval.encode(out);
        self.early_exit.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        Ok(CheckpointPolicy {
            enabled: BinCode::decode(r)?,
            target_checkpoints: BinCode::decode(r)?,
            min_interval: BinCode::decode(r)?,
            early_exit: BinCode::decode(r)?,
        })
    }
}

impl BinCode for CheckpointStore {
    fn encode(&self, out: &mut Vec<u8>) {
        self.interval.encode(out);
        self.checkpoints.encode(out);
    }
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, DecodeError> {
        let interval = u64::decode(r)?;
        if interval == 0 {
            return Err(DecodeError::Invalid("checkpoint interval"));
        }
        let checkpoints = Vec::<CpuState>::decode(r)?;
        let mut cycles = checkpoints.iter().map(|s| s.cycle());
        if checkpoints.is_empty() || cycles.next() != Some(0) {
            return Err(DecodeError::Invalid("store must start at cycle 0"));
        }
        let ascending = checkpoints.windows(2).all(|w| w[0].cycle() < w[1].cycle());
        if !ascending {
            return Err(DecodeError::Invalid("store cycles not ascending"));
        }
        Ok(CheckpointStore {
            interval,
            checkpoints,
        })
    }
}

impl Cpu {
    /// Runs like [`Cpu::run`] while snapshotting the state every `interval`
    /// cycles (including cycle 0), returning the run result together with the
    /// populated [`CheckpointStore`].
    pub fn run_with_checkpoints(
        &mut self,
        max_cycles: u64,
        probe: &mut dyn Probe,
        interval: u64,
    ) -> (RunResult, CheckpointStore) {
        let interval = interval.max(1);
        let mut checkpoints = Vec::new();
        while !self.is_finished() && self.cycle() < max_cycles {
            if self.cycle().is_multiple_of(interval) {
                checkpoints.push(self.snapshot());
            }
            self.step(probe);
        }
        let result = self.run(max_cycles, probe);
        (
            result,
            CheckpointStore {
                interval,
                checkpoints,
            },
        )
    }

    /// Runs like [`Cpu::run`] while building a checkpoint store in a single
    /// pass, without knowing the run length in advance.
    ///
    /// Snapshots are taken every `min_interval` cycles; whenever the store
    /// exceeds `2 × target` checkpoints the interval doubles and every
    /// snapshot not on the new grid is dropped, so the store converges to
    /// `target..2 × target` checkpoints regardless of how long the run turns
    /// out to be.  The live store never holds more than `2 × target + 1`
    /// snapshots, and the cycle-0 snapshot (a multiple of every interval)
    /// always survives thinning.
    ///
    /// This replaces the two-pass construction (an uninstrumented pre-pass
    /// sizing the interval, then an instrumented re-run): the entire golden
    /// run is simulated exactly once.
    pub fn run_with_adaptive_checkpoints(
        &mut self,
        max_cycles: u64,
        probe: &mut dyn Probe,
        min_interval: u64,
        target: u32,
    ) -> (RunResult, CheckpointStore) {
        let mut interval = min_interval.max(1);
        let target = target.max(1) as usize;
        let mut checkpoints: Vec<CpuState> = Vec::new();
        while !self.is_finished() && self.cycle() < max_cycles {
            if self.cycle().is_multiple_of(interval) {
                checkpoints.push(self.snapshot());
                while checkpoints.len() > 2 * target {
                    interval *= 2;
                    checkpoints.retain(|s| s.cycle().is_multiple_of(interval));
                }
            }
            self.step(probe);
        }
        let result = self.run(max_cycles, probe);
        (
            result,
            CheckpointStore {
                interval,
                checkpoints,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CpuConfig, NullProbe};
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn looped_program() -> merlin_isa::Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn policy_interval_bands() {
        let p = CheckpointPolicy::default();
        assert_eq!(p.interval_for(16_000), 1_000);
        // Short runs are clamped by the minimum interval.
        assert_eq!(p.interval_for(100), p.min_interval);
        assert_eq!(
            CheckpointPolicy::with_target(8).interval_for(80_000),
            10_000
        );
        assert!(!CheckpointPolicy::disabled().enabled);
    }

    #[test]
    fn store_lookup_semantics() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        assert!(result.exit.is_halted());
        assert!(store.len() >= 2, "expected several checkpoints");
        assert_eq!(store.latest_at_or_before(0).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(9).unwrap().cycle(), 0);
        assert_eq!(store.latest_at_or_before(10).unwrap().cycle(), 10);
        assert_eq!(
            store.latest_at_or_before(u64::MAX).unwrap().cycle(),
            store.cycles().last().unwrap()
        );
        assert!(store.at_cycle(10).is_some());
        assert!(store.at_cycle(11).is_none());
        let cycles: Vec<u64> = store.cycles().collect();
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(store.footprint_bytes() > 0);
    }

    #[test]
    fn restored_run_is_identical_to_uninterrupted_run() {
        let program = looped_program();
        let mut reference = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let expected = reference.run(100_000, &mut NullProbe);

        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        // Diverge: run the original to completion, then restore and re-run.
        let first = cpu.run(100_000, &mut NullProbe);
        assert_eq!(first, expected);
        cpu.restore_from(&state);
        assert_eq!(cpu.cycle(), 17);
        let second = cpu.run(100_000, &mut NullProbe);
        assert_eq!(second, expected);

        // A fresh core restored from the same state also agrees.
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(&state);
        assert!(other.matches_state(&state));
        let third = other.run(100_000, &mut NullProbe);
        assert_eq!(third, expected);
    }

    #[test]
    fn adaptive_store_converges_to_target_band() {
        let program = looped_program();
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (result, store) = cpu.run_with_adaptive_checkpoints(100_000, &mut NullProbe, 2, 8);
        assert!(result.exit.is_halted());
        // Identical run result to the non-instrumented execution.
        let mut plain = Cpu::new(program, CpuConfig::default()).unwrap();
        assert_eq!(plain.run(100_000, &mut NullProbe), result);
        // Store shape: starts at cycle 0, strictly ascending, on the final
        // interval's grid, within the (target, 2*target] band whenever the
        // run is long enough to have thinned at least once.
        let cycles: Vec<u64> = store.cycles().collect();
        assert_eq!(cycles[0], 0);
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(cycles.iter().all(|c| c.is_multiple_of(store.interval())));
        assert!(
            store.len() <= 2 * 8 + 1,
            "store kept {} snapshots",
            store.len()
        );
        assert!(store.len() >= 2);
        assert!(store.interval() >= 2);
    }

    #[test]
    fn adaptive_store_supports_exact_restore() {
        let program = looped_program();
        let mut cpu = Cpu::new(program.clone(), CpuConfig::default()).unwrap();
        let (expected, store) = cpu.run_with_adaptive_checkpoints(100_000, &mut NullProbe, 4, 4);
        // Restoring any kept checkpoint and re-running reproduces the run.
        let mid = store.latest_at_or_before(expected.cycles / 2).unwrap();
        let mut other = Cpu::new(program, CpuConfig::default()).unwrap();
        other.restore_from(mid);
        assert!(other.matches_state(mid));
        assert_eq!(other.run(100_000, &mut NullProbe), expected);
    }

    #[test]
    fn store_and_policy_binary_roundtrip() {
        use merlin_isa::binio::{decode_from_slice, encode_to_vec};
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        let (_, store) = cpu.run_with_checkpoints(100_000, &mut NullProbe, 10);
        let bytes = encode_to_vec(&store);
        let back: CheckpointStore = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, store);
        let policy = CheckpointPolicy::with_target(9);
        let back: CheckpointPolicy = decode_from_slice(&encode_to_vec(&policy)).unwrap();
        assert_eq!(back, policy);
        // Corrupting the interval to zero is rejected.
        let mut bytes = encode_to_vec(&store);
        bytes[..8].fill(0);
        assert!(decode_from_slice::<CheckpointStore>(&bytes).is_err());
    }

    #[test]
    fn matches_state_detects_divergence() {
        let program = looped_program();
        let mut cpu = Cpu::new(program, CpuConfig::default()).unwrap();
        for _ in 0..5 {
            cpu.step(&mut NullProbe);
        }
        let state = cpu.snapshot();
        assert!(cpu.matches_state(&state));
        cpu.step(&mut NullProbe);
        assert!(!cpu.matches_state(&state));
    }
}
