//! Determinism of the pre-decoded fetch path: the once-per-program micro-op
//! arena must hold exactly what the per-instruction cracker produces for
//! every bundled workload, and a core fetching from a shared table must
//! produce a byte-identical [`RunResult`] to an independently constructed
//! core — the invariant that lets every campaign worker share one
//! `Arc<DecodedProgram>` without any observable effect on outcomes.

use merlin_cpu::{Cpu, CpuConfig, NullProbe, RunResult};
use merlin_isa::{decode, DecodedProgram, Rip};
use merlin_workloads::all_workloads;
use std::sync::Arc;

#[test]
fn arena_matches_per_fetch_decode_on_all_workloads() {
    for w in all_workloads() {
        let decoded = DecodedProgram::new(&w.program);
        assert_eq!(decoded.num_instructions(), w.program.len(), "{}", w.name);
        let mut total = 0;
        for (rip, inst) in w.program.instructions.iter().enumerate() {
            let per_fetch = decode(rip as Rip, inst);
            assert_eq!(
                decoded.uops(rip as Rip),
                per_fetch,
                "{}: rip {rip} decodes differently through the arena",
                w.name
            );
            total += per_fetch.len();
        }
        assert_eq!(decoded.num_uops(), total, "{}", w.name);
    }
}

#[test]
fn shared_table_runs_are_byte_identical() {
    for w in all_workloads().iter().take(3) {
        let program = Arc::new(w.program.clone());
        // One table shared by several cores, against a core building its
        // own — every RunResult field must agree bit for bit.
        let decoded = Arc::new(DecodedProgram::new(&program));
        let run = |mut cpu: Cpu| -> RunResult { cpu.run(100_000_000, &mut NullProbe) };
        let own = run(Cpu::new(Arc::clone(&program), CpuConfig::default()).unwrap());
        let shared_a = run(Cpu::with_predecoded(
            Arc::clone(&program),
            Arc::clone(&decoded),
            CpuConfig::default(),
        )
        .unwrap());
        let shared_b = run(Cpu::with_predecoded(
            Arc::clone(&program),
            Arc::clone(&decoded),
            CpuConfig::default(),
        )
        .unwrap());
        assert!(own.exit.is_halted(), "{}", w.name);
        assert_eq!(own, shared_a, "{}", w.name);
        assert_eq!(shared_a, shared_b, "{}", w.name);
    }
}

#[test]
fn mismatched_table_is_rejected() {
    let workloads = all_workloads();
    let (a, b) = (&workloads[0], &workloads[1]);
    let foreign = Arc::new(DecodedProgram::new(&b.program));
    assert!(!foreign.matches_program(&a.program));
    let err = Cpu::with_predecoded(Arc::new(a.program.clone()), foreign, CpuConfig::default());
    assert!(err.is_err(), "a foreign table must not be accepted");

    // A table from a *different* program of the *same* length is rejected
    // too — instruction count alone cannot tell the two apart, the content
    // hash must.
    let program = a.program.clone();
    let mut same_len = program.clone();
    let swapped = same_len.instructions.len() / 2;
    same_len.instructions[swapped] = merlin_isa::Inst::Nop;
    if same_len.instructions == program.instructions {
        same_len.instructions[swapped] = merlin_isa::Inst::Halt;
    }
    assert_eq!(program.len(), same_len.len());
    let foreign = Arc::new(DecodedProgram::new(&same_len));
    assert!(!foreign.matches_program(&program));
    let err = Cpu::with_predecoded(Arc::new(program), foreign, CpuConfig::default());
    assert!(
        err.is_err(),
        "an equal-length foreign table must not be accepted"
    );
}
