//! Every workload kernel must execute identically on the cycle-level
//! out-of-order core and on the architectural reference interpreter.

use merlin_cpu::{interpret, Cpu, CpuConfig, NullProbe};
use merlin_workloads::{all_workloads, Suite};

#[test]
fn all_workloads_match_the_interpreter_on_the_pipeline() {
    for w in all_workloads() {
        let golden = interpret(&w.program, 200_000_000);
        assert_eq!(
            golden.exit,
            merlin_cpu::InterpExit::Halted,
            "{} did not halt architecturally",
            w.name
        );
        let mut cpu = Cpu::new(w.program.clone(), CpuConfig::default()).unwrap();
        let result = cpu.run(100_000_000, &mut NullProbe);
        assert!(
            result.exit.is_halted(),
            "{} did not halt on the pipeline: {:?}",
            w.name,
            result.exit
        );
        assert_eq!(result.output, golden.output, "{} output mismatch", w.name);
        assert_eq!(
            result.committed_instructions, golden.instructions,
            "{} instruction count mismatch",
            w.name
        );
        assert_eq!(
            result.arithmetic_exceptions + result.misaligned_exceptions,
            golden.arithmetic_exceptions + golden.misaligned_exceptions,
            "{} exception count mismatch",
            w.name
        );
        // Sanity-check the scale of each kernel: big enough to be
        // interesting, small enough for fast campaigns.
        let (lo, hi) = match w.suite {
            Suite::MiBench => (2_000, 600_000),
            Suite::Spec => (10_000, 2_000_000),
        };
        assert!(
            result.cycles >= lo && result.cycles <= hi,
            "{} runs for {} cycles, outside the expected {}..{} band",
            w.name,
            result.cycles,
            lo,
            hi
        );
    }
}
