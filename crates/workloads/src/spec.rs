//! SPEC CPU2006-analog kernels.
//!
//! Longer-running and more irregular than the MiBench analogs, these stand in
//! for the Simpoint samples the paper uses in its speedup study (§4.4.2.3)
//! and its truncated-run accuracy study (§4.4.3.4): bzip2, gcc, mcf, gobmk,
//! hmmer, sjeng, libquantum, h264ref, omnetpp and astar.

use crate::util::{emit_checksum_words, input_bytes, input_words};
use merlin_isa::{reg, AluOp, Cond, MemRef, MemSize, Program, ProgramBuilder};

/// bzip2 analog: run-length encoding followed by a move-to-front transform.
pub fn bzip2() -> Program {
    let data: Vec<u8> = input_bytes(0xB217, 3072).iter().map(|b| b % 16).collect();
    let mut b = ProgramBuilder::new();
    let in_addr = b.alloc_bytes(&data);
    let rle_addr = b.reserve(2 * data.len() as u64 + 16);
    let mtf_table = b.alloc_bytes(&(0..=255u8).collect::<Vec<u8>>());
    b.movi(reg(10), in_addr as i64);
    b.movi(reg(11), rle_addr as i64);
    b.movi(reg(12), mtf_table as i64);
    // ---- RLE pass ----
    b.movi(reg(1), 0); // input index
    b.movi(reg(2), 0); // output length (bytes)
    let rle_loop = b.bind_label();
    b.alu_rr(AluOp::Add, reg(3), reg(10), reg(1));
    b.load_sized(reg(4), MemRef::base(reg(3)), MemSize::B1, false); // value
    b.movi(reg(5), 1); // run length
    let run_loop = b.bind_label();
    let run_done = b.label();
    b.alu_rr(AluOp::Add, reg(6), reg(1), reg(5));
    b.branch_ri(Cond::Ge, reg(6), data.len() as i64, run_done);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(10));
    b.load_sized(reg(7), MemRef::base(reg(6)), MemSize::B1, false);
    b.branch_rr(Cond::Ne, reg(7), reg(4), run_done);
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.branch_ri(Cond::Lt, reg(5), 255, run_loop);
    b.bind(run_done);
    // emit (value, run) byte pair
    b.alu_rr(AluOp::Add, reg(6), reg(11), reg(2));
    b.store_sized(reg(4), MemRef::base(reg(6)), MemSize::B1);
    b.store_sized(reg(5), MemRef::base(reg(6)).disp(1), MemSize::B1);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 2);
    b.alu_rr(AluOp::Add, reg(1), reg(1), reg(5));
    b.branch_ri(Cond::Lt, reg(1), data.len() as i64, rle_loop);
    b.out(reg(2)); // encoded length
                   // ---- MTF pass over the RLE output ----
    b.movi(reg(1), 0); // index
    b.movi(reg(8), 0); // mtf checksum
    let mtf_loop = b.bind_label();
    b.alu_rr(AluOp::Add, reg(3), reg(11), reg(1));
    b.load_sized(reg(4), MemRef::base(reg(3)), MemSize::B1, false); // symbol
                                                                    // find the symbol's current rank (linear scan of the table)
    b.movi(reg(5), 0); // rank
    let find_loop = b.bind_label();
    b.alu_rr(AluOp::Add, reg(6), reg(12), reg(5));
    b.load_sized(reg(7), MemRef::base(reg(6)), MemSize::B1, false);
    let found = b.label();
    b.branch_rr(Cond::Eq, reg(7), reg(4), found);
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.branch_ri(Cond::Lt, reg(5), 256, find_loop);
    b.bind(found);
    // move to front: shift table[0..rank) up by one, table[0] = symbol
    b.mov(reg(9), reg(5));
    let shift_loop = b.bind_label();
    let shift_done = b.label();
    b.branch_ri(Cond::Le, reg(9), 0, shift_done);
    b.alu_rr(AluOp::Add, reg(6), reg(12), reg(9));
    b.load_sized(reg(7), MemRef::base(reg(6)).disp(-1), MemSize::B1, false);
    b.store_sized(reg(7), MemRef::base(reg(6)), MemSize::B1);
    b.alu_ri(AluOp::Sub, reg(9), reg(9), 1);
    b.branch_ri(Cond::Gt, reg(9), 0, shift_loop);
    b.bind(shift_done);
    b.store_sized(reg(4), MemRef::base(reg(12)), MemSize::B1);
    // fold the rank into the checksum
    b.alu_ri(AluOp::Mul, reg(8), reg(8), 31);
    b.alu_rr(AluOp::Xor, reg(8), reg(8), reg(5));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_rr(Cond::Lt, reg(1), reg(2), mtf_loop);
    b.out(reg(8));
    b.halt();
    b.build().expect("bzip2 builds")
}

/// gcc analog: a constant-folding expression evaluator with a branchy
/// dispatch over operator kinds and a small mutable symbol table.
pub fn gcc() -> Program {
    let n = 2048i64;
    let ops = input_words(0x6CC, n as usize, 8);
    let lhs = input_words(0x6CC1, n as usize, 10_000);
    let rhs = input_words(0x6CC2, n as usize, 255);
    let mut b = ProgramBuilder::new();
    let ops_addr = b.alloc_words(&ops);
    let lhs_addr = b.alloc_words(&lhs);
    let rhs_addr = b.alloc_words(&rhs);
    let sym_addr = b.reserve(16 * 8);
    b.movi(reg(10), ops_addr as i64);
    b.movi(reg(11), lhs_addr as i64);
    b.movi(reg(12), rhs_addr as i64);
    b.movi(reg(13), sym_addr as i64);
    b.movi(reg(8), 0); // result checksum
    b.movi(reg(1), 0); // expression index
    let top = b.bind_label();
    b.load(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8)); // op
    b.load(reg(3), MemRef::base(reg(11)).indexed(reg(1), 8)); // a
    b.load(reg(4), MemRef::base(reg(12)).indexed(reg(1), 8)); // b
    let done = b.label();
    let case_labels: Vec<_> = (0..8).map(|_| b.label()).collect();
    for (k, lbl) in case_labels.iter().enumerate() {
        b.branch_ri(Cond::Eq, reg(2), k as i64, *lbl);
    }
    b.jump(done);
    let emit_case = |b: &mut ProgramBuilder, op: AluOp| {
        b.alu_rr(op, reg(5), reg(3), reg(4));
    };
    for (k, lbl) in case_labels.iter().enumerate() {
        b.bind(*lbl);
        match k {
            0 => emit_case(&mut b, AluOp::Add),
            1 => emit_case(&mut b, AluOp::Sub),
            2 => emit_case(&mut b, AluOp::Mul),
            3 => emit_case(&mut b, AluOp::Div),
            4 => emit_case(&mut b, AluOp::And),
            5 => emit_case(&mut b, AluOp::Or),
            6 => emit_case(&mut b, AluOp::Xor),
            _ => {
                // "call"-like case: fold through the symbol table
                b.alu_ri(AluOp::And, reg(6), reg(3), 15);
                b.load(reg(5), MemRef::base(reg(13)).indexed(reg(6), 8));
                b.alu_rr(AluOp::Add, reg(5), reg(5), reg(4));
            }
        }
        if k != 7 {
            b.jump(done);
        }
    }
    b.bind(done);
    // update symbol table slot (result % 16) and fold the checksum
    b.alu_ri(AluOp::And, reg(6), reg(5), 15);
    b.store(reg(5), MemRef::base(reg(13)).indexed(reg(6), 8));
    b.alu_ri(AluOp::Mul, reg(8), reg(8), 31);
    b.alu_rr(AluOp::Xor, reg(8), reg(8), reg(5));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), n, top);
    b.out(reg(8));
    emit_checksum_words(&mut b, reg(2), reg(13), 16, reg(3), reg(4));
    b.halt();
    b.build().expect("gcc builds")
}

/// mcf analog: Bellman-Ford relaxation sweeps over an edge list.
pub fn mcf() -> Program {
    let nodes = 48i64;
    let edges = 320i64;
    let from = input_words(0x3CF1, edges as usize, nodes as u64);
    let to = input_words(0x3CF2, edges as usize, nodes as u64);
    let weight = input_words(0x3CF3, edges as usize, 100);
    let mut b = ProgramBuilder::new();
    let from_addr = b.alloc_words(&from);
    let to_addr = b.alloc_words(&to);
    let w_addr = b.alloc_words(&weight);
    let dist_addr = b.alloc_words(&vec![1_000_000u64; nodes as usize]);
    b.movi(reg(10), from_addr as i64);
    b.movi(reg(11), to_addr as i64);
    b.movi(reg(12), w_addr as i64);
    b.movi(reg(13), dist_addr as i64);
    // dist[0] = 0
    b.movi(reg(1), 0);
    b.store(reg(1), MemRef::base(reg(13)));
    b.movi(reg(1), 0); // sweep
    let sweep_loop = b.bind_label();
    b.movi(reg(2), 0); // edge index
    let edge_loop = b.bind_label();
    b.load(reg(3), MemRef::base(reg(10)).indexed(reg(2), 8)); // u
    b.load(reg(4), MemRef::base(reg(11)).indexed(reg(2), 8)); // v
    b.load(reg(5), MemRef::base(reg(12)).indexed(reg(2), 8)); // w
    b.load(reg(6), MemRef::base(reg(13)).indexed(reg(3), 8)); // dist[u]
    b.load(reg(7), MemRef::base(reg(13)).indexed(reg(4), 8)); // dist[v]
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(5));
    let no_relax = b.label();
    b.branch_rr(Cond::Geu, reg(6), reg(7), no_relax);
    b.store(reg(6), MemRef::base(reg(13)).indexed(reg(4), 8));
    b.bind(no_relax);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), edges, edge_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 20, sweep_loop);
    emit_checksum_words(&mut b, reg(2), reg(13), nodes, reg(3), reg(4));
    b.halt();
    b.build().expect("mcf builds")
}

/// gobmk analog: influence sweeps over a 19×19 board with neighbour scans.
pub fn gobmk() -> Program {
    let size = 19i64;
    let board: Vec<u8> = input_bytes(0x609, (size * size) as usize)
        .iter()
        .map(|b| b % 3)
        .collect();
    let mut b = ProgramBuilder::new();
    let board_addr = b.alloc_bytes(&board);
    let infl_addr = b.reserve((size * size * 8) as u64);
    b.movi(reg(10), board_addr as i64);
    b.movi(reg(11), infl_addr as i64);
    b.movi(reg(9), 0); // score
    b.movi(reg(1), 0); // sweep
    let sweep_loop = b.bind_label();
    b.movi(reg(2), 1); // y
    let y_loop = b.bind_label();
    b.movi(reg(3), 1); // x
    let x_loop = b.bind_label();
    // idx = y*size + x
    b.alu_ri(AluOp::Mul, reg(4), reg(2), size);
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(3));
    // centre stone colour
    b.alu_rr(AluOp::Add, reg(5), reg(10), reg(4));
    b.load_sized(reg(6), MemRef::base(reg(5)), MemSize::B1, false);
    // neighbour influence: sum of (colour==1) - (colour==2) over 4 neighbours
    b.movi(reg(7), 0);
    for disp in [-1i64, 1, -size, size] {
        b.load_sized(reg(8), MemRef::base(reg(5)).disp(disp), MemSize::B1, false);
        let not_black = b.label();
        let next = b.label();
        b.branch_ri(Cond::Ne, reg(8), 1, not_black);
        b.alu_ri(AluOp::Add, reg(7), reg(7), 1);
        b.jump(next);
        b.bind(not_black);
        let not_white = b.label();
        b.branch_ri(Cond::Ne, reg(8), 2, not_white);
        b.alu_ri(AluOp::Sub, reg(7), reg(7), 1);
        b.bind(not_white);
        b.bind(next);
    }
    // influence[idx] += neighbour score + own colour
    b.alu_rr(AluOp::Add, reg(7), reg(7), reg(6));
    b.load(reg(8), MemRef::base(reg(11)).indexed(reg(4), 8));
    b.alu_rr(AluOp::Add, reg(8), reg(8), reg(7));
    b.store(reg(8), MemRef::base(reg(11)).indexed(reg(4), 8));
    b.alu_rr(AluOp::Add, reg(9), reg(9), reg(7));
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), size - 1, x_loop);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), size - 1, y_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 8, sweep_loop);
    b.out(reg(9));
    emit_checksum_words(&mut b, reg(2), reg(11), size * size, reg(3), reg(4));
    b.halt();
    b.build().expect("gobmk builds")
}

/// hmmer analog: Viterbi-style dynamic programming over a profile.
pub fn hmmer() -> Program {
    let states = 24i64;
    let seq_len = 96i64;
    let emit = input_words(0x4333, (states * 4) as usize, 50);
    let obs = input_words(0x4334, seq_len as usize, 4);
    let mut b = ProgramBuilder::new();
    let emit_addr = b.alloc_words(&emit);
    let obs_addr = b.alloc_words(&obs);
    let prev_addr = b.reserve((states * 8) as u64);
    let cur_addr = b.reserve((states * 8) as u64);
    b.movi(reg(10), emit_addr as i64);
    b.movi(reg(11), obs_addr as i64);
    b.movi(reg(12), prev_addr as i64);
    b.movi(reg(13), cur_addr as i64);
    b.movi(reg(1), 0); // t
    let t_loop = b.bind_label();
    b.load(reg(2), MemRef::base(reg(11)).indexed(reg(1), 8)); // observation
    b.movi(reg(3), 0); // state s
    let s_loop = b.bind_label();
    // match score = prev[s-1] (or 0 for s==0)
    b.movi(reg(4), 0);
    let no_prev = b.label();
    b.branch_ri(Cond::Eq, reg(3), 0, no_prev);
    b.alu_ri(AluOp::Sub, reg(5), reg(3), 1);
    b.load(reg(4), MemRef::base(reg(12)).indexed(reg(5), 8));
    b.bind(no_prev);
    // insert score = prev[s] - 3
    b.load(reg(5), MemRef::base(reg(12)).indexed(reg(3), 8));
    b.alu_ri(AluOp::Sub, reg(5), reg(5), 3);
    b.alu_rr(AluOp::Max, reg(4), reg(4), reg(5));
    // add emission score emit[s*4 + obs]
    b.alu_ri(AluOp::Mul, reg(5), reg(3), 4);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(2));
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(5), 8));
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(6));
    b.store(reg(4), MemRef::base(reg(13)).indexed(reg(3), 8));
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), states, s_loop);
    // swap prev/cur
    b.mov(reg(4), reg(12));
    b.mov(reg(12), reg(13));
    b.mov(reg(13), reg(4));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), seq_len, t_loop);
    // best final score
    b.movi(reg(5), 0);
    b.movi(reg(3), 0);
    let best_loop = b.bind_label();
    b.load(reg(4), MemRef::base(reg(12)).indexed(reg(3), 8));
    b.alu_rr(AluOp::Max, reg(5), reg(5), reg(4));
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), states, best_loop);
    b.out(reg(5));
    b.halt();
    b.build().expect("hmmer builds")
}

/// sjeng analog: ray-scan evaluation of perturbed board positions.
pub fn sjeng() -> Program {
    let board: Vec<u8> = input_bytes(0x51E6, 64).iter().map(|b| b % 7).collect();
    let pst = input_words(0x51E7, 7 * 64, 200);
    let mut b = ProgramBuilder::new();
    let board_addr = b.alloc_bytes(&board);
    let pst_addr = b.alloc_words(&pst);
    b.movi(reg(10), board_addr as i64);
    b.movi(reg(11), pst_addr as i64);
    b.movi(reg(9), 0); // total evaluation
    b.movi(reg(1), 0); // position perturbation index
    let pos_loop = b.bind_label();
    b.movi(reg(2), 0); // square
    let sq_loop = b.bind_label();
    b.alu_rr(AluOp::Add, reg(3), reg(10), reg(2));
    b.load_sized(reg(4), MemRef::base(reg(3)), MemSize::B1, false); // piece
                                                                    // perturb the piece identity by the position index
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(1));
    b.alu_ri(AluOp::Rem, reg(4), reg(4), 7);
    let empty = b.label();
    b.branch_ri(Cond::Eq, reg(4), 0, empty);
    // piece-square value pst[piece*64 + square]
    b.alu_ri(AluOp::Mul, reg(5), reg(4), 64);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(2));
    b.load(reg(6), MemRef::base(reg(11)).indexed(reg(5), 8));
    b.alu_rr(AluOp::Add, reg(9), reg(9), reg(6));
    // ray scan east from the square until the edge or a non-empty square
    b.alu_ri(AluOp::And, reg(5), reg(2), 7); // file
    b.mov(reg(6), reg(2));
    let ray_loop = b.bind_label();
    let ray_done = b.label();
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.branch_ri(Cond::Ge, reg(5), 8, ray_done);
    b.alu_ri(AluOp::Add, reg(6), reg(6), 1);
    b.alu_rr(AluOp::Add, reg(7), reg(10), reg(6));
    b.load_sized(reg(8), MemRef::base(reg(7)), MemSize::B1, false);
    b.alu_ri(AluOp::Add, reg(9), reg(9), 1); // mobility bonus
    b.branch_ri(Cond::Eq, reg(8), 0, ray_loop);
    b.bind(ray_done);
    b.bind(empty);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 64, sq_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 24, pos_loop);
    b.out(reg(9));
    b.halt();
    b.build().expect("sjeng builds")
}

/// libquantum analog: Hadamard-like butterflies and phase flips over a
/// register of integer amplitudes.
pub fn libquantum() -> Program {
    let qubits = 9i64;
    let n = 1i64 << qubits; // 512 amplitudes
    let amps = input_words(0x11B0, n as usize, 1 << 20);
    let mut b = ProgramBuilder::new();
    let amp_addr = b.alloc_words(&amps);
    b.movi(reg(10), amp_addr as i64);
    b.movi(reg(1), 0); // qubit
    let qubit_loop = b.bind_label();
    b.movi(reg(2), 1);
    b.alu_rr(AluOp::Shl, reg(2), reg(2), reg(1)); // bit mask
    b.movi(reg(3), 0); // index
    let idx_loop = b.bind_label();
    // only process indices where the bit is clear
    b.alu_rr(AluOp::And, reg(4), reg(3), reg(2));
    let skip = b.label();
    b.branch_ri(Cond::Ne, reg(4), 0, skip);
    b.alu_rr(AluOp::Or, reg(4), reg(3), reg(2)); // partner index
    b.load(reg(5), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(4), 8));
    // butterfly: a' = (a+b)>>1, b' = (a-b)>>1, with a phase twist
    b.alu_rr(AluOp::Add, reg(7), reg(5), reg(6));
    b.alu_ri(AluOp::Sar, reg(7), reg(7), 1);
    b.alu_rr(AluOp::Sub, reg(8), reg(5), reg(6));
    b.alu_ri(AluOp::Sar, reg(8), reg(8), 1);
    b.alu_ri(AluOp::Xor, reg(8), reg(8), 0x5A5A);
    b.store(reg(7), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.store(reg(8), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.bind(skip);
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), n, idx_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), qubits, qubit_loop);
    emit_checksum_words(&mut b, reg(2), reg(10), n, reg(3), reg(4));
    b.halt();
    b.build().expect("libquantum builds")
}

/// h264ref analog: sum-of-absolute-differences motion search.
pub fn h264ref() -> Program {
    let block = 8i64;
    let win = 24i64; // search window edge (candidate origins 0..=win-block)
    let cur = input_bytes(0x2641, (block * block) as usize);
    let refw = input_bytes(0x2642, (win * win) as usize);
    let mut b = ProgramBuilder::new();
    let cur_addr = b.alloc_bytes(&cur);
    let ref_addr = b.alloc_bytes(&refw);
    b.movi(reg(10), cur_addr as i64);
    b.movi(reg(11), ref_addr as i64);
    b.movi(reg(9), i64::MAX); // best SAD
    b.movi(reg(8), 0); // best position
    b.movi(reg(1), 0); // candidate y
    let cy_loop = b.bind_label();
    b.movi(reg(2), 0); // candidate x
    let cx_loop = b.bind_label();
    b.movi(reg(3), 0); // SAD accumulator
    b.movi(reg(4), 0); // row
    let row_loop = b.bind_label();
    b.movi(reg(5), 0); // col
    let col_loop = b.bind_label();
    // cur[row*block+col]
    b.alu_ri(AluOp::Mul, reg(6), reg(4), block);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(5));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(10));
    b.load_sized(reg(7), MemRef::base(reg(6)), MemSize::B1, false);
    // ref[(cy+row)*win + cx+col]
    b.alu_rr(AluOp::Add, reg(6), reg(1), reg(4));
    b.alu_ri(AluOp::Mul, reg(6), reg(6), win);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(2));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(5));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(11));
    b.load_sized(reg(12), MemRef::base(reg(6)), MemSize::B1, false);
    // |cur - ref|
    b.alu_rr(AluOp::Sub, reg(7), reg(7), reg(12));
    b.movi(reg(12), 0);
    b.alu_rr(AluOp::Sub, reg(12), reg(12), reg(7));
    b.alu_rr(AluOp::Max, reg(7), reg(7), reg(12));
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(7));
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.branch_ri(Cond::Lt, reg(5), block, col_loop);
    b.alu_ri(AluOp::Add, reg(4), reg(4), 1);
    b.branch_ri(Cond::Lt, reg(4), block, row_loop);
    // keep the best candidate
    let not_better = b.label();
    b.branch_rr(Cond::Ge, reg(3), reg(9), not_better);
    b.mov(reg(9), reg(3));
    b.alu_ri(AluOp::Mul, reg(8), reg(1), 64);
    b.alu_rr(AluOp::Add, reg(8), reg(8), reg(2));
    b.bind(not_better);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Le, reg(2), win - block, cx_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Le, reg(1), win - block, cy_loop);
    b.out(reg(9));
    b.out(reg(8));
    b.halt();
    b.build().expect("h264ref builds")
}

/// omnetpp analog: a discrete-event loop driven by a binary-heap event queue.
pub fn omnetpp() -> Program {
    let cap = 128i64;
    let initial = input_words(0x03E7, 32, 1000);
    let mut b = ProgramBuilder::new();
    let heap_addr = b.reserve((cap * 8) as u64);
    let init_addr = b.alloc_words(&initial);
    b.movi(reg(10), heap_addr as i64);
    b.movi(reg(11), init_addr as i64);
    b.movi(reg(9), 0); // processed-event checksum
    b.movi(reg(13), 0x1234_5678); // xorshift state
                                  // ---- seed the heap by repeated push ----
    b.movi(reg(8), 0); // heap size
    b.movi(reg(1), 0);
    let seed_loop = b.bind_label();
    b.load(reg(2), MemRef::base(reg(11)).indexed(reg(1), 8));
    // push r2: place at index size, sift up
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(8), 8));
    b.mov(reg(3), reg(8));
    let sift_up = b.bind_label();
    let up_done = b.label();
    b.branch_ri(Cond::Le, reg(3), 0, up_done);
    b.alu_ri(AluOp::Sub, reg(4), reg(3), 1);
    b.alu_ri(AluOp::Shr, reg(4), reg(4), 1); // parent
    b.load(reg(5), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.branch_rr(Cond::Geu, reg(6), reg(5), up_done);
    b.store(reg(6), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.store(reg(5), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.mov(reg(3), reg(4));
    b.jump(sift_up);
    b.bind(up_done);
    b.alu_ri(AluOp::Add, reg(8), reg(8), 1);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), initial.len() as i64, seed_loop);
    // ---- event loop: pop min, maybe push a successor ----
    b.movi(reg(1), 0); // processed events
    let event_loop = b.bind_label();
    let loop_end = b.label();
    b.branch_ri(Cond::Le, reg(8), 0, loop_end);
    // pop: root -> r2, move last to root, sift down
    b.load(reg(2), MemRef::base(reg(10)));
    b.alu_ri(AluOp::Sub, reg(8), reg(8), 1);
    b.load(reg(3), MemRef::base(reg(10)).indexed(reg(8), 8));
    b.store(reg(3), MemRef::base(reg(10)));
    b.movi(reg(3), 0); // sift-down index
    let sift_down = b.bind_label();
    let down_done = b.label();
    // left child
    b.alu_ri(AluOp::Mul, reg(4), reg(3), 2);
    b.alu_ri(AluOp::Add, reg(4), reg(4), 1);
    b.branch_rr(Cond::Ge, reg(4), reg(8), down_done);
    // pick the smaller child
    b.load(reg(5), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.alu_ri(AluOp::Add, reg(6), reg(4), 1);
    let no_right = b.label();
    b.branch_rr(Cond::Ge, reg(6), reg(8), no_right);
    b.load(reg(7), MemRef::base(reg(10)).indexed(reg(6), 8));
    let keep_left = b.label();
    b.branch_rr(Cond::Geu, reg(7), reg(5), keep_left);
    b.mov(reg(4), reg(6));
    b.mov(reg(5), reg(7));
    b.bind(keep_left);
    b.bind(no_right);
    // compare child with node
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.branch_rr(Cond::Geu, reg(5), reg(6), down_done);
    b.store(reg(5), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.store(reg(6), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.mov(reg(3), reg(4));
    b.jump(sift_down);
    b.bind(down_done);
    // process the event: fold into checksum, advance xorshift
    b.alu_ri(AluOp::Mul, reg(9), reg(9), 31);
    b.alu_rr(AluOp::Xor, reg(9), reg(9), reg(2));
    b.alu_ri(AluOp::Shl, reg(4), reg(13), 13);
    b.alu_rr(AluOp::Xor, reg(13), reg(13), reg(4));
    b.alu_ri(AluOp::Shr, reg(4), reg(13), 7);
    b.alu_rr(AluOp::Xor, reg(13), reg(13), reg(4));
    // push a successor event (time+delta) while the queue has room and the
    // schedule horizon is not exhausted
    let no_push = b.label();
    b.branch_ri(Cond::Ge, reg(8), cap - 1, no_push);
    b.branch_ri(Cond::Ge, reg(1), 900, no_push);
    b.alu_ri(AluOp::And, reg(4), reg(13), 63);
    b.alu_rr(AluOp::Add, reg(2), reg(2), reg(4));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    // push r2 (sift up)
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(8), 8));
    b.mov(reg(3), reg(8));
    let sift_up2 = b.bind_label();
    let up_done2 = b.label();
    b.branch_ri(Cond::Le, reg(3), 0, up_done2);
    b.alu_ri(AluOp::Sub, reg(4), reg(3), 1);
    b.alu_ri(AluOp::Shr, reg(4), reg(4), 1);
    b.load(reg(5), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.load(reg(6), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.branch_rr(Cond::Geu, reg(6), reg(5), up_done2);
    b.store(reg(6), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.store(reg(5), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.mov(reg(3), reg(4));
    b.jump(sift_up2);
    b.bind(up_done2);
    b.alu_ri(AluOp::Add, reg(8), reg(8), 1);
    b.bind(no_push);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 1200, event_loop);
    b.bind(loop_end);
    b.out(reg(1));
    b.out(reg(9));
    b.halt();
    b.build().expect("omnetpp builds")
}

/// astar analog: iterative shortest-path relaxation over a grid with
/// obstacles.
pub fn astar() -> Program {
    let w = 20i64;
    let h = 16i64;
    let cells = w * h;
    let cost: Vec<u64> = input_bytes(0xA57A, cells as usize)
        .iter()
        .map(|b| {
            if b % 5 == 0 {
                10_000
            } else {
                1 + (b % 9) as u64
            }
        })
        .collect();
    let mut b = ProgramBuilder::new();
    let cost_addr = b.alloc_words(&cost);
    let dist_addr = b.alloc_words(&vec![1_000_000u64; cells as usize]);
    b.movi(reg(10), cost_addr as i64);
    b.movi(reg(11), dist_addr as i64);
    // dist[start] = 0
    b.movi(reg(1), 0);
    b.store(reg(1), MemRef::base(reg(11)));
    b.movi(reg(1), 0); // sweep
    let sweep_loop = b.bind_label();
    b.movi(reg(2), 0); // cell
    let cell_loop = b.bind_label();
    b.load(reg(3), MemRef::base(reg(11)).indexed(reg(2), 8)); // dist[cell]
                                                              // examine the 4 neighbours (skip those outside the grid)
    for (dx, dy) in [(-1i64, 0i64), (1, 0), (0, -1), (0, 1)] {
        let skip = b.label();
        // x = cell % w, y = cell / w
        b.alu_ri(AluOp::Rem, reg(4), reg(2), w);
        b.alu_ri(AluOp::Div, reg(5), reg(2), w);
        b.alu_ri(AluOp::Add, reg(4), reg(4), dx);
        b.alu_ri(AluOp::Add, reg(5), reg(5), dy);
        b.branch_ri(Cond::Lt, reg(4), 0, skip);
        b.branch_ri(Cond::Ge, reg(4), w, skip);
        b.branch_ri(Cond::Lt, reg(5), 0, skip);
        b.branch_ri(Cond::Ge, reg(5), h, skip);
        b.alu_ri(AluOp::Mul, reg(5), reg(5), w);
        b.alu_rr(AluOp::Add, reg(5), reg(5), reg(4)); // neighbour index
        b.load(reg(6), MemRef::base(reg(11)).indexed(reg(5), 8)); // dist[n]
        b.load(reg(7), MemRef::base(reg(10)).indexed(reg(2), 8)); // cost[cell]
        b.alu_rr(AluOp::Add, reg(6), reg(6), reg(7));
        b.branch_rr(Cond::Geu, reg(6), reg(3), skip);
        b.mov(reg(3), reg(6));
        b.bind(skip);
    }
    b.store(reg(3), MemRef::base(reg(11)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), cells, cell_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 12, sweep_loop);
    // emit the distance to the far corner and a checksum of the field
    b.load(reg(2), MemRef::base(reg(11)).disp((cells - 1) * 8));
    b.out(reg(2));
    emit_checksum_words(&mut b, reg(2), reg(11), cells, reg(3), reg(4));
    b.halt();
    b.build().expect("astar builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_cpu::{interpret, InterpExit};

    fn runs_clean(p: &Program) -> Vec<u64> {
        let r = interpret(p, 100_000_000);
        assert_eq!(r.exit, InterpExit::Halted, "kernel did not halt");
        assert!(!r.output.is_empty());
        r.output
    }

    #[test]
    fn all_spec_kernels_run_to_completion() {
        for p in [
            bzip2(),
            gcc(),
            mcf(),
            gobmk(),
            hmmer(),
            sjeng(),
            libquantum(),
            h264ref(),
            omnetpp(),
            astar(),
        ] {
            runs_clean(&p);
        }
    }

    #[test]
    fn bzip2_compresses() {
        let out = runs_clean(&bzip2());
        assert!(out[0] > 0 && out[0] < 2 * 3072);
    }

    #[test]
    fn h264_best_sad_is_finite() {
        let out = runs_clean(&h264ref());
        assert!(out[0] < 100_000);
    }

    #[test]
    fn astar_finds_a_path() {
        let out = runs_clean(&astar());
        assert!(
            out[0] < 1_000_000,
            "target must be reachable, got {}",
            out[0]
        );
    }

    #[test]
    fn spec_kernels_are_deterministic() {
        assert_eq!(runs_clean(&gcc()), runs_clean(&gcc()));
        assert_eq!(runs_clean(&omnetpp()), runs_clean(&omnetpp()));
    }
}
