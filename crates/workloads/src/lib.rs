//! # merlin-workloads
//!
//! Benchmark kernels driving the MeRLiN reproduction: ten MiBench analogs
//! (run to completion, used for the accuracy and speedup studies) and ten
//! SPEC CPU2006 analogs (longer, used for the speedup and truncated-run
//! studies), all expressed against the `merlin-isa` program builder and
//! executed on the `merlin-cpu` core.
//!
//! Kernels are deterministic: inputs are derived from fixed seeds, outputs
//! are emitted through the architected output stream, and both the
//! cycle-level core and the architectural interpreter produce identical
//! results.
//!
//! # Examples
//!
//! ```
//! use merlin_workloads::{mibench_workloads, workload_by_name};
//!
//! assert_eq!(mibench_workloads().len(), 10);
//! let qsort = workload_by_name("qsort").unwrap();
//! assert!(qsort.program.len() > 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod mibench;
pub mod spec;
pub mod util;

use merlin_isa::Program;

/// Which benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// MiBench analogs (run to completion in the paper's accuracy studies).
    MiBench,
    /// SPEC CPU2006 analogs (Simpoint-sample substitutes).
    Spec,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::MiBench => write!(f, "MiBench"),
            Suite::Spec => write!(f, "SPEC CPU2006"),
        }
    }
}

/// A named, ready-to-run benchmark program.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures (e.g. "susan_c",
    /// "bzip2").
    pub name: &'static str,
    /// Suite the benchmark belongs to.
    pub suite: Suite,
    /// What the kernel computes.
    pub description: &'static str,
    /// The executable program image.
    pub program: Program,
}

/// The ten MiBench-analog workloads, in the order the paper's figures list
/// them.
pub fn mibench_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "susan_c",
            suite: Suite::MiBench,
            description: "USAN-style corner detection on a greyscale image",
            program: mibench::susan_c(),
        },
        Workload {
            name: "susan_s",
            suite: Suite::MiBench,
            description: "3x3 box smoothing of a greyscale image",
            program: mibench::susan_s(),
        },
        Workload {
            name: "susan_e",
            suite: Suite::MiBench,
            description: "gradient-magnitude edge detection",
            program: mibench::susan_e(),
        },
        Workload {
            name: "stringsearch",
            suite: Suite::MiBench,
            description: "naive multi-pattern substring search",
            program: mibench::stringsearch(),
        },
        Workload {
            name: "djpeg",
            suite: Suite::MiBench,
            description: "dequantisation and inverse block transform",
            program: mibench::djpeg(),
        },
        Workload {
            name: "sha",
            suite: Suite::MiBench,
            description: "rotate/xor/add message-schedule hashing rounds",
            program: mibench::sha(),
        },
        Workload {
            name: "fft",
            suite: Suite::MiBench,
            description: "64-point fixed-point radix-2 FFT butterflies",
            program: mibench::fft(),
        },
        Workload {
            name: "qsort",
            suite: Suite::MiBench,
            description: "iterative quicksort with an explicit stack",
            program: mibench::qsort(),
        },
        Workload {
            name: "cjpeg",
            suite: Suite::MiBench,
            description: "forward block transform and quantisation",
            program: mibench::cjpeg(),
        },
        Workload {
            name: "caes",
            suite: Suite::MiBench,
            description: "substitution-permutation block cipher",
            program: mibench::caes(),
        },
    ]
}

/// The ten SPEC CPU2006-analog workloads, in the order of Figure 12.
pub fn spec_workloads() -> Vec<Workload> {
    vec![
        Workload {
            name: "bzip2",
            suite: Suite::Spec,
            description: "run-length encoding plus move-to-front transform",
            program: spec::bzip2(),
        },
        Workload {
            name: "gcc",
            suite: Suite::Spec,
            description: "branchy constant-folding expression evaluator",
            program: spec::gcc(),
        },
        Workload {
            name: "mcf",
            suite: Suite::Spec,
            description: "Bellman-Ford relaxation over an edge list",
            program: spec::mcf(),
        },
        Workload {
            name: "gobmk",
            suite: Suite::Spec,
            description: "influence sweeps over a 19x19 board",
            program: spec::gobmk(),
        },
        Workload {
            name: "hmmer",
            suite: Suite::Spec,
            description: "Viterbi-style profile dynamic programming",
            program: spec::hmmer(),
        },
        Workload {
            name: "sjeng",
            suite: Suite::Spec,
            description: "ray-scan evaluation of perturbed board positions",
            program: spec::sjeng(),
        },
        Workload {
            name: "libquantum",
            suite: Suite::Spec,
            description: "Hadamard-like butterflies over amplitude registers",
            program: spec::libquantum(),
        },
        Workload {
            name: "h264ref",
            suite: Suite::Spec,
            description: "sum-of-absolute-differences motion search",
            program: spec::h264ref(),
        },
        Workload {
            name: "omnetpp",
            suite: Suite::Spec,
            description: "discrete-event loop over a binary-heap queue",
            program: spec::omnetpp(),
        },
        Workload {
            name: "astar",
            suite: Suite::Spec,
            description: "iterative shortest-path relaxation on a grid",
            program: spec::astar(),
        },
    ]
}

/// All twenty workloads (MiBench then SPEC).
pub fn all_workloads() -> Vec<Workload> {
    let mut v = mibench_workloads();
    v.extend(spec_workloads());
    v
}

/// Looks up a workload by its paper name (e.g. `"qsort"`, `"bzip2"`).
pub fn workload_by_name(name: &str) -> Option<Workload> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_twenty_unique_workloads() {
        let all = all_workloads();
        assert_eq!(all.len(), 20);
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::MiBench).count(), 10);
        assert_eq!(all.iter().filter(|w| w.suite == Suite::Spec).count(), 10);
    }

    #[test]
    fn lookup_by_name() {
        assert!(workload_by_name("sha").is_some());
        assert!(workload_by_name("libquantum").is_some());
        assert!(workload_by_name("doom").is_none());
        assert_eq!(workload_by_name("fft").unwrap().suite, Suite::MiBench);
        assert_eq!(workload_by_name("astar").unwrap().suite, Suite::Spec);
    }

    #[test]
    fn every_workload_has_description_and_code() {
        for w in all_workloads() {
            assert!(!w.description.is_empty());
            assert!(w.program.len() > 5, "{} suspiciously small", w.name);
            assert!(!format!("{}", w.suite).is_empty());
        }
    }
}
