//! Shared code-generation helpers and deterministic input generation used by
//! every workload kernel.

use merlin_isa::{reg, AluOp, ArchReg, Cond, MemRef, ProgramBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random byte stream used to build kernel inputs.
///
/// Every kernel derives its input from a fixed per-kernel seed so golden
/// outputs are stable across runs and machines.
pub fn input_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

/// Deterministic pseudo-random 64-bit words.
pub fn input_words(seed: u64, len: usize, max: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(0..max)).collect()
}

/// Emits a loop that folds `count` 64-bit words starting at the address held
/// in `addr` into `dst` with a multiply-xor rolling checksum, then emits the
/// checksum to the output stream.
///
/// Clobbers `idx` and `tmp`; `dst` holds the checksum afterwards.
pub fn emit_checksum_words(
    b: &mut ProgramBuilder,
    dst: ArchReg,
    addr: ArchReg,
    count: i64,
    idx: ArchReg,
    tmp: ArchReg,
) {
    b.movi(dst, 0x9E37);
    b.movi(idx, 0);
    let top = b.bind_label();
    b.load(tmp, MemRef::base(addr).indexed(idx, 8));
    b.alu_ri(AluOp::Mul, dst, dst, 31);
    b.alu_rr(AluOp::Xor, dst, dst, tmp);
    b.alu_ri(AluOp::Add, idx, idx, 1);
    b.branch_ri(Cond::Lt, idx, count, top);
    b.out(dst);
}

/// The same rolling checksum computed natively, for reference models.
pub fn checksum_words(words: &[u64]) -> u64 {
    let mut acc = 0x9E37u64;
    for &w in words {
        acc = acc.wrapping_mul(31) ^ w;
    }
    acc
}

/// Emits a loop storing `count` zero words at the address held in `addr`
/// (a simple `memset`).  Clobbers `idx` and `zero`.
pub fn emit_zero_words(
    b: &mut ProgramBuilder,
    addr: ArchReg,
    count: i64,
    idx: ArchReg,
    zero: ArchReg,
) {
    b.movi(zero, 0);
    b.movi(idx, 0);
    let top = b.bind_label();
    b.store(zero, MemRef::base(addr).indexed(idx, 8));
    b.alu_ri(AluOp::Add, idx, idx, 1);
    b.branch_ri(Cond::Lt, idx, count, top);
}

/// Conventional scratch registers used by the kernels (documented so kernels
/// stay readable): `r1..r9` computation, `r10..r13` base pointers, `r15`
/// link.
pub fn base_reg(n: usize) -> ArchReg {
    reg(10 + n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_cpu::interpret;

    #[test]
    fn inputs_are_deterministic() {
        assert_eq!(input_bytes(7, 32), input_bytes(7, 32));
        assert_ne!(input_bytes(7, 32), input_bytes(8, 32));
        assert_eq!(input_words(3, 8, 100), input_words(3, 8, 100));
        assert!(input_words(3, 64, 100).iter().all(|&w| w < 100));
    }

    #[test]
    fn emitted_checksum_matches_reference() {
        let words = input_words(42, 20, u64::MAX);
        let mut b = ProgramBuilder::new();
        let addr = b.alloc_words(&words);
        b.movi(reg(10), addr as i64);
        emit_checksum_words(&mut b, reg(1), reg(10), words.len() as i64, reg(2), reg(3));
        b.halt();
        let r = interpret(&b.build().unwrap(), 1_000_000);
        assert_eq!(r.output, vec![checksum_words(&words)]);
    }

    #[test]
    fn zero_words_clears_buffer() {
        let mut b = ProgramBuilder::new();
        let addr = b.alloc_words(&[1, 2, 3, 4]);
        b.movi(reg(10), addr as i64);
        emit_zero_words(&mut b, reg(10), 4, reg(1), reg(2));
        emit_checksum_words(&mut b, reg(3), reg(10), 4, reg(1), reg(2));
        b.halt();
        let r = interpret(&b.build().unwrap(), 1_000_000);
        assert_eq!(r.output, vec![checksum_words(&[0, 0, 0, 0])]);
    }
}
