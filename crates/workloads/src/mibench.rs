//! MiBench-analog kernels.
//!
//! Each function builds a loop-dominated program of the same algorithmic
//! family as the corresponding MiBench benchmark used in the paper
//! (susan corners/smoothing/edges, stringsearch, djpeg, sha, fft, qsort,
//! cjpeg and an AES-like cipher).  Inputs are deterministic (seeded) and all
//! results are emitted through `Out`, so any silent data corruption is
//! visible in the architected output stream.

use crate::util::{emit_checksum_words, input_bytes, input_words};
use merlin_isa::{reg, AluOp, Cond, MemRef, MemSize, Program, ProgramBuilder};

const IMG_W: i64 = 20;
const IMG_H: i64 = 20;

fn image_input(seed: u64) -> Vec<u8> {
    input_bytes(seed, (IMG_W * IMG_H) as usize)
}

/// susan_s analog: 3×3 box smoothing of a small greyscale image.
pub fn susan_s() -> Program {
    let mut b = ProgramBuilder::new();
    let img = b.alloc_bytes(&image_input(0x5005));
    let out = b.reserve((IMG_W * IMG_H * 8) as u64);
    b.movi(reg(10), img as i64);
    b.movi(reg(11), out as i64);
    b.movi(reg(1), 1); // y
    let y_loop = b.bind_label();
    b.movi(reg(2), 1); // x
    let x_loop = b.bind_label();
    b.movi(reg(3), 0); // sum
    b.movi(reg(4), -1); // dy
    let dy_loop = b.bind_label();
    b.movi(reg(5), -1); // dx
    let dx_loop = b.bind_label();
    b.alu_rr(AluOp::Add, reg(6), reg(1), reg(4));
    b.alu_ri(AluOp::Mul, reg(6), reg(6), IMG_W);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(2));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(5));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(10));
    b.load_sized(reg(7), MemRef::base(reg(6)), MemSize::B1, false);
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(7));
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.branch_ri(Cond::Le, reg(5), 1, dx_loop);
    b.alu_ri(AluOp::Add, reg(4), reg(4), 1);
    b.branch_ri(Cond::Le, reg(4), 1, dy_loop);
    b.alu_ri(AluOp::Div, reg(3), reg(3), 9);
    b.alu_ri(AluOp::Mul, reg(6), reg(1), IMG_W);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(2));
    b.store(reg(3), MemRef::base(reg(11)).indexed(reg(6), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), IMG_W - 1, x_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), IMG_H - 1, y_loop);
    emit_checksum_words(&mut b, reg(8), reg(11), IMG_W * IMG_H, reg(1), reg(2));
    b.halt();
    b.build().expect("susan_s builds")
}

/// susan_e analog: gradient-magnitude edge detection with a threshold.
pub fn susan_e() -> Program {
    let mut b = ProgramBuilder::new();
    let img = b.alloc_bytes(&image_input(0x50E5));
    b.movi(reg(10), img as i64);
    b.movi(reg(8), 0); // edge count
    b.movi(reg(9), 0); // magnitude accumulator
    b.movi(reg(1), 1); // y
    let y_loop = b.bind_label();
    b.movi(reg(2), 1); // x
    let x_loop = b.bind_label();
    // base index = y*W + x
    b.alu_ri(AluOp::Mul, reg(3), reg(1), IMG_W);
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(2));
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(10));
    // gx = img[i+1] - img[i-1]
    b.load_sized(reg(4), MemRef::base(reg(3)).disp(1), MemSize::B1, false);
    b.load_sized(reg(5), MemRef::base(reg(3)).disp(-1), MemSize::B1, false);
    b.alu_rr(AluOp::Sub, reg(4), reg(4), reg(5));
    // gy = img[i+W] - img[i-W]
    b.load_sized(reg(5), MemRef::base(reg(3)).disp(IMG_W), MemSize::B1, false);
    b.load_sized(
        reg(6),
        MemRef::base(reg(3)).disp(-IMG_W),
        MemSize::B1,
        false,
    );
    b.alu_rr(AluOp::Sub, reg(5), reg(5), reg(6));
    // |gx| + |gy| via max(v, -v)
    b.movi(reg(6), 0);
    b.alu_rr(AluOp::Sub, reg(6), reg(6), reg(4));
    b.alu_rr(AluOp::Max, reg(4), reg(4), reg(6));
    b.movi(reg(6), 0);
    b.alu_rr(AluOp::Sub, reg(6), reg(6), reg(5));
    b.alu_rr(AluOp::Max, reg(5), reg(5), reg(6));
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(5));
    b.alu_rr(AluOp::Add, reg(9), reg(9), reg(4));
    // threshold
    let not_edge = b.label();
    b.branch_ri(Cond::Lt, reg(4), 60, not_edge);
    b.alu_ri(AluOp::Add, reg(8), reg(8), 1);
    b.bind(not_edge);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), IMG_W - 1, x_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), IMG_H - 1, y_loop);
    b.out(reg(8));
    b.out(reg(9));
    b.halt();
    b.build().expect("susan_e builds")
}

/// susan_c analog: USAN-style corner detection (count similar neighbours).
pub fn susan_c() -> Program {
    let mut b = ProgramBuilder::new();
    let img = b.alloc_bytes(&image_input(0x50C0));
    b.movi(reg(10), img as i64);
    b.movi(reg(8), 0); // corner count
    b.movi(reg(9), 0); // USAN checksum
    b.movi(reg(1), 1); // y
    let y_loop = b.bind_label();
    b.movi(reg(2), 1); // x
    let x_loop = b.bind_label();
    // centre brightness
    b.alu_ri(AluOp::Mul, reg(3), reg(1), IMG_W);
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(2));
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(10));
    b.load_sized(reg(4), MemRef::base(reg(3)), MemSize::B1, false);
    b.movi(reg(5), 0); // usan counter
    b.movi(reg(6), -1); // dy
    let dy_loop = b.bind_label();
    b.movi(reg(7), -1); // dx
    let dx_loop = b.bind_label();
    // neighbour value
    b.alu_ri(AluOp::Mul, reg(13), reg(6), IMG_W);
    b.alu_rr(AluOp::Add, reg(13), reg(13), reg(7));
    b.alu_rr(AluOp::Add, reg(13), reg(13), reg(3));
    b.load_sized(reg(12), MemRef::base(reg(13)), MemSize::B1, false);
    // |neigh - centre| <= 12 ?
    b.alu_rr(AluOp::Sub, reg(12), reg(12), reg(4));
    b.movi(reg(13), 0);
    b.alu_rr(AluOp::Sub, reg(13), reg(13), reg(12));
    b.alu_rr(AluOp::Max, reg(12), reg(12), reg(13));
    let not_similar = b.label();
    b.branch_ri(Cond::Gt, reg(12), 12, not_similar);
    b.alu_ri(AluOp::Add, reg(5), reg(5), 1);
    b.bind(not_similar);
    b.alu_ri(AluOp::Add, reg(7), reg(7), 1);
    b.branch_ri(Cond::Le, reg(7), 1, dx_loop);
    b.alu_ri(AluOp::Add, reg(6), reg(6), 1);
    b.branch_ri(Cond::Le, reg(6), 1, dy_loop);
    // corner if few similar neighbours
    let not_corner = b.label();
    b.branch_ri(Cond::Gt, reg(5), 3, not_corner);
    b.alu_ri(AluOp::Add, reg(8), reg(8), 1);
    b.bind(not_corner);
    b.alu_ri(AluOp::Mul, reg(9), reg(9), 31);
    b.alu_rr(AluOp::Xor, reg(9), reg(9), reg(5));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), IMG_W - 1, x_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), IMG_H - 1, y_loop);
    b.out(reg(8));
    b.out(reg(9));
    b.halt();
    b.build().expect("susan_c builds")
}

/// stringsearch analog: naive multi-pattern substring search.
pub fn stringsearch() -> Program {
    // Text over a 4-letter alphabet so patterns actually occur.
    let text: Vec<u8> = input_bytes(0x5732, 1536)
        .iter()
        .map(|b| b % 4 + 97)
        .collect();
    let patterns: Vec<Vec<u8>> = (0..6u64)
        .map(|i| {
            input_bytes(0x7A7 + i, 3 + (i as usize % 3))
                .iter()
                .map(|b| b % 4 + 97)
                .collect()
        })
        .collect();
    let mut b = ProgramBuilder::new();
    let text_addr = b.alloc_bytes(&text);
    // Pattern table: [len, byte0, byte1, ...] padded to 16 bytes each.
    let mut pat_table = Vec::new();
    for p in &patterns {
        let mut row = vec![p.len() as u8];
        row.extend_from_slice(p);
        row.resize(16, 0);
        pat_table.extend_from_slice(&row);
    }
    let pat_addr = b.alloc_bytes(&pat_table);
    b.movi(reg(10), text_addr as i64);
    b.movi(reg(11), pat_addr as i64);
    b.movi(reg(8), 0); // match count
    b.movi(reg(9), 0); // position accumulator
    b.movi(reg(1), 0); // pattern index
    let pat_loop = b.bind_label();
    // r12 = &pattern row, r2 = pattern length
    b.alu_ri(AluOp::Mul, reg(12), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(12), reg(12), reg(11));
    b.load_sized(reg(2), MemRef::base(reg(12)), MemSize::B1, false);
    b.movi(reg(3), 0); // text position
    let pos_loop = b.bind_label();
    b.movi(reg(4), 0); // offset within pattern
    let cmp_loop = b.bind_label();
    // text byte at r3+r4
    b.alu_rr(AluOp::Add, reg(5), reg(3), reg(4));
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(10));
    b.load_sized(reg(6), MemRef::base(reg(5)), MemSize::B1, false);
    // pattern byte at r12 + 1 + r4
    b.alu_rr(AluOp::Add, reg(5), reg(12), reg(4));
    b.load_sized(reg(7), MemRef::base(reg(5)).disp(1), MemSize::B1, false);
    let mismatch = b.label();
    b.branch_rr(Cond::Ne, reg(6), reg(7), mismatch);
    b.alu_ri(AluOp::Add, reg(4), reg(4), 1);
    b.branch_rr(Cond::Lt, reg(4), reg(2), cmp_loop);
    // full match
    b.alu_ri(AluOp::Add, reg(8), reg(8), 1);
    b.alu_rr(AluOp::Add, reg(9), reg(9), reg(3));
    b.bind(mismatch);
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), (text.len() - 16) as i64, pos_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), patterns.len() as i64, pat_loop);
    b.out(reg(8));
    b.out(reg(9));
    b.halt();
    b.build().expect("stringsearch builds")
}

/// sha analog: rounds of rotate/xor/add message-schedule hashing.
pub fn sha() -> Program {
    let blocks = 6i64;
    let msg = input_words(0x54A, (blocks * 16) as usize, u64::MAX);
    let mut b = ProgramBuilder::new();
    let msg_addr = b.alloc_words(&msg);
    let w_addr = b.reserve(16 * 8);
    b.movi(reg(10), msg_addr as i64);
    b.movi(reg(11), w_addr as i64);
    // h0..h4 in r5..r9 — wait r9 is needed; use r5..r8 (4 hash words).
    b.movi(reg(5), 0x6745_2301);
    b.movi(reg(6), 0x7FCD_AB89);
    b.movi(reg(7), 0x1BAD_CFE5);
    b.movi(reg(8), 0x1032_5476);
    b.movi(reg(1), 0); // block index
    let blk_loop = b.bind_label();
    // copy 16 message words into the schedule buffer
    b.movi(reg(2), 0);
    let copy_loop = b.bind_label();
    b.alu_ri(AluOp::Mul, reg(3), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(2));
    b.load(reg(4), MemRef::base(reg(10)).indexed(reg(3), 8));
    b.store(reg(4), MemRef::base(reg(11)).indexed(reg(2), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 16, copy_loop);
    // 48 rounds
    b.movi(reg(2), 0); // t
    let round_loop = b.bind_label();
    b.alu_ri(AluOp::And, reg(3), reg(2), 15);
    b.load(reg(4), MemRef::base(reg(11)).indexed(reg(3), 8)); // w[t%16]
                                                              // mix = rotl(h0,5) + (h1 ^ h2 ^ h3) + w + 0x5A827999 + t
    b.alu_ri(AluOp::Shl, reg(12), reg(5), 5);
    b.alu_ri(AluOp::Shr, reg(13), reg(5), 59);
    b.alu_rr(AluOp::Or, reg(12), reg(12), reg(13));
    b.alu_rr(AluOp::Xor, reg(13), reg(6), reg(7));
    b.alu_rr(AluOp::Xor, reg(13), reg(13), reg(8));
    b.alu_rr(AluOp::Add, reg(12), reg(12), reg(13));
    b.alu_rr(AluOp::Add, reg(12), reg(12), reg(4));
    b.alu_ri(AluOp::Add, reg(12), reg(12), 0x5A82_7999);
    b.alu_rr(AluOp::Add, reg(12), reg(12), reg(2));
    // rotate the working variables
    b.mov(reg(8), reg(7));
    b.mov(reg(7), reg(6));
    b.mov(reg(6), reg(5));
    b.mov(reg(5), reg(12));
    // schedule update: w[t%16] = rotl(w[t%16] ^ mix, 1)
    b.alu_rr(AluOp::Xor, reg(4), reg(4), reg(12));
    b.alu_ri(AluOp::Shl, reg(13), reg(4), 1);
    b.alu_ri(AluOp::Shr, reg(4), reg(4), 63);
    b.alu_rr(AluOp::Or, reg(4), reg(4), reg(13));
    b.store(reg(4), MemRef::base(reg(11)).indexed(reg(3), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 48, round_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), blocks, blk_loop);
    b.out(reg(5));
    b.out(reg(6));
    b.out(reg(7));
    b.out(reg(8));
    b.halt();
    b.build().expect("sha builds")
}

/// fft analog: iterative radix-2 fixed-point FFT over 64 points.
pub fn fft() -> Program {
    let n: i64 = 64;
    let real_in = input_words(0xFF7, n as usize, 2048);
    let imag_in = vec![0u64; n as usize];
    // Fixed-point twiddle factors scaled by 1024 for each stage (precomputed
    // on the host, laid out stage-major: stage s has n/2 entries).
    let mut tw_cos = Vec::new();
    let mut tw_sin = Vec::new();
    let stages = 6;
    for s in 0..stages {
        let m = 2i64 << s;
        for j in 0..n / 2 {
            let angle = -2.0 * std::f64::consts::PI * (j % (m / 2)) as f64 / m as f64;
            tw_cos.push(((angle.cos() * 1024.0) as i64) as u64);
            tw_sin.push(((angle.sin() * 1024.0) as i64) as u64);
        }
    }
    let mut b = ProgramBuilder::new();
    let re = b.alloc_words(&real_in);
    let im = b.alloc_words(&imag_in);
    let cos_t = b.alloc_words(&tw_cos);
    let sin_t = b.alloc_words(&tw_sin);
    b.movi(reg(10), re as i64);
    b.movi(reg(11), im as i64);
    b.movi(reg(12), cos_t as i64);
    b.movi(reg(13), sin_t as i64);
    // Stages of butterflies: for s, m = 2<<s, half = m/2.
    b.movi(reg(1), 0); // stage
    let stage_loop = b.bind_label();
    b.movi(reg(2), 0); // butterfly index k over n/2 butterflies
    let bf_loop = b.bind_label();
    // group = k / half, j = k % half, top = group*m + j, bot = top + half
    b.movi(reg(3), 2);
    b.alu_rr(AluOp::Shl, reg(3), reg(3), reg(1)); // m
    b.alu_ri(AluOp::Shr, reg(4), reg(3), 1); // half
    b.alu_rr(AluOp::Div, reg(5), reg(2), reg(4)); // group
    b.alu_rr(AluOp::Rem, reg(6), reg(2), reg(4)); // j
    b.alu_rr(AluOp::Mul, reg(5), reg(5), reg(3));
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(6)); // top index
    b.alu_rr(AluOp::Add, reg(4), reg(5), reg(4)); // bottom index
                                                  // twiddle index = stage*(n/2) + k
    b.alu_ri(AluOp::Mul, reg(6), reg(1), n / 2);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(2));
    b.load(reg(7), MemRef::base(reg(12)).indexed(reg(6), 8)); // c
    b.load(reg(8), MemRef::base(reg(13)).indexed(reg(6), 8)); // s
                                                              // load bottom (re, im)
    b.load(reg(9), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.load(reg(6), MemRef::base(reg(11)).indexed(reg(4), 8));
    // t_re = (c*br - s*bi) >> 10 ; t_im = (c*bi + s*br) >> 10
    b.alu_rr(AluOp::Mul, reg(3), reg(7), reg(9));
    b.alu_rr(AluOp::Mul, reg(7), reg(7), reg(6));
    b.alu_rr(AluOp::Mul, reg(6), reg(8), reg(6));
    b.alu_rr(AluOp::Mul, reg(8), reg(8), reg(9));
    b.alu_rr(AluOp::Sub, reg(3), reg(3), reg(6)); // t_re << 10
    b.alu_rr(AluOp::Add, reg(7), reg(7), reg(8)); // t_im << 10
    b.alu_ri(AluOp::Sar, reg(3), reg(3), 10);
    b.alu_ri(AluOp::Sar, reg(7), reg(7), 10);
    // load top (re, im)
    b.load(reg(9), MemRef::base(reg(10)).indexed(reg(5), 8));
    b.load(reg(8), MemRef::base(reg(11)).indexed(reg(5), 8));
    // bottom = top - t ; top = top + t
    b.alu_rr(AluOp::Sub, reg(6), reg(9), reg(3));
    b.store(reg(6), MemRef::base(reg(10)).indexed(reg(4), 8));
    b.alu_rr(AluOp::Sub, reg(6), reg(8), reg(7));
    b.store(reg(6), MemRef::base(reg(11)).indexed(reg(4), 8));
    b.alu_rr(AluOp::Add, reg(9), reg(9), reg(3));
    b.store(reg(9), MemRef::base(reg(10)).indexed(reg(5), 8));
    b.alu_rr(AluOp::Add, reg(8), reg(8), reg(7));
    b.store(reg(8), MemRef::base(reg(11)).indexed(reg(5), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), n / 2, bf_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), stages, stage_loop);
    emit_checksum_words(&mut b, reg(2), reg(10), n, reg(3), reg(4));
    emit_checksum_words(&mut b, reg(2), reg(11), n, reg(3), reg(4));
    b.halt();
    b.build().expect("fft builds")
}

/// qsort analog: iterative quicksort with an explicit stack.
pub fn qsort() -> Program {
    let n: i64 = 160;
    let data = input_words(0x9507, n as usize, 1_000_000);
    let mut b = ProgramBuilder::new();
    let arr = b.alloc_words(&data);
    let stack = b.reserve(2 * 64 * 8);
    b.movi(reg(10), arr as i64);
    b.movi(reg(11), stack as i64);
    // push (0, n-1)
    b.movi(reg(1), 0); // stack size (in pairs)
    b.movi(reg(2), 0);
    b.store(reg(2), MemRef::base(reg(11)));
    b.movi(reg(2), n - 1);
    b.store(reg(2), MemRef::base(reg(11)).disp(8));
    b.movi(reg(1), 1);
    let main_loop = b.bind_label();
    let done = b.label();
    b.branch_ri(Cond::Le, reg(1), 0, done);
    // pop (lo, hi)
    b.alu_ri(AluOp::Sub, reg(1), reg(1), 1);
    b.alu_ri(AluOp::Mul, reg(2), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(2), reg(2), reg(11));
    b.load(reg(3), MemRef::base(reg(2))); // lo
    b.load(reg(4), MemRef::base(reg(2)).disp(8)); // hi
    let skip_part = b.label();
    b.branch_rr(Cond::Ge, reg(3), reg(4), skip_part);
    // Lomuto partition with pivot = arr[hi]
    b.load(reg(5), MemRef::base(reg(10)).indexed(reg(4), 8)); // pivot
    b.mov(reg(6), reg(3)); // i = lo (store index)
    b.mov(reg(7), reg(3)); // j = lo (scan index)
    let part_loop = b.bind_label();
    let no_swap = b.label();
    b.load(reg(8), MemRef::base(reg(10)).indexed(reg(7), 8));
    b.branch_rr(Cond::Gt, reg(8), reg(5), no_swap);
    // swap arr[i], arr[j]
    b.load(reg(9), MemRef::base(reg(10)).indexed(reg(6), 8));
    b.store(reg(8), MemRef::base(reg(10)).indexed(reg(6), 8));
    b.store(reg(9), MemRef::base(reg(10)).indexed(reg(7), 8));
    b.alu_ri(AluOp::Add, reg(6), reg(6), 1);
    b.bind(no_swap);
    b.alu_ri(AluOp::Add, reg(7), reg(7), 1);
    b.branch_rr(Cond::Lt, reg(7), reg(4), part_loop);
    // move pivot into place: swap arr[i], arr[hi]
    b.load(reg(9), MemRef::base(reg(10)).indexed(reg(6), 8));
    b.store(reg(5), MemRef::base(reg(10)).indexed(reg(6), 8));
    b.store(reg(9), MemRef::base(reg(10)).indexed(reg(4), 8));
    // push (lo, i-1) and (i+1, hi)
    b.alu_ri(AluOp::Mul, reg(2), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(2), reg(2), reg(11));
    b.store(reg(3), MemRef::base(reg(2)));
    b.alu_ri(AluOp::Sub, reg(9), reg(6), 1);
    b.store(reg(9), MemRef::base(reg(2)).disp(8));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.alu_ri(AluOp::Mul, reg(2), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(2), reg(2), reg(11));
    b.alu_ri(AluOp::Add, reg(9), reg(6), 1);
    b.store(reg(9), MemRef::base(reg(2)));
    b.store(reg(4), MemRef::base(reg(2)).disp(8));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.bind(skip_part);
    b.jump(main_loop);
    b.bind(done);
    // Emit order-verifying probes and a checksum.
    b.load(reg(2), MemRef::base(reg(10)));
    b.out(reg(2));
    b.load(reg(2), MemRef::base(reg(10)).disp((n / 2) * 8));
    b.out(reg(2));
    b.load(reg(2), MemRef::base(reg(10)).disp((n - 1) * 8));
    b.out(reg(2));
    emit_checksum_words(&mut b, reg(5), reg(10), n, reg(6), reg(7));
    b.halt();
    b.build().expect("qsort builds")
}

/// Reference model for [`qsort`]: the sorted input's probes and checksum.
pub fn qsort_reference_output() -> Vec<u64> {
    let n = 160usize;
    let mut data = input_words(0x9507, n, 1_000_000);
    data.sort_unstable();
    vec![
        data[0],
        data[n / 2],
        data[n - 1],
        crate::util::checksum_words(&data),
    ]
}

/// Shared 8×8 integer transform used by the cjpeg/djpeg analogs.
fn dct_like(forward: bool, seed: u64, blocks: i64) -> Program {
    // Integer "cosine" basis scaled by 64 (values derived from a fixed
    // pattern rather than floating point so the reference is exact).
    let mut basis = Vec::new();
    for i in 0..8i64 {
        for j in 0..8i64 {
            let v = ((i * 3 + 5) * (j * 7 + 1)) % 127 - 63;
            basis.push(v as u64);
        }
    }
    let quant: Vec<u64> = (0..64u64).map(|i| 1 + (i % 16)).collect();
    let input = input_words(seed, (blocks * 64) as usize, 256);
    let mut b = ProgramBuilder::new();
    let basis_addr = b.alloc_words(&basis);
    let quant_addr = b.alloc_words(&quant);
    let in_addr = b.alloc_words(&input);
    let out_addr = b.reserve((blocks * 64 * 8) as u64);
    b.movi(reg(10), in_addr as i64);
    b.movi(reg(11), out_addr as i64);
    b.movi(reg(12), basis_addr as i64);
    b.movi(reg(13), quant_addr as i64);
    b.movi(reg(1), 0); // block
    let blk_loop = b.bind_label();
    b.movi(reg(2), 0); // output row*8+col index within block
    let out_loop = b.bind_label();
    // acc = sum over k of basis[row][k] * in[block][k*8+col] (column pass
    // only — one pass keeps the kernel compact while exercising the same
    // access pattern).
    b.movi(reg(3), 0); // acc
    b.movi(reg(4), 0); // k
    let k_loop = b.bind_label();
    // basis index = (out_index/8)*8 + k
    b.alu_ri(AluOp::Shr, reg(5), reg(2), 3);
    b.alu_ri(AluOp::Mul, reg(5), reg(5), 8);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(4));
    b.load(reg(6), MemRef::base(reg(12)).indexed(reg(5), 8));
    // input index = block*64 + k*8 + (out_index & 7)
    b.alu_ri(AluOp::Mul, reg(5), reg(1), 64);
    b.alu_ri(AluOp::Mul, reg(7), reg(4), 8);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(7));
    b.alu_ri(AluOp::And, reg(7), reg(2), 7);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(7));
    b.load(reg(7), MemRef::base(reg(10)).indexed(reg(5), 8));
    b.alu_rr(AluOp::Mul, reg(6), reg(6), reg(7));
    b.alu_rr(AluOp::Add, reg(3), reg(3), reg(6));
    b.alu_ri(AluOp::Add, reg(4), reg(4), 1);
    b.branch_ri(Cond::Lt, reg(4), 8, k_loop);
    b.alu_ri(AluOp::Sar, reg(3), reg(3), 6);
    if forward {
        // quantisation divide
        b.load(reg(6), MemRef::base(reg(13)).indexed(reg(2), 8));
        // make the accumulator non-negative before the unsigned divide
        b.movi(reg(7), 0);
        b.alu_rr(AluOp::Sub, reg(7), reg(7), reg(3));
        b.alu_rr(AluOp::Max, reg(3), reg(3), reg(7));
        b.alu_rr(AluOp::Div, reg(3), reg(3), reg(6));
    } else {
        // dequantisation multiply
        b.load(reg(6), MemRef::base(reg(13)).indexed(reg(2), 8));
        b.alu_rr(AluOp::Mul, reg(3), reg(3), reg(6));
    }
    // out[block*64 + out_index] = acc
    b.alu_ri(AluOp::Mul, reg(5), reg(1), 64);
    b.alu_rr(AluOp::Add, reg(5), reg(5), reg(2));
    b.store(reg(3), MemRef::base(reg(11)).indexed(reg(5), 8));
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 64, out_loop);
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), blocks, blk_loop);
    emit_checksum_words(&mut b, reg(2), reg(11), blocks * 64, reg(3), reg(4));
    b.halt();
    b.build().expect("dct kernel builds")
}

/// cjpeg analog: forward block transform plus quantisation.
pub fn cjpeg() -> Program {
    dct_like(true, 0xC79E6, 6)
}

/// djpeg analog: dequantisation plus inverse block transform.
pub fn djpeg() -> Program {
    dct_like(false, 0xD79E6, 6)
}

/// caes analog: substitution–permutation block cipher with table lookups.
pub fn caes() -> Program {
    let sbox: Vec<u8> = {
        // A fixed bijective byte substitution.
        let mut s: Vec<u8> = (0..=255u8).collect();
        for i in 0..256usize {
            let j = (i * 73 + 11) % 256;
            s.swap(i, j);
        }
        s
    };
    let key: Vec<u8> = input_bytes(0xAE5, 16 * 11);
    let blocks = 10i64;
    let plain: Vec<u8> = input_bytes(0xAE50, (blocks * 16) as usize);
    let mut b = ProgramBuilder::new();
    let sbox_addr = b.alloc_bytes(&sbox);
    let key_addr = b.alloc_bytes(&key);
    let data_addr = b.alloc_bytes(&plain);
    b.movi(reg(10), sbox_addr as i64);
    b.movi(reg(11), key_addr as i64);
    b.movi(reg(12), data_addr as i64);
    b.movi(reg(9), 0); // ciphertext checksum
    b.movi(reg(1), 0); // block
    let blk_loop = b.bind_label();
    b.movi(reg(2), 0); // round
    let round_loop = b.bind_label();
    b.movi(reg(3), 0); // byte index
    let byte_loop = b.bind_label();
    // addr of state byte = data + block*16 + idx
    b.alu_ri(AluOp::Mul, reg(4), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(3));
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(12));
    b.load_sized(reg(5), MemRef::base(reg(4)), MemSize::B1, false);
    // substitute
    b.alu_rr(AluOp::Add, reg(6), reg(5), reg(10));
    b.load_sized(reg(5), MemRef::base(reg(6)), MemSize::B1, false);
    // xor round key byte: key[round*16 + (idx+round) % 16]
    b.alu_ri(AluOp::Add, reg(6), reg(3), 0);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(2));
    b.alu_ri(AluOp::And, reg(6), reg(6), 15);
    b.alu_ri(AluOp::Mul, reg(7), reg(2), 16);
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(7));
    b.alu_rr(AluOp::Add, reg(6), reg(6), reg(11));
    b.load_sized(reg(7), MemRef::base(reg(6)), MemSize::B1, false);
    b.alu_rr(AluOp::Xor, reg(5), reg(5), reg(7));
    // rotate within the byte (shift-row flavoured diffusion)
    b.alu_ri(AluOp::Mul, reg(7), reg(5), 5);
    b.alu_ri(AluOp::Add, reg(5), reg(7), 1);
    b.alu_ri(AluOp::And, reg(5), reg(5), 0xFF);
    b.store_sized(reg(5), MemRef::base(reg(4)), MemSize::B1);
    b.alu_ri(AluOp::Add, reg(3), reg(3), 1);
    b.branch_ri(Cond::Lt, reg(3), 16, byte_loop);
    b.alu_ri(AluOp::Add, reg(2), reg(2), 1);
    b.branch_ri(Cond::Lt, reg(2), 10, round_loop);
    // accumulate ciphertext block into the checksum (two 8-byte words)
    b.alu_ri(AluOp::Mul, reg(4), reg(1), 16);
    b.alu_rr(AluOp::Add, reg(4), reg(4), reg(12));
    b.load(reg(5), MemRef::base(reg(4)));
    b.alu_ri(AluOp::Mul, reg(9), reg(9), 31);
    b.alu_rr(AluOp::Xor, reg(9), reg(9), reg(5));
    b.load(reg(5), MemRef::base(reg(4)).disp(8));
    b.alu_ri(AluOp::Mul, reg(9), reg(9), 31);
    b.alu_rr(AluOp::Xor, reg(9), reg(9), reg(5));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), blocks, blk_loop);
    b.out(reg(9));
    b.halt();
    b.build().expect("caes builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_cpu::{interpret, InterpExit};

    fn runs_clean(p: &Program) -> Vec<u64> {
        let r = interpret(p, 50_000_000);
        assert_eq!(r.exit, InterpExit::Halted, "kernel did not halt");
        assert!(!r.output.is_empty(), "kernel produced no output");
        r.output
    }

    #[test]
    fn all_mibench_kernels_run_to_completion() {
        for p in [
            susan_c(),
            susan_s(),
            susan_e(),
            stringsearch(),
            djpeg(),
            sha(),
            fft(),
            qsort(),
            cjpeg(),
            caes(),
        ] {
            runs_clean(&p);
        }
    }

    #[test]
    fn qsort_matches_reference_model() {
        let out = runs_clean(&qsort());
        assert_eq!(out, qsort_reference_output());
    }

    #[test]
    fn stringsearch_finds_matches() {
        let out = runs_clean(&stringsearch());
        assert!(out[0] > 0, "expected at least one pattern match");
    }

    #[test]
    fn susan_e_detects_edges() {
        let out = runs_clean(&susan_e());
        assert!(out[0] > 0 && out[0] < (IMG_W * IMG_H) as u64);
    }

    #[test]
    fn kernels_are_deterministic() {
        assert_eq!(runs_clean(&sha()), runs_clean(&sha()));
        assert_eq!(runs_clean(&fft()), runs_clean(&fft()));
        assert_eq!(runs_clean(&caes()), runs_clean(&caes()));
    }

    #[test]
    fn cjpeg_and_djpeg_differ() {
        assert_ne!(runs_clean(&cjpeg()), runs_clean(&djpeg()));
    }
}
