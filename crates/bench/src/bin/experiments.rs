//! Regenerates every table and figure of the MeRLiN paper's evaluation.
//!
//! Usage: `experiments <id>` where `<id>` is one of
//! `table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//! fig14 fig15 fig16 fig17 theory avf_rf lint all`.
//!
//! Scale knobs (environment): `MERLIN_BASELINE_FAULTS` (default 2000),
//! `MERLIN_THREADS`, `MERLIN_SEED`, `MERLIN_BENCHMARKS` (comma separated).
//! Reduction-only experiments (fig8–fig10, fig12, fig13) always use the
//! paper's 60,000 / 600,000-fault statistical lists because they require no
//! injection.

use merlin_ace::SessionAce;
use merlin_analyze::ProgramAnalysis;
use merlin_bench::{row, run_cell, session_for, spec_config, structure_sweep, ExperimentScale};
use merlin_core::{
    classify_truncated, fit_rate, group_stats_from_counts, homogeneity, initial_fault_list,
    merlin_exhaustive_row, reduce_fault_list, relyzer_exhaustive_row, relyzer_reduce,
    structure_bits, AvfMoments, SessionMethodology, WallClock,
};
use merlin_cpu::{Cpu, CpuConfig, NullProbe, Structure};
use merlin_inject::{Classification, FaultEffect, SamplingPlan, TruncatedEffect};
use merlin_workloads::{mibench_workloads, spec_workloads, workload_by_name};
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let arg = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "help".to_string());
    let scale = ExperimentScale::from_env();
    println!(
        "# MeRLiN reproduction — experiment `{arg}` (baseline faults {}, threads {}, seed {})\n",
        scale.baseline_faults, scale.threads, scale.seed
    );
    match arg.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(&scale),
        "table4" => table4(&scale),
        "fig6" | "fig7" => fig6_fig7(&scale),
        "fig8" => speedup_mibench(Structure::RegisterFile, "Figure 8", &scale),
        "fig9" => speedup_mibench(Structure::StoreQueue, "Figure 9", &scale),
        "fig10" => speedup_mibench(Structure::L1DCache, "Figure 10", &scale),
        "fig11" => fig11(&scale),
        "fig12" => fig12(&scale),
        "fig13" => fig13(&scale),
        "fig14" | "fig15" | "fig16" => accuracy_figures(&scale),
        "fig17" => fig17(&scale),
        "theory" => theory(&scale),
        "avf_rf" => avf_rf(&scale),
        "lint" => lint_workloads(),
        "all" => {
            table1();
            table2();
            table3(&scale);
            speedup_mibench(Structure::RegisterFile, "Figure 8", &scale);
            speedup_mibench(Structure::StoreQueue, "Figure 9", &scale);
            speedup_mibench(Structure::L1DCache, "Figure 10", &scale);
            fig11(&scale);
            fig12(&scale);
            fig13(&scale);
            fig6_fig7(&scale);
            accuracy_figures(&scale);
            fig17(&scale);
            table4(&scale);
            theory(&scale);
            avf_rf(&scale);
            lint_workloads();
        }
        _ => {
            println!(
                "available experiments: table1 table2 table3 table4 fig6 fig7 fig8 fig9 fig10 \
                 fig11 fig12 fig13 fig14 fig15 fig16 fig17 theory avf_rf lint all"
            );
        }
    }
}

/// Static analysis over every built-in workload: the session-boundary lint
/// (which must report zero findings) plus the liveness census the static
/// fault prune is built on.  Exits non-zero on any finding, so CI can run
/// it as a gate.
fn lint_workloads() {
    println!("## Static analysis — lint and liveness census over every built-in workload\n");
    let mut findings = 0usize;
    for w in merlin_workloads::all_workloads() {
        let decoded = merlin_isa::DecodedProgram::new(&w.program);
        let analysis = ProgramAnalysis::of(&w.program, &decoded);
        findings += analysis.lint().len();
        println!(
            "{:<14} {:>3} instructions | {:>2} statically dead regs | {:>2} dead writes | \
             {:>2} reads before init | lint: {}",
            w.name,
            w.program.instructions.len(),
            analysis.statically_dead_regs().count(),
            analysis.dead_writes().len(),
            analysis.reads_before_init().len(),
            analysis.lint(),
        );
    }
    if findings == 0 {
        println!("\nevery built-in workload lints clean");
    } else {
        println!("\n{findings} lint finding(s)");
        std::process::exit(1);
    }
}

/// Table 1: the modelled baseline configuration.
fn table1() {
    println!("## Table 1 — baseline microprocessor configuration\n");
    let c = CpuConfig::default();
    println!("Pipeline                 out-of-order");
    println!("Physical register file   256/128/64 int (sweep)");
    println!("Issue queue entries      {}", c.iq_entries);
    println!("Load/Store queue         64/32/16 load & store entries (sweep)");
    println!("ROB entries              {}", c.rob_entries);
    println!(
        "Functional units         {} int ALUs; {} complex int; {} mem ports; {} branch",
        c.int_alus, c.complex_alus, c.mem_ports, c.branch_units
    );
    println!(
        "L1 instruction cache     {}KB, {}B line, {}-way",
        c.l1i.size_bytes / 1024,
        c.l1i.line_bytes,
        c.l1i.ways
    );
    println!(
        "L1 data cache            16/32/64KB (sweep), {}B line, {}-way, write back",
        c.l1d.line_bytes, c.l1d.ways
    );
    println!(
        "L2 cache                 {}MB, {}B line, {} sets, {}-way, write back",
        c.l2.size_bytes / 1024 / 1024,
        c.l2.line_bytes,
        c.l2.sets(),
        c.l2.ways
    );
    println!(
        "Branch predictor         bimodal + gshare (tournament-style), {} entries",
        c.predictor_entries
    );
    println!(
        "Branch target buffer     direct mapped, {} entries\n",
        c.btb_entries
    );
}

/// Table 2: fault-effect classes.
fn table2() {
    println!("## Table 2 — fault effect classification\n");
    for e in FaultEffect::all() {
        let desc = match e {
            FaultEffect::Masked => "output and exceptions identical to the golden run",
            FaultEffect::Sdc => "output corrupted without abnormal behaviour",
            FaultEffect::Due => "output intact but extra architectural exceptions",
            FaultEffect::Timeout => "execution exceeds 3x the golden cycle count",
            FaultEffect::Crash => "simulated program/system crash",
            FaultEffect::Assert => "simulator stops on an internal assertion",
        };
        println!("{:<8} {desc}", e.label());
    }
    println!();
}

/// Table 3: MeRLiN vs Relyzer against the exhaustive fault list.
fn table3(scale: &ExperimentScale) {
    println!("## Table 3 — MeRLiN vs Relyzer on the exhaustive fault list\n");
    // Measure MeRLiN's reduction factor on a real workload/config, then apply
    // it to the paper's 1-billion-cycle scenario.
    let cfg = CpuConfig::default()
        .with_phys_regs(64)
        .with_store_queue(16)
        .with_l1d_kb(32);
    let w = workload_by_name("qsort").expect("qsort exists");
    let session = session_for(&w, &cfg, scale);
    let ace = session.ace_profile().expect("ace");
    let golden_cycles = session.golden().expect("golden").result.cycles;
    // Reduction factor measured from the exhaustive list of this run:
    // exhaustive = bits * cycles; injections = representative count scaled up
    // proportionally from the statistical list.
    let mut exhaustive = 0f64;
    let mut injections = 0f64;
    for &s in Structure::all() {
        let initial = initial_fault_list(&cfg, s, golden_cycles, 60_000, scale.seed);
        let red = reduce_fault_list(&initial, ace.structure(s));
        let bits = structure_bits(&cfg, s) as f64;
        let pop = bits * golden_cycles as f64;
        exhaustive += pop;
        injections += red.injections() as f64 / initial.len() as f64 * pop;
    }
    let measured_gain = exhaustive / injections.max(1.0);
    let merlin = merlin_exhaustive_row(&cfg, 1_000_000_000, measured_gain, 1e5);
    let relyzer = relyzer_exhaustive_row(1_000_000_000, 100, 1e5, 1e6, 1.0);
    println!("method   exhaustive-faults  remaining  gain      eval-time(exhaustive)  eval-time(remaining)");
    println!(
        "MeRLiN   {:>14.2e}  {:>9.2e}  {:>8.2e}  {:>14.2e} years  {:>10.2e} years",
        merlin.exhaustive_faults,
        merlin.remaining_faults,
        merlin.gain,
        merlin.exhaustive_years,
        merlin.remaining_years
    );
    println!(
        "Relyzer  {:>14.2e}  {:>9.2e}  {:>8.2e}  {:>14.2e} years  {:>10.2e} years\n",
        relyzer.exhaustive_faults,
        relyzer.remaining_faults,
        relyzer.gain,
        relyzer.exhaustive_years,
        relyzer.remaining_years
    );
    println!(
        "(measured MeRLiN reduction factor on qsort, 64 regs/16 SQ/32KB L1D: {measured_gain:.2e})\n"
    );
}

/// Table 4: truncated-run accuracy for gcc and bzip2 (RF, 128 registers).
fn table4(scale: &ExperimentScale) {
    println!("## Table 4 — truncated-interval accuracy for gcc and bzip2 (RF, 128 regs)\n");
    let cfg = spec_config();
    println!("category     gcc(MeRLiN)  gcc(baseline)  bzip2(MeRLiN)  bzip2(baseline)");
    let mut columns: Vec<Vec<f64>> = Vec::new();
    for name in ["gcc", "bzip2"] {
        let w = workload_by_name(name).expect("workload exists");
        let session = session_for(&w, &cfg, scale);
        let ace = session.ace_profile().expect("ace");
        // Truncation horizon: half of the execution, standing in for the end
        // of the Simpoint interval.
        let horizon = session.golden().expect("golden").result.cycles / 2;
        let mut injector = session.injector().expect("injector");
        let faults = initial_fault_list(
            &cfg,
            Structure::RegisterFile,
            horizon,
            scale.baseline_faults.min(1500),
            scale.seed,
        );
        let reduction = reduce_fault_list(&faults, ace.structure(Structure::RegisterFile));
        // Baseline: truncated classification of every fault; MeRLiN:
        // representatives extrapolated to their groups.
        let mut baseline: HashMap<TruncatedEffect, u64> = HashMap::new();
        let mut merlin: HashMap<TruncatedEffect, u64> = HashMap::new();
        for f in &reduction.ace_masked {
            *baseline.entry(TruncatedEffect::Masked).or_default() += 1;
            *merlin.entry(TruncatedEffect::Masked).or_default() += 1;
            let _ = f;
        }
        for g in &reduction.groups {
            for s in &g.subgroups {
                let rep_effect = classify_truncated(
                    &mut injector,
                    &ace,
                    Structure::RegisterFile,
                    s.representative,
                    horizon,
                );
                *merlin.entry(rep_effect).or_default() += s.faults.len() as u64;
                for f in &s.faults {
                    let e = classify_truncated(
                        &mut injector,
                        &ace,
                        Structure::RegisterFile,
                        f.fault,
                        horizon,
                    );
                    *baseline.entry(e).or_default() += 1;
                }
            }
        }
        let total = faults.len() as f64;
        for map in [&merlin, &baseline] {
            columns.push(
                TruncatedEffect::all()
                    .iter()
                    .map(|e| 100.0 * *map.get(e).unwrap_or(&0) as f64 / total)
                    .collect(),
            );
        }
    }
    for (i, e) in TruncatedEffect::all().iter().enumerate() {
        println!(
            "{:<12} {:>10.2}%  {:>12.2}%  {:>12.2}%  {:>14.2}%",
            e.label(),
            columns[0][i],
            columns[1][i],
            columns[2][i],
            columns[3][i]
        );
    }
    println!();
}

/// Figures 6 and 7: fine-grained and coarse homogeneity of MeRLiN's groups.
fn fig6_fig7(scale: &ExperimentScale) {
    println!("## Figures 6 & 7 — homogeneity of fault effects inside MeRLiN groups\n");
    println!("benchmark(config)            fine  coarse  perfect-groups  groups");
    let mut per_structure: HashMap<Structure, Vec<f64>> = HashMap::new();
    for &structure in Structure::all() {
        for (label, cfg) in structure_sweep(structure) {
            for w in scale.filter(mibench_workloads()) {
                let cell = run_cell(&w, &cfg, structure, scale.baseline_faults, scale);
                // Full injection of the post-ACE list for the homogeneity
                // evaluation.
                let post = cell
                    .session
                    .post_ace_baseline(&cell.campaign.reduction)
                    .expect("post-ACE baseline");
                let effects: HashMap<_, _> =
                    post.outcomes.iter().map(|o| (o.fault, o.effect)).collect();
                let h = homogeneity(&cell.campaign.reduction, &effects);
                println!(
                    "{:<28} {:>5.3} {:>6.3} {:>14.1}% {:>7}",
                    format!("{} ({label})", w.name),
                    h.fine_grained,
                    h.coarse,
                    100.0 * h.perfect_group_fraction,
                    h.groups
                );
                per_structure
                    .entry(structure)
                    .or_default()
                    .push(h.fine_grained);
            }
        }
    }
    println!();
    for (s, values) in per_structure {
        let avg = values.iter().sum::<f64>() / values.len().max(1) as f64;
        println!("average fine-grained homogeneity for {s}: {avg:.3}");
    }
    println!();
}

/// Figures 8, 9 and 10: MeRLiN speedup per MiBench benchmark and structure
/// size, using the paper's full 60,000-fault statistical lists (reduction
/// needs no injection, so the paper-scale list is used directly).
fn speedup_mibench(structure: Structure, figure: &str, scale: &ExperimentScale) {
    println!("## {figure} — MeRLiN speedup for the {structure} (60,000-fault initial lists)\n");
    let widths = [14usize, 12, 14, 12, 10];
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "config".into(),
                "ACE-like x".into(),
                "total x".into(),
                "groups".into()
            ],
            &widths
        )
    );
    for (label, cfg) in structure_sweep(structure) {
        let mut ace_speedups = Vec::new();
        let mut total_speedups = Vec::new();
        for w in scale.filter(mibench_workloads()) {
            let session = session_for(&w, &cfg, scale);
            let ace = session.ace_profile().expect("ace");
            let initial = session
                .fault_list(structure, 60_000, scale.seed)
                .expect("golden");
            let red = reduce_fault_list(&initial, ace.structure(structure));
            println!(
                "{}",
                row(
                    &[
                        w.name.into(),
                        label.clone(),
                        format!("{:.1}", red.ace_speedup()),
                        format!("{:.1}", red.total_speedup()),
                        format!("{}", red.groups.len()),
                    ],
                    &widths
                )
            );
            ace_speedups.push(red.ace_speedup());
            total_speedups.push(red.total_speedup());
        }
        let n = ace_speedups.len().max(1) as f64;
        println!(
            "{}\n",
            row(
                &[
                    "average".into(),
                    label.clone(),
                    format!("{:.1}", ace_speedups.iter().sum::<f64>() / n),
                    format!("{:.1}", total_speedups.iter().sum::<f64>() / n),
                    String::new(),
                ],
                &widths
            )
        );
    }
}

/// Figure 11: projected wall-clock estimation time, baseline vs MeRLiN.
fn fig11(scale: &ExperimentScale) {
    println!("## Figure 11 — projected sequential estimation time (months)\n");
    // Measure this machine's raw simulator throughput on one MiBench
    // workload (a deliberate re-simulation loop, so it bypasses the session
    // cache and drives the core directly).
    let w = workload_by_name("sha").expect("sha exists");
    let cfg = CpuConfig::default();
    let start = Instant::now();
    let mut simulated = 0u64;
    for _ in 0..5 {
        let mut cpu = Cpu::new(w.program.clone(), cfg.clone()).expect("config");
        let result = cpu.run(500_000_000, &mut NullProbe);
        assert!(result.exit.is_halted(), "golden run failed");
        simulated += result.cycles;
    }
    let cps = simulated as f64 / start.elapsed().as_secs_f64();
    println!("measured simulator throughput: {cps:.0} cycles/second\n");
    println!("structure        baseline(60K x 9 configs x 10 bench)  MeRLiN");
    for &structure in Structure::all() {
        let mut baseline_months = 0.0;
        let mut merlin_months = 0.0;
        for (_, cfg) in structure_sweep(structure) {
            for w in scale.filter(mibench_workloads()) {
                let session = session_for(&w, &cfg, scale);
                let ace = session.ace_profile().expect("ace");
                let golden_cycles = session.golden().expect("golden").result.cycles;
                let initial = session
                    .fault_list(structure, 60_000, scale.seed)
                    .expect("golden");
                let red = reduce_fault_list(&initial, ace.structure(structure));
                baseline_months += WallClock {
                    runs: initial.len() as u64,
                    cycles_per_run: golden_cycles,
                    cycles_per_second: cps,
                }
                .months();
                merlin_months += WallClock {
                    runs: red.injections() as u64,
                    cycles_per_run: golden_cycles,
                    cycles_per_second: cps,
                }
                .months();
            }
        }
        println!("{structure:<16} {baseline_months:>22.2}  {merlin_months:>10.3}");
    }
    println!();
}

/// Figure 12: SPEC CPU2006 speedups (128 regs, 16 SQ, 32 KB L1D).
fn fig12(scale: &ExperimentScale) {
    println!("## Figure 12 — MeRLiN speedup on SPEC analogs (60,000-fault lists)\n");
    let cfg = spec_config();
    let widths = [12usize, 6, 12, 12];
    println!(
        "{}",
        row(
            &[
                "benchmark".into(),
                "unit".into(),
                "ACE-like x".into(),
                "total x".into()
            ],
            &widths
        )
    );
    let mut averages: HashMap<Structure, Vec<f64>> = HashMap::new();
    for w in scale.filter(spec_workloads()) {
        let session = session_for(&w, &cfg, scale);
        let ace = session.ace_profile().expect("ace");
        for &structure in Structure::all() {
            let initial = session
                .fault_list(structure, 60_000, scale.seed)
                .expect("golden");
            let red = reduce_fault_list(&initial, ace.structure(structure));
            println!(
                "{}",
                row(
                    &[
                        w.name.into(),
                        structure.short_name().into(),
                        format!("{:.1}", red.ace_speedup()),
                        format!("{:.1}", red.total_speedup()),
                    ],
                    &widths
                )
            );
            averages
                .entry(structure)
                .or_default()
                .push(red.total_speedup());
        }
    }
    println!();
    for (s, v) in averages {
        println!(
            "average final speedup for {s}: {:.1}x",
            v.iter().sum::<f64>() / v.len().max(1) as f64
        );
    }
    println!();
}

/// Figure 13: speedup scaling from 60,000 to 600,000-fault initial lists.
fn fig13(scale: &ExperimentScale) {
    println!("## Figure 13 — speedup scaling with the initial-list size (60K vs 600K)\n");
    let plans = [
        (
            "0.63% margin (60K)",
            SamplingPlan::paper_baseline(),
            60_000usize,
        ),
        (
            "0.19% margin (600K)",
            SamplingPlan::paper_scaled(),
            600_000usize,
        ),
    ];
    println!("config           structure   faults    ACE-like x   total x");
    let mut scaling: Vec<(f64, f64)> = Vec::new();
    for &structure in Structure::all() {
        for (label, cfg) in structure_sweep(structure) {
            let mut totals = Vec::new();
            for (plan_label, _plan, count) in &plans {
                let mut ace_sp = Vec::new();
                let mut tot_sp = Vec::new();
                for w in scale.filter(mibench_workloads()) {
                    let session = session_for(&w, &cfg, scale);
                    let ace = session.ace_profile().expect("ace");
                    let initial = session
                        .fault_list(structure, *count, scale.seed)
                        .expect("golden");
                    let red = reduce_fault_list(&initial, ace.structure(structure));
                    ace_sp.push(red.ace_speedup());
                    tot_sp.push(red.total_speedup());
                }
                let n = ace_sp.len().max(1) as f64;
                let avg_total = tot_sp.iter().sum::<f64>() / n;
                println!(
                    "{label:<16} {:<10} {plan_label:<20} {:>8.1} {:>9.1}",
                    structure.short_name(),
                    ace_sp.iter().sum::<f64>() / n,
                    avg_total
                );
                totals.push(avg_total);
            }
            if totals.len() == 2 {
                scaling.push((totals[0], totals[1]));
            }
        }
    }
    let avg_scale: f64 =
        scaling.iter().map(|(a, b)| b / a).sum::<f64>() / scaling.len().max(1) as f64;
    println!("\naverage speedup scaling factor (600K vs 60K): {avg_scale:.2}x\n");
}

/// Figures 14, 15 and 16: classification accuracy after ACE-like, against
/// the comprehensive baseline, and the final FIT rates.
fn accuracy_figures(scale: &ExperimentScale) {
    println!("## Figures 14, 15 & 16 — classification accuracy and FIT (averages over MiBench)\n");
    let mut sched_sum = merlin_inject::ScheduleStats::default();
    for &structure in Structure::all() {
        for (label, cfg) in structure_sweep(structure) {
            let mut comprehensive_sum = Classification::default();
            let mut post_ace_sum = Classification::default();
            let mut merlin_post_ace_sum = Classification::default();
            let mut merlin_sum = Classification::default();
            let mut ace_avfs = Vec::new();
            for w in scale.filter(mibench_workloads()) {
                let cell = run_cell(&w, &cfg, structure, scale.baseline_faults, scale);
                let comprehensive = cell
                    .session
                    .comprehensive(&cell.campaign.initial_faults)
                    .expect("comprehensive baseline");
                sched_sum.ranges += comprehensive.schedule.ranges;
                sched_sum.restores += comprehensive.schedule.restores;
                sched_sum.full_restores += comprehensive.schedule.full_restores;
                sched_sum.incremental_restores += comprehensive.schedule.incremental_restores;
                sched_sum.restored_bytes += comprehensive.schedule.restored_bytes;
                sched_sum.restored_breakdown += comprehensive.schedule.restored_breakdown;
                sched_sum.range_steals += comprehensive.schedule.range_steals;
                sched_sum.range_splits += comprehensive.schedule.range_splits;
                sched_sum.suffix_cycles += comprehensive.schedule.suffix_cycles;
                sched_sum.asserts += comprehensive.schedule.asserts;
                sched_sum.poisoned_restores += comprehensive.schedule.poisoned_restores;
                sched_sum.range_retries += comprehensive.schedule.range_retries;
                sched_sum.skipped_sites += comprehensive.schedule.skipped_sites;
                sched_sum.static_prunes += comprehensive.schedule.static_prunes;
                sched_sum.batched_ranges += comprehensive.schedule.batched_ranges;
                sched_sum.forks_spawned += comprehensive.schedule.forks_spawned;
                sched_sum.forks_retired += comprehensive.schedule.forks_retired;
                sched_sum.forks_merged += comprehensive.schedule.forks_merged;
                sched_sum.golden_replay_cycles += comprehensive.schedule.golden_replay_cycles;
                sched_sum.fork_bytes_copied += comprehensive.schedule.fork_bytes_copied;
                sched_sum.fork_bytes_eager += comprehensive.schedule.fork_bytes_eager;
                sched_sum.fork_bytes_shared += comprehensive.schedule.fork_bytes_shared;
                sched_sum.cow_breaks += comprehensive.schedule.cow_breaks;
                sched_sum.merge_prefilter_hits += comprehensive.schedule.merge_prefilter_hits;
                let post_ace = cell
                    .session
                    .post_ace_baseline(&cell.campaign.reduction)
                    .expect("post-ACE baseline");
                comprehensive_sum += comprehensive.classification;
                post_ace_sum += post_ace.classification;
                merlin_post_ace_sum += cell.campaign.report.post_ace_classification;
                merlin_sum += cell.campaign.report.classification;
                ace_avfs.push(cell.ace.structure(structure).ace_avf());
            }
            println!("--- {structure} ({label}) ---");
            println!("Figure 14   post-ACE baseline: {post_ace_sum}");
            println!("Figure 14   MeRLiN (post-ACE):  {merlin_post_ace_sum}");
            println!("Figure 15   comprehensive:      {comprehensive_sum}");
            println!("Figure 15   MeRLiN (final):     {merlin_sum}");
            println!(
                "Figure 15   max inaccuracy: {:.2} percentile units",
                merlin_sum.max_inaccuracy(&comprehensive_sum)
            );
            let bits = structure_bits(&cfg, structure);
            let ace_avf = ace_avfs.iter().sum::<f64>() / ace_avfs.len().max(1) as f64;
            println!(
                "Figure 16   FIT baseline {:.3} | MeRLiN {:.3} | ACE-like {:.3}\n",
                fit_rate(comprehensive_sum.avf(), bits),
                fit_rate(merlin_sum.avf(), bits),
                fit_rate(ace_avf, bits)
            );
        }
    }
    println!(
        "scheduler totals across comprehensive baselines: {} ranges, {} restores \
         ({} full / {} incremental, {} B rewritten), {} range steals, {} range splits, \
         {} suffix cycles simulated",
        sched_sum.ranges,
        sched_sum.restores,
        sched_sum.full_restores,
        sched_sum.incremental_restores,
        sched_sum.restored_bytes,
        sched_sum.range_steals,
        sched_sum.range_splits,
        sched_sum.suffix_cycles
    );
    let b = sched_sum.restored_breakdown;
    println!(
        "restore bytes by structure: {} memory, {} caches, {} regfile, {} rename, \
         {} fetch, {} rob, {} lsq, {} predictor\n",
        b.memory, b.caches, b.regfile, b.rename, b.fetch, b.rob, b.lsq, b.predictor
    );
    println!(
        "failure containment: {} engine asserts, {} poisoned restores, {} range retries, \
         {} skipped sites, {} corrupt golden artifacts quarantined\n",
        sched_sum.asserts,
        sched_sum.poisoned_restores,
        sched_sum.range_retries,
        sched_sum.skipped_sites,
        merlin_bench::session_cache().artifact_rejects()
    );
    println!(
        "static analysis: {} register-file faults classified Masked with zero simulation\n",
        sched_sum.static_prunes
    );
    println!(
        "batched suffix simulation: {} ranges batched, {} forks spawned \
         ({} probe-retired, {} merged of {} prefilter hits), \
         {} golden replay cycles shared\n",
        sched_sum.batched_ranges,
        sched_sum.forks_spawned,
        sched_sum.forks_retired,
        sched_sum.forks_merged,
        sched_sum.merge_prefilter_hits,
        sched_sum.golden_replay_cycles
    );
    println!(
        "copy-on-write forks: {} B copied vs {} B eager-equivalent \
         ({} B adopted by handle sharing), {} sharing breaks on first write\n",
        sched_sum.fork_bytes_copied,
        sched_sum.fork_bytes_eager,
        sched_sum.fork_bytes_shared,
        sched_sum.cow_breaks
    );
}

/// Figure 17: inaccuracy of MeRLiN vs the Relyzer control-equivalence
/// heuristic relative to injecting the whole post-ACE list.
fn fig17(scale: &ExperimentScale) {
    println!("## Figure 17 — inaccuracy vs the post-ACE baseline (percentile units)\n");
    let configs = [
        (
            Structure::RegisterFile,
            CpuConfig::default().with_phys_regs(128),
        ),
        (
            Structure::StoreQueue,
            CpuConfig::default().with_store_queue(16),
        ),
        (Structure::L1DCache, CpuConfig::default().with_l1d_kb(32)),
    ];
    println!("structure  class     Relyzer   MeRLiN");
    for (structure, cfg) in configs {
        let mut post_ace_sum = Classification::default();
        let mut merlin_sum = Classification::default();
        let mut relyzer_sum = Classification::default();
        let mut merlin_speedups = Vec::new();
        let mut relyzer_speedups = Vec::new();
        for w in scale.filter(mibench_workloads()) {
            let cell = run_cell(&w, &cfg, structure, scale.baseline_faults, scale);
            let post_ace = cell
                .session
                .post_ace_baseline(&cell.campaign.reduction)
                .expect("post-ACE baseline");
            post_ace_sum += post_ace.classification;
            merlin_sum += cell.campaign.report.post_ace_classification;
            merlin_speedups.push(cell.campaign.report.speedup_total);
            // Relyzer heuristic over the same post-ACE list.
            let relyzer_red =
                relyzer_reduce(&cell.campaign.initial_faults, cell.ace.structure(structure));
            let (mut relyzer_cls, injections) =
                cell.session.relyzer(&relyzer_red).expect("relyzer");
            // Restrict to the post-ACE portion for a like-for-like comparison.
            relyzer_cls.masked -= relyzer_red.ace_masked.len() as u64;
            relyzer_sum += relyzer_cls;
            relyzer_speedups.push(relyzer_red.initial_faults() as f64 / injections.max(1) as f64);
        }
        for &class in FaultEffect::all() {
            println!(
                "{:<10} {:<9} {:>7.2} {:>8.2}",
                structure.short_name(),
                class.label(),
                relyzer_sum.inaccuracy(&post_ace_sum, class),
                merlin_sum.inaccuracy(&post_ace_sum, class)
            );
        }
        println!(
            "{:<10} average speedup: MeRLiN {:.1}x, Relyzer heuristic {:.1}x\n",
            structure.short_name(),
            merlin_speedups.iter().sum::<f64>() / merlin_speedups.len().max(1) as f64,
            relyzer_speedups.iter().sum::<f64>() / relyzer_speedups.len().max(1) as f64
        );
    }
}

/// §4.4.5: theoretical mean/variance equivalence, evaluated on measured
/// groups.
fn theory(scale: &ExperimentScale) {
    println!("## §4.4.5 — statistical behaviour of the MeRLiN estimator\n");
    let w = workload_by_name("fft").expect("fft exists");
    let cfg = CpuConfig::default().with_phys_regs(128);
    let cell = run_cell(
        &w,
        &cfg,
        Structure::RegisterFile,
        scale.baseline_faults,
        scale,
    );
    let post_ace = cell
        .session
        .post_ace_baseline(&cell.campaign.reduction)
        .expect("post-ACE baseline");
    let effects: HashMap<_, _> = post_ace
        .outcomes
        .iter()
        .map(|o| (o.fault, o.effect))
        .collect();
    let counts: Vec<(u64, u64)> = cell
        .campaign
        .reduction
        .groups
        .iter()
        .flat_map(|g| g.subgroups.iter())
        .map(|s| {
            let non_masked = s
                .faults
                .iter()
                .filter(|f| {
                    effects
                        .get(&f.fault)
                        .map(|e| e.is_non_masked())
                        .unwrap_or(false)
                })
                .count() as u64;
            (s.len() as u64, non_masked)
        })
        .collect();
    let stats = group_stats_from_counts(&counts);
    let moments = AvfMoments::from_groups(&stats, cell.campaign.reduction.ace_masked.len() as u64);
    println!("total faults F              = {}", moments.total_faults);
    println!("E[k] = E[k_MeRLiN]          = {:.6}", moments.mean);
    println!(
        "Var[k]  (comprehensive)     = {:.3e}",
        moments.variance_comprehensive
    );
    println!(
        "Var[k_MeRLiN]               = {:.3e}",
        moments.variance_merlin
    );
    println!(
        "std-dev inflation           = {:.2}x",
        moments.stddev_inflation()
    );
    println!(
        "mean group size             = {:.1}",
        cell.campaign.report.mean_group_size
    );
    println!(
        "measured AVF (MeRLiN)        = {:.4}, measured AVF (baseline over post-ACE+pruned) = {:.4}\n",
        cell.campaign.report.avf(),
        (post_ace.classification.non_masked() as f64)
            / cell.campaign.report.initial_faults as f64
    );
}

/// §1 footnote: injection-based AVF vs register-file size, contrasted with
/// the ACE-like upper bound.
fn avf_rf(scale: &ExperimentScale) {
    println!("## AVF vs register file size (injection vs ACE-like upper bound)\n");
    println!("config    injection-AVF  ACE-like-AVF");
    for (label, cfg) in structure_sweep(Structure::RegisterFile) {
        let mut merlin_sum = Classification::default();
        let mut ace_avfs = Vec::new();
        for w in scale.filter(mibench_workloads()) {
            let cell = run_cell(
                &w,
                &cfg,
                Structure::RegisterFile,
                scale.baseline_faults,
                scale,
            );
            merlin_sum += cell.campaign.report.classification;
            ace_avfs.push(cell.ace.structure(Structure::RegisterFile).ace_avf());
        }
        println!(
            "{label:<9} {:>12.2}% {:>12.2}%",
            100.0 * merlin_sum.avf(),
            100.0 * ace_avfs.iter().sum::<f64>() / ace_avfs.len().max(1) as f64
        );
    }
    println!();
}
