//! # merlin-bench
//!
//! The experiment harness of the MeRLiN reproduction.  The `experiments`
//! binary regenerates every table and figure of the paper's evaluation
//! (run `experiments help` for the list); the Criterion benches measure the
//! throughput of the building blocks (simulator, ACE-like analysis, grouping
//! and injection campaigns).
//!
//! Shared machinery for both lives here: experiment-scale knobs read from
//! the environment, the per-structure configuration sweeps of Table 1, the
//! process-wide [`session_cache`] every experiment draws its sessions from
//! (so `experiments all` pays one golden run and one ACE profile per
//! `(workload, configuration)` pair across *all* figures — and, with
//! `MERLIN_CHECKPOINT_DIR` set, across repeated invocations too), and small
//! text-table helpers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use merlin_ace::{AceAnalysis, SessionAce};
use merlin_core::{MerlinCampaign, MerlinConfig, SessionMethodology};
use merlin_cpu::{CpuConfig, Structure};
use merlin_inject::{BatchingPolicy, Session, SessionCache};
use merlin_workloads::Workload;
use std::sync::{Arc, OnceLock};

/// Experiment-scale knobs, read from the environment so the full paper-scale
/// settings and fast laptop-scale settings use the same binary.
#[derive(Debug, Clone)]
pub struct ExperimentScale {
    /// Initial statistical fault-list size for campaigns that *inject*
    /// (`MERLIN_BASELINE_FAULTS`, default 2000).  Reduction-only experiments
    /// (Figures 8–10, 12, 13) always use the paper's 60,000/600,000.
    pub baseline_faults: usize,
    /// Worker threads (`MERLIN_THREADS`, default: available parallelism).
    pub threads: usize,
    /// Sampling seed (`MERLIN_SEED`, default 2017).
    pub seed: u64,
    /// Restrict the benchmark list (`MERLIN_BENCHMARKS`, comma separated).
    pub benchmark_filter: Option<Vec<String>>,
    /// Campaign engine (`MERLIN_BATCHING`: `batched` or `per-fault`,
    /// default batched).  Outcomes are byte-identical either way; the knob
    /// exists so regressions can be bisected against the per-fault oracle.
    pub batching: BatchingPolicy,
}

impl ExperimentScale {
    /// Reads the scale knobs from the environment.
    pub fn from_env() -> Self {
        let baseline_faults = std::env::var("MERLIN_BASELINE_FAULTS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2000);
        let threads = std::env::var("MERLIN_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        let seed = std::env::var("MERLIN_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2017);
        let benchmark_filter = std::env::var("MERLIN_BENCHMARKS").ok().map(|v| {
            v.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        });
        let batching = match std::env::var("MERLIN_BATCHING").ok().as_deref() {
            Some("per-fault") => BatchingPolicy::PerFault,
            _ => BatchingPolicy::Batched,
        };
        ExperimentScale {
            baseline_faults,
            threads,
            seed,
            benchmark_filter,
            batching,
        }
    }

    /// Applies the benchmark filter to a workload list.
    pub fn filter(&self, workloads: Vec<Workload>) -> Vec<Workload> {
        match &self.benchmark_filter {
            None => workloads,
            Some(names) => workloads
                .into_iter()
                .filter(|w| names.iter().any(|n| n == w.name))
                .collect(),
        }
    }

    /// MeRLiN configuration derived from the scale knobs.
    pub fn merlin_config(&self) -> MerlinConfig {
        MerlinConfig {
            threads: self.threads,
            max_cycles: 500_000_000,
            seed: self.seed,
            batching: self.batching,
            ..Default::default()
        }
    }
}

/// The paper's per-structure configuration sweeps (Table 1): three register
/// file sizes, three store-queue sizes and three L1D capacities; everything
/// else stays at the baseline.
pub fn structure_sweep(structure: Structure) -> Vec<(String, CpuConfig)> {
    match structure {
        Structure::RegisterFile => [256usize, 128, 64]
            .iter()
            .map(|&n| (format!("{n}regs"), CpuConfig::default().with_phys_regs(n)))
            .collect(),
        Structure::StoreQueue => [64usize, 32, 16]
            .iter()
            .map(|&n| {
                (
                    format!("{n}entries"),
                    CpuConfig::default().with_store_queue(n),
                )
            })
            .collect(),
        Structure::L1DCache => [64u64, 32, 16]
            .iter()
            .map(|&kb| (format!("{kb}KB"), CpuConfig::default().with_l1d_kb(kb)))
            .collect(),
    }
}

/// The SPEC-study configuration (§4.4.2.3): 128 registers, 16+16 LSQ, 32 KB
/// L1D.
pub fn spec_config() -> CpuConfig {
    CpuConfig::spec_experiment()
}

/// The process-wide session cache: every experiment draws its sessions from
/// here, so golden runs and ACE profiles are shared across figures within
/// one `experiments` invocation.
///
/// When `MERLIN_CHECKPOINT_DIR` is set, golden runs (checkpoint store
/// included) are additionally persisted there and re-loaded by later
/// invocations — the cross-campaign checkpoint reuse the ROADMAP called
/// for.
pub fn session_cache() -> &'static SessionCache {
    static CACHE: OnceLock<SessionCache> = OnceLock::new();
    CACHE.get_or_init(|| match std::env::var("MERLIN_CHECKPOINT_DIR") {
        Ok(dir) if !dir.is_empty() => SessionCache::with_disk_dir(dir),
        _ => SessionCache::new(),
    })
}

/// The cached session for one (workload, configuration) pair under the
/// scale's execution knobs.  Requests with an identical context share one
/// session — and therefore one golden run and one ACE profile.
///
/// # Panics
///
/// Panics on invalid configurations — that is a harness bug, not an
/// experimental outcome.
pub fn session_for(workload: &Workload, cfg: &CpuConfig, scale: &ExperimentScale) -> Arc<Session> {
    let merlin_cfg = scale.merlin_config();
    session_cache()
        .session(workload.name, &workload.program, cfg, |b| {
            b.checkpoints(merlin_cfg.checkpoints)
                .max_cycles(merlin_cfg.max_cycles)
                .threads(merlin_cfg.threads)
                .batching(merlin_cfg.batching)
        })
        .unwrap_or_else(|e| panic!("session setup failed for {}: {e}", workload.name))
}

/// Everything needed to evaluate one (workload, configuration, structure)
/// cell: the shared session (golden run included), its cached ACE analysis
/// and a MeRLiN campaign over `fault_count` statistically sampled faults.
pub struct Cell {
    /// The session (shared through [`session_cache`]; `session.golden()` is
    /// the golden run every phase of this cell restores from).
    pub session: Arc<Session>,
    /// The ACE-like analysis (cached on the session).
    pub ace: Arc<AceAnalysis>,
    /// The MeRLiN campaign.
    pub campaign: MerlinCampaign,
}

/// Runs a full MeRLiN cell.
///
/// # Panics
///
/// Panics if the workload cannot complete its golden run under `cfg` — that
/// is a harness bug, not an experimental outcome.
pub fn run_cell(
    workload: &Workload,
    cfg: &CpuConfig,
    structure: Structure,
    fault_count: usize,
    scale: &ExperimentScale,
) -> Cell {
    let session = session_for(workload, cfg, scale);
    let ace = session
        .ace_profile()
        .unwrap_or_else(|e| panic!("ACE analysis failed for {}: {e}", workload.name));
    let campaign = session
        .merlin(structure, fault_count, scale.seed)
        .unwrap_or_else(|e| panic!("MeRLiN campaign failed for {}: {e}", workload.name));
    Cell {
        session,
        ace,
        campaign,
    }
}

/// Formats a row of right-aligned cells for the plain-text tables the harness
/// prints.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_three_points_each() {
        for &s in Structure::all() {
            let sweep = structure_sweep(s);
            assert_eq!(sweep.len(), 3);
            for (label, cfg) in sweep {
                assert!(!label.is_empty());
                cfg.validate().unwrap();
            }
        }
    }

    #[test]
    fn scale_defaults_are_sane() {
        let s = ExperimentScale {
            baseline_faults: 2000,
            threads: 8,
            seed: 2017,
            benchmark_filter: Some(vec!["sha".into()]),
            batching: BatchingPolicy::Batched,
        };
        let filtered = s.filter(merlin_workloads::mibench_workloads());
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].name, "sha");
        assert_eq!(s.merlin_config().threads, 8);
    }

    #[test]
    fn row_formatting_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
