//! Criterion benchmark: cost of the ACE-like profiling run (the paper's
//! single-run preprocessing step, §3.1.1) relative to a plain golden run.

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_ace::AceAnalysis;
use merlin_cpu::{Cpu, CpuConfig, NullProbe};
use merlin_workloads::workload_by_name;

fn ace_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ace_like_analysis");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["sha", "susan_s"] {
        let w = workload_by_name(name).expect("workload exists");
        let cfg = CpuConfig::default().with_phys_regs(128);
        group.bench_function(format!("profiled_run/{name}"), |b| {
            b.iter(|| AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap())
        });
        // The baseline is a deliberate re-simulation, so it drives the core
        // directly instead of going through a (caching) session.
        group.bench_function(format!("plain_golden_run/{name}"), |b| {
            b.iter(|| {
                let mut cpu = Cpu::new(w.program.clone(), cfg.clone()).unwrap();
                cpu.run(100_000_000, &mut NullProbe)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ace_profiling);
criterion_main!(benches);
