//! Criterion benchmark: throughput of the cycle-level core and the
//! architectural interpreter on representative workloads.  These numbers
//! feed the wall-clock projections of Figure 11 / Table 3.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use merlin_cpu::{interpret, Cpu, CpuConfig, NullProbe};
use merlin_workloads::workload_by_name;

fn simulator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for name in ["sha", "qsort", "stringsearch"] {
        let w = workload_by_name(name).expect("workload exists");
        let cycles = {
            let mut cpu = Cpu::new(w.program.clone(), CpuConfig::default()).unwrap();
            cpu.run(100_000_000, &mut NullProbe).cycles
        };
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(format!("cycle_level/{name}"), |b| {
            b.iter(|| {
                let mut cpu = Cpu::new(w.program.clone(), CpuConfig::default()).unwrap();
                cpu.run(100_000_000, &mut NullProbe)
            })
        });
        group.bench_function(format!("interpreter/{name}"), |b| {
            b.iter(|| interpret(&w.program, 100_000_000))
        });
    }
    group.finish();
}

criterion_group!(benches, simulator_throughput);
criterion_main!(benches);
