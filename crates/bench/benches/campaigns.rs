//! Criterion benchmark: end-to-end injection cost — single fault runs, a
//! small comprehensive campaign and the equivalent MeRLiN campaign.  The
//! ratio of the last two is the wall-clock realisation of the speedups in
//! Figures 8–10.

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_core::SessionMethodology;
use merlin_cpu::{CpuConfig, FaultSpec, Structure};
use merlin_inject::Session;
use merlin_workloads::workload_by_name;

fn injection_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection_campaigns");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let w = workload_by_name("stringsearch").expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(64);
    let session = Session::builder(&w.program, &cfg)
        .max_cycles(100_000_000)
        .threads(4)
        .build()
        .unwrap();
    let golden_cycles = session.golden().unwrap().result.cycles;
    let faults = session
        .fault_list(Structure::RegisterFile, 200, 2017)
        .unwrap();

    group.bench_function("single_fault_run", |b| {
        let mut injector = session.injector().unwrap();
        b.iter(|| {
            injector.run(FaultSpec::new(
                Structure::RegisterFile,
                5,
                17,
                golden_cycles / 2,
            ))
        })
    });
    group.bench_function("comprehensive_200_faults", |b| {
        b.iter(|| session.campaign(&faults).unwrap())
    });
    group.bench_function("merlin_200_faults", |b| {
        b.iter(|| {
            session
                .merlin_with_faults(Structure::RegisterFile, &faults)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, injection_campaigns);
criterion_main!(benches);
