//! Criterion benchmark: end-to-end injection cost — single fault runs, a
//! small comprehensive campaign and the equivalent MeRLiN campaign.  The
//! ratio of the last two is the wall-clock realisation of the speedups in
//! Figures 8–10.

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_ace::AceAnalysis;
use merlin_core::{initial_fault_list, run_merlin_with_faults, MerlinConfig};
use merlin_cpu::{CpuConfig, FaultSpec, Structure};
use merlin_inject::{run_campaign, run_golden, run_single_fault};
use merlin_workloads::workload_by_name;

fn injection_campaigns(c: &mut Criterion) {
    let mut group = c.benchmark_group("injection_campaigns");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let w = workload_by_name("stringsearch").expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(64);
    let golden = run_golden(&w.program, &cfg, 100_000_000).unwrap();
    let ace = AceAnalysis::run(&w.program, &cfg, 100_000_000).unwrap();
    let faults = initial_fault_list(
        &cfg,
        Structure::RegisterFile,
        golden.result.cycles,
        200,
        2017,
    );
    let merlin_cfg = MerlinConfig {
        threads: 4,
        max_cycles: 100_000_000,
        seed: 2017,
        ..Default::default()
    };

    group.bench_function("single_fault_run", |b| {
        b.iter(|| {
            run_single_fault(
                &w.program,
                &cfg,
                &golden,
                FaultSpec::new(Structure::RegisterFile, 5, 17, golden.result.cycles / 2),
            )
        })
    });
    group.bench_function("comprehensive_200_faults", |b| {
        b.iter(|| run_campaign(&w.program, &cfg, &golden, &faults, 4))
    });
    group.bench_function("merlin_200_faults", |b| {
        b.iter(|| {
            run_merlin_with_faults(
                &w.program,
                &cfg,
                Structure::RegisterFile,
                &ace,
                &faults,
                &golden,
                &merlin_cfg,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, injection_campaigns);
criterion_main!(benches);
