//! Criterion benchmark: MeRLiN's fault-list reduction (ACE pruning plus
//! RIP/uPC and byte grouping) over paper-scale 60,000-fault initial lists,
//! and the Relyzer control-equivalence grouping for comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use merlin_ace::SessionAce;
use merlin_core::{reduce_fault_list, relyzer_reduce};
use merlin_cpu::{CpuConfig, Structure};
use merlin_inject::Session;
use merlin_workloads::workload_by_name;

fn fault_list_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("fault_list_reduction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let w = workload_by_name("qsort").expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(128);
    let session = Session::builder(&w.program, &cfg)
        .max_cycles(100_000_000)
        .build()
        .unwrap();
    let ace = session.ace_profile().unwrap();
    for &structure in Structure::all() {
        let initial = session.fault_list(structure, 60_000, 2017).unwrap();
        group.throughput(Throughput::Elements(initial.len() as u64));
        let intervals = ace.structure(structure);
        group.bench_function(format!("merlin_60k/{structure}"), |b| {
            b.iter(|| reduce_fault_list(&initial, intervals))
        });
        group.bench_function(format!("relyzer_60k/{structure}"), |b| {
            b.iter(|| relyzer_reduce(&initial, intervals))
        });
    }
    group.finish();
}

criterion_group!(benches, fault_list_reduction);
criterion_main!(benches);
