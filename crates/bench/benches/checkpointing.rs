//! Criterion benchmark: the checkpoint-and-restore injection engine against
//! from-scratch simulation, on a MiBench workload and a SPEC-analog
//! workload.  The measured speedup is the wall-clock realisation of turning
//! per-fault cost from O(program length) into O(post-injection suffix).
//!
//! Besides the criterion report, the benchmark writes
//! `BENCH_CHECKPOINTING.json` at the workspace root so the speedup is
//! tracked across revisions.

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_cpu::{CpuConfig, Structure};
use merlin_inject::Session;
use merlin_workloads::workload_by_name;
use std::time::Instant;

const FAULTS: usize = 200;
const THREADS: usize = 4;

struct Prepared {
    name: &'static str,
    session: Session,
    faults: Vec<merlin_cpu::FaultSpec>,
}

fn prepare(name: &'static str) -> Prepared {
    let workload = workload_by_name(name).expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(64);
    let session = Session::builder(&workload.program, &cfg)
        .max_cycles(100_000_000)
        .threads(THREADS)
        .build()
        .unwrap();
    session.golden().unwrap();
    let store_len = session
        .golden_checkpoints()
        .expect("checkpoints on")
        .store
        .len();
    assert!(
        store_len >= 8,
        "{name}: expected ≥ 8 checkpoints, got {store_len}"
    );
    let faults = session
        .fault_list(Structure::RegisterFile, FAULTS, 2017)
        .unwrap();
    Prepared {
        name,
        session,
        faults,
    }
}

/// One timed run of each engine outside criterion's sampling, for the JSON
/// record (criterion's own samples drive the statistics in the report).
fn record_speedup(p: &Prepared) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let scratch = p.session.campaign_from_scratch(&p.faults).unwrap();
    let scratch_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ck = p.session.campaign(&p.faults).unwrap();
    let ck_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        scratch.outcomes, ck.outcomes,
        "{}: engines disagree",
        p.name
    );
    (scratch_s, ck_s, scratch_s / ck_s)
}

fn checkpointing(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpointing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let mut json_rows = Vec::new();
    for name in ["stringsearch", "mcf"] {
        let p = prepare(name);
        group.bench_function(format!("from_scratch/{name}"), |b| {
            b.iter(|| p.session.campaign_from_scratch(&p.faults).unwrap())
        });
        group.bench_function(format!("checkpointed/{name}"), |b| {
            b.iter(|| p.session.campaign(&p.faults).unwrap())
        });
        let (scratch_s, ck_s, speedup) = record_speedup(&p);
        let store = &p.session.golden_checkpoints().unwrap().store;
        let checkpoints = store.len();
        // Store size with delta memory snapshots vs what the dense
        // representation would occupy — the second axis (besides speedup)
        // the engine is tracked on.
        let footprint = store.footprint_bytes();
        let dense_footprint = store.dense_footprint_bytes();
        let shrink = dense_footprint as f64 / footprint.max(1) as f64;
        println!(
            "checkpointing/{name}: {FAULTS} faults, {checkpoints} checkpoints, \
             from-scratch {scratch_s:.3}s vs checkpointed {ck_s:.3}s -> {speedup:.2}x, \
             store {footprint} B delta vs {dense_footprint} B dense -> {shrink:.2}x smaller"
        );
        json_rows.push(format!(
            "  {{\"workload\": \"{name}\", \"faults\": {FAULTS}, \
             \"golden_cycles\": {}, \"checkpoints\": {checkpoints}, \
             \"from_scratch_s\": {scratch_s:.6}, \"checkpointed_s\": {ck_s:.6}, \
             \"speedup\": {speedup:.3}, \"footprint_bytes\": {footprint}, \
             \"dense_footprint_bytes\": {dense_footprint}, \
             \"footprint_shrink\": {shrink:.3}}}",
            p.session.golden().unwrap().result.cycles
        ));
    }
    group.finish();

    let json = format!("[\n{}\n]\n", json_rows.join(",\n"));
    // The bench runs from the crate directory or the workspace root; write
    // next to the workspace Cargo.toml in either case.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::fs::write(root.join("BENCH_CHECKPOINTING.json"), &json) {
        eprintln!("could not write BENCH_CHECKPOINTING.json: {e}");
    }
}

criterion_group!(benches, checkpointing);
criterion_main!(benches);
