//! Criterion benchmark: the checkpoint-and-restore injection engine against
//! from-scratch simulation, on a MiBench workload and a SPEC-analog
//! workload.  The measured speedup is the wall-clock realisation of turning
//! per-fault cost from O(program length) into O(post-injection suffix).
//!
//! Besides the criterion report, the benchmark writes
//! `BENCH_CHECKPOINTING.json` at the workspace root so three axes are
//! tracked across revisions:
//!
//! * **throughput** — from-scratch vs checkpointed campaign wall time, plus
//!   the scheduler's own accounting (`restores`, `range_steals`,
//!   `suffix_cycles`);
//! * **store footprint** — delta-encoded vs dense snapshot bytes;
//! * **tail latency** — per-fault wall time and simulated cycles (mean and
//!   p95) under suffix-work spacing against equal-cycle spacing for the
//!   same checkpoint policy (`p95_fault_s` / `p95_fault_s_equal_cycles`).
//!   The suffix-work store retains the equal-cycles grid plus head
//!   midpoints, so per-fault simulated cycles are never higher; the wall
//!   numbers realise that as lower mean and tail latency;
//! * **hot-loop cost** — full vs incremental restores and the bytes they
//!   rewrote (`full_restores` / `incremental_restores` / `restored_bytes`),
//!   plus a decode microbenchmark comparing per-fetch cracking against
//!   copying from the shared pre-decoded arena (`decode_ns_per_uop` /
//!   `predecoded_ns_per_uop`);
//! * **batched suffix simulation** — the fork-on-divergence engine against
//!   the per-fault oracle on the same store (`batched_s` /
//!   `batched_suffix_cycles` / fork counters), on the dense default store
//!   and on a sparse [`SPARSE_TARGET`]-checkpoint store (`sparse_*`)
//!   where per-fault prefix replay dominates; `suffix_cycle_reduction` is
//!   the sparse-store faulty-core cycle reduction.  Outcomes are asserted
//!   byte-identical across every engine/store combination.

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_cpu::{CpuConfig, SpacingStrategy, Structure};
use merlin_inject::{BatchingPolicy, CheckpointPolicy, Session};
use merlin_isa::{decode, DecodedProgram, Program, Rip};
use merlin_workloads::workload_by_name;
use std::hint::black_box;
use std::time::Instant;

const FAULTS: usize = 200;
/// Checkpoint target for the sparse-store comparison of the batched engine
/// against the per-fault engine.  At the dense default store the per-fault
/// prefix replay is already well amortised (~18% of its suffix cycles), so
/// the fork-on-divergence win is structurally small there; a sparse store
/// is where checkpoint memory is tight and prefix replay dominates — and
/// where batching keeps campaigns fast without buying more checkpoints.
const SPARSE_TARGET: u32 = 6;
/// Fault-list size for the per-fault latency distribution: larger than the
/// campaign list so the p95 order statistic is stable.
const LATENCY_FAULTS: usize = 500;
const THREADS: usize = 4;
/// Wall-time samples per fault for the latency percentile (the minimum is
/// kept, suppressing scheduler noise).
const LATENCY_REPS: usize = 5;

struct Prepared {
    name: &'static str,
    /// Suffix-work spacing, per-fault engine — the restore-per-fault
    /// baseline (and batched-mode oracle).
    session: Session,
    /// Same spacing, fork-on-divergence batched engine.
    session_batched: Session,
    /// Equal-cycle spacing at the same checkpoint budget, for the tail
    /// latency comparison.
    session_equal: Session,
    /// Sparse [`SPARSE_TARGET`]-checkpoint store, per-fault engine — the
    /// store configuration where prefix replay dominates per-fault cost.
    session_sparse: Session,
    /// Same sparse store, batched engine.
    session_sparse_batched: Session,
    faults: Vec<merlin_cpu::FaultSpec>,
}

fn prepare(name: &'static str) -> Prepared {
    let workload = workload_by_name(name).expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(64);
    let build = |policy: CheckpointPolicy, batching: BatchingPolicy| {
        let session = Session::builder(&workload.program, &cfg)
            .checkpoints(policy)
            .max_cycles(100_000_000)
            .threads(THREADS)
            .batching(batching)
            .build()
            .unwrap();
        session.golden().unwrap();
        session
    };
    let dense = |spacing: SpacingStrategy| CheckpointPolicy::default().with_spacing(spacing);
    let sparse = CheckpointPolicy {
        target_checkpoints: SPARSE_TARGET,
        ..CheckpointPolicy::default()
    };
    let session = build(dense(SpacingStrategy::SuffixWork), BatchingPolicy::PerFault);
    let session_batched = build(dense(SpacingStrategy::SuffixWork), BatchingPolicy::Batched);
    let session_equal = build(
        dense(SpacingStrategy::EqualCycles),
        BatchingPolicy::PerFault,
    );
    let session_sparse = build(sparse, BatchingPolicy::PerFault);
    let session_sparse_batched = build(sparse, BatchingPolicy::Batched);
    let store_len = session
        .golden_checkpoints()
        .expect("checkpoints on")
        .store
        .len();
    assert!(
        store_len >= 8,
        "{name}: expected ≥ 8 checkpoints, got {store_len}"
    );
    let faults = session
        .fault_list(Structure::RegisterFile, FAULTS, 2017)
        .unwrap();
    Prepared {
        name,
        session,
        session_batched,
        session_equal,
        session_sparse,
        session_sparse_batched,
        faults,
    }
}

/// One timed run of each engine outside criterion's sampling, for the JSON
/// record (criterion's own samples drive the statistics in the report).
/// Returns (from-scratch, per-fault checkpointed, batched) wall seconds.
fn record_speedup(p: &Prepared) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let scratch = p.session.campaign_from_scratch(&p.faults).unwrap();
    let scratch_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ck = p.session.campaign(&p.faults).unwrap();
    let ck_s = t1.elapsed().as_secs_f64();
    let t2 = Instant::now();
    let batched = p.session_batched.campaign(&p.faults).unwrap();
    let batched_s = t2.elapsed().as_secs_f64();
    assert_eq!(
        scratch.outcomes, ck.outcomes,
        "{}: engines disagree",
        p.name
    );
    assert_eq!(
        ck.outcomes, batched.outcomes,
        "{}: batched engine disagrees with the per-fault oracle",
        p.name
    );
    (scratch_s, ck_s, batched_s)
}

/// Timed sparse-store comparison: per-fault vs batched campaigns over the
/// same [`SPARSE_TARGET`]-checkpoint store.  Outcomes must match the
/// dense-store campaigns byte-for-byte — the checkpoint budget, like the
/// engine and the thread count, is execution-only.
struct SparseRun {
    per_fault_s: f64,
    batched_s: f64,
    per_fault: merlin_inject::CampaignResult,
    batched: merlin_inject::CampaignResult,
}

fn record_sparse(p: &Prepared) -> SparseRun {
    let t0 = Instant::now();
    let per_fault = p.session_sparse.campaign(&p.faults).unwrap();
    let per_fault_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let batched = p.session_sparse_batched.campaign(&p.faults).unwrap();
    let batched_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        per_fault.outcomes, batched.outcomes,
        "{}: sparse-store batched engine disagrees with the per-fault oracle",
        p.name
    );
    SparseRun {
        per_fault_s,
        batched_s,
        per_fault,
        batched,
    }
}

/// Index of the 95th-percentile element of an ascending-sorted slice of
/// `len` elements (`len` must be non-zero).
fn p95_index(len: usize) -> usize {
    ((len as f64 * 0.95).ceil() as usize)
        .saturating_sub(1)
        .min(len - 1)
}

/// Per-fault latency distribution of one session: p95 wall seconds (min of
/// [`LATENCY_REPS`] samples per fault) plus p95 and mean simulated cycles
/// (deterministic, noise-free).
struct FaultLatency {
    p95_s: f64,
    p95_cycles: u64,
    mean_cycles: u64,
}

fn fault_latency(session: &Session, faults: &[merlin_cpu::FaultSpec]) -> FaultLatency {
    let mut injector = session.injector().unwrap();
    let mut seconds = Vec::with_capacity(faults.len());
    let mut cycles = Vec::with_capacity(faults.len());
    for &fault in faults {
        let mut best = f64::INFINITY;
        let mut simulated = 0u64;
        for _ in 0..LATENCY_REPS {
            let t = Instant::now();
            let (_, c) = injector.run_with_cycles(fault);
            best = best.min(t.elapsed().as_secs_f64());
            simulated = c;
        }
        seconds.push(best);
        cycles.push(simulated);
    }
    seconds.sort_by(f64::total_cmp);
    cycles.sort_unstable();
    FaultLatency {
        p95_s: seconds[p95_index(seconds.len())],
        p95_cycles: cycles[p95_index(cycles.len())],
        mean_cycles: cycles.iter().sum::<u64>() / cycles.len() as u64,
    }
}

/// Nanoseconds per micro-op to produce a program's full micro-op stream:
/// cracking per instruction (`decode`, the old per-fetch hot loop, one heap
/// allocation per instruction) vs copying out of the shared pre-decoded
/// arena.  Deterministic work, min-of-reps timing.
fn decode_microbench(program: &Program) -> (f64, f64) {
    let decoded = DecodedProgram::new(program);
    let n_uops = decoded.num_uops().max(1);
    const REPS: usize = 50;
    let mut decode_ns = f64::INFINITY;
    let mut predecoded_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for (rip, inst) in program.instructions.iter().enumerate() {
            black_box(decode(rip as Rip, inst));
        }
        decode_ns = decode_ns.min(t.elapsed().as_nanos() as f64 / n_uops as f64);

        let mut sink = 0u64;
        let t = Instant::now();
        for rip in 0..program.len() {
            for &u in decoded.uops(rip as Rip) {
                sink ^= u64::from(u.rip) ^ u.imm as u64;
            }
        }
        predecoded_ns = predecoded_ns.min(t.elapsed().as_nanos() as f64 / n_uops as f64);
        black_box(sink);
    }
    (decode_ns, predecoded_ns)
}

/// Fraction of restores served by the incremental same-snapshot path — with
/// range-bound workers, expected near 1.0 (one full restore per worker per
/// range).
fn incremental_fraction(sched: &merlin_inject::ScheduleStats) -> f64 {
    sched.incremental_restores as f64 / (sched.restores.max(1)) as f64
}

fn checkpointing(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpointing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let mut json_rows = Vec::new();
    for name in ["stringsearch", "mcf"] {
        let p = prepare(name);
        group.bench_function(format!("from_scratch/{name}"), |b| {
            b.iter(|| p.session.campaign_from_scratch(&p.faults).unwrap())
        });
        group.bench_function(format!("checkpointed/{name}"), |b| {
            b.iter(|| p.session.campaign(&p.faults).unwrap())
        });
        group.bench_function(format!("batched/{name}"), |b| {
            b.iter(|| p.session_batched.campaign(&p.faults).unwrap())
        });
        let (scratch_s, ck_s, batched_s) = record_speedup(&p);
        let speedup = scratch_s / ck_s;
        let batched_speedup = scratch_s / batched_s;
        let result = p.session.campaign(&p.faults).unwrap();
        let sched = result.schedule;
        let bsched = p.session_batched.campaign(&p.faults).unwrap().schedule;
        // Dense-store comparison: faulty-core suffix cycles the batched
        // driver simulated vs the per-fault engine's replay+suffix total
        // (the golden replay it pays once per range is reported
        // separately).  The default store keeps prefixes short, so this
        // reduction is modest by construction.
        let dense_reduction = sched.suffix_cycles as f64 / bsched.suffix_cycles.max(1) as f64;
        // The headline axis of the fork-on-divergence driver: the same
        // comparison over a sparse store, where per-fault prefix replay
        // dominates.  Outcomes stay byte-identical across all four
        // engine/store combinations.
        let sparse = record_sparse(&p);
        assert_eq!(
            result.outcomes, sparse.per_fault.outcomes,
            "{name}: sparse-store campaign disagrees with the dense store"
        );
        let sparse_checkpoints = p.session_sparse.golden_checkpoints().unwrap().store.len();
        let ssched = &sparse.per_fault.schedule;
        let sbsched = &sparse.batched.schedule;
        let suffix_reduction = ssched.suffix_cycles as f64 / sbsched.suffix_cycles.max(1) as f64;
        let store = &p.session.golden_checkpoints().unwrap().store;
        let checkpoints = store.len();
        // Store size with delta memory snapshots vs what the dense
        // representation would occupy — the second axis (besides speedup)
        // the engine is tracked on.
        let footprint = store.footprint_bytes();
        let dense_footprint = store.dense_footprint_bytes();
        let shrink = dense_footprint as f64 / footprint.max(1) as f64;
        // Tail latency: suffix-work vs equal-cycle spacing, same policy,
        // over a larger fault list so the p95 order statistic is stable.
        let latency_faults = p
            .session
            .fault_list(Structure::RegisterFile, LATENCY_FAULTS, 2017)
            .unwrap();
        let sw = fault_latency(&p.session, &latency_faults);
        let eq = fault_latency(&p.session_equal, &latency_faults);
        let (decode_ns, predecoded_ns) = decode_microbench(p.session.program());
        println!(
            "checkpointing/{name}: {FAULTS} faults, {checkpoints} checkpoints, \
             from-scratch {scratch_s:.3}s vs checkpointed {ck_s:.3}s -> {speedup:.2}x \
             (batched {batched_s:.3}s -> {batched_speedup:.2}x), \
             batched suffix cycles {} vs per-fault {} -> {dense_reduction:.2}x fewer \
             ({} golden replay cycles, {} ranges batched, {} forks spawned, \
             {} probe-retired, {} merged of {} prefilter hits), \
             CoW forks copied {} B vs {} B eager ({} B shared, {} breaks), \
             sparse store ({sparse_checkpoints} checkpoints): batched suffix \
             cycles {} vs per-fault {} -> {suffix_reduction:.2}x fewer \
             (per-fault {:.3}s vs batched {:.3}s), \
             store {footprint} B delta vs {dense_footprint} B dense -> {shrink:.2}x smaller, \
             {} restores ({} full / {} incremental = {:.4} incremental fraction, \
             {} B rewritten), \
             {} range steals, {} range splits, {} suffix cycles, \
             {} statically pruned, \
             p95/fault {:.2} ms suffix-work vs {:.2} ms equal-cycles \
             (p95 {} vs {} cycles, mean {} vs {} cycles), \
             decode {decode_ns:.1} ns/uop vs predecoded {predecoded_ns:.1} ns/uop",
            bsched.suffix_cycles,
            sched.suffix_cycles,
            bsched.golden_replay_cycles,
            bsched.batched_ranges,
            bsched.forks_spawned,
            bsched.forks_retired,
            bsched.forks_merged,
            bsched.merge_prefilter_hits,
            bsched.fork_bytes_copied,
            bsched.fork_bytes_eager,
            bsched.fork_bytes_shared,
            bsched.cow_breaks,
            sbsched.suffix_cycles,
            ssched.suffix_cycles,
            sparse.per_fault_s,
            sparse.batched_s,
            sched.restores,
            sched.full_restores,
            sched.incremental_restores,
            incremental_fraction(&sched),
            sched.restored_bytes,
            sched.range_steals,
            sched.range_splits,
            sched.suffix_cycles,
            sched.static_prunes,
            1e3 * sw.p95_s,
            1e3 * eq.p95_s,
            sw.p95_cycles,
            eq.p95_cycles,
            sw.mean_cycles,
            eq.mean_cycles,
        );
        json_rows.push(format!(
            "  {{\"workload\": \"{name}\", \"faults\": {FAULTS}, \
             \"golden_cycles\": {}, \"checkpoints\": {checkpoints}, \
             \"from_scratch_s\": {scratch_s:.6}, \"checkpointed_s\": {ck_s:.6}, \
             \"speedup\": {speedup:.3}, \"footprint_bytes\": {footprint}, \
             \"dense_footprint_bytes\": {dense_footprint}, \
             \"footprint_shrink\": {shrink:.3}, \
             \"ranges\": {}, \"restores\": {}, \"range_steals\": {}, \
             \"range_splits\": {}, \"full_restores\": {}, \
             \"incremental_restores\": {}, \"incremental_fraction\": {:.4}, \
             \"restored_bytes\": {}, \
             \"restored_bytes_by_structure\": {{\
             \"memory\": {}, \"caches\": {}, \"regfile\": {}, \"rename\": {}, \
             \"fetch\": {}, \"rob\": {}, \"lsq\": {}, \"predictor\": {}}}, \
             \"suffix_cycles\": {}, \"static_prunes\": {}, \
             \"batched_s\": {batched_s:.6}, \
             \"batched_speedup\": {batched_speedup:.3}, \
             \"batched_suffix_cycles\": {}, \
             \"suffix_cycle_reduction_dense_store\": {dense_reduction:.3}, \
             \"golden_replay_cycles\": {}, \"batched_ranges\": {}, \
             \"forks_spawned\": {}, \"forks_retired\": {}, \
             \"forks_merged\": {}, \"merge_prefilter_hits\": {}, \
             \"fork_bytes_copied\": {}, \"fork_bytes_eager\": {}, \
             \"fork_bytes_shared\": {}, \"cow_breaks\": {}, \
             \"sparse_checkpoints\": {sparse_checkpoints}, \
             \"sparse_suffix_cycles\": {}, \
             \"sparse_batched_suffix_cycles\": {}, \
             \"suffix_cycle_reduction\": {suffix_reduction:.3}, \
             \"sparse_per_fault_s\": {:.6}, \
             \"sparse_batched_s\": {:.6}, \
             \"sparse_golden_replay_cycles\": {}, \
             \"sparse_forks_spawned\": {}, \
             \"sparse_forks_retired\": {}, \
             \"sparse_forks_merged\": {}, \
             \"sparse_merge_prefilter_hits\": {}, \
             \"sparse_fork_bytes_copied\": {}, \
             \"sparse_fork_bytes_eager\": {}, \
             \"sparse_fork_bytes_shared\": {}, \
             \"sparse_cow_breaks\": {}, \
             \"latency_faults\": {LATENCY_FAULTS}, \
             \"p95_fault_s\": {:.6}, \
             \"p95_fault_s_equal_cycles\": {:.6}, \
             \"p95_fault_cycles\": {}, \
             \"p95_fault_cycles_equal_cycles\": {}, \
             \"mean_fault_cycles\": {}, \
             \"mean_fault_cycles_equal_cycles\": {}, \
             \"decode_ns_per_uop\": {decode_ns:.2}, \
             \"predecoded_ns_per_uop\": {predecoded_ns:.2}}}",
            p.session.golden().unwrap().result.cycles,
            sched.ranges,
            sched.restores,
            sched.range_steals,
            sched.range_splits,
            sched.full_restores,
            sched.incremental_restores,
            incremental_fraction(&sched),
            sched.restored_bytes,
            sched.restored_breakdown.memory,
            sched.restored_breakdown.caches,
            sched.restored_breakdown.regfile,
            sched.restored_breakdown.rename,
            sched.restored_breakdown.fetch,
            sched.restored_breakdown.rob,
            sched.restored_breakdown.lsq,
            sched.restored_breakdown.predictor,
            sched.suffix_cycles,
            sched.static_prunes,
            bsched.suffix_cycles,
            bsched.golden_replay_cycles,
            bsched.batched_ranges,
            bsched.forks_spawned,
            bsched.forks_retired,
            bsched.forks_merged,
            bsched.merge_prefilter_hits,
            bsched.fork_bytes_copied,
            bsched.fork_bytes_eager,
            bsched.fork_bytes_shared,
            bsched.cow_breaks,
            ssched.suffix_cycles,
            sbsched.suffix_cycles,
            sparse.per_fault_s,
            sparse.batched_s,
            sbsched.golden_replay_cycles,
            sbsched.forks_spawned,
            sbsched.forks_retired,
            sbsched.forks_merged,
            sbsched.merge_prefilter_hits,
            sbsched.fork_bytes_copied,
            sbsched.fork_bytes_eager,
            sbsched.fork_bytes_shared,
            sbsched.cow_breaks,
            sw.p95_s,
            eq.p95_s,
            sw.p95_cycles,
            eq.p95_cycles,
            sw.mean_cycles,
            eq.mean_cycles,
        ));
    }
    group.finish();

    let json = format!("[\n{}\n]\n", json_rows.join(",\n"));
    // The bench runs from the crate directory or the workspace root; write
    // next to the workspace Cargo.toml in either case.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::fs::write(root.join("BENCH_CHECKPOINTING.json"), &json) {
        eprintln!("could not write BENCH_CHECKPOINTING.json: {e}");
    }
}

criterion_group!(benches, checkpointing);
criterion_main!(benches);
