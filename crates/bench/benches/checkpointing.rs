//! Criterion benchmark: the checkpoint-and-restore injection engine against
//! from-scratch simulation, on a MiBench workload and a SPEC-analog
//! workload.  The measured speedup is the wall-clock realisation of turning
//! per-fault cost from O(program length) into O(post-injection suffix).
//!
//! Besides the criterion report, the benchmark writes
//! `BENCH_CHECKPOINTING.json` at the workspace root so three axes are
//! tracked across revisions:
//!
//! * **throughput** — from-scratch vs checkpointed campaign wall time, plus
//!   the scheduler's own accounting (`restores`, `range_steals`,
//!   `suffix_cycles`);
//! * **store footprint** — delta-encoded vs dense snapshot bytes;
//! * **tail latency** — per-fault wall time and simulated cycles (mean and
//!   p95) under suffix-work spacing against equal-cycle spacing for the
//!   same checkpoint policy (`p95_fault_s` / `p95_fault_s_equal_cycles`).
//!   The suffix-work store retains the equal-cycles grid plus head
//!   midpoints, so per-fault simulated cycles are never higher; the wall
//!   numbers realise that as lower mean and tail latency;
//! * **hot-loop cost** — full vs incremental restores and the bytes they
//!   rewrote (`full_restores` / `incremental_restores` / `restored_bytes`),
//!   plus a decode microbenchmark comparing per-fetch cracking against
//!   copying from the shared pre-decoded arena (`decode_ns_per_uop` /
//!   `predecoded_ns_per_uop`).

use criterion::{criterion_group, criterion_main, Criterion};
use merlin_cpu::{CpuConfig, SpacingStrategy, Structure};
use merlin_inject::{CheckpointPolicy, Session};
use merlin_isa::{decode, DecodedProgram, Program, Rip};
use merlin_workloads::workload_by_name;
use std::hint::black_box;
use std::time::Instant;

const FAULTS: usize = 200;
/// Fault-list size for the per-fault latency distribution: larger than the
/// campaign list so the p95 order statistic is stable.
const LATENCY_FAULTS: usize = 500;
const THREADS: usize = 4;
/// Wall-time samples per fault for the latency percentile (the minimum is
/// kept, suppressing scheduler noise).
const LATENCY_REPS: usize = 5;

struct Prepared {
    name: &'static str,
    /// Suffix-work spacing — the default engine under test.
    session: Session,
    /// Equal-cycle spacing at the same checkpoint budget, for the tail
    /// latency comparison.
    session_equal: Session,
    faults: Vec<merlin_cpu::FaultSpec>,
}

fn prepare(name: &'static str) -> Prepared {
    let workload = workload_by_name(name).expect("workload exists");
    let cfg = CpuConfig::default().with_phys_regs(64);
    let build = |spacing: SpacingStrategy| {
        let session = Session::builder(&workload.program, &cfg)
            .checkpoints(CheckpointPolicy::default().with_spacing(spacing))
            .max_cycles(100_000_000)
            .threads(THREADS)
            .build()
            .unwrap();
        session.golden().unwrap();
        session
    };
    let session = build(SpacingStrategy::SuffixWork);
    let session_equal = build(SpacingStrategy::EqualCycles);
    let store_len = session
        .golden_checkpoints()
        .expect("checkpoints on")
        .store
        .len();
    assert!(
        store_len >= 8,
        "{name}: expected ≥ 8 checkpoints, got {store_len}"
    );
    let faults = session
        .fault_list(Structure::RegisterFile, FAULTS, 2017)
        .unwrap();
    Prepared {
        name,
        session,
        session_equal,
        faults,
    }
}

/// One timed run of each engine outside criterion's sampling, for the JSON
/// record (criterion's own samples drive the statistics in the report).
fn record_speedup(p: &Prepared) -> (f64, f64, f64) {
    let t0 = Instant::now();
    let scratch = p.session.campaign_from_scratch(&p.faults).unwrap();
    let scratch_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let ck = p.session.campaign(&p.faults).unwrap();
    let ck_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        scratch.outcomes, ck.outcomes,
        "{}: engines disagree",
        p.name
    );
    (scratch_s, ck_s, scratch_s / ck_s)
}

/// Index of the 95th-percentile element of an ascending-sorted slice of
/// `len` elements (`len` must be non-zero).
fn p95_index(len: usize) -> usize {
    ((len as f64 * 0.95).ceil() as usize)
        .saturating_sub(1)
        .min(len - 1)
}

/// Per-fault latency distribution of one session: p95 wall seconds (min of
/// [`LATENCY_REPS`] samples per fault) plus p95 and mean simulated cycles
/// (deterministic, noise-free).
struct FaultLatency {
    p95_s: f64,
    p95_cycles: u64,
    mean_cycles: u64,
}

fn fault_latency(session: &Session, faults: &[merlin_cpu::FaultSpec]) -> FaultLatency {
    let mut injector = session.injector().unwrap();
    let mut seconds = Vec::with_capacity(faults.len());
    let mut cycles = Vec::with_capacity(faults.len());
    for &fault in faults {
        let mut best = f64::INFINITY;
        let mut simulated = 0u64;
        for _ in 0..LATENCY_REPS {
            let t = Instant::now();
            let (_, c) = injector.run_with_cycles(fault);
            best = best.min(t.elapsed().as_secs_f64());
            simulated = c;
        }
        seconds.push(best);
        cycles.push(simulated);
    }
    seconds.sort_by(f64::total_cmp);
    cycles.sort_unstable();
    FaultLatency {
        p95_s: seconds[p95_index(seconds.len())],
        p95_cycles: cycles[p95_index(cycles.len())],
        mean_cycles: cycles.iter().sum::<u64>() / cycles.len() as u64,
    }
}

/// Nanoseconds per micro-op to produce a program's full micro-op stream:
/// cracking per instruction (`decode`, the old per-fetch hot loop, one heap
/// allocation per instruction) vs copying out of the shared pre-decoded
/// arena.  Deterministic work, min-of-reps timing.
fn decode_microbench(program: &Program) -> (f64, f64) {
    let decoded = DecodedProgram::new(program);
    let n_uops = decoded.num_uops().max(1);
    const REPS: usize = 50;
    let mut decode_ns = f64::INFINITY;
    let mut predecoded_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t = Instant::now();
        for (rip, inst) in program.instructions.iter().enumerate() {
            black_box(decode(rip as Rip, inst));
        }
        decode_ns = decode_ns.min(t.elapsed().as_nanos() as f64 / n_uops as f64);

        let mut sink = 0u64;
        let t = Instant::now();
        for rip in 0..program.len() {
            for &u in decoded.uops(rip as Rip) {
                sink ^= u64::from(u.rip) ^ u.imm as u64;
            }
        }
        predecoded_ns = predecoded_ns.min(t.elapsed().as_nanos() as f64 / n_uops as f64);
        black_box(sink);
    }
    (decode_ns, predecoded_ns)
}

/// Fraction of restores served by the incremental same-snapshot path — with
/// range-bound workers, expected near 1.0 (one full restore per worker per
/// range).
fn incremental_fraction(sched: &merlin_inject::ScheduleStats) -> f64 {
    sched.incremental_restores as f64 / (sched.restores.max(1)) as f64
}

fn checkpointing(c: &mut Criterion) {
    let mut group = c.benchmark_group("checkpointing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    let mut json_rows = Vec::new();
    for name in ["stringsearch", "mcf"] {
        let p = prepare(name);
        group.bench_function(format!("from_scratch/{name}"), |b| {
            b.iter(|| p.session.campaign_from_scratch(&p.faults).unwrap())
        });
        group.bench_function(format!("checkpointed/{name}"), |b| {
            b.iter(|| p.session.campaign(&p.faults).unwrap())
        });
        let (scratch_s, ck_s, speedup) = record_speedup(&p);
        let result = p.session.campaign(&p.faults).unwrap();
        let sched = result.schedule;
        let store = &p.session.golden_checkpoints().unwrap().store;
        let checkpoints = store.len();
        // Store size with delta memory snapshots vs what the dense
        // representation would occupy — the second axis (besides speedup)
        // the engine is tracked on.
        let footprint = store.footprint_bytes();
        let dense_footprint = store.dense_footprint_bytes();
        let shrink = dense_footprint as f64 / footprint.max(1) as f64;
        // Tail latency: suffix-work vs equal-cycle spacing, same policy,
        // over a larger fault list so the p95 order statistic is stable.
        let latency_faults = p
            .session
            .fault_list(Structure::RegisterFile, LATENCY_FAULTS, 2017)
            .unwrap();
        let sw = fault_latency(&p.session, &latency_faults);
        let eq = fault_latency(&p.session_equal, &latency_faults);
        let (decode_ns, predecoded_ns) = decode_microbench(p.session.program());
        println!(
            "checkpointing/{name}: {FAULTS} faults, {checkpoints} checkpoints, \
             from-scratch {scratch_s:.3}s vs checkpointed {ck_s:.3}s -> {speedup:.2}x, \
             store {footprint} B delta vs {dense_footprint} B dense -> {shrink:.2}x smaller, \
             {} restores ({} full / {} incremental = {:.4} incremental fraction, \
             {} B rewritten), \
             {} range steals, {} range splits, {} suffix cycles, \
             {} statically pruned, \
             p95/fault {:.2} ms suffix-work vs {:.2} ms equal-cycles \
             (p95 {} vs {} cycles, mean {} vs {} cycles), \
             decode {decode_ns:.1} ns/uop vs predecoded {predecoded_ns:.1} ns/uop",
            sched.restores,
            sched.full_restores,
            sched.incremental_restores,
            incremental_fraction(&sched),
            sched.restored_bytes,
            sched.range_steals,
            sched.range_splits,
            sched.suffix_cycles,
            sched.static_prunes,
            1e3 * sw.p95_s,
            1e3 * eq.p95_s,
            sw.p95_cycles,
            eq.p95_cycles,
            sw.mean_cycles,
            eq.mean_cycles,
        );
        json_rows.push(format!(
            "  {{\"workload\": \"{name}\", \"faults\": {FAULTS}, \
             \"golden_cycles\": {}, \"checkpoints\": {checkpoints}, \
             \"from_scratch_s\": {scratch_s:.6}, \"checkpointed_s\": {ck_s:.6}, \
             \"speedup\": {speedup:.3}, \"footprint_bytes\": {footprint}, \
             \"dense_footprint_bytes\": {dense_footprint}, \
             \"footprint_shrink\": {shrink:.3}, \
             \"ranges\": {}, \"restores\": {}, \"range_steals\": {}, \
             \"range_splits\": {}, \"full_restores\": {}, \
             \"incremental_restores\": {}, \"incremental_fraction\": {:.4}, \
             \"restored_bytes\": {}, \
             \"restored_bytes_by_structure\": {{\
             \"memory\": {}, \"caches\": {}, \"regfile\": {}, \"rename\": {}, \
             \"fetch\": {}, \"rob\": {}, \"lsq\": {}, \"predictor\": {}}}, \
             \"suffix_cycles\": {}, \"static_prunes\": {}, \
             \"latency_faults\": {LATENCY_FAULTS}, \
             \"p95_fault_s\": {:.6}, \
             \"p95_fault_s_equal_cycles\": {:.6}, \
             \"p95_fault_cycles\": {}, \
             \"p95_fault_cycles_equal_cycles\": {}, \
             \"mean_fault_cycles\": {}, \
             \"mean_fault_cycles_equal_cycles\": {}, \
             \"decode_ns_per_uop\": {decode_ns:.2}, \
             \"predecoded_ns_per_uop\": {predecoded_ns:.2}}}",
            p.session.golden().unwrap().result.cycles,
            sched.ranges,
            sched.restores,
            sched.range_steals,
            sched.range_splits,
            sched.full_restores,
            sched.incremental_restores,
            incremental_fraction(&sched),
            sched.restored_bytes,
            sched.restored_breakdown.memory,
            sched.restored_breakdown.caches,
            sched.restored_breakdown.regfile,
            sched.restored_breakdown.rename,
            sched.restored_breakdown.fetch,
            sched.restored_breakdown.rob,
            sched.restored_breakdown.lsq,
            sched.restored_breakdown.predictor,
            sched.suffix_cycles,
            sched.static_prunes,
            sw.p95_s,
            eq.p95_s,
            sw.p95_cycles,
            eq.p95_cycles,
            sw.mean_cycles,
            eq.mean_cycles,
        ));
    }
    group.finish();

    let json = format!("[\n{}\n]\n", json_rows.join(",\n"));
    // The bench runs from the crate directory or the workspace root; write
    // next to the workspace Cargo.toml in either case.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    if let Err(e) = std::fs::write(root.join("BENCH_CHECKPOINTING.json"), &json) {
        eprintln!("could not write BENCH_CHECKPOINTING.json: {e}");
    }
}

criterion_group!(benches, checkpointing);
criterion_main!(benches);
