//! Scheduler determinism on a real workload: the restore-aware campaign
//! scheduler must classify every fault identically no matter how many
//! workers run it, which spacing strategy placed the checkpoints, or whether
//! checkpoints are used at all — scheduling decides *who* simulates a fault
//! and *when*, never what it computes.

use merlin_cpu::{CheckpointPolicy, CpuConfig, SpacingStrategy, Structure};
use merlin_inject::{CampaignResult, Session};
use merlin_workloads::workload_by_name;

fn session(threads: usize, spacing: SpacingStrategy) -> Session {
    let w = workload_by_name("stringsearch").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(64);
    Session::builder(&w.program, &cfg)
        .checkpoints(CheckpointPolicy::with_target(12).with_spacing(spacing))
        .max_cycles(100_000_000)
        .threads(threads)
        .build()
        .unwrap()
}

#[test]
fn classifications_are_identical_across_workers_and_strategies() {
    let mut reference: Option<CampaignResult> = None;
    for spacing in [SpacingStrategy::SuffixWork, SpacingStrategy::EqualCycles] {
        let sequential = session(1, spacing);
        let faults = sequential
            .fault_list(Structure::RegisterFile, 250, 2017)
            .unwrap();
        let seq = sequential.campaign(&faults).unwrap();
        assert_eq!(seq.classification.total(), 250);
        assert!(seq.schedule.ranges > 1, "campaign must bucket into ranges");
        assert!(seq.schedule.restores > 0);

        // Same outcomes at every worker count.
        for threads in [2, 8] {
            let par = session(threads, spacing).campaign(&faults).unwrap();
            assert_eq!(seq.outcomes, par.outcomes, "{spacing:?} x{threads}");
            assert_eq!(seq.classification, par.classification);
        }

        // Same outcomes as simulating every fault from cycle 0.
        let scratch = sequential.campaign_from_scratch(&faults).unwrap();
        assert_eq!(seq.outcomes, scratch.outcomes, "{spacing:?} vs scratch");
        assert_eq!(scratch.schedule.restores, 0);
        assert!(
            seq.schedule.suffix_cycles < scratch.schedule.suffix_cycles / 2,
            "restoring must cut simulated cycles well below from-scratch \
             ({} vs {})",
            seq.schedule.suffix_cycles,
            scratch.schedule.suffix_cycles
        );

        // And identical across spacing strategies: checkpoint placement
        // moves restore points, not classifications.
        match &reference {
            None => reference = Some(seq),
            Some(r) => {
                assert_eq!(r.outcomes, seq.outcomes, "spacing changed outcomes");
                assert_eq!(r.classification, seq.classification);
            }
        }
    }
}

#[test]
fn suffix_work_spacing_keeps_the_cycle_zero_snapshot() {
    // Regression for the `usable_for_campaigns` invariant: suffix-work
    // thinning runs many rounds on a real workload and must never drop the
    // cycle-0 snapshot — without it the scheduler would have to fall back
    // to from-scratch simulation for every campaign.
    let s = session(1, SpacingStrategy::SuffixWork);
    s.golden().unwrap();
    let ckpts = s.golden_checkpoints().expect("checkpointing is on");
    assert!(ckpts.store.starts_at_reset());
    assert!(ckpts.usable_for_campaigns());
    let cycles: Vec<u64> = ckpts.store.cycles().collect();
    assert_eq!(cycles[0], 0);
    assert!(cycles.windows(2).all(|w| w[0] < w[1]));
    // The spacing is actually suffix-work shaped (dense early): the first
    // range is no wider than the last.
    assert!(
        cycles.len() >= 4,
        "expected a thinned store, got {cycles:?}"
    );
    let first = cycles[1] - cycles[0];
    let last = cycles[cycles.len() - 1] - cycles[cycles.len() - 2];
    assert!(
        first <= last,
        "expected dense-early spacing, got first {first} vs last {last} ({cycles:?})"
    );
}
