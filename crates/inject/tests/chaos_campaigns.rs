//! End-to-end failure containment under engine-level faults, driven by the
//! [`merlin_inject::chaos`] probes:
//!
//! * a fault whose simulation panics on every attempt is classified
//!   `Assert`, quarantines the worker's core (next restore is a forced full
//!   restore), and leaves every other fault's classification byte-identical
//!   to a clean campaign at any thread count;
//! * a worker panic at range level returns the range to the pool and is
//!   retried once on a fresh core; a persistently panicking range is
//!   classified `Assert` wholesale, deterministically.
//!
//! Chaos state is process-global, so every test here serialises on one lock.

use merlin_cpu::{CheckpointPolicy, CpuConfig};
use merlin_inject::chaos::{self, ChaosPlan};
use merlin_inject::{BatchingPolicy, FaultEffect, FaultSpec, Session, Structure};
use merlin_isa::{reg, AluOp, Cond, MemRef, Program, ProgramBuilder};
use std::sync::{Mutex, MutexGuard};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    match CHAOS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tiny_program() -> Program {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(&[11, 22, 33, 44, 55, 66, 77, 88]);
    b.movi(reg(10), data as i64);
    b.movi(reg(1), 0);
    b.movi(reg(2), 0);
    let top = b.bind_label();
    b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 8, top);
    b.out(reg(2));
    b.halt();
    b.build().unwrap()
}

fn session(threads: usize) -> Session {
    session_with(threads, BatchingPolicy::PerFault)
}

fn session_with(threads: usize, batching: BatchingPolicy) -> Session {
    Session::builder(&tiny_program(), &CpuConfig::default())
        .checkpoints(CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
            ..CheckpointPolicy::default()
        })
        .max_cycles(1_000_000)
        .threads(threads)
        .batching(batching)
        .build()
        .unwrap()
}

fn fault_list(s: &Session) -> Vec<FaultSpec> {
    s.fault_list(Structure::RegisterFile, 80, 42).unwrap()
}

/// A fault cycle that appears exactly once in the list, is not the latest,
/// and targets a statically-live register-file entry.  Statically-pruned
/// faults are classified without ever reaching the per-fault probe, so a
/// chaos target must be a fault the engine really simulates; uniqueness
/// means arming it targets exactly one fault, and "not the latest" means at
/// least one later fault exercises the post-panic restore on the same
/// worker.
fn unique_mid_cycle(s: &Session, faults: &[FaultSpec]) -> u64 {
    let analysis = s.analysis();
    let mut cycles: Vec<u64> = faults.iter().map(|f| f.cycle).collect();
    cycles.sort_unstable();
    let max = *cycles.last().unwrap();
    let mut live: Vec<u64> = faults
        .iter()
        .filter(|f| !analysis.rf_entry_statically_dead(f.entry))
        .map(|f| f.cycle)
        .collect();
    live.sort_unstable();
    live.into_iter()
        .find(|&c| c < max && cycles.iter().filter(|&&x| x == c).count() == 1)
        .expect("80 sampled faults contain a unique non-final cycle into a live entry")
}

#[test]
fn per_fault_panics_become_assert_and_quarantine_the_core() {
    let _serial = serial();
    let clean = session(1);
    let faults = fault_list(&clean);
    let clean_result = clean.campaign(&faults).unwrap();
    assert_eq!(clean_result.schedule.asserts, 0);
    assert_eq!(clean_result.schedule.poisoned_restores, 0);
    let target = unique_mid_cycle(&clean, &faults);

    let _guard = chaos::arm(ChaosPlan {
        fault_panic_cycles: vec![target],
        ..ChaosPlan::default()
    });
    let mut reference: Option<Vec<_>> = None;
    for threads in [1usize, 2, 4, 8] {
        let result = session(threads).campaign(&faults).unwrap();
        // The chaos fault is Assert; every other fault is byte-identical to
        // the clean campaign.
        for (out, clean_out) in result.outcomes.iter().zip(&clean_result.outcomes) {
            if out.fault.cycle == target {
                assert_eq!(out.effect, FaultEffect::Assert, "x{threads}");
            } else {
                assert_eq!(out, clean_out, "x{threads}");
            }
        }
        assert_eq!(result.schedule.asserts, 1, "x{threads}");
        if threads == 1 {
            // With one worker a later fault always follows the panic on the
            // same core, so its restore must be the forced full restore out
            // of quarantine.
            assert!(
                result.schedule.poisoned_restores >= 1,
                "the post-panic restore must be counted as poisoned"
            );
        }
        // And byte-identical across thread counts, panics included.
        match &reference {
            None => reference = Some(result.outcomes),
            Some(r) => assert_eq!(r, &result.outcomes, "x{threads}"),
        }
    }
    assert!(chaos::fault_panics_fired() >= 4, "one panic per campaign");
}

#[test]
fn transient_range_panic_is_retried_to_a_clean_result() {
    let _serial = serial();
    let clean = session(1);
    let faults = fault_list(&clean);
    let clean_result = clean.campaign(&faults).unwrap();
    let target = unique_mid_cycle(&clean, &faults);

    for threads in [1usize, 2, 4, 8] {
        let guard = chaos::arm(ChaosPlan {
            range_panic_cycle: Some(target),
            range_panic_times: 1,
            ..ChaosPlan::default()
        });
        let result = session(threads).campaign(&faults).unwrap();
        assert_eq!(chaos::range_panics_fired(), 1, "x{threads}");
        drop(guard);
        // A transient worker crash is invisible in the outcomes: the retry
        // on a fresh core reproduces the clean campaign byte-for-byte.
        assert_eq!(result.outcomes, clean_result.outcomes, "x{threads}");
        assert_eq!(result.schedule.range_retries, 1, "x{threads}");
        assert_eq!(result.schedule.asserts, 0, "x{threads}");
    }
}

#[test]
fn persistent_range_panic_classifies_the_range_assert_deterministically() {
    let _serial = serial();
    let clean = session(1);
    let faults = fault_list(&clean);
    let clean_result = clean.campaign(&faults).unwrap();
    let target = unique_mid_cycle(&clean, &faults);

    let mut reference: Option<Vec<_>> = None;
    for threads in [1usize, 2, 4] {
        let guard = chaos::arm(ChaosPlan {
            range_panic_cycle: Some(target),
            range_panic_times: 1_000,
            ..ChaosPlan::default()
        });
        let result = session(threads).campaign(&faults).unwrap();
        assert_eq!(
            chaos::range_panics_fired(),
            2,
            "first attempt plus its one retry, x{threads}"
        );
        drop(guard);
        assert_eq!(result.schedule.range_retries, 1, "x{threads}");
        // The poisoned range is classified Assert wholesale; every fault
        // outside it matches the clean campaign.
        let mut asserts = 0u64;
        let mut target_effect = None;
        for (out, clean_out) in result.outcomes.iter().zip(&clean_result.outcomes) {
            if out.fault.cycle == target {
                target_effect = Some(out.effect);
            }
            if out == clean_out {
                continue;
            }
            assert_eq!(out.effect, FaultEffect::Assert, "x{threads}");
            asserts += 1;
        }
        assert_eq!(target_effect, Some(FaultEffect::Assert), "x{threads}");
        assert!(asserts >= 1, "x{threads}");
        assert_eq!(result.schedule.asserts, asserts, "x{threads}");
        // Deterministic: the same range fails the same way at any count.
        match &reference {
            None => reference = Some(result.outcomes),
            Some(r) => assert_eq!(r, &result.outcomes, "x{threads}"),
        }
    }
}

#[test]
fn batched_fork_panic_quarantines_one_core_and_falls_back_per_fault() {
    let _serial = serial();
    let clean = session(1);
    let faults = fault_list(&clean);
    let clean_result = clean.campaign(&faults).unwrap();
    let target = unique_mid_cycle(&clean, &faults);

    // An unbudgeted chaos fault panics the fork spawn inside the batched
    // driver (quarantining exactly the spawning core and aborting the
    // range), then panics again on the per-fault fallback (classifying the
    // fault Assert, as it always did).
    let _guard = chaos::arm(ChaosPlan {
        fault_panic_cycles: vec![target],
        ..ChaosPlan::default()
    });
    let mut reference: Option<Vec<_>> = None;
    for threads in [1usize, 2, 4, 8] {
        let result = session_with(threads, BatchingPolicy::Batched)
            .campaign(&faults)
            .unwrap();
        for (out, clean_out) in result.outcomes.iter().zip(&clean_result.outcomes) {
            if out.fault.cycle == target {
                assert_eq!(out.effect, FaultEffect::Assert, "x{threads}");
            } else {
                assert_eq!(out, clean_out, "x{threads}");
            }
        }
        assert_eq!(result.schedule.asserts, 1, "x{threads}");
        // The aborted batched attempt is accounted like a range retry, and
        // every *other* range still ran batched.
        assert!(result.schedule.range_retries >= 1, "x{threads}");
        assert!(result.schedule.batched_ranges >= 1, "x{threads}");
        // Containment is per-core: the quarantined spawner surfaces as a
        // forced full restore when the per-fault fallback reuses it, not
        // as a poisoned pool.
        assert!(result.schedule.poisoned_restores >= 1, "x{threads}");
        match &reference {
            None => reference = Some(result.outcomes),
            Some(r) => assert_eq!(r, &result.outcomes, "x{threads}"),
        }
    }
    assert!(
        chaos::fault_panics_fired() >= 8,
        "per campaign: once at fork spawn, once on the fallback"
    );
}

#[test]
fn injector_core_recovers_from_a_panic_bit_for_bit() {
    let _serial = serial();
    let s = session(1);
    let faults = fault_list(&s);
    let target = unique_mid_cycle(&s, &faults);
    let panicking = *faults.iter().find(|f| f.cycle == target).unwrap();
    let later = *faults
        .iter()
        .max_by_key(|f| (f.cycle, f.entry, f.bit))
        .unwrap();

    let mut injector = s.injector().unwrap();
    let clean_later = injector.run_with_cycles(later);

    {
        let _guard = chaos::arm(ChaosPlan {
            fault_panic_cycles: vec![target],
            ..ChaosPlan::default()
        });
        assert_eq!(injector.run(panicking), FaultEffect::Assert);
        assert_eq!(chaos::fault_panics_fired(), 1);
    }

    // The panic left the injector's reused core quarantined; the next run
    // must match both its own pre-panic result and a fresh injector
    // bit-for-bit.
    let post_panic = injector.run_with_cycles(later);
    let fresh = s.injector().unwrap().run_with_cycles(later);
    assert_eq!(post_panic, clean_later);
    assert_eq!(post_panic, fresh);
}
