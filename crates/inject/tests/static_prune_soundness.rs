//! Property: the static liveness prune is *sound*.
//!
//! A register-file entry the analysis calls statically dead is the identity
//! physical entry of an architectural register the program text never
//! mentions; the prune classifies faults into such entries as Masked with
//! zero simulation.  Two properties keep that honest:
//!
//! * **any** statically-pruned site, when fully simulated through the
//!   injector (which never consults the analysis), really classifies Masked
//!   — for every dead entry, every bit, every injection cycle;
//! * a pruned campaign ([`Session::campaign`]) and an unpruned from-scratch
//!   campaign ([`Session::campaign_from_scratch`]) produce byte-identical
//!   outcome vectors at 1/2/4/8 worker threads, with the pruned run
//!   accounting exactly the faults the census predicts.

use merlin_cpu::{CheckpointPolicy, CpuConfig};
use merlin_inject::{FaultEffect, FaultInjector, FaultSpec, Session, Structure};
use merlin_isa::{reg, AluOp, Cond, MemRef, Program, ProgramBuilder};
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

fn tiny_program() -> Program {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
    b.movi(reg(10), data as i64);
    b.movi(reg(1), 0);
    b.movi(reg(2), 0);
    let top = b.bind_label();
    b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 8, top);
    b.out(reg(2));
    b.halt();
    b.build().unwrap()
}

fn session(threads: usize) -> Session {
    Session::builder(&tiny_program(), &CpuConfig::default().with_phys_regs(64))
        .checkpoints(CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
            ..CheckpointPolicy::default()
        })
        .max_cycles(1_000_000)
        .threads(threads)
        .build()
        .unwrap()
}

struct Shared {
    /// Sessions at 1, 2, 4 and 8 worker threads over the same program.
    sessions: Vec<Session>,
    /// A full-simulation injector that never consults the static analysis.
    injector: Mutex<FaultInjector>,
    /// Every register-file entry the analysis proves statically dead.
    dead_entries: Vec<usize>,
    golden_cycles: u64,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let sessions: Vec<Session> = [1usize, 2, 4, 8].into_iter().map(session).collect();
        let golden_cycles = sessions[0].golden().unwrap().result.cycles;
        let analysis = sessions[0].analysis().clone();
        let dead_entries: Vec<usize> = (0..64)
            .filter(|&e| analysis.rf_entry_statically_dead(e))
            .collect();
        assert!(
            !dead_entries.is_empty(),
            "the property needs at least one statically dead entry"
        );
        let injector = Mutex::new(sessions[0].injector().unwrap());
        Shared {
            sessions,
            injector,
            dead_entries,
            golden_cycles,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_statically_pruned_site_fully_simulated_is_masked(
        entry_sel in 0usize..1_000_000,
        bit in 0u8..64,
        cycle_sel in 0u64..1_000_000_000,
    ) {
        let s = shared();
        let entry = s.dead_entries[entry_sel % s.dead_entries.len()];
        let cycle = cycle_sel % s.golden_cycles + 1;
        let fault = FaultSpec::new(Structure::RegisterFile, entry, bit, cycle);
        let effect = s.injector.lock().unwrap().run(fault);
        prop_assert_eq!(
            effect,
            FaultEffect::Masked,
            "statically pruned {} was not masked under full simulation",
            fault
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pruned_and_unpruned_campaigns_are_byte_identical_at_any_thread_count(
        seed in 0u64..1_000_000,
        count in 40usize..80,
    ) {
        let s = shared();
        let faults = s.sessions[0]
            .fault_list(Structure::RegisterFile, count, seed)
            .unwrap();
        let predicted: u64 = faults
            .iter()
            .filter(|f| s.dead_entries.contains(&f.entry))
            .count() as u64;

        // The unpruned baseline simulates every fault from cycle 0.
        let scratch = s.sessions[0].campaign_from_scratch(&faults).unwrap();
        prop_assert_eq!(scratch.schedule.static_prunes, 0);

        for session in &s.sessions {
            let pruned = session.campaign(&faults).unwrap();
            prop_assert_eq!(
                pruned.schedule.static_prunes,
                predicted,
                "x{} threads",
                session.threads()
            );
            prop_assert_eq!(
                &pruned.outcomes,
                &scratch.outcomes,
                "pruning changed an outcome at x{} threads",
                session.threads()
            );
        }
    }
}
