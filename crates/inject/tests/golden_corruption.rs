//! Property: corrupting a persisted `.golden` artifact — flipping any single
//! byte or truncating it at any length — never panics the loader, never
//! decodes into a *different* golden run, and always lands in one of two
//! benign buckets:
//!
//! * a **checksum/decode reject**: the file is quarantined to
//!   `<name>.golden.corrupt`, counted in `artifact_rejects`, and the golden
//!   run is transparently rebuilt;
//! * a **silent cache miss** (magic/version/fingerprint/EOF miss): the file
//!   is left in place, nothing is counted, and the run is rebuilt.
//!
//! Either way the session must hand back a golden run identical to the
//! pristine one and `golden_builds() == 1` must hold — proof the corrupt
//! bytes were never trusted.

use merlin_cpu::{CheckpointPolicy, CpuConfig};
use merlin_inject::chaos;
use merlin_inject::{GoldenRun, SessionCache};
use merlin_isa::Program;
use proptest::prelude::*;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn program() -> Program {
    merlin_workloads::workload_by_name("stringsearch")
        .unwrap()
        .program
        .clone()
}

fn build_session(dir: &Path) -> (SessionCache, std::sync::Arc<merlin_inject::Session>) {
    let cache = SessionCache::with_disk_dir(dir);
    let session = cache
        .session("corrupt-prop", &program(), &CpuConfig::default(), |b| {
            b.max_cycles(10_000_000).checkpoints(CheckpointPolicy {
                enabled: true,
                target_checkpoints: 6,
                min_interval: 8,
                ..CheckpointPolicy::default()
            })
        })
        .unwrap();
    (cache, session)
}

struct Pristine {
    dir: PathBuf,
    path: PathBuf,
    bytes: Vec<u8>,
    golden: GoldenRun,
}

/// Builds the pristine artifact exactly once for the whole property run.
fn pristine() -> &'static Pristine {
    static PRISTINE: OnceLock<Pristine> = OnceLock::new();
    PRISTINE.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("merlin-golden-corruption-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let (cache, session) = build_session(&dir);
        let golden = session.golden().unwrap().clone();
        assert_eq!(session.golden_builds(), 1);
        assert_eq!(cache.artifact_rejects(), 0);
        let path = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "golden"))
            .expect("the cache persisted exactly one .golden file");
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.len() > 28, "header + payload + checksum trailer");
        Pristine {
            dir,
            path,
            bytes,
            golden,
        }
    })
}

fn corrupt_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".corrupt");
    PathBuf::from(os)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_flip_or_truncation_is_rejected_or_missed_never_trusted(
        mode in 0usize..2,
        sel in 0usize..1_000_000,
    ) {
        let p = pristine();
        let quarantine = corrupt_path(&p.path);
        let _ = fs::remove_file(&quarantine);
        fs::write(&p.path, &p.bytes).unwrap();

        let corrupted = if mode == 0 {
            let offset = sel % p.bytes.len();
            chaos::flip_byte(&p.path, offset).unwrap();
            let mut b = p.bytes.clone();
            b[offset] ^= 0x01;
            b
        } else {
            // Strictly shrinking: truncating to the full length is a no-op.
            let len = sel % p.bytes.len();
            chaos::truncate_file(&p.path, len).unwrap();
            p.bytes[..len].to_vec()
        };
        prop_assert_ne!(&corrupted, &p.bytes);

        // A fresh cache must survive the corrupted artifact: same golden
        // run, built exactly once, corrupt bytes never decoded.
        let (cache, session) = build_session(&p.dir);
        let reloaded = session.golden().unwrap();
        prop_assert_eq!(reloaded, &p.golden);
        prop_assert_eq!(session.golden_builds(), 1);

        let rejects = cache.artifact_rejects();
        prop_assert!(rejects <= 1);
        if rejects == 1 {
            // Checksum/decode reject: quarantined byte-for-byte.
            prop_assert_eq!(fs::read(&quarantine).unwrap(), corrupted);
        } else {
            // Header/EOF miss: never quarantined (the rebuild re-persists
            // over the unrecognised file).
            prop_assert!(!quarantine.exists());
        }
        let _ = fs::remove_file(&quarantine);
    }
}
