//! Property: fork-on-divergence batching is *outcome-invisible*.
//!
//! The batched driver replays each checkpoint range's golden prefix once
//! and forks faulty cores from the live golden state, so it must prove it
//! changed only the work, never the answer:
//!
//! * a batched campaign is byte-identical to the per-fault oracle AND to a
//!   full from-scratch simulation at 1/2/4/8 worker threads, for random
//!   fault lists (proptest) and for a pinned list with telemetry checks;
//! * every probe-retired fork (counted by `forks_retired`, classified
//!   Masked without finishing its run) really is Masked under full
//!   simulation — the byte-identity against the from-scratch campaign,
//!   which fully simulates every fault with no convergence probes, pins
//!   exactly that;
//! * merged forks (fault equivalence) adopt outcomes that match what their
//!   faults classify as when simulated individually — forced here with
//!   duplicated fault specs, which collide at spawn and must merge.

use merlin_cpu::{CheckpointPolicy, CpuConfig};
use merlin_inject::{BatchingPolicy, FaultSpec, Session, Structure};
use merlin_isa::{reg, AluOp, Cond, MemRef, Program, ProgramBuilder};
use proptest::prelude::*;
use std::sync::OnceLock;

fn tiny_program() -> Program {
    let mut b = ProgramBuilder::new();
    let data = b.alloc_words(&[2, 7, 1, 8, 2, 8, 1, 8]);
    b.movi(reg(10), data as i64);
    b.movi(reg(1), 0);
    b.movi(reg(2), 0);
    let top = b.bind_label();
    b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
    b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
    b.branch_ri(Cond::Lt, reg(1), 8, top);
    b.out(reg(2));
    b.halt();
    b.build().unwrap()
}

fn session(threads: usize, batching: BatchingPolicy) -> Session {
    Session::builder(&tiny_program(), &CpuConfig::default().with_phys_regs(64))
        .checkpoints(CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
            ..CheckpointPolicy::default()
        })
        .max_cycles(1_000_000)
        .threads(threads)
        .batching(batching)
        .build()
        .unwrap()
}

struct Shared {
    /// Batched sessions at 1, 2, 4 and 8 worker threads.
    batched: Vec<Session>,
    /// The per-fault oracle (single-threaded; outcomes are thread-count
    /// invariant anyway, and the suite pins that separately).
    per_fault: Session,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        batched: [1usize, 2, 4, 8]
            .into_iter()
            .map(|t| session(t, BatchingPolicy::Batched))
            .collect(),
        per_fault: session(1, BatchingPolicy::PerFault),
    })
}

#[test]
fn batched_campaign_matches_the_per_fault_oracle_with_live_telemetry() {
    let s = shared();
    let faults = s
        .per_fault
        .fault_list(Structure::RegisterFile, 80, 42)
        .unwrap();
    let oracle = s.per_fault.campaign(&faults).unwrap();
    // The per-fault engine never batches, forks or replays.
    assert_eq!(oracle.schedule.batched_ranges, 0);
    assert_eq!(oracle.schedule.forks_spawned, 0);
    assert_eq!(oracle.schedule.forks_retired, 0);
    assert_eq!(oracle.schedule.forks_merged, 0);
    assert_eq!(oracle.schedule.golden_replay_cycles, 0);
    let scratch = s.per_fault.campaign_from_scratch(&faults).unwrap();
    assert_eq!(oracle.outcomes, scratch.outcomes);

    for session in &s.batched {
        let t = session.threads();
        let batched = session.campaign(&faults).unwrap();
        assert_eq!(batched.outcomes, oracle.outcomes, "x{t} threads");
        assert_eq!(batched.early_exits, oracle.early_exits, "x{t} threads");
        // The batched engine actually ran: every range went through the
        // driver and every simulated fault lived as a fork.
        assert!(batched.schedule.batched_ranges > 0, "x{t} threads");
        assert!(batched.schedule.forks_spawned > 0, "x{t} threads");
        assert!(
            batched.schedule.forks_spawned
                >= batched.schedule.forks_retired + batched.schedule.forks_merged,
            "x{t} threads"
        );
        // Every probe retirement produces at least its own early-exit
        // outcome (followers of a probe-retired representative add more).
        assert!(
            batched.schedule.forks_retired <= batched.early_exits,
            "x{t} threads"
        );
        // The whole point of the inversion: the golden prefix is replayed
        // once per range, and the faulty cores simulate strictly fewer
        // cycles than the per-fault engine paid in total.
        assert!(batched.schedule.golden_replay_cycles > 0, "x{t} threads");
        assert!(
            batched.schedule.suffix_cycles + batched.schedule.golden_replay_cycles
                < oracle.schedule.suffix_cycles,
            "x{t} threads: batching must reduce simulated cycles \
             (batched {} + golden replay {} vs per-fault {})",
            batched.schedule.suffix_cycles,
            batched.schedule.golden_replay_cycles,
            oracle.schedule.suffix_cycles
        );
    }
}

#[test]
fn duplicated_faults_collide_at_spawn_and_merge_exactly() {
    let s = shared();
    let base = s
        .per_fault
        .fault_list(Structure::RegisterFile, 40, 7)
        .unwrap();
    // Every fault twice: the twins spawn at the same cycle with the same
    // injected corruption, so the merge pass must fold each pair.
    let doubled: Vec<FaultSpec> = base.iter().flat_map(|&f| [f, f]).collect();
    let oracle = s.per_fault.campaign(&doubled).unwrap();
    for session in &s.batched {
        let t = session.threads();
        let result = session.campaign(&doubled).unwrap();
        assert_eq!(result.outcomes, oracle.outcomes, "x{t} threads");
        assert!(
            result.schedule.forks_merged > 0,
            "x{t} threads: duplicated faults must trigger fault-equivalence merges"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random fault lists: batched == per-fault == full simulation, at
    /// every thread count.  The from-scratch leg fully simulates every
    /// fault with no convergence probes, so this simultaneously proves
    /// that each probe-retired fork (`forks_retired`) really classifies
    /// Masked under full simulation.
    #[test]
    fn batched_equals_per_fault_and_full_simulation(
        seed in 0u64..1_000_000,
        count in 40usize..80,
    ) {
        let s = shared();
        let faults = s
            .per_fault
            .fault_list(Structure::RegisterFile, count, seed)
            .unwrap();
        let oracle = s.per_fault.campaign(&faults).unwrap();
        let scratch = s.per_fault.campaign_from_scratch(&faults).unwrap();
        prop_assert_eq!(&oracle.outcomes, &scratch.outcomes);
        for session in &s.batched {
            let batched = session.campaign(&faults).unwrap();
            prop_assert_eq!(
                &batched.outcomes,
                &scratch.outcomes,
                "batching changed an outcome at x{} threads",
                session.threads()
            );
        }
    }
}
