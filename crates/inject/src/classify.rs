//! Fault-effect classification (Table 2 of the paper) and aggregate
//! classification histograms.

use merlin_cpu::{ExitReason, RunResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The six fault-effect classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultEffect {
    /// Output and exceptions identical to the golden run.
    Masked,
    /// Output corrupted without abnormal behaviour (silent data corruption).
    Sdc,
    /// Output intact but extra architectural exceptions were observed
    /// (detected, unrecoverable error indications).
    Due,
    /// The program exceeded three times its golden execution time
    /// (deadlock/livelock).
    Timeout,
    /// The simulated program or system crashed.
    Crash,
    /// The simulator stopped on an internal assertion.
    Assert,
}

impl FaultEffect {
    /// All classes in the order used by the paper's figures.
    pub fn all() -> &'static [FaultEffect] {
        &[
            FaultEffect::Masked,
            FaultEffect::Sdc,
            FaultEffect::Due,
            FaultEffect::Timeout,
            FaultEffect::Crash,
            FaultEffect::Assert,
        ]
    }

    /// `true` for every class other than `Masked` (the numerator of AVF).
    pub fn is_non_masked(self) -> bool {
        self != FaultEffect::Masked
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            FaultEffect::Masked => "Masked",
            FaultEffect::Sdc => "SDC",
            FaultEffect::Due => "DUE",
            FaultEffect::Timeout => "Timeout",
            FaultEffect::Crash => "Crash",
            FaultEffect::Assert => "Assert",
        }
    }
}

impl fmt::Display for FaultEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification used for truncated (Simpoint-interval) runs, §4.4.3.4 /
/// Table 4: SDC and Timeout cannot be established before the program ends,
/// so surviving faults are reported as `Unknown`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TruncatedEffect {
    /// The fault was over-written or never read within the interval and the
    /// architectural behaviour so far matches the golden run.
    Masked,
    /// Extra exceptions were observed within the interval.
    Due,
    /// The program crashed within the interval.
    Crash,
    /// The simulator asserted within the interval.
    Assert,
    /// The fault is still live at the end of the interval; its eventual
    /// effect is unknown.
    Unknown,
}

impl TruncatedEffect {
    /// All truncated classes in Table 4's order.
    pub fn all() -> &'static [TruncatedEffect] {
        &[
            TruncatedEffect::Masked,
            TruncatedEffect::Due,
            TruncatedEffect::Crash,
            TruncatedEffect::Assert,
            TruncatedEffect::Unknown,
        ]
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            TruncatedEffect::Masked => "Masked",
            TruncatedEffect::Due => "DUE",
            TruncatedEffect::Crash => "Crash",
            TruncatedEffect::Assert => "Assert",
            TruncatedEffect::Unknown => "Unknown",
        }
    }
}

impl fmt::Display for TruncatedEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Compares a faulty run against the golden run and assigns a Table 2 class.
///
/// # Examples
///
/// ```
/// use merlin_inject::{classify, FaultEffect};
/// # use merlin_cpu::{ExitReason, RunResult};
/// # fn mk(output: Vec<u64>, exceptions: u64, exit: ExitReason) -> RunResult {
/// #     RunResult { exit, output, cycles: 100, committed_instructions: 10,
/// #         committed_uops: 12, arithmetic_exceptions: exceptions, misaligned_exceptions: 0 }
/// # }
/// let golden = mk(vec![1, 2, 3], 0, ExitReason::Halted);
/// assert_eq!(classify(&golden, &mk(vec![1, 2, 3], 0, ExitReason::Halted)), FaultEffect::Masked);
/// assert_eq!(classify(&golden, &mk(vec![1, 9, 3], 0, ExitReason::Halted)), FaultEffect::Sdc);
/// assert_eq!(classify(&golden, &mk(vec![1, 2, 3], 2, ExitReason::Halted)), FaultEffect::Due);
/// ```
pub fn classify(golden: &RunResult, faulty: &RunResult) -> FaultEffect {
    match &faulty.exit {
        ExitReason::Crash(_) => FaultEffect::Crash,
        ExitReason::Assert(_) => FaultEffect::Assert,
        ExitReason::Timeout => FaultEffect::Timeout,
        ExitReason::Halted => {
            if faulty.output != golden.output {
                FaultEffect::Sdc
            } else if faulty.exceptions() != golden.exceptions() {
                FaultEffect::Due
            } else {
                FaultEffect::Masked
            }
        }
    }
}

/// Aggregate histogram over the six fault-effect classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Classification {
    /// Count of faults classified as Masked.
    pub masked: u64,
    /// Count of SDCs.
    pub sdc: u64,
    /// Count of DUEs.
    pub due: u64,
    /// Count of Timeouts.
    pub timeout: u64,
    /// Count of Crashes.
    pub crash: u64,
    /// Count of Asserts.
    pub assert: u64,
}

impl Classification {
    /// Records `count` faults of class `effect`.
    pub fn record(&mut self, effect: FaultEffect, count: u64) {
        match effect {
            FaultEffect::Masked => self.masked += count,
            FaultEffect::Sdc => self.sdc += count,
            FaultEffect::Due => self.due += count,
            FaultEffect::Timeout => self.timeout += count,
            FaultEffect::Crash => self.crash += count,
            FaultEffect::Assert => self.assert += count,
        }
    }

    /// Count for one class.
    pub fn count(&self, effect: FaultEffect) -> u64 {
        match effect {
            FaultEffect::Masked => self.masked,
            FaultEffect::Sdc => self.sdc,
            FaultEffect::Due => self.due,
            FaultEffect::Timeout => self.timeout,
            FaultEffect::Crash => self.crash,
            FaultEffect::Assert => self.assert,
        }
    }

    /// Total faults classified.
    pub fn total(&self) -> u64 {
        FaultEffect::all().iter().map(|&e| self.count(e)).sum()
    }

    /// Faults in any non-masked class.
    pub fn non_masked(&self) -> u64 {
        self.total() - self.masked
    }

    /// Architectural vulnerability factor: non-masked / total.
    pub fn avf(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.non_masked() as f64 / self.total() as f64
        }
    }

    /// Percentage of faults in one class.
    pub fn percentage(&self, effect: FaultEffect) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.count(effect) as f64 / self.total() as f64
        }
    }

    /// Largest absolute per-class difference, in percentage points, between
    /// two classifications — the paper's "inaccuracy in percentile units".
    pub fn max_inaccuracy(&self, other: &Classification) -> f64 {
        FaultEffect::all()
            .iter()
            .map(|&e| (self.percentage(e) - other.percentage(e)).abs())
            .fold(0.0, f64::max)
    }

    /// Per-class absolute difference in percentage points.
    pub fn inaccuracy(&self, other: &Classification, effect: FaultEffect) -> f64 {
        (self.percentage(effect) - other.percentage(effect)).abs()
    }
}

impl Add for Classification {
    type Output = Classification;
    fn add(self, rhs: Classification) -> Classification {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for Classification {
    fn add_assign(&mut self, rhs: Classification) {
        self.masked += rhs.masked;
        self.sdc += rhs.sdc;
        self.due += rhs.due;
        self.timeout += rhs.timeout;
        self.crash += rhs.crash;
        self.assert += rhs.assert;
    }
}

impl fmt::Display for Classification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Masked {:.2}% | SDC {:.2}% | DUE {:.2}% | Timeout {:.2}% | Crash {:.2}% | Assert {:.2}% (n={})",
            self.percentage(FaultEffect::Masked),
            self.percentage(FaultEffect::Sdc),
            self.percentage(FaultEffect::Due),
            self.percentage(FaultEffect::Timeout),
            self.percentage(FaultEffect::Crash),
            self.percentage(FaultEffect::Assert),
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_cpu::{AssertKind, CrashKind};

    fn run(exit: ExitReason, output: Vec<u64>, exc: u64) -> RunResult {
        RunResult {
            exit,
            output,
            cycles: 1000,
            committed_instructions: 100,
            committed_uops: 120,
            arithmetic_exceptions: exc,
            misaligned_exceptions: 0,
        }
    }

    #[test]
    fn classification_covers_every_exit() {
        let golden = run(ExitReason::Halted, vec![1, 2], 0);
        assert_eq!(
            classify(&golden, &run(ExitReason::Halted, vec![1, 2], 0)),
            FaultEffect::Masked
        );
        assert_eq!(
            classify(&golden, &run(ExitReason::Halted, vec![1, 3], 0)),
            FaultEffect::Sdc
        );
        assert_eq!(
            classify(&golden, &run(ExitReason::Halted, vec![1, 2], 1)),
            FaultEffect::Due
        );
        assert_eq!(
            classify(&golden, &run(ExitReason::Timeout, vec![], 0)),
            FaultEffect::Timeout
        );
        assert_eq!(
            classify(
                &golden,
                &run(
                    ExitReason::Crash(CrashKind::MemoryOutOfBounds { addr: 1 }),
                    vec![],
                    0
                )
            ),
            FaultEffect::Crash
        );
        assert_eq!(
            classify(
                &golden,
                &run(
                    ExitReason::Assert(AssertKind::StoreToCode { addr: 1 }),
                    vec![],
                    0
                )
            ),
            FaultEffect::Assert
        );
    }

    #[test]
    fn output_corruption_takes_priority_over_exceptions() {
        let golden = run(ExitReason::Halted, vec![5], 0);
        let faulty = run(ExitReason::Halted, vec![6], 3);
        assert_eq!(classify(&golden, &faulty), FaultEffect::Sdc);
    }

    #[test]
    fn histogram_accounting() {
        let mut c = Classification::default();
        c.record(FaultEffect::Masked, 90);
        c.record(FaultEffect::Sdc, 5);
        c.record(FaultEffect::Crash, 5);
        assert_eq!(c.total(), 100);
        assert_eq!(c.non_masked(), 10);
        assert!((c.avf() - 0.10).abs() < 1e-12);
        assert!((c.percentage(FaultEffect::Sdc) - 5.0).abs() < 1e-12);
        let mut d = Classification::default();
        d.record(FaultEffect::Masked, 85);
        d.record(FaultEffect::Sdc, 10);
        d.record(FaultEffect::Crash, 5);
        assert!((c.max_inaccuracy(&d) - 5.0).abs() < 1e-12);
        assert!((c.inaccuracy(&d, FaultEffect::Crash)).abs() < 1e-12);
        let sum = c + d;
        assert_eq!(sum.total(), 200);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let c = Classification::default();
        assert_eq!(c.total(), 0);
        assert_eq!(c.avf(), 0.0);
        assert_eq!(c.percentage(FaultEffect::Sdc), 0.0);
        assert!(!c.to_string().is_empty());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = FaultEffect::all().iter().map(|e| e.label()).collect();
        labels.extend(TruncatedEffect::all().iter().map(|e| e.label()));
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 7); // Masked/DUE/Crash/Assert are shared labels
    }
}
