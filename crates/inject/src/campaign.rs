//! Injection campaign execution: golden runs, single-fault runs and
//! multi-threaded campaigns over a fault list.
//!
//! # The checkpoint-and-restore injection engine
//!
//! Every faulty run is bit-identical to the golden run until its fault's
//! injection cycle, so simulating each fault from cycle 0 (the classic GeFIN
//! approach) repays the same prefix thousands of times.  The engine here
//! removes that cost:
//!
//! 1. [`Session::golden`](crate::Session::golden) executes the golden run
//!    exactly once while snapshotting the complete microarchitectural state
//!    ([`CpuState`](merlin_cpu::CpuState)) into a [`CheckpointStore`], in a
//!    single adaptive pass: snapshots are taken at the policy's minimum
//!    interval and the store is thinned (interval doubled) whenever it
//!    exceeds twice the [`CheckpointPolicy`] target, so a run of any length
//!    ends up with ~target..2×target checkpoints without a sizing pre-pass.
//!    The store rides inside the returned [`GoldenRun`], so every campaign
//!    over that golden run shares it.
//! 2. [`Session::campaign`](crate::Session::campaign) sorts the fault list
//!    by injection cycle and hands faults to worker threads through an
//!    atomic work index (dynamic scheduling — a slow faulty run no longer
//!    serialises a whole static chunk).  Each worker builds **one** core
//!    object and, per fault, restores the latest checkpoint at or before the
//!    injection cycle, injects, and simulates only the suffix against the
//!    golden timeout.
//! 3. While a faulty run is past its injection cycle, the worker compares the
//!    core's state against the golden checkpoint at each checkpoint boundary
//!    it crosses.  If the states are bit-identical the remainder of the run
//!    is guaranteed identical to the golden run, so the fault is classified
//!    Masked immediately (early exit) instead of simulating to the end.
//!
//! The program and configuration are shared across workers via `Arc` — no
//! per-fault `Program`/`CpuConfig` clones, no per-fault core construction.
//!
//! Correctness bar: a checkpointed campaign produces byte-identical
//! [`CampaignResult::outcomes`] to the from-scratch path.  Restoration is
//! exact (the core is deterministic and [`CpuState`](merlin_cpu::CpuState)
//! captures all mutable state) and the early exit only fires when the faulty
//! state has provably re-converged, so both paths classify every fault
//! identically.

use crate::classify::{classify, Classification, FaultEffect};
use merlin_cpu::{
    CheckpointPolicy, CheckpointStore, Cpu, CpuConfig, FaultSpec, NullProbe, RunResult,
};
use merlin_isa::Program;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The fault-free reference execution a campaign compares against.
///
/// When produced under an enabled [`CheckpointPolicy`] (the default for
/// [`Session::golden`](crate::Session::golden)) it also carries the
/// checkpoint store, which every campaign and baseline over this golden run
/// then shares (`Arc`); a disabled policy leaves it empty and campaigns fall
/// back to from-scratch simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Result of the fault-free run.
    pub result: RunResult,
    /// Cycle budget granted to faulty runs: the paper's 3× rule for
    /// deadlock/livelock detection.
    pub timeout_cycles: u64,
    /// Checkpoints of the golden run plus the policy they were built under,
    /// when checkpointing is enabled.  Never serialised (a store can run to
    /// many megabytes and is cheap to rebuild); with real serde this field
    /// must keep its `skip` attribute or the derive stops compiling.
    #[serde(skip)]
    pub checkpoints: Option<Arc<GoldenCheckpoints>>,
}

impl GoldenRun {
    /// The paper's deadlock/livelock budget for faulty runs: 3× the golden
    /// run's cycle count, floored at 1000 cycles for very short programs.
    /// The single definition both golden-run builders use, so the rule
    /// cannot drift between the plain and checkpointed paths.
    pub fn timeout_for(golden_cycles: u64) -> u64 {
        golden_cycles.saturating_mul(3).max(1000)
    }
}

/// A checkpoint store together with the policy that built it.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCheckpoints {
    /// The per-cycle-interval snapshots of the golden run.
    pub store: CheckpointStore,
    /// The policy the store was built under (controls early exit).
    pub policy: CheckpointPolicy,
}

impl GoldenCheckpoints {
    /// Whether the store can serve every injection cycle of a campaign — it
    /// must hold a snapshot at or before any cycle, i.e. start with the
    /// cycle-0 reset state.  Stores built through the session layer always
    /// qualify; a degenerate store (decoded from a foreign `.golden` file,
    /// or built on a mid-run core) makes campaigns fall back to from-scratch
    /// simulation instead of panicking a worker.
    pub fn usable_for_campaigns(&self) -> bool {
        self.store.starts_at_reset()
    }
}

/// Errors produced while setting up or executing a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The golden (fault-free) run did not terminate cleanly, so no
    /// reference to classify against exists.
    GoldenRunFailed(String),
    /// The processor configuration is invalid.
    BadConfig(String),
    /// A fault specification handed to the session violates the fault model
    /// (bit index outside the 64-bit entry).
    InvalidFault(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed(e) => write!(f, "golden run failed: {e}"),
            CampaignError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
            CampaignError::InvalidFault(e) => write!(f, "invalid fault specification: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

fn golden_run_from_result(result: RunResult) -> Result<RunResult, CampaignError> {
    if !result.exit.is_halted() {
        return Err(CampaignError::GoldenRunFailed(format!(
            "golden run exited with {:?} after {} cycles",
            result.exit, result.cycles
        )));
    }
    Ok(result)
}

/// Plain golden run, shared by [`run_golden`] and the session layer.
pub(crate) fn build_golden_plain(
    program: &Arc<Program>,
    cfg: &CpuConfig,
    max_cycles: u64,
) -> Result<GoldenRun, CampaignError> {
    let mut cpu = Cpu::new(Arc::clone(program), cfg.clone())
        .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
    let result = golden_run_from_result(cpu.run(max_cycles, &mut NullProbe))?;
    let timeout_cycles = GoldenRun::timeout_for(result.cycles);
    Ok(GoldenRun {
        result,
        timeout_cycles,
        checkpoints: None,
    })
}

/// One-pass checkpointed golden run, shared by [`run_golden_checkpointed`]
/// and [`Session::golden`](crate::Session::golden): the golden run is
/// simulated exactly once, snapshotting every `policy.min_interval` cycles
/// and thinning the store (doubling the interval) whenever it exceeds twice
/// the policy's target count.
pub(crate) fn build_golden_checkpointed(
    program: &Arc<Program>,
    cfg: &CpuConfig,
    max_cycles: u64,
    policy: &CheckpointPolicy,
) -> Result<GoldenRun, CampaignError> {
    if !policy.enabled {
        return build_golden_plain(program, cfg, max_cycles);
    }
    let mut cpu = Cpu::new(Arc::clone(program), cfg.clone())
        .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
    let (result, store) = cpu.run_with_adaptive_checkpoints(
        max_cycles,
        &mut NullProbe,
        policy.min_interval,
        policy.target_checkpoints,
    );
    let result = golden_run_from_result(result)?;
    let timeout_cycles = GoldenRun::timeout_for(result.cycles);
    Ok(GoldenRun {
        result,
        timeout_cycles,
        checkpoints: Some(Arc::new(GoldenCheckpoints {
            store,
            policy: *policy,
        })),
    })
}

/// Executes the fault-free reference run of `program` under `cfg`, without
/// checkpoints (campaigns over this golden run simulate every fault from
/// cycle 0).
///
/// # Errors
///
/// Returns [`CampaignError::GoldenRunFailed`] if the program does not halt
/// within `max_cycles`, and [`CampaignError::BadConfig`] for invalid
/// configurations.
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` (with `CheckpointPolicy::disabled()` if checkpoints are unwanted) \
            and call `Session::golden` instead"
)]
pub fn run_golden(
    program: &Program,
    cfg: &CpuConfig,
    max_cycles: u64,
) -> Result<GoldenRun, CampaignError> {
    build_golden_plain(&Arc::new(program.clone()), cfg, max_cycles)
}

/// Executes the golden run while building, in a single pass, the checkpoint
/// store that the checkpointed injection engine restores from.
///
/// # Errors
///
/// Same contract as [`run_golden`].
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` and call `Session::golden` instead"
)]
pub fn run_golden_checkpointed(
    program: &Program,
    cfg: &CpuConfig,
    max_cycles: u64,
    policy: &CheckpointPolicy,
) -> Result<GoldenRun, CampaignError> {
    build_golden_checkpointed(&Arc::new(program.clone()), cfg, max_cycles, policy)
}

/// Runs a single fault-injection experiment from cycle 0 and classifies its
/// effect (the from-scratch path; campaigns use the checkpointed engine).
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` and use the injector from `Session::injector` instead"
)]
pub fn run_single_fault(
    program: &Program,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
) -> FaultEffect {
    run_single_fault_shared(&Arc::new(program.clone()), cfg, golden, fault)
}

/// From-scratch single-fault run over a shared program image (no per-fault
/// program clone).
fn run_single_fault_shared(
    program: &Arc<Program>,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
) -> FaultEffect {
    let mut cpu = match Cpu::new(Arc::clone(program), cfg.clone()) {
        Ok(c) => c,
        Err(_) => return FaultEffect::Assert,
    };
    if cpu.inject_fault(fault).is_err() {
        // A fault site that does not exist in this configuration cannot
        // affect it.
        return FaultEffect::Masked;
    }
    // An internal invariant violation inside the simulator is the paper's
    // Assert class: catch it rather than tearing the campaign down.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cpu.run(golden.timeout_cycles, &mut NullProbe)
    }));
    match outcome {
        Ok(result) => classify(&golden.result, &result),
        Err(_) => FaultEffect::Assert,
    }
}

/// Runs one fault on a reusable core by restoring the nearest checkpoint and
/// simulating only the suffix.  Returns the same classification the
/// from-scratch path would, plus whether the early-exit convergence test
/// resolved it before the program's end.
fn run_fault_from_checkpoint(
    cpu: &mut Cpu,
    golden: &GoldenRun,
    ckpts: &GoldenCheckpoints,
    fault: FaultSpec,
) -> (FaultEffect, bool) {
    if fault.entry >= cpu.structure_entries(fault.structure) {
        // Same semantics as the from-scratch path: a fault site that does
        // not exist in this configuration cannot affect it.
        return (FaultEffect::Masked, false);
    }
    let state = ckpts
        .store
        .latest_at_or_before(fault.cycle)
        .expect("campaigns only use stores that start at the cycle-0 snapshot");
    cpu.restore_from(state);
    if cpu.inject_fault(fault).is_err() {
        return (FaultEffect::Masked, false);
    }
    let interval = ckpts.store.interval();
    let early_exit = ckpts.policy.early_exit;
    let timeout = golden.timeout_cycles;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut probe = NullProbe;
        while !cpu.is_finished() && cpu.cycle() < timeout {
            // Early exit: past the injection cycle, compare against the
            // golden checkpoint stream at each boundary.  Bit-identical state
            // implies an identical remainder, hence Masked.
            if early_exit
                && cpu.cycle() > fault.cycle
                && cpu.cycle().is_multiple_of(interval)
                && cpu.cycle() <= golden.result.cycles
            {
                if let Some(g) = ckpts.store.at_cycle(cpu.cycle()) {
                    if cpu.matches_state(g) {
                        return (FaultEffect::Masked, true);
                    }
                }
            }
            cpu.step(&mut probe);
        }
        let result = cpu.run(timeout, &mut probe);
        (classify(&golden.result, &result), false)
    }));
    outcome.unwrap_or((FaultEffect::Assert, false))
}

/// A reusable single-fault runner for callers that classify faults one at a
/// time (e.g. truncated-run studies) rather than through [`run_campaign`].
///
/// Shares the program and configuration across faults via `Arc`.  When the
/// golden run carries a checkpoint store it also reuses one core object,
/// restoring the nearest checkpoint per fault — the same engine the
/// campaigns use; without a store each fault builds a fresh core and
/// simulates from cycle 0.
pub struct FaultInjector {
    program: Arc<Program>,
    cfg: Arc<CpuConfig>,
    golden: GoldenRun,
    cpu: Option<Cpu>,
}

impl FaultInjector {
    /// Creates an injector over one (program, configuration, golden run)
    /// triple.  The program is cloned once here, never per fault.
    pub fn new(program: &Program, cfg: &CpuConfig, golden: &GoldenRun) -> Self {
        FaultInjector {
            program: Arc::new(program.clone()),
            cfg: Arc::new(cfg.clone()),
            golden: golden.clone(),
            cpu: None,
        }
    }

    /// Clone-free constructor used by [`Session::injector`](crate::Session):
    /// the session already holds the program and configuration behind `Arc`s.
    pub(crate) fn from_parts(
        program: Arc<Program>,
        cfg: Arc<CpuConfig>,
        golden: GoldenRun,
    ) -> Self {
        FaultInjector {
            program,
            cfg,
            golden,
            cpu: None,
        }
    }

    /// The golden run faults are classified against.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// Runs one fault and classifies its effect, exactly like
    /// [`run_single_fault`] but without per-fault clones and with
    /// checkpoint-restore suffix simulation when available.
    pub fn run(&mut self, fault: FaultSpec) -> FaultEffect {
        let usable = self
            .golden
            .checkpoints
            .clone()
            .filter(|c| c.usable_for_campaigns());
        let Some(ckpts) = usable else {
            return run_single_fault_shared(&self.program, &self.cfg, &self.golden, fault);
        };
        if self.cpu.is_none() {
            match Cpu::new(Arc::clone(&self.program), (*self.cfg).clone()) {
                Ok(c) => self.cpu = Some(c),
                Err(_) => return FaultEffect::Assert,
            }
        }
        let core = self.cpu.as_mut().expect("injector core initialised above");
        run_fault_from_checkpoint(core, &self.golden, &ckpts, fault).0
    }
}

/// Outcome of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Its observed effect.
    pub effect: FaultEffect,
}

/// Result of a full injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-fault outcomes, in the order of the input fault list.
    pub outcomes: Vec<FaultOutcome>,
    /// Aggregate histogram.
    pub classification: Classification,
    /// Number of simulation runs actually executed (excludes faults resolved
    /// without simulation).
    pub runs_executed: u64,
    /// Faults the checkpointed engine classified Masked by state
    /// re-convergence with the golden checkpoint stream, without simulating
    /// to the program's end (always 0 on the from-scratch path).
    pub early_exits: u64,
}

impl CampaignResult {
    /// Builds the aggregate result from per-fault outcomes.
    pub fn from_outcomes(outcomes: Vec<FaultOutcome>, runs_executed: u64) -> Self {
        let mut classification = Classification::default();
        for o in &outcomes {
            classification.record(o.effect, 1);
        }
        CampaignResult {
            outcomes,
            classification,
            runs_executed,
            early_exits: 0,
        }
    }

    /// Same, with the engine's early-exit count attached.
    fn from_outcomes_with_stats(
        outcomes: Vec<FaultOutcome>,
        runs_executed: u64,
        early_exits: u64,
    ) -> Self {
        let mut result = CampaignResult::from_outcomes(outcomes, runs_executed);
        result.early_exits = early_exits;
        result
    }
}

/// Clone-free campaign entry used by the session layer: the engine with
/// checkpoints taken from the golden run (or forcibly ignored when
/// `use_checkpoints` is false).
pub(crate) fn campaign_shared(
    program: &Arc<Program>,
    cfg: &Arc<CpuConfig>,
    golden: &GoldenRun,
    use_checkpoints: bool,
    faults: &[FaultSpec],
    threads: usize,
) -> CampaignResult {
    let shared = SharedCampaign {
        program: Arc::clone(program),
        cfg: Arc::clone(cfg),
    };
    let ckpts = if use_checkpoints {
        // A store without the cycle-0 snapshot cannot serve arbitrary
        // injection cycles; fall back to from-scratch simulation rather
        // than panicking a worker on the first early fault.
        golden
            .checkpoints
            .as_ref()
            .filter(|c| c.usable_for_campaigns())
    } else {
        None
    };
    run_campaign_dynamic(&shared, golden, ckpts, faults, threads)
}

/// Executes an injection campaign over `faults`, running `threads` worker
/// threads (1 = sequential).
///
/// Every fault is an independent single-bit-flip experiment against the same
/// program and configuration, exactly like the paper's GeFIN campaigns.  If
/// `golden` carries checkpoints each fault restores the nearest checkpoint
/// and simulates only its suffix; otherwise every fault simulates from
/// cycle 0.  Both paths produce byte-identical results.
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` and call `Session::campaign` instead"
)]
pub fn run_campaign(
    program: &Program,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    threads: usize,
) -> CampaignResult {
    campaign_shared(
        &Arc::new(program.clone()),
        &Arc::new(cfg.clone()),
        golden,
        true,
        faults,
        threads,
    )
}

/// Executes a campaign with checkpointing forcibly disabled — every fault is
/// simulated from cycle 0.  Exists so the checkpointed engine can be
/// benchmarked and differentially tested against the naive path even when
/// the golden run carries a checkpoint store.
#[deprecated(
    since = "0.2.0",
    note = "build a `Session` and call `Session::campaign_from_scratch` instead"
)]
pub fn run_campaign_from_scratch(
    program: &Program,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    threads: usize,
) -> CampaignResult {
    campaign_shared(
        &Arc::new(program.clone()),
        &Arc::new(cfg.clone()),
        golden,
        false,
        faults,
        threads,
    )
}

/// Program/config shared by every worker of one campaign (one clone per
/// campaign instead of one per fault).
struct SharedCampaign {
    program: Arc<Program>,
    cfg: Arc<CpuConfig>,
}

/// The engine proper: dynamic scheduling over a cycle-sorted fault order.
fn run_campaign_dynamic(
    shared: &SharedCampaign,
    golden: &GoldenRun,
    ckpts: Option<&Arc<GoldenCheckpoints>>,
    faults: &[FaultSpec],
    threads: usize,
) -> CampaignResult {
    let threads = threads.max(1).min(faults.len().max(1));
    // Sorting by injection cycle gives workers runs of faults that restore
    // from the same checkpoint (warm caches for the restore source) and
    // keeps the suffix lengths of concurrently executing faults similar.
    // The sort is stable on the original index so results are reproducible.
    let mut order: Vec<usize> = (0..faults.len()).collect();
    order.sort_by_key(|&i| (faults[i].cycle, i));

    let next = AtomicUsize::new(0);
    let run_worker = |collected: &mut Vec<(usize, FaultOutcome)>, early_exits: &mut u64| {
        let mut cpu: Option<Cpu> = None;
        loop {
            let k = next.fetch_add(1, Ordering::Relaxed);
            let Some(&idx) = order.get(k) else { break };
            let fault = faults[idx];
            let (effect, early) = match ckpts {
                Some(ckpts) => {
                    // One core per worker, restored per fault.
                    if cpu.is_none() {
                        match Cpu::new(Arc::clone(&shared.program), (*shared.cfg).clone()) {
                            Ok(c) => cpu = Some(c),
                            Err(_) => {
                                collected.push((
                                    idx,
                                    FaultOutcome {
                                        fault,
                                        effect: FaultEffect::Assert,
                                    },
                                ));
                                continue;
                            }
                        }
                    }
                    let core = cpu.as_mut().expect("worker core initialised above");
                    run_fault_from_checkpoint(core, golden, ckpts, fault)
                }
                None => (
                    run_single_fault_shared(&shared.program, &shared.cfg, golden, fault),
                    false,
                ),
            };
            if early {
                *early_exits += 1;
            }
            collected.push((idx, FaultOutcome { fault, effect }));
        }
    };

    let mut per_thread: Vec<(Vec<(usize, FaultOutcome)>, u64)> = Vec::new();
    if threads == 1 {
        let mut collected = Vec::with_capacity(faults.len());
        let mut early_exits = 0u64;
        run_worker(&mut collected, &mut early_exits);
        per_thread.push((collected, early_exits));
    } else {
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..threads {
                handles.push(scope.spawn(|| {
                    let mut collected = Vec::new();
                    let mut early_exits = 0u64;
                    run_worker(&mut collected, &mut early_exits);
                    (collected, early_exits)
                }));
            }
            for h in handles {
                per_thread.push(h.join().expect("campaign worker panicked"));
            }
        });
    }

    let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; faults.len()];
    let mut early_exits = 0u64;
    for (collected, early) in per_thread {
        early_exits += early;
        for (idx, outcome) in collected {
            outcomes[idx] = Some(outcome);
        }
    }
    let outcomes: Vec<FaultOutcome> = outcomes
        .into_iter()
        .map(|o| o.expect("every fault produced an outcome"))
        .collect();
    let runs = outcomes.len() as u64;
    CampaignResult::from_outcomes_with_stats(outcomes, runs, early_exits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::generate_fault_list;
    use merlin_cpu::Structure;
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    // The free functions under test here are the internal builders the
    // deprecated shims and the session layer both call.
    fn golden_plain(
        program: &Program,
        cfg: &CpuConfig,
        max: u64,
    ) -> Result<GoldenRun, CampaignError> {
        build_golden_plain(&Arc::new(program.clone()), cfg, max)
    }

    fn golden_ck(
        program: &Program,
        cfg: &CpuConfig,
        max: u64,
        policy: &CheckpointPolicy,
    ) -> Result<GoldenRun, CampaignError> {
        build_golden_checkpointed(&Arc::new(program.clone()), cfg, max, policy)
    }

    fn campaign(
        program: &Program,
        cfg: &CpuConfig,
        golden: &GoldenRun,
        faults: &[FaultSpec],
        threads: usize,
    ) -> CampaignResult {
        campaign_shared(
            &Arc::new(program.clone()),
            &Arc::new(cfg.clone()),
            golden,
            true,
            faults,
            threads,
        )
    }

    fn campaign_scratch(
        program: &Program,
        cfg: &CpuConfig,
        golden: &GoldenRun,
        faults: &[FaultSpec],
        threads: usize,
    ) -> CampaignResult {
        campaign_shared(
            &Arc::new(program.clone()),
            &Arc::new(cfg.clone()),
            golden,
            false,
            faults,
            threads,
        )
    }

    fn single_fault(
        program: &Program,
        cfg: &CpuConfig,
        golden: &GoldenRun,
        fault: FaultSpec,
    ) -> FaultEffect {
        run_single_fault_shared(&Arc::new(program.clone()), cfg, golden, fault)
    }

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[11, 22, 33, 44, 55, 66, 77, 88]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    fn small_policy() -> CheckpointPolicy {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
        }
    }

    #[test]
    fn golden_run_succeeds_and_sets_timeout() {
        let g = golden_plain(&tiny_program(), &CpuConfig::default(), 1_000_000).unwrap();
        assert!(g.result.exit.is_halted());
        assert!(g.timeout_cycles >= 3 * g.result.cycles);
        assert!(g.checkpoints.is_none());
    }

    #[test]
    fn checkpointed_golden_run_matches_plain_golden_run() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let plain = golden_plain(&program, &cfg, 1_000_000).unwrap();
        let ck = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        assert_eq!(plain.result, ck.result);
        assert_eq!(plain.timeout_cycles, ck.timeout_cycles);
        let ckpts = ck.checkpoints.as_ref().unwrap();
        assert!(ckpts.store.len() >= 2);
        // Disabled policy produces no store.
        let off = golden_ck(&program, &cfg, 1_000_000, &CheckpointPolicy::disabled()).unwrap();
        assert!(off.checkpoints.is_none());
    }

    #[test]
    fn golden_run_failure_is_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.jump(top);
        b.halt();
        let program = b.build().unwrap();
        let err = golden_plain(&program, &CpuConfig::default(), 10_000);
        assert!(matches!(err, Err(CampaignError::GoldenRunFailed(_))));
        let err = golden_ck(&program, &CpuConfig::default(), 10_000, &small_policy());
        assert!(matches!(err, Err(CampaignError::GoldenRunFailed(_))));
    }

    #[test]
    fn sequential_and_parallel_campaigns_agree() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            60,
            7,
        );
        let seq = campaign(&program, &cfg, &golden, &faults, 1);
        let par = campaign(&program, &cfg, &golden, &faults, 4);
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.classification, par.classification);
        assert_eq!(seq.classification.total(), 60);
    }

    #[test]
    fn checkpointed_campaign_is_byte_identical_to_from_scratch() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let mut early_exits_with_policy_on = 0u64;
        for policy in [
            small_policy(),
            CheckpointPolicy {
                early_exit: false,
                ..small_policy()
            },
        ] {
            let golden = golden_ck(&program, &cfg, 1_000_000, &policy).unwrap();
            for structure in [Structure::RegisterFile, Structure::StoreQueue] {
                let entries = cfg.structure_entries(structure);
                let faults = generate_fault_list(structure, entries, golden.result.cycles, 150, 13);
                let checkpointed = campaign(&program, &cfg, &golden, &faults, 4);
                let scratch = campaign_scratch(&program, &cfg, &golden, &faults, 4);
                assert_eq!(checkpointed.outcomes, scratch.outcomes, "{structure}");
                assert_eq!(checkpointed.classification, scratch.classification);
                assert_eq!(scratch.early_exits, 0);
                if !policy.early_exit {
                    assert_eq!(checkpointed.early_exits, 0);
                }
                early_exits_with_policy_on +=
                    u64::from(policy.early_exit) * checkpointed.early_exits;
            }
        }
        // The convergence early exit must actually fire somewhere (dead
        // engine paths would hide bugs behind the identical-results check).
        assert!(early_exits_with_policy_on > 0);
    }

    #[test]
    fn campaign_finds_both_masked_and_non_masked_faults() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            200,
            99,
        );
        let result = campaign(&program, &cfg, &golden, &faults, 2);
        assert!(result.classification.masked > 0);
        // With 256 mostly-idle registers the masked fraction must dominate.
        assert!(result.classification.avf() < 0.5);
    }

    #[test]
    fn timeout_rule_is_single_sourced() {
        assert_eq!(GoldenRun::timeout_for(0), 1000);
        assert_eq!(GoldenRun::timeout_for(100), 1000);
        assert_eq!(GoldenRun::timeout_for(10_000), 30_000);
        assert_eq!(GoldenRun::timeout_for(u64::MAX), u64::MAX);
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let plain = golden_plain(&program, &cfg, 1_000_000).unwrap();
        let ck = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        assert_eq!(plain.timeout_cycles, GoldenRun::timeout_for(plain.result.cycles));
        assert_eq!(ck.timeout_cycles, plain.timeout_cycles);
    }

    #[test]
    fn degenerate_store_falls_back_instead_of_panicking() {
        use merlin_cpu::NullProbe;
        // Regression: a checkpoint store without the cycle-0 snapshot (built
        // on a mid-run core, or decoded from a foreign `.golden` file) used
        // to panic the campaign worker on the first fault before its first
        // checkpoint.  It now degrades to from-scratch simulation.
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let mut cpu = Cpu::new(Arc::new(program.clone()), cfg.clone()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let (_, late_store) = cpu.run_with_checkpoints(1_000_000, &mut NullProbe, 8);
        assert!(!late_store.starts_at_reset());
        let crippled = GoldenRun {
            checkpoints: Some(Arc::new(GoldenCheckpoints {
                store: late_store,
                policy: small_policy(),
            })),
            ..golden.clone()
        };
        assert!(!crippled.checkpoints.as_ref().unwrap().usable_for_campaigns());
        let faults = [
            FaultSpec::new(Structure::RegisterFile, 3, 5, 2), // before cycle 17
            FaultSpec::new(Structure::RegisterFile, 3, 5, 40),
        ];
        let via_crippled = campaign(&program, &cfg, &crippled, &faults, 1);
        let via_scratch = campaign_scratch(&program, &cfg, &golden, &faults, 1);
        assert_eq!(via_crippled.outcomes, via_scratch.outcomes);
        assert_eq!(via_crippled.early_exits, 0, "fallback path cannot early-exit");
        // The single-fault injector degrades the same way.
        let mut injector = FaultInjector::new(&program, &cfg, &crippled);
        assert_eq!(injector.run(faults[0]), via_scratch.outcomes[0].effect);
    }

    #[test]
    fn out_of_range_fault_sites_are_masked() {
        let program = tiny_program();
        let cfg = CpuConfig::default().with_phys_regs(64);
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let effect = single_fault(
            &program,
            &cfg,
            &golden,
            FaultSpec::new(Structure::RegisterFile, 200, 1, 10),
        );
        assert_eq!(effect, FaultEffect::Masked);
        // Same through the checkpointed engine.
        let out = campaign(
            &program,
            &cfg,
            &golden,
            &[FaultSpec::new(Structure::RegisterFile, 200, 1, 10)],
            1,
        );
        assert_eq!(out.outcomes[0].effect, FaultEffect::Masked);
    }
}
