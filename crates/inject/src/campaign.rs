//! Injection campaign execution: golden runs, single-fault runs and
//! multi-threaded campaigns over a fault list.

use crate::classify::{classify, Classification, FaultEffect};
use merlin_cpu::{Cpu, CpuConfig, FaultSpec, NullProbe, RunResult};
use merlin_isa::Program;
use serde::{Deserialize, Serialize};

/// The fault-free reference execution a campaign compares against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Result of the fault-free run.
    pub result: RunResult,
    /// Cycle budget granted to faulty runs: the paper's 3× rule for
    /// deadlock/livelock detection.
    pub timeout_cycles: u64,
}

/// Errors produced while setting up or executing a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The golden (fault-free) run did not terminate cleanly, so no
    /// reference to classify against exists.
    GoldenRunFailed(String),
    /// The processor configuration is invalid.
    BadConfig(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed(e) => write!(f, "golden run failed: {e}"),
            CampaignError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Executes the fault-free reference run of `program` under `cfg`.
///
/// # Errors
///
/// Returns [`CampaignError::GoldenRunFailed`] if the program does not halt
/// within `max_cycles`, and [`CampaignError::BadConfig`] for invalid
/// configurations.
pub fn run_golden(
    program: &Program,
    cfg: &CpuConfig,
    max_cycles: u64,
) -> Result<GoldenRun, CampaignError> {
    let mut cpu = Cpu::new(program.clone(), cfg.clone())
        .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
    let result = cpu.run(max_cycles, &mut NullProbe);
    if !result.exit.is_halted() {
        return Err(CampaignError::GoldenRunFailed(format!(
            "golden run exited with {:?} after {} cycles",
            result.exit, result.cycles
        )));
    }
    let timeout_cycles = result.cycles.saturating_mul(3).max(1000);
    Ok(GoldenRun {
        result,
        timeout_cycles,
    })
}

/// Runs a single fault-injection experiment and classifies its effect.
pub fn run_single_fault(
    program: &Program,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
) -> FaultEffect {
    let mut cpu = match Cpu::new(program.clone(), cfg.clone()) {
        Ok(c) => c,
        Err(_) => return FaultEffect::Assert,
    };
    if cpu.inject_fault(fault).is_err() {
        // A fault site that does not exist in this configuration cannot
        // affect it.
        return FaultEffect::Masked;
    }
    // An internal invariant violation inside the simulator is the paper's
    // Assert class: catch it rather than tearing the campaign down.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cpu.run(golden.timeout_cycles, &mut NullProbe)
    }));
    match outcome {
        Ok(result) => classify(&golden.result, &result),
        Err(_) => FaultEffect::Assert,
    }
}

/// Outcome of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Its observed effect.
    pub effect: FaultEffect,
}

/// Result of a full injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-fault outcomes, in the order of the input fault list.
    pub outcomes: Vec<FaultOutcome>,
    /// Aggregate histogram.
    pub classification: Classification,
    /// Number of simulation runs actually executed (excludes faults resolved
    /// without simulation).
    pub runs_executed: u64,
}

impl CampaignResult {
    /// Builds the aggregate result from per-fault outcomes.
    pub fn from_outcomes(outcomes: Vec<FaultOutcome>, runs_executed: u64) -> Self {
        let mut classification = Classification::default();
        for o in &outcomes {
            classification.record(o.effect, 1);
        }
        CampaignResult {
            outcomes,
            classification,
            runs_executed,
        }
    }
}

/// Executes an injection campaign over `faults`, running `threads` worker
/// threads (1 = sequential).
///
/// Every fault is an independent single-bit-flip experiment against the same
/// program and configuration, exactly like the paper's GeFIN campaigns.
pub fn run_campaign(
    program: &Program,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    faults: &[FaultSpec],
    threads: usize,
) -> CampaignResult {
    let threads = threads.max(1);
    if threads == 1 || faults.len() < 2 {
        let outcomes: Vec<FaultOutcome> = faults
            .iter()
            .map(|&fault| FaultOutcome {
                fault,
                effect: run_single_fault(program, cfg, golden, fault),
            })
            .collect();
        let runs = outcomes.len() as u64;
        return CampaignResult::from_outcomes(outcomes, runs);
    }
    let chunk_size = faults.len().div_ceil(threads);
    let mut outcomes: Vec<Option<Vec<FaultOutcome>>> = vec![None; threads.min(faults.len())];
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, chunk) in faults.chunks(chunk_size).enumerate() {
            handles.push((
                i,
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|&fault| FaultOutcome {
                            fault,
                            effect: run_single_fault(program, cfg, golden, fault),
                        })
                        .collect::<Vec<_>>()
                }),
            ));
        }
        for (i, h) in handles {
            outcomes[i] = Some(h.join().expect("campaign worker panicked"));
        }
    });
    let outcomes: Vec<FaultOutcome> = outcomes.into_iter().flatten().flatten().collect();
    let runs = outcomes.len() as u64;
    CampaignResult::from_outcomes(outcomes, runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::generate_fault_list;
    use merlin_cpu::Structure;
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[11, 22, 33, 44, 55, 66, 77, 88]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn golden_run_succeeds_and_sets_timeout() {
        let g = run_golden(&tiny_program(), &CpuConfig::default(), 1_000_000).unwrap();
        assert!(g.result.exit.is_halted());
        assert!(g.timeout_cycles >= 3 * g.result.cycles);
    }

    #[test]
    fn golden_run_failure_is_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.jump(top);
        b.halt();
        let err = run_golden(&b.build().unwrap(), &CpuConfig::default(), 10_000);
        assert!(matches!(err, Err(CampaignError::GoldenRunFailed(_))));
    }

    #[test]
    fn sequential_and_parallel_campaigns_agree() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = run_golden(&program, &cfg, 1_000_000).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            60,
            7,
        );
        let seq = run_campaign(&program, &cfg, &golden, &faults, 1);
        let par = run_campaign(&program, &cfg, &golden, &faults, 4);
        assert_eq!(seq.outcomes, par.outcomes);
        assert_eq!(seq.classification, par.classification);
        assert_eq!(seq.classification.total(), 60);
    }

    #[test]
    fn campaign_finds_both_masked_and_non_masked_faults() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = run_golden(&program, &cfg, 1_000_000).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            200,
            99,
        );
        let result = run_campaign(&program, &cfg, &golden, &faults, 2);
        assert!(result.classification.masked > 0);
        // With 256 mostly-idle registers the masked fraction must dominate.
        assert!(result.classification.avf() < 0.5);
    }

    #[test]
    fn out_of_range_fault_sites_are_masked() {
        let program = tiny_program();
        let cfg = CpuConfig::default().with_phys_regs(64);
        let golden = run_golden(&program, &cfg, 1_000_000).unwrap();
        let effect = run_single_fault(
            &program,
            &cfg,
            &golden,
            FaultSpec::new(Structure::RegisterFile, 200, 1, 10),
        );
        assert_eq!(effect, FaultEffect::Masked);
    }
}
