//! Campaign building blocks: golden runs, checkpoint bundles, single-fault
//! execution and campaign results.
//!
//! # The checkpoint-and-restore injection engine
//!
//! Every faulty run is bit-identical to the golden run until its fault's
//! injection cycle, so simulating each fault from cycle 0 (the classic GeFIN
//! approach) repays the same prefix thousands of times.  The engine removes
//! that cost:
//!
//! 1. [`Session::golden`](crate::Session::golden) executes the golden run
//!    exactly once while snapshotting the complete microarchitectural state
//!    ([`CpuState`](merlin_cpu::CpuState)) into a [`CheckpointStore`], in a
//!    single adaptive pass: snapshots are taken at the policy's minimum
//!    interval and the store is thinned whenever it exceeds twice the
//!    [`CheckpointPolicy`] target — by interval doubling
//!    ([`SpacingStrategy::EqualCycles`](merlin_cpu::SpacingStrategy)) or by
//!    retaining the snapshots nearest the equal-*suffix-work* boundaries
//!    ([`SpacingStrategy::SuffixWork`](merlin_cpu::SpacingStrategy), the
//!    default) — so a run of any length ends up with ~target..2×target
//!    checkpoints without a sizing pre-pass.  The store rides inside the
//!    returned [`GoldenRun`], so every campaign over that golden run shares
//!    it.
//! 2. [`Session::campaign`](crate::Session::campaign) hands the fault list
//!    to the [`CampaignScheduler`](crate::CampaignScheduler) (see the
//!    [`schedule`](crate::schedule) module), which buckets it into
//!    per-checkpoint ranges and binds workers to whole ranges so each
//!    worker's restore snapshot stays hot.  Per fault, a worker restores the
//!    latest checkpoint at or before the injection cycle, injects, and
//!    simulates only the suffix against the golden timeout
//!    ([`run_fault_from_checkpoint`]).
//! 3. While a faulty run is past its injection cycle, the worker compares the
//!    core's state against the golden checkpoint stream at each retained
//!    checkpoint cycle it crosses.  If the states are bit-identical the
//!    remainder of the run is guaranteed identical to the golden run, so the
//!    fault is classified Masked immediately (early exit) instead of
//!    simulating to the end.
//!
//! The program and configuration are shared across workers via `Arc` — no
//! per-fault `Program`/`CpuConfig` clones, no per-fault core construction.
//!
//! Correctness bar: a checkpointed campaign produces byte-identical
//! [`CampaignResult::outcomes`] to the from-scratch path at any thread
//! count.  Restoration is exact (the core is deterministic and
//! [`CpuState`](merlin_cpu::CpuState) captures all mutable state) and the
//! early exit only fires when the faulty state has provably re-converged, so
//! both paths classify every fault identically.

use crate::classify::{classify, Classification, FaultEffect};
use crate::schedule::ScheduleStats;
use merlin_cpu::{
    CheckpointPolicy, CheckpointStore, Cpu, CpuConfig, FaultSpec, NullProbe, RestoredBytes,
    RunResult, StateDiff,
};
use merlin_isa::{DecodedProgram, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Memoised [`CpuState::diff_to`](merlin_cpu::CpuState::diff_to) results,
/// keyed by (restore-snapshot cycle, probed-checkpoint cycle).
///
/// The early-exit convergence test probes the same (restore source, golden
/// checkpoint) pairs for every fault in a checkpoint range, and the diff of
/// two golden snapshots never changes — so each worker computes it once and
/// the touched-entry-only probe ([`Cpu::matches_state_with_diff`]) amortises
/// over the hundreds of faults sharing the range.  Caches are per
/// worker/injector (never shared), matching the per-core `last_restored`
/// epoch the diff is valid against.
pub(crate) type DiffCache = HashMap<(u64, u64), StateDiff>;

/// The fault-free reference execution a campaign compares against.
///
/// When produced under an enabled [`CheckpointPolicy`] (the default for
/// [`Session::golden`](crate::Session::golden)) it also carries the
/// checkpoint store, which every campaign and baseline over this golden run
/// then shares (`Arc`); a disabled policy leaves it empty and campaigns fall
/// back to from-scratch simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Result of the fault-free run.
    pub result: RunResult,
    /// Cycle budget granted to faulty runs: the paper's 3× rule for
    /// deadlock/livelock detection.
    pub timeout_cycles: u64,
    /// Checkpoints of the golden run plus the policy they were built under,
    /// when checkpointing is enabled.  Never serialised (a store can run to
    /// many megabytes and is cheap to rebuild); with real serde this field
    /// must keep its `skip` attribute or the derive stops compiling.
    #[serde(skip)]
    pub checkpoints: Option<Arc<GoldenCheckpoints>>,
}

impl GoldenRun {
    /// The paper's deadlock/livelock budget for faulty runs: 3× the golden
    /// run's cycle count, floored at 1000 cycles for very short programs.
    /// The single definition both golden-run builders use, so the rule
    /// cannot drift between the plain and checkpointed paths.
    pub fn timeout_for(golden_cycles: u64) -> u64 {
        golden_cycles.saturating_mul(3).max(1000)
    }
}

/// A checkpoint store together with the policy that built it.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenCheckpoints {
    /// The per-range snapshots of the golden run.
    pub store: CheckpointStore,
    /// The policy the store was built under (controls early exit).
    pub policy: CheckpointPolicy,
}

impl GoldenCheckpoints {
    /// Whether the store can serve every injection cycle of a campaign — it
    /// must hold a snapshot at or before any cycle, i.e. start with the
    /// cycle-0 reset state.  Stores built through the session layer always
    /// qualify; a degenerate store (decoded from a foreign `.golden` file,
    /// or built on a mid-run core) makes campaigns fall back to from-scratch
    /// simulation instead of panicking a worker.
    pub fn usable_for_campaigns(&self) -> bool {
        self.store.starts_at_reset()
    }
}

/// Errors produced while setting up or executing a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The golden (fault-free) run did not terminate cleanly, so no
    /// reference to classify against exists.
    GoldenRunFailed(String),
    /// The processor configuration is invalid.
    BadConfig(String),
    /// A fault specification handed to the session violates the fault model
    /// (bit index outside the 64-bit entry).
    InvalidFault(String),
    /// The program failed session admission control: the static linter
    /// found out-of-range control targets, reads of never-written
    /// registers, or unreachable instructions.  The full report is
    /// attached so a campaign service can hand it back to the program's
    /// author verbatim.
    Lint(merlin_analyze::LintReport),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed(e) => write!(f, "golden run failed: {e}"),
            CampaignError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
            CampaignError::InvalidFault(e) => write!(f, "invalid fault specification: {e}"),
            CampaignError::Lint(report) => {
                write!(f, "program rejected by static lint: {report}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

fn golden_run_from_result(result: RunResult) -> Result<RunResult, CampaignError> {
    if !result.exit.is_halted() {
        return Err(CampaignError::GoldenRunFailed(format!(
            "golden run exited with {:?} after {} cycles",
            result.exit, result.cycles
        )));
    }
    Ok(result)
}

/// Plain golden run, used by the session layer when checkpointing is off.
pub(crate) fn build_golden_plain(
    program: &Arc<Program>,
    decoded: &Arc<DecodedProgram>,
    cfg: &CpuConfig,
    max_cycles: u64,
) -> Result<GoldenRun, CampaignError> {
    let mut cpu = Cpu::with_predecoded(Arc::clone(program), Arc::clone(decoded), cfg.clone())
        .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
    let result = golden_run_from_result(cpu.run(max_cycles, &mut NullProbe))?;
    let timeout_cycles = GoldenRun::timeout_for(result.cycles);
    Ok(GoldenRun {
        result,
        timeout_cycles,
        checkpoints: None,
    })
}

/// One-pass checkpointed golden run, used by
/// [`Session::golden`](crate::Session::golden): the golden run is simulated
/// exactly once, snapshotting every `policy.min_interval` cycles and
/// thinning the store per the policy's [`SpacingStrategy`] whenever it
/// exceeds twice the policy's target count.
///
/// [`SpacingStrategy`]: merlin_cpu::SpacingStrategy
pub(crate) fn build_golden_checkpointed(
    program: &Arc<Program>,
    decoded: &Arc<DecodedProgram>,
    cfg: &CpuConfig,
    max_cycles: u64,
    policy: &CheckpointPolicy,
) -> Result<GoldenRun, CampaignError> {
    if !policy.enabled {
        return build_golden_plain(program, decoded, cfg, max_cycles);
    }
    let mut cpu = Cpu::with_predecoded(Arc::clone(program), Arc::clone(decoded), cfg.clone())
        .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
    let (result, store) = cpu.run_with_adaptive_checkpoints(
        max_cycles,
        &mut NullProbe,
        policy.min_interval,
        policy.target_checkpoints,
        policy.spacing,
    );
    let result = golden_run_from_result(result)?;
    let timeout_cycles = GoldenRun::timeout_for(result.cycles);
    Ok(GoldenRun {
        result,
        timeout_cycles,
        checkpoints: Some(Arc::new(GoldenCheckpoints {
            store,
            policy: *policy,
        })),
    })
}

/// What one faulty run did, beyond its classification — the bookkeeping the
/// scheduler aggregates into [`ScheduleStats`].
pub(crate) struct FaultRun {
    /// The classified effect.
    pub effect: FaultEffect,
    /// Whether the early-exit convergence test resolved the fault before the
    /// program's end.
    pub early_exit: bool,
    /// Whether a checkpoint was restored for this fault (false for faults
    /// resolved without touching the core).
    pub restored: bool,
    /// Whether that restore took the incremental same-snapshot path.
    pub incremental: bool,
    /// Bytes the restore rewrote, per pipeline structure (all zero when
    /// nothing was restored).
    pub bytes: RestoredBytes,
    /// Cycles actually simulated, from the restore point (or cycle 0 on the
    /// from-scratch path) to wherever the faulty run ended.
    pub suffix_cycles: u64,
    /// Whether the fault's site does not exist in this configuration (the
    /// fault was classified Masked without simulating anything).
    pub skipped_site: bool,
    /// Whether this fault's restore lifted the core out of quarantine — i.e.
    /// it was the forced full restore following a per-fault panic.
    pub from_quarantine: bool,
}

impl FaultRun {
    /// A fault resolved without simulating: the site does not exist in this
    /// configuration, so the effect is Masked by definition.
    pub(crate) fn skipped(restored: bool, restore: Option<merlin_cpu::RestoreStats>) -> FaultRun {
        let restore = restore.unwrap_or(merlin_cpu::RestoreStats {
            incremental: false,
            from_quarantine: false,
            bytes: RestoredBytes::default(),
        });
        FaultRun {
            effect: FaultEffect::Masked,
            early_exit: false,
            restored,
            incremental: restore.incremental,
            bytes: restore.bytes,
            suffix_cycles: 0,
            skipped_site: true,
            from_quarantine: restore.from_quarantine,
        }
    }
}

/// From-scratch single-fault run over a shared program image (no per-fault
/// program clone).
pub(crate) fn run_single_fault_shared(
    program: &Arc<Program>,
    decoded: &Arc<DecodedProgram>,
    cfg: &CpuConfig,
    golden: &GoldenRun,
    fault: FaultSpec,
) -> FaultRun {
    let mut cpu = match Cpu::with_predecoded(Arc::clone(program), Arc::clone(decoded), cfg.clone())
    {
        Ok(c) => c,
        Err(_) => {
            return FaultRun {
                effect: FaultEffect::Assert,
                early_exit: false,
                restored: false,
                incremental: false,
                bytes: RestoredBytes::default(),
                suffix_cycles: 0,
                skipped_site: false,
                from_quarantine: false,
            }
        }
    };
    if cpu.inject_fault(fault).is_err() {
        // A fault site that does not exist in this configuration cannot
        // affect it.
        return FaultRun::skipped(false, None);
    }
    // An internal invariant violation inside the simulator is the paper's
    // Assert class: catch it rather than tearing the campaign down.  The
    // panic path records zero suffix cycles, matching the checkpointed path.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::chaos::maybe_panic_fault(fault.cycle);
        cpu.run(golden.timeout_cycles, &mut NullProbe)
    }));
    match outcome {
        Ok(result) => FaultRun {
            effect: classify(&golden.result, &result),
            early_exit: false,
            restored: false,
            incremental: false,
            bytes: RestoredBytes::default(),
            suffix_cycles: result.cycles,
            skipped_site: false,
            from_quarantine: false,
        },
        Err(_) => FaultRun {
            effect: FaultEffect::Assert,
            early_exit: false,
            restored: false,
            incremental: false,
            bytes: RestoredBytes::default(),
            suffix_cycles: 0,
            skipped_site: false,
            from_quarantine: false,
        },
    }
}

/// Runs one fault on a reusable core by restoring the nearest checkpoint and
/// simulating only the suffix.  Returns the same classification the
/// from-scratch path would.
///
/// `boundaries` is the ascending list of the store's checkpoint cycles
/// (computed once per campaign or injector call); the early-exit convergence
/// test walks it with a cursor, so it works for equal-cycle and suffix-work
/// stores alike — retained checkpoints need not sit on any uniform grid.
///
/// `diffs` memoises restore-source-to-boundary golden diffs so the
/// convergence probe compares only entries that could differ (everything the
/// suffix touched plus everything the golden run changed between the two
/// snapshots) instead of the whole state.
pub(crate) fn run_fault_from_checkpoint(
    cpu: &mut Cpu,
    golden: &GoldenRun,
    ckpts: &GoldenCheckpoints,
    boundaries: &[u64],
    diffs: &mut DiffCache,
    fault: FaultSpec,
) -> FaultRun {
    if fault.entry >= cpu.structure_entries(fault.structure) {
        // Same semantics as the from-scratch path: a fault site that does
        // not exist in this configuration cannot affect it.
        return FaultRun::skipped(false, None);
    }
    let state = ckpts
        .store
        .latest_at_or_before(fault.cycle)
        .expect("campaigns only use stores that start at the cycle-0 snapshot");
    let restore_cycle = state.cycle();
    let restore = cpu.restore_from(state);
    if cpu.inject_fault(fault).is_err() {
        return FaultRun::skipped(true, Some(restore));
    }
    let early_exit = ckpts.policy.early_exit;
    let timeout = golden.timeout_cycles;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::chaos::maybe_panic_fault(fault.cycle);
        let mut probe = NullProbe;
        // Early exit: past the injection cycle, compare against the golden
        // checkpoint stream at each retained checkpoint boundary the run
        // crosses.  Bit-identical state implies an identical remainder,
        // hence Masked.  The cursor starts at the first boundary strictly
        // after the injection cycle; every boundary is within the golden
        // run by construction.
        let mut next = boundaries.partition_point(|&c| c <= fault.cycle);
        while !cpu.is_finished() && cpu.cycle() < timeout {
            if early_exit && next < boundaries.len() {
                if boundaries[next] < cpu.cycle() {
                    next += 1;
                } else if boundaries[next] == cpu.cycle() {
                    if let Some(g) = ckpts.store.at_cycle(cpu.cycle()) {
                        let diff = diffs
                            .entry((restore_cycle, cpu.cycle()))
                            .or_insert_with(|| state.diff_to(g));
                        if cpu.matches_state_with_diff(g, diff) {
                            return (FaultEffect::Masked, true, cpu.cycle() - restore_cycle);
                        }
                    }
                    next += 1;
                }
            }
            cpu.step(&mut probe);
        }
        let result = cpu.run(timeout, &mut probe);
        let suffix = result.cycles.saturating_sub(restore_cycle);
        (classify(&golden.result, &result), false, suffix)
    }));
    let (effect, early_exit, suffix_cycles) = match outcome {
        Ok(o) => o,
        Err(_) => {
            // The panic unwound mid-step: the core's pipeline and
            // touched-line bookkeeping are now untrusted, so demote it —
            // its next restore is forced onto the full path instead of
            // silently trusting incremental state.  Suffix cycles are
            // recorded as 0, matching the from-scratch panic path.
            cpu.quarantine();
            (FaultEffect::Assert, false, 0)
        }
    };
    FaultRun {
        effect,
        early_exit,
        restored: true,
        incremental: restore.incremental,
        bytes: restore.bytes,
        suffix_cycles,
        skipped_site: false,
        from_quarantine: restore.from_quarantine,
    }
}

/// A reusable single-fault runner for callers that classify faults one at a
/// time (e.g. truncated-run studies) rather than through
/// [`Session::campaign`](crate::Session::campaign).
///
/// Shares the program and configuration across faults via `Arc`.  When the
/// golden run carries a checkpoint store it also reuses one core object,
/// restoring the nearest checkpoint per fault — the same engine the
/// campaigns use; without a store each fault builds a fresh core and
/// simulates from cycle 0.
pub struct FaultInjector {
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    cfg: Arc<CpuConfig>,
    golden: GoldenRun,
    cpu: Option<Cpu>,
    /// Ascending checkpoint cycles of the golden store, when usable —
    /// computed once so per-fault runs allocate nothing.
    boundaries: Vec<u64>,
    /// Memoised golden-to-golden diffs for the touched-entry convergence
    /// probe, keyed by (restore cycle, boundary cycle).
    diffs: DiffCache,
}

impl FaultInjector {
    /// Creates an injector over one (program, configuration, golden run)
    /// triple.  The program is cloned once here, never per fault.
    pub fn new(program: &Program, cfg: &CpuConfig, golden: &GoldenRun) -> Self {
        Self::from_parts(
            Arc::new(program.clone()),
            Arc::new(DecodedProgram::new(program)),
            Arc::new(cfg.clone()),
            golden.clone(),
        )
    }

    /// Clone-free constructor used by [`Session::injector`](crate::Session):
    /// the session already holds the program, its pre-decoded table and the
    /// configuration behind `Arc`s.
    pub(crate) fn from_parts(
        program: Arc<Program>,
        decoded: Arc<DecodedProgram>,
        cfg: Arc<CpuConfig>,
        golden: GoldenRun,
    ) -> Self {
        let boundaries = golden
            .checkpoints
            .as_ref()
            .filter(|c| c.usable_for_campaigns())
            .map(|c| c.store.cycles().collect())
            .unwrap_or_default();
        FaultInjector {
            program,
            decoded,
            cfg,
            golden,
            cpu: None,
            boundaries,
            diffs: DiffCache::new(),
        }
    }

    /// The golden run faults are classified against.
    pub fn golden(&self) -> &GoldenRun {
        &self.golden
    }

    /// Runs one fault and classifies its effect, without per-fault clones
    /// and with checkpoint-restore suffix simulation when available.
    pub fn run(&mut self, fault: FaultSpec) -> FaultEffect {
        self.run_with_cycles(fault).0
    }

    /// Like [`FaultInjector::run`], additionally returning the number of
    /// cycles the faulty run actually simulated (restore point to wherever
    /// it ended) — the deterministic per-fault latency measure the bench
    /// harness tracks tail latency with.
    pub fn run_with_cycles(&mut self, fault: FaultSpec) -> (FaultEffect, u64) {
        let usable = self
            .golden
            .checkpoints
            .clone()
            .filter(|c| c.usable_for_campaigns());
        let Some(ckpts) = usable else {
            let run = run_single_fault_shared(
                &self.program,
                &self.decoded,
                &self.cfg,
                &self.golden,
                fault,
            );
            return (run.effect, run.suffix_cycles);
        };
        if self.cpu.is_none() {
            match Cpu::with_predecoded(
                Arc::clone(&self.program),
                Arc::clone(&self.decoded),
                (*self.cfg).clone(),
            ) {
                Ok(c) => self.cpu = Some(c),
                Err(_) => return (FaultEffect::Assert, 0),
            }
        }
        let core = self.cpu.as_mut().expect("injector core initialised above");
        let run = run_fault_from_checkpoint(
            core,
            &self.golden,
            &ckpts,
            &self.boundaries,
            &mut self.diffs,
            fault,
        );
        (run.effect, run.suffix_cycles)
    }
}

/// Outcome of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected fault.
    pub fault: FaultSpec,
    /// Its observed effect.
    pub effect: FaultEffect,
}

/// Result of a full injection campaign.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// Per-fault outcomes, in the order of the input fault list.
    pub outcomes: Vec<FaultOutcome>,
    /// Aggregate histogram.
    pub classification: Classification,
    /// Number of simulation runs actually executed (excludes faults resolved
    /// without simulation).
    pub runs_executed: u64,
    /// Faults the checkpointed engine classified Masked by state
    /// re-convergence with the golden checkpoint stream, without simulating
    /// to the program's end (always 0 on the from-scratch path).
    pub early_exits: u64,
    /// How the scheduler executed the campaign: ranges, restores, steals and
    /// total suffix cycles simulated.  Classification outcomes never depend
    /// on these — they vary with thread count and checkpoint spacing while
    /// [`CampaignResult::outcomes`] stays byte-identical.
    pub schedule: ScheduleStats,
}

impl CampaignResult {
    /// Builds the aggregate result from per-fault outcomes.
    pub fn from_outcomes(outcomes: Vec<FaultOutcome>, runs_executed: u64) -> Self {
        let mut classification = Classification::default();
        for o in &outcomes {
            classification.record(o.effect, 1);
        }
        CampaignResult {
            outcomes,
            classification,
            runs_executed,
            early_exits: 0,
            schedule: ScheduleStats::default(),
        }
    }
}
