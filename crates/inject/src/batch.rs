//! Fork-on-divergence batched suffix simulation: one golden replay per
//! checkpoint range, faulty cores forked lazily from the live golden state,
//! probe-driven retirement and fault-equivalence merging.
//!
//! # The inversion
//!
//! The per-fault engine ([`run_fault_from_checkpoint`]) restores a golden
//! snapshot *per fault* and replays the fault-free prefix from the restore
//! point to the injection cycle before any faulty behaviour exists.  For a
//! range holding `k` faults that prefix replay is paid `k` times, and every
//! replayed cycle is — by the determinism of the core — bit-identical to
//! the golden run the checkpoint was taken from.
//!
//! The batched driver inverts the loop.  Per checkpoint range it:
//!
//! 1. restores **one golden core** from the range's shared snapshot and
//!    drives it forward exactly once, stopping at each injection cycle
//!    (`golden_replay_cycles`),
//! 2. **forks** a faulty core at each fault's injection cycle: a pool core
//!    is incrementally restored from the same snapshot, then
//!    [`Cpu::fork_from`] copies only the golden core's
//!    *touched-since-restore* entries — O(divergence), not O(state) —
//!    and the fault is injected,
//! 3. **merges** forks spawned at the same cycle whose complete states
//!    collide (fault equivalence — in practice, same-site duplicate
//!    faults): the later fork adopts the earlier one's eventual outcome
//!    (`forks_merged`) without simulating.  Equal state at equal cycle
//!    implies identical futures, so the shared classification is exact,
//!    not approximate.  A cheap [`Cpu::merge_fingerprint`] prefilter
//!    keeps the exact comparison off the common path,
//! 4. runs each surviving fork **to retirement on the spot** — the same
//!    boundary-probe loop as the per-fault engine, verbatim: at each
//!    retained checkpoint boundary the fork crosses, its state is compared
//!    against the golden checkpoint through the memoised golden-to-golden
//!    diff ([`Cpu::matches_state_with_diff`]); a fork that re-converged
//!    with the golden stream is retired Masked immediately
//!    (`forks_retired`), anything else runs to halt or timeout and is
//!    classified against the golden result.  Running forks back-to-back
//!    (instead of interleaving them cycle-by-cycle) keeps exactly one
//!    core's working set hot.
//!
//! # Determinism
//!
//! A fork spawned while the golden core sits at the fault's injection
//! cycle is bit-identical to a per-fault core restored from the same
//! snapshot and stepped fault-free to that cycle, and both apply the fault
//! at the same step.  From there the fork's simulation loop *is* the
//! per-fault engine's loop, so batched campaigns produce byte-identical
//! [`CampaignResult::outcomes`](crate::CampaignResult::outcomes) to the
//! per-fault path at any thread count — the per-fault engine stays wired
//! in as the oracle and `tests/batched_determinism.rs` pins the
//! equivalence.  What changes is only the work: the fault-free prefix
//! replay is paid once per range instead of once per fault.
//!
//! # Failure containment
//!
//! Every golden-replay segment, fork spawn, merge comparison and fork run
//! executes under its own `catch_unwind`.  A panic quarantines *only the
//! panicking core* (its next restore is a forced full restore), returns
//! every other core to the pool, and abandons the batched attempt; the
//! scheduler then re-runs the whole range inline on the per-fault path,
//! whose own per-fault containment classifies a deterministically
//! panicking fault as [`Assert`](crate::FaultEffect::Assert) exactly as it
//! always did.
//!
//! [`run_fault_from_checkpoint`]: crate::campaign::run_fault_from_checkpoint

use crate::campaign::{DiffCache, FaultRun, GoldenCheckpoints, GoldenRun};
use crate::classify::{classify, FaultEffect};
use merlin_cpu::{Cpu, CpuConfig, FaultSpec, ForkStats, NullProbe, RestoreStats, RestoredBytes};
use merlin_isa::{DecodedProgram, Program};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// How a campaign simulates the faults of one checkpoint range.
///
/// Selected per session via
/// [`SessionBuilder::batching`](crate::SessionBuilder::batching) or per
/// scheduler via
/// [`CampaignScheduler::with_batching`](crate::CampaignScheduler::with_batching).
/// Outcomes are byte-identical across both modes (and across thread
/// counts); only [`ScheduleStats`](crate::ScheduleStats) differs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchingPolicy {
    /// One restore and one fault-free prefix replay per fault — the
    /// original engine, kept as the differential oracle for the batched
    /// path.
    #[default]
    PerFault,
    /// One golden replay per checkpoint range; faulty cores are forked
    /// from the live golden core at their injection cycles, merged on
    /// state collision and retired on re-convergence.  Falls back to
    /// [`BatchingPolicy::PerFault`] per range on any panic and on
    /// from-scratch campaigns (which have no checkpoint store).
    Batched,
}

/// Per-worker pool of reusable cores for the batched driver: the golden
/// replay core plus one per fork spawned at the same injection cycle.
/// Retired forks return their cores here, so a worker needs at most
/// `max_same_cycle_faults + 1` core constructions over the whole campaign.
pub(crate) struct ForkPool {
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    cfg: Arc<CpuConfig>,
    idle: Vec<Cpu>,
    /// Copy-on-write sharing breaks drained from cores as they return to
    /// the pool (see [`Cpu::take_cow_breaks`]); harvested into
    /// [`BatchStats::cow_breaks`] at the end of each batched range.
    cow_breaks: u64,
}

impl ForkPool {
    pub(crate) fn new(
        program: &Arc<Program>,
        decoded: &Arc<DecodedProgram>,
        cfg: &Arc<CpuConfig>,
    ) -> Self {
        ForkPool {
            program: Arc::clone(program),
            decoded: Arc::clone(decoded),
            cfg: Arc::clone(cfg),
            idle: Vec::new(),
            cow_breaks: 0,
        }
    }

    /// Pops an idle core, constructing one if the pool is dry.  `None`
    /// means the configuration cannot build a core at all; the caller
    /// aborts to the per-fault path, which classifies that case.
    pub(crate) fn take(&mut self) -> Option<Cpu> {
        self.idle.pop().or_else(|| {
            Cpu::with_predecoded(
                Arc::clone(&self.program),
                Arc::clone(&self.decoded),
                (*self.cfg).clone(),
            )
            .ok()
        })
    }

    pub(crate) fn put(&mut self, mut cpu: Cpu) {
        self.cow_breaks += cpu.take_cow_breaks();
        self.idle.push(cpu);
    }

    /// Drains the sharing-break tally accumulated by [`ForkPool::put`].
    pub(crate) fn take_cow_breaks(&mut self) -> u64 {
        std::mem::take(&mut self.cow_breaks)
    }

    /// Drops every pooled core (range retries start from fresh cores).
    pub(crate) fn clear(&mut self) {
        self.idle.clear();
    }
}

/// Execution tallies of one successful batched range, merged into the
/// worker's stats by the scheduler.  The golden core's single restore is
/// reported here (it belongs to the range, not to any fault).
#[derive(Default)]
pub(crate) struct BatchStats {
    pub forks_spawned: u64,
    pub forks_retired: u64,
    pub forks_merged: u64,
    /// Cycles the shared golden core replayed for this range — the work
    /// the fork-on-divergence inversion pays *once* instead of per fault
    /// (kept out of `suffix_cycles`, which counts faulty-core cycles
    /// only).
    pub golden_replay_cycles: u64,
    pub golden_restores: u64,
    pub golden_full_restores: u64,
    pub golden_incremental_restores: u64,
    pub golden_poisoned_restores: u64,
    pub golden_restored_bytes: RestoredBytes,
    /// Fork copy economics of every fork the range spawned: bytes actually
    /// copied under copy-on-write, the bytes an eager (pre-CoW) fork would
    /// have copied for the same forks, and the bytes adopted by handle
    /// sharing.  Kept out of the per-fault [`FaultRun`] accounting so
    /// `restored_bytes` stays directly comparable between the batched and
    /// per-fault engines.
    pub fork_bytes: ForkStats,
    /// Copy-on-write sharing breaks drained from cores as they returned to
    /// the pool during this range (first private write after a fork or a
    /// handle-sharing restore).
    pub cow_breaks: u64,
    /// Merge-prefilter fingerprint collisions: candidate pairs whose cheap
    /// [`Cpu::merge_fingerprint`] matched and advanced to the exact state
    /// comparison.  [`BatchStats::forks_merged`] counts the confirmations;
    /// the gap between the two is the prefilter's false-positive volume.
    pub merge_prefilter_hits: u64,
}

/// A fork whose outcome was adopted from its merge representative; only
/// its per-fault bookkeeping remains to be attached once the
/// representative's effect is known.
struct MergedFork {
    idx: usize,
    restore: RestoreStats,
}

/// One faulty core forked from the golden replay, fault injected, not yet
/// simulated.
struct Fork {
    idx: usize,
    spawn_cycle: u64,
    restore: RestoreStats,
    core: Cpu,
    /// Same-cycle forks merged into this one; they share its eventual
    /// outcome.
    followers: Vec<MergedFork>,
}

fn fault_run(
    effect: FaultEffect,
    early_exit: bool,
    restore: RestoreStats,
    suffix_cycles: u64,
) -> FaultRun {
    // Fork bytes are deliberately *not* folded into `bytes`: under
    // copy-on-write a fork copies almost nothing, and what it does move is
    // reported separately as [`BatchStats::fork_bytes`] so the restore
    // accounting stays directly comparable to the per-fault engine's.
    FaultRun {
        effect,
        early_exit,
        restored: true,
        incremental: restore.incremental,
        bytes: restore.bytes,
        suffix_cycles,
        skipped_site: false,
        from_quarantine: restore.from_quarantine,
    }
}

/// Finalises a fork: returns its core to the pool and emits its outcome
/// plus one outcome per merged follower, all sharing `effect` (followers
/// simulated zero cycles — that is the merge win).
fn retire_fork(
    fork: Fork,
    effect: FaultEffect,
    early_exit: bool,
    suffix_cycles: u64,
    pool: &mut ForkPool,
    out: &mut Vec<(usize, FaultRun)>,
) {
    let Fork {
        idx,
        restore,
        core,
        followers,
        ..
    } = fork;
    pool.put(core);
    out.push((idx, fault_run(effect, early_exit, restore, suffix_cycles)));
    for f in followers {
        out.push((f.idx, fault_run(effect, early_exit, f.restore, 0)));
    }
}

/// Returns every surviving core to the pool, with the panicking core (if
/// any) quarantined and pushed last — so the per-fault fallback picks it
/// up first and its forced full restore is exercised (and visible as a
/// poisoned restore) instead of the core rotting at the bottom of the
/// pool.
fn abort_to_pool(
    pool: &mut ForkPool,
    golden_core: Option<Cpu>,
    pending: Vec<Fork>,
    bad: Option<Cpu>,
) {
    for f in pending {
        pool.put(f.core);
    }
    if let Some(g) = golden_core {
        pool.put(g);
    }
    if let Some(mut b) = bad {
        b.quarantine();
        pool.put(b);
    }
}

/// Runs one checkpoint range's simulated faults through the batched
/// driver.  `sim` holds the fault-list indices that actually reach a core
/// (statically-pruned and absent-site faults are resolved by the caller),
/// cycle-sorted; every fault shares the range's restore snapshot by the
/// scheduler's bucketing.  Returns `None` if any operation panicked or a
/// core could not be built — the panicking core is quarantined, every
/// other core is back in the pool, and the caller re-runs the whole range
/// on the per-fault path.
pub(crate) fn run_batched_range(
    pool: &mut ForkPool,
    golden: &GoldenRun,
    ckpts: &GoldenCheckpoints,
    boundaries: &[u64],
    diffs: &mut DiffCache,
    faults: &[FaultSpec],
    sim: &[usize],
) -> Option<(Vec<(usize, FaultRun)>, BatchStats)> {
    let mut stats = BatchStats::default();
    let mut out: Vec<(usize, FaultRun)> = Vec::with_capacity(sim.len());
    if sim.is_empty() {
        return Some((out, stats));
    }
    let state = ckpts.store.latest_at_or_before(faults[sim[0]].cycle)?;
    let restore_cycle = state.cycle();
    let timeout = golden.timeout_cycles;
    let early_exit = ckpts.policy.early_exit;

    let mut golden_core = pool.take()?;
    let golden_restore = match catch_unwind(AssertUnwindSafe(|| golden_core.restore_from(state))) {
        Ok(r) => r,
        Err(_) => {
            abort_to_pool(pool, None, Vec::new(), Some(golden_core));
            return None;
        }
    };
    stats.golden_restores = 1;
    stats.golden_full_restores = u64::from(!golden_restore.incremental);
    stats.golden_incremental_restores = u64::from(golden_restore.incremental);
    stats.golden_poisoned_restores = u64::from(golden_restore.from_quarantine);
    stats.golden_restored_bytes = golden_restore.bytes;

    let mut next_sim = 0usize;
    while next_sim < sim.len() {
        // Replay the golden core up to the next injection cycle — never
        // past it, so the fork sees exactly the state a per-fault core has
        // after replaying to that cycle.  Once the golden run halts its
        // cycle freezes and all remaining forks clone the frozen final
        // state: their faults would never fire on the per-fault path
        // either, and the cloned cores finalise immediately with the
        // golden result.
        let target = faults[sim[next_sim]].cycle;
        if !golden_core.is_finished() && golden_core.cycle() < target {
            let stepped = catch_unwind(AssertUnwindSafe(|| {
                let mut n = 0u64;
                while !golden_core.is_finished() && golden_core.cycle() < target {
                    golden_core.step(&mut NullProbe);
                    n += 1;
                }
                n
            }));
            match stepped {
                Ok(n) => stats.golden_replay_cycles += n,
                Err(_) => {
                    abort_to_pool(pool, None, Vec::new(), Some(golden_core));
                    return None;
                }
            }
        }

        // Spawn the cohort of faults due at this golden state, merging
        // forks whose complete post-spawn states collide (in practice:
        // duplicate same-site faults) before any of them simulates.
        let cycle = golden_core.cycle();
        let mut cohort: Vec<Fork> = Vec::new();
        while next_sim < sim.len()
            && (golden_core.is_finished() || faults[sim[next_sim]].cycle <= cycle)
        {
            let idx = sim[next_sim];
            let fault = faults[idx];
            next_sim += 1;
            let Some(mut core) = pool.take() else {
                abort_to_pool(pool, Some(golden_core), cohort, None);
                return None;
            };
            let forked = catch_unwind(AssertUnwindSafe(|| {
                crate::chaos::maybe_panic_fault(fault.cycle);
                let restore = core.restore_from(state);
                let fork_bytes = core.fork_from(&golden_core);
                (restore, fork_bytes)
            }));
            let (restore, fork_bytes) = match forked {
                Ok(r) => r,
                Err(_) => {
                    abort_to_pool(pool, Some(golden_core), cohort, Some(core));
                    return None;
                }
            };
            stats.fork_bytes += fork_bytes;
            if core.inject_fault(fault).is_err() {
                // Absent fault site: same resolution as the per-fault
                // engine.
                out.push((idx, FaultRun::skipped(true, Some(restore))));
                pool.put(core);
                continue;
            }
            stats.forks_spawned += 1;
            let merged = catch_unwind(AssertUnwindSafe(|| {
                let fp = core.merge_fingerprint();
                let mut prefilter_hits = 0u64;
                let hit = cohort.iter().position(|rep| {
                    if rep.core.merge_fingerprint() != fp {
                        return false;
                    }
                    prefilter_hits += 1;
                    rep.core.matches_state(&core.snapshot())
                });
                (hit, prefilter_hits)
            }));
            match merged {
                Ok((hit, prefilter_hits)) => {
                    stats.merge_prefilter_hits += prefilter_hits;
                    match hit {
                        Some(k) => {
                            pool.put(core);
                            stats.forks_merged += 1;
                            cohort[k].followers.push(MergedFork { idx, restore });
                        }
                        None => cohort.push(Fork {
                            idx,
                            spawn_cycle: cycle,
                            restore,
                            core,
                            followers: Vec::new(),
                        }),
                    }
                }
                Err(_) => {
                    // The comparison touched several cores and left no
                    // single culprit; return everything and let the
                    // per-fault path contain the fault.
                    pool.put(core);
                    abort_to_pool(pool, Some(golden_core), cohort, None);
                    return None;
                }
            }
        }

        // Run each representative to retirement, back-to-back (one hot
        // core at a time).  This loop is the per-fault engine's
        // simulation loop verbatim, minus the prefix replay it no longer
        // needs: boundary convergence probes through the memoised
        // golden-to-golden diff, then a final run to halt or timeout.
        while !cohort.is_empty() {
            let mut fork = cohort.remove(0);
            let fault_cycle = faults[fork.idx].cycle;
            let ran = catch_unwind(AssertUnwindSafe(|| {
                let mut probe = NullProbe;
                let mut next = boundaries.partition_point(|&c| c <= fault_cycle);
                while !fork.core.is_finished() && fork.core.cycle() < timeout {
                    if early_exit && next < boundaries.len() {
                        if boundaries[next] < fork.core.cycle() {
                            next += 1;
                        } else if boundaries[next] == fork.core.cycle() {
                            if let Some(g) = ckpts.store.at_cycle(fork.core.cycle()) {
                                let diff = diffs
                                    .entry((restore_cycle, fork.core.cycle()))
                                    .or_insert_with(|| state.diff_to(g));
                                if fork.core.matches_state_with_diff(g, diff) {
                                    return (
                                        FaultEffect::Masked,
                                        true,
                                        fork.core.cycle() - fork.spawn_cycle,
                                    );
                                }
                            }
                            next += 1;
                        }
                    }
                    fork.core.step(&mut probe);
                }
                let result = fork.core.run(timeout, &mut probe);
                let suffix = result.cycles.saturating_sub(fork.spawn_cycle);
                (classify(&golden.result, &result), false, suffix)
            }));
            match ran {
                Ok((effect, early, suffix)) => {
                    stats.forks_retired += u64::from(early);
                    retire_fork(fork, effect, early, suffix, pool, &mut out);
                }
                Err(_) => {
                    abort_to_pool(pool, Some(golden_core), cohort, Some(fork.core));
                    return None;
                }
            }
        }
    }
    pool.put(golden_core);
    stats.cow_breaks = pool.take_cow_breaks();
    Some((out, stats))
}
