//! # merlin-inject
//!
//! Statistical microarchitecture-level fault injection — the GeFIN analog of
//! the MeRLiN reproduction.  It provides:
//!
//! * the session-oriented campaign API ([`Session`], [`SessionBuilder`],
//!   [`SessionCache`]): one object owns the (program, configuration,
//!   checkpoint policy) context, builds the checkpointed golden run lazily
//!   exactly once, and runs every campaign phase as a method — with keyed
//!   in-memory and on-disk caching so configuration sweeps and repeated
//!   processes share golden runs,
//! * the statistical sampling machinery of Leveugle et al. used by the paper
//!   to size its campaigns ([`SamplingPlan`], [`sample_size`],
//!   [`generate_fault_list`]),
//! * the checkpoint-and-restore injection engine behind
//!   [`Session::campaign`]: the golden run is snapshotted in one adaptive
//!   pass (spaced by equal cycles or equal estimated suffix work, see
//!   [`SpacingStrategy`]) and every faulty run restores the nearest
//!   checkpoint and simulates only its post-injection suffix — with an
//!   allocation-free hot loop: every session shares one pre-decoded
//!   micro-op arena (`merlin_isa::DecodedProgram`) across all of its
//!   cores, and back-to-back restores of the same snapshot rewrite only
//!   the state the suffix run touched,
//! * the restore-aware [`CampaignScheduler`] (see the [`schedule`] module):
//!   faults are bucketed into per-checkpoint ranges, workers bind to whole
//!   ranges (keeping each worker's restore snapshot hot), steal whole
//!   ranges when they drain, and oversized ranges are split into
//!   sub-ranges sharing the restore source — with per-campaign
//!   [`ScheduleStats`] on every [`CampaignResult`] and byte-identical
//!   outcomes at any thread count,
//! * fork-on-divergence batched suffix simulation ([`BatchingPolicy`], see
//!   the `batch` module): one golden replay per checkpoint range with
//!   faulty cores forked lazily at their injection cycles, retired on
//!   re-convergence and merged on state collision — byte-identical to the
//!   per-fault engine, which stays wired in as the oracle,
//! * the fault-effect classification of Table 2 ([`FaultEffect`],
//!   [`classify`], [`Classification`]) and the truncated-run classification
//!   of §4.4.3.4 ([`TruncatedEffect`]).
//!
//! # Examples
//!
//! A miniature comprehensive campaign on one workload:
//!
//! ```
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_inject::Session;
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("sha").unwrap();
//! let session = Session::builder(&w.program, &CpuConfig::default())
//!     .max_cycles(10_000_000)
//!     .threads(2)
//!     .build()
//!     .unwrap();
//! let faults = session.fault_list(Structure::RegisterFile, 8, 42).unwrap();
//! let result = session.campaign(&faults).unwrap();
//! assert_eq!(result.classification.total(), 8);
//! // The golden run was built exactly once, on first use.
//! assert_eq!(session.golden_builds(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod campaign;
pub mod chaos;
mod classify;
mod sampling;
pub mod schedule;
mod session;

pub use batch::BatchingPolicy;
pub use campaign::{
    CampaignError, CampaignResult, FaultInjector, FaultOutcome, GoldenCheckpoints, GoldenRun,
};
pub use classify::{classify, Classification, FaultEffect, TruncatedEffect};
pub use sampling::{
    fault_population, generate_fault_list, probit, sample_size, z_score, SamplingPlan,
};
pub use schedule::{CampaignScheduler, ScheduleStats};
pub use session::{Session, SessionBuilder, SessionCache, SessionKey};

// Re-exported so downstream crates can name fault sites and checkpoint
// policies without depending on merlin-cpu directly.
pub use merlin_cpu::{
    CheckpointPolicy, CheckpointStore, FaultSpec, FaultSpecError, SpacingStrategy, Structure,
};
