//! # merlin-inject
//!
//! Statistical microarchitecture-level fault injection — the GeFIN analog of
//! the MeRLiN reproduction.  It provides:
//!
//! * the statistical sampling machinery of Leveugle et al. used by the paper
//!   to size its campaigns ([`SamplingPlan`], [`sample_size`],
//!   [`generate_fault_list`]),
//! * golden (fault-free) reference runs with the 3× timeout rule
//!   ([`run_golden`], [`run_golden_checkpointed`]),
//! * single-fault experiments and multi-threaded campaigns
//!   ([`run_single_fault`], [`run_campaign`]) built on a
//!   checkpoint-and-restore engine: the golden run is snapshotted at a
//!   configurable cycle interval and every faulty run restores the nearest
//!   checkpoint and simulates only its post-injection suffix (see the
//!   [`campaign`](crate::run_campaign) module documentation for the engine's
//!   design and its byte-identical-results guarantee),
//! * the fault-effect classification of Table 2 ([`FaultEffect`],
//!   [`classify`], [`Classification`]) and the truncated-run classification
//!   of §4.4.3.4 ([`TruncatedEffect`]).
//!
//! # Examples
//!
//! A miniature comprehensive campaign on one workload:
//!
//! ```
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_inject::{generate_fault_list, run_campaign, run_golden};
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("sha").unwrap();
//! let cfg = CpuConfig::default();
//! let golden = run_golden(&w.program, &cfg, 10_000_000).unwrap();
//! # // (use run_golden_checkpointed for real campaigns)
//! let faults = generate_fault_list(
//!     Structure::RegisterFile,
//!     cfg.phys_int_regs,
//!     golden.result.cycles,
//!     8,
//!     42,
//! );
//! let result = run_campaign(&w.program, &cfg, &golden, &faults, 2);
//! assert_eq!(result.classification.total(), 8);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod campaign;
mod classify;
mod sampling;

pub use campaign::{
    run_campaign, run_campaign_from_scratch, run_golden, run_golden_checkpointed, run_single_fault,
    CampaignError, CampaignResult, FaultInjector, FaultOutcome, GoldenCheckpoints, GoldenRun,
};
pub use classify::{classify, Classification, FaultEffect, TruncatedEffect};
pub use sampling::{
    fault_population, generate_fault_list, probit, sample_size, z_score, SamplingPlan,
};

// Re-exported so downstream crates can name fault sites and checkpoint
// policies without depending on merlin-cpu directly.
pub use merlin_cpu::{CheckpointPolicy, CheckpointStore, FaultSpec, Structure};
