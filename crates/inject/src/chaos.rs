//! Test-only chaos hooks for exercising the failure-containment layer.
//!
//! The engine's robustness claims — panics become deterministic [`Assert`]
//! classifications, a panicked worker's range is retried on a fresh core,
//! corrupt `.golden` artifacts are quarantined — are only worth anything if
//! they are *driven* in tests by real engine-level faults.  This module is
//! that fault source: a process-global, normally disarmed probe that the
//! engine polls at two points:
//!
//! * **per-fault** — just before simulating a fault's suffix, inside the
//!   per-fault `catch_unwind`.  Arming a fault's injection cycle via
//!   [`ChaosPlan::fault_panic_cycles`] makes *every* simulation attempt of
//!   that fault panic, which the engine must classify as [`Assert`] and
//!   which must quarantine the worker's core.
//! * **per-range** — when a scheduler worker starts a bound range, outside
//!   the per-fault `catch_unwind` but inside the worker's range-level
//!   containment.  Arming [`ChaosPlan::range_panic_cycle`] with a panic
//!   budget ([`ChaosPlan::range_panic_times`]) tears down the whole worker
//!   attempt, which the scheduler must retry on a fresh core (and, once the
//!   retry also fails, classify deterministically as [`Assert`]).
//!
//! The probes cost one relaxed atomic load each while disarmed, so shipping
//! them compiled-in is free; nothing outside `#[cfg(test)]`-style test code
//! should ever call [`arm`].  Arming returns a [`ChaosGuard`] that disarms
//! on drop, and tests sharing a process must serialise around it (chaos
//! state is global).
//!
//! Byte-level artifact corruption helpers ([`flip_byte`], [`truncate_file`])
//! live here too, so `.golden` corruption tests and the panic probes share
//! one chaos vocabulary.
//!
//! [`Assert`]: crate::FaultEffect::Assert

use std::fs;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// What the armed chaos probe should do.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Injection cycles whose faults panic on every simulation attempt
    /// (probed inside the per-fault `catch_unwind`).  Unbudgeted: the same
    /// fault panics again if retried, so its classification must come from
    /// the engine's containment, not from the panic "wearing off".
    pub fault_panic_cycles: Vec<u64>,
    /// If set, a scheduler worker panics when it starts a range containing a
    /// fault with this injection cycle (probed outside the per-fault
    /// `catch_unwind`).
    pub range_panic_cycle: Option<u64>,
    /// How many times the range probe fires before going quiet.  `1` models
    /// a transient worker crash (the retry succeeds); a large value models a
    /// deterministic range poison (the retry fails too and the range must be
    /// classified as `Assert`).
    pub range_panic_times: u32,
}

struct ChaosState {
    plan: ChaosPlan,
    range_budget: u32,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<ChaosState>> = Mutex::new(None);
static FAULT_PANICS_FIRED: AtomicU64 = AtomicU64::new(0);
static RANGE_PANICS_FIRED: AtomicU64 = AtomicU64::new(0);

fn lock_state() -> MutexGuard<'static, Option<ChaosState>> {
    // A chaos probe panics *on purpose* while holding no lock, but a test
    // thread may still die between arm and drop; the state itself is always
    // consistent, so poisoning carries no information.
    match STATE.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Arms the chaos probe with `plan` for the lifetime of the returned guard.
///
/// Panics if the probe is already armed — chaos state is process-global, so
/// tests must serialise (e.g. behind a shared `Mutex`) rather than nest.
pub fn arm(plan: ChaosPlan) -> ChaosGuard {
    let mut state = lock_state();
    assert!(
        state.is_none(),
        "chaos probe is already armed; serialise chaos tests"
    );
    FAULT_PANICS_FIRED.store(0, Ordering::SeqCst);
    RANGE_PANICS_FIRED.store(0, Ordering::SeqCst);
    *state = Some(ChaosState {
        range_budget: plan.range_panic_times,
        plan,
    });
    ARMED.store(true, Ordering::SeqCst);
    ChaosGuard { _private: () }
}

/// Disarms the chaos probe when dropped.  Returned by [`arm`].
#[must_use = "dropping the guard immediately disarms the probe"]
pub struct ChaosGuard {
    _private: (),
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *lock_state() = None;
    }
}

/// Number of per-fault probe panics since the probe was last armed.
pub fn fault_panics_fired() -> u64 {
    FAULT_PANICS_FIRED.load(Ordering::SeqCst)
}

/// Number of range-level probe panics since the probe was last armed.
pub fn range_panics_fired() -> u64 {
    RANGE_PANICS_FIRED.load(Ordering::SeqCst)
}

/// Per-fault probe: panics if the armed plan targets `fault_cycle`.
///
/// Called by the engine inside the per-fault `catch_unwind`, just before the
/// fault's suffix is simulated.  Disarmed cost: one relaxed load.
pub(crate) fn maybe_panic_fault(fault_cycle: u64) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = lock_state()
        .as_ref()
        .is_some_and(|s| s.plan.fault_panic_cycles.contains(&fault_cycle));
    if fire {
        FAULT_PANICS_FIRED.fetch_add(1, Ordering::SeqCst);
        panic!("chaos: injected per-fault panic at cycle {fault_cycle}");
    }
}

/// Range-level probe: panics if the armed plan targets any of the range's
/// fault cycles and the panic budget is not exhausted.
///
/// Called by scheduler workers when they start a bound range, outside the
/// per-fault `catch_unwind`.  Disarmed cost: one relaxed load.
pub(crate) fn maybe_panic_range(fault_cycles: impl IntoIterator<Item = u64>) {
    if !ARMED.load(Ordering::Relaxed) {
        return;
    }
    let fire = {
        let mut state = lock_state();
        match state.as_mut() {
            Some(s) if s.range_budget > 0 => {
                let hit = s
                    .plan
                    .range_panic_cycle
                    .is_some_and(|c| fault_cycles.into_iter().any(|f| f == c));
                if hit {
                    s.range_budget -= 1;
                }
                hit
            }
            _ => false,
        }
    };
    if fire {
        RANGE_PANICS_FIRED.fetch_add(1, Ordering::SeqCst);
        panic!("chaos: injected range-level panic");
    }
}

/// Flips one bit of the byte at `offset` in `path`, in place.
///
/// # Errors
///
/// Propagates I/O errors; fails with [`io::ErrorKind::InvalidInput`] if
/// `offset` is past the end of the file.
pub fn flip_byte(path: &Path, offset: usize) -> io::Result<()> {
    let mut bytes = fs::read(path)?;
    let byte = bytes
        .get_mut(offset)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "corruption offset past EOF"))?;
    *byte ^= 0x01;
    fs::write(path, bytes)
}

/// Truncates the file at `path` to its first `len` bytes.
///
/// # Errors
///
/// Propagates I/O errors; fails with [`io::ErrorKind::InvalidInput`] if
/// `len` exceeds the current file length (truncation never extends).
pub fn truncate_file(path: &Path, len: usize) -> io::Result<()> {
    let bytes = fs::read(path)?;
    if len > bytes.len() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "truncation length past EOF",
        ));
    }
    fs::write(path, &bytes[..len])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Unit tests here share the process-global probe with nothing else in
    // this crate (integration tests are separate binaries), but still
    // serialise among themselves.
    static CHAOS_TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        match CHAOS_TEST_LOCK.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn disarmed_probes_are_inert() {
        let _s = serial();
        maybe_panic_fault(123);
        maybe_panic_range([1, 2, 3]);
    }

    #[test]
    fn fault_probe_fires_only_on_armed_cycles() {
        let _s = serial();
        let guard = arm(ChaosPlan {
            fault_panic_cycles: vec![77],
            ..ChaosPlan::default()
        });
        maybe_panic_fault(76); // not armed: no panic
        let caught = std::panic::catch_unwind(|| maybe_panic_fault(77));
        assert!(caught.is_err());
        assert_eq!(fault_panics_fired(), 1);
        // Unbudgeted: fires again on retry.
        let caught = std::panic::catch_unwind(|| maybe_panic_fault(77));
        assert!(caught.is_err());
        assert_eq!(fault_panics_fired(), 2);
        drop(guard);
        maybe_panic_fault(77); // disarmed again
    }

    #[test]
    fn range_probe_respects_its_budget() {
        let _s = serial();
        let _guard = arm(ChaosPlan {
            range_panic_cycle: Some(10),
            range_panic_times: 1,
            ..ChaosPlan::default()
        });
        maybe_panic_range([5, 6]); // cycle not in range: no panic
        let caught = std::panic::catch_unwind(|| maybe_panic_range([9, 10, 11]));
        assert!(caught.is_err());
        assert_eq!(range_panics_fired(), 1);
        // Budget of one: the retry sails through.
        maybe_panic_range([9, 10, 11]);
        assert_eq!(range_panics_fired(), 1);
    }

    #[test]
    fn corruption_helpers_validate_offsets() {
        let _s = serial();
        let dir = std::env::temp_dir().join(format!("merlin-chaos-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        fs::write(&path, [0u8, 1, 2, 3]).unwrap();

        flip_byte(&path, 2).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![0u8, 1, 3, 3]);
        assert!(flip_byte(&path, 4).is_err());

        truncate_file(&path, 2).unwrap();
        assert_eq!(fs::read(&path).unwrap(), vec![0u8, 1]);
        assert!(truncate_file(&path, 3).is_err());

        fs::remove_dir_all(&dir).ok();
    }
}
