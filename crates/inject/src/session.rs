//! Session-oriented campaign API: one object owns the (program,
//! configuration, checkpoint policy) context of a fault-injection study and
//! every campaign phase runs as a method on it.
//!
//! The paper's methodology executes several phases over the *same* golden
//! run — representative injection, the comprehensive baseline, the post-ACE
//! baseline, the Relyzer comparison — and before this module existed every
//! caller re-threaded `(program, cfg, golden, policy, threads)` through free
//! functions by hand, with "build the golden run once" being caller
//! discipline rather than an invariant.  A [`Session`] makes it structural:
//!
//! * the program and configuration live behind `Arc`s shared by every
//!   campaign worker the session ever spawns,
//! * the checkpointed [`GoldenRun`] is built lazily, exactly once, in a
//!   single adaptive pass (no sizing pre-pass), and
//! * a [`SessionCache`] keyed by `(workload id, context fingerprint)` lets
//!   configuration sweeps and repeated phases share sessions — in memory
//!   within a process, and optionally on disk across processes via a
//!   bincode-style serialisation of the golden run and its checkpoint store.
//!
//! Higher layers extend the session by trait: `merlin-ace` adds
//! `ace_profile()` and `merlin-core` adds `merlin()`, `comprehensive()`,
//! `post_ace_baseline()` and `relyzer()`, all sharing this golden run.
//!
//! # Examples
//!
//! ```
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_inject::Session;
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("sha").unwrap();
//! let session = Session::builder(&w.program, &CpuConfig::default())
//!     .max_cycles(10_000_000)
//!     .threads(2)
//!     .build()
//!     .unwrap();
//! let faults = session.fault_list(Structure::RegisterFile, 8, 42).unwrap();
//! let result = session.campaign(&faults).unwrap();
//! assert_eq!(result.classification.total(), 8);
//! assert_eq!(session.golden_builds(), 1);
//! ```

use crate::batch::BatchingPolicy;
use crate::campaign::{
    build_golden_checkpointed, CampaignError, CampaignResult, FaultInjector, GoldenCheckpoints,
    GoldenRun,
};
use crate::sampling::generate_fault_list;
use crate::schedule::campaign_shared;
use merlin_analyze::ProgramAnalysis;
use merlin_cpu::{CheckpointPolicy, CpuConfig, FaultSpec, Structure};
use merlin_isa::binio::{BinCode, ByteReader};
use merlin_isa::{DecodedProgram, Program};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::{fs, io};

/// Builder for a [`Session`].
///
/// Obtained from [`Session::builder`]; every knob has a sensible default
/// (default checkpoint policy, 200 M-cycle budget, available parallelism).
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    program: Arc<Program>,
    cfg: Arc<CpuConfig>,
    policy: CheckpointPolicy,
    max_cycles: u64,
    threads: usize,
    batching: BatchingPolicy,
    persist_path: Option<PathBuf>,
    seeded_golden: Option<GoldenRun>,
    /// Counter receiving corrupt-artifact rejections (see
    /// [`Session::artifact_rejects`]); a cache installs its shared counter
    /// here so rejections aggregate across its sessions.
    artifact_rejects: Arc<AtomicU64>,
    /// Memoised [`SessionBuilder::fingerprint`]; cleared by every setter
    /// that participates in the fingerprint.
    fingerprint: std::cell::Cell<Option<u64>>,
}

impl SessionBuilder {
    fn new(program: &Program, cfg: &CpuConfig) -> Self {
        SessionBuilder {
            program: Arc::new(program.clone()),
            cfg: Arc::new(cfg.clone()),
            policy: CheckpointPolicy::default(),
            max_cycles: 200_000_000,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            batching: BatchingPolicy::default(),
            persist_path: None,
            seeded_golden: None,
            artifact_rejects: Arc::new(AtomicU64::new(0)),
            fingerprint: std::cell::Cell::new(None),
        }
    }

    /// Sets the checkpoint policy for the session's golden run.
    pub fn checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.policy = policy;
        self.fingerprint.set(None);
        self
    }

    /// Sets the cycle budget for the golden run.
    pub fn max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self.fingerprint.set(None);
        self
    }

    /// Sets the worker-thread count for the session's campaigns.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Selects the per-range campaign engine: per-fault restore (the
    /// default, and the oracle) or fork-on-divergence batching.  Outcomes
    /// are byte-identical either way, so — like [`Self::threads`] — this is
    /// execution-only and does not participate in the fingerprint.
    pub fn batching(mut self, batching: BatchingPolicy) -> Self {
        self.batching = batching;
        self
    }

    /// Persists the golden run (checkpoint store included) to `path` on
    /// first build, and loads it from there instead of simulating when a
    /// file with a matching fingerprint already exists.  Normally set by
    /// [`SessionCache::with_disk_dir`] rather than by hand.
    pub fn persist_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist_path = Some(path.into());
        self
    }

    /// Shares `counter` as the session's corrupt-artifact rejection counter
    /// (execution-only: not part of the fingerprint).  Used by
    /// [`SessionCache`] so rejections aggregate across its sessions.
    pub(crate) fn reject_counter(mut self, counter: Arc<AtomicU64>) -> Self {
        self.artifact_rejects = counter;
        self
    }

    /// Seeds the session with an already-built golden run instead of
    /// building one lazily (the bridge the deprecated free-function shims
    /// use; such a session reports zero [`Session::golden_builds`]).
    pub fn golden(mut self, golden: GoldenRun) -> Self {
        self.seeded_golden = Some(golden);
        self
    }

    /// The fingerprint of the simulation context this builder describes:
    /// a stable 64-bit hash over the program image, the configuration, the
    /// checkpoint policy and the cycle budget — everything that determines
    /// the golden run, and nothing that does not (the thread count is
    /// deliberately excluded; campaign results are thread-count invariant).
    /// Memoised, so repeated calls (cache lookup, then [`Self::build`]) hash
    /// the program once.
    pub fn fingerprint(&self) -> u64 {
        if let Some(hash) = self.fingerprint.get() {
            return hash;
        }
        let mut bytes = Vec::new();
        self.cfg.encode(&mut bytes);
        self.policy.encode(&mut bytes);
        self.max_cycles.encode(&mut bytes);
        self.program.data_size.encode(&mut bytes);
        self.program.entry.encode(&mut bytes);
        // Data segments, injectively: segment count up front and every
        // segment length-prefixed, so `[{a, 0x01 0x02}]` can never hash like
        // `[{a, 0x01}, {b, 0x02}]`.
        self.program.data.len().encode(&mut bytes);
        for seg in &self.program.data {
            seg.addr.encode(&mut bytes);
            seg.bytes.encode(&mut bytes);
        }
        let mut hash = fnv1a(FNV_OFFSET, &bytes);
        // The instruction stream, via its canonical listing (one line per
        // instruction, so the encoding is unambiguous; the ISA types predate
        // the binary codec and need no byte-exact encoding of their own for
        // identity purposes).
        hash = fnv1a(hash, self.program.listing().as_bytes());
        self.fingerprint.set(Some(hash));
        hash
    }

    /// Builds the session, validating the configuration and linting the
    /// program up front.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::BadConfig`] for inconsistent configurations
    /// and [`CampaignError::Lint`] for programs that fail admission control
    /// (out-of-range control targets, reads of never-written registers,
    /// unreachable instructions) — caught here, at the session boundary,
    /// instead of panicking a worker core mid-campaign.
    pub fn build(self) -> Result<Session, CampaignError> {
        self.cfg
            .validate()
            .map_err(|e| CampaignError::BadConfig(e.to_string()))?;
        let fingerprint = self.fingerprint();
        let golden = OnceLock::new();
        if let Some(seed) = self.seeded_golden {
            let _ = golden.set(Ok(seed));
        }
        // Decode the whole program exactly once per session: the golden run,
        // every campaign worker and every injector fetch micro-ops from this
        // shared table instead of cracking per fetched instruction.
        let decoded = Arc::new(DecodedProgram::new(&self.program));
        // Static analysis rides the session the same way: computed once,
        // shared by every campaign (the register-file prune) and by higher
        // layers (ACE cross-validation).  Its lint is admission control.
        let analysis = Arc::new(ProgramAnalysis::of(&self.program, &decoded));
        if !analysis.lint().is_clean() {
            return Err(CampaignError::Lint(analysis.lint().clone()));
        }
        Ok(Session {
            program: self.program,
            decoded,
            analysis,
            cfg: self.cfg,
            policy: self.policy,
            max_cycles: self.max_cycles,
            threads: self.threads,
            batching: self.batching,
            persist_path: self.persist_path,
            fingerprint,
            golden,
            golden_builds: AtomicU64::new(0),
            artifact_rejects: self.artifact_rejects,
            ext: Mutex::new(HashMap::new()),
        })
    }
}

/// One fault-injection study over one (program, configuration) pair.
///
/// See the `session` module documentation for the design; the short version:
/// the golden run is built lazily exactly once per session, every campaign
/// phase is a method, and sessions are shared through a [`SessionCache`].
#[derive(Debug)]
pub struct Session {
    program: Arc<Program>,
    /// Pre-decoded micro-op arena shared by every core this session spawns.
    decoded: Arc<DecodedProgram>,
    /// Static CFG/dataflow analysis, computed once at build; powers the
    /// static register-file prune and downstream cross-validation.
    analysis: Arc<ProgramAnalysis>,
    cfg: Arc<CpuConfig>,
    policy: CheckpointPolicy,
    max_cycles: u64,
    threads: usize,
    batching: BatchingPolicy,
    persist_path: Option<PathBuf>,
    fingerprint: u64,
    golden: OnceLock<Result<GoldenRun, CampaignError>>,
    golden_builds: AtomicU64,
    /// Corrupt `.golden` files quarantined at load (shared with the owning
    /// [`SessionCache`] when the session came from one).
    artifact_rejects: Arc<AtomicU64>,
    /// Type-keyed storage for per-session artifacts owned by higher layers
    /// (e.g. the cached ACE analysis of `merlin-ace`).
    ext: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl Session {
    /// Starts building a session for `program` under `cfg` (both cloned once
    /// into `Arc`s here, never again per phase or per fault).
    pub fn builder(program: &Program, cfg: &CpuConfig) -> SessionBuilder {
        SessionBuilder::new(program, cfg)
    }

    /// The shared program image.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// The shared pre-decoded micro-op table (built once per session; every
    /// golden-run, campaign-worker and injector core fetches from it).
    pub fn decoded(&self) -> &Arc<DecodedProgram> {
        &self.decoded
    }

    /// The session's static program analysis (CFG, liveness, register
    /// census), computed once at build time.  Programs reaching this point
    /// always lint clean — [`SessionBuilder::build`] rejects the rest.
    pub fn analysis(&self) -> &Arc<ProgramAnalysis> {
        &self.analysis
    }

    /// The shared configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.cfg
    }

    /// The checkpoint policy golden runs are built under.
    pub fn policy(&self) -> &CheckpointPolicy {
        &self.policy
    }

    /// The cycle budget for the golden run.
    pub fn max_cycles(&self) -> u64 {
        self.max_cycles
    }

    /// Worker threads used by this session's campaigns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The per-range campaign engine this session's campaigns run under.
    pub fn batching(&self) -> BatchingPolicy {
        self.batching
    }

    /// The context fingerprint (see [`SessionBuilder::fingerprint`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The golden run, built (or loaded from the persist path) on first use
    /// and shared by every subsequent phase.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::GoldenRunFailed`] if the program does not
    /// halt within the cycle budget, [`CampaignError::BadConfig`] for
    /// invalid configurations.  The error is sticky: a failed build is not
    /// retried.
    pub fn golden(&self) -> Result<&GoldenRun, CampaignError> {
        self.golden
            .get_or_init(|| self.build_golden())
            .as_ref()
            .map_err(Clone::clone)
    }

    /// How many times this session actually *simulated* a golden run (0 or
    /// 1; disk-cache hits and seeded goldens do not count).  The regression
    /// suite uses this to prove the once-per-session invariant.
    pub fn golden_builds(&self) -> u64 {
        self.golden_builds.load(Ordering::Relaxed)
    }

    /// Corrupt `.golden` artifacts this session rejected at load: files whose
    /// header matched this context but whose content failed the checksum (or
    /// decode), quarantined to `<name>.golden.corrupt` and rebuilt.  When the
    /// session came from a [`SessionCache`], the counter is shared cache-wide
    /// ([`SessionCache::artifact_rejects`]).
    pub fn artifact_rejects(&self) -> u64 {
        self.artifact_rejects.load(Ordering::Relaxed)
    }

    fn build_golden(&self) -> Result<GoldenRun, CampaignError> {
        if let Some(path) = &self.persist_path {
            let mem_len = (self.program.data_size + self.cfg.extra_memory_bytes) as usize;
            if let Some(golden) =
                load_golden(path, self.fingerprint, mem_len, &self.artifact_rejects)
            {
                return Ok(golden);
            }
        }
        self.golden_builds.fetch_add(1, Ordering::Relaxed);
        let golden = build_golden_checkpointed(
            &self.program,
            &self.decoded,
            &self.cfg,
            self.max_cycles,
            &self.policy,
        )?;
        if let Some(path) = &self.persist_path {
            // Persistence is best-effort: a read-only disk must not fail the
            // campaign.
            let _ = save_golden(path, self.fingerprint, &golden);
        }
        Ok(golden)
    }

    /// Checks a fault list against the fault model — the session boundary
    /// where hand-rolled `FaultSpec` literals with out-of-range bit indices
    /// are rejected as an error instead of panicking a campaign worker.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidFault`] naming the first offending
    /// fault.
    pub fn validate_faults(&self, faults: &[FaultSpec]) -> Result<(), CampaignError> {
        for (i, fault) in faults.iter().enumerate() {
            fault
                .validate()
                .map_err(|e| CampaignError::InvalidFault(format!("fault #{i} ({fault}): {e}")))?;
        }
        Ok(())
    }

    /// Number of fault-injectable entries `structure` has under this
    /// session's configuration.
    pub fn structure_entries(&self, structure: Structure) -> usize {
        self.cfg.structure_entries(structure)
    }

    /// Draws a statistically sampled fault list for `structure` over this
    /// session's golden execution length (phase 1, task 2 of the paper).
    ///
    /// # Errors
    ///
    /// Propagates golden-run errors.
    pub fn fault_list(
        &self,
        structure: Structure,
        count: usize,
        seed: u64,
    ) -> Result<Vec<FaultSpec>, CampaignError> {
        let cycles = self.golden()?.result.cycles;
        Ok(generate_fault_list(
            structure,
            self.structure_entries(structure),
            cycles,
            count,
            seed,
        ))
    }

    /// Runs an injection campaign over `faults` with this session's thread
    /// count, restoring golden checkpoints per fault when the policy enables
    /// them.  Register-file faults into statically-dead entries are
    /// classified Masked without simulation and accounted as
    /// [`ScheduleStats::static_prunes`](crate::ScheduleStats::static_prunes).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::InvalidFault`] for fault specifications that
    /// violate the fault model, and propagates golden-run errors.
    pub fn campaign(&self, faults: &[FaultSpec]) -> Result<CampaignResult, CampaignError> {
        self.validate_faults(faults)?;
        let golden = self.golden()?;
        Ok(campaign_shared(
            &self.program,
            &self.decoded,
            &self.cfg,
            golden,
            true,
            faults,
            self.threads,
            Some(&self.analysis),
            self.batching,
        ))
    }

    /// Runs a campaign with checkpoint restoration forcibly disabled (every
    /// fault simulates from cycle 0) and without the static prune — the
    /// differential-testing and benchmarking baseline of the checkpointed
    /// engine.  Because this path fully simulates every fault, the standing
    /// byte-identity assertions against [`Session::campaign`] double as a
    /// continuous soundness check of the static prune.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::campaign`].
    pub fn campaign_from_scratch(
        &self,
        faults: &[FaultSpec],
    ) -> Result<CampaignResult, CampaignError> {
        self.validate_faults(faults)?;
        let golden = self.golden()?;
        Ok(campaign_shared(
            &self.program,
            &self.decoded,
            &self.cfg,
            golden,
            false,
            faults,
            self.threads,
            None,
            BatchingPolicy::PerFault,
        ))
    }

    /// A reusable one-fault-at-a-time injector over this session's golden
    /// run (used by truncated-run studies); shares the session's `Arc`s.
    ///
    /// # Errors
    ///
    /// Propagates golden-run errors.
    pub fn injector(&self) -> Result<FaultInjector, CampaignError> {
        let golden = self.golden()?.clone();
        Ok(FaultInjector::from_parts(
            Arc::clone(&self.program),
            Arc::clone(&self.decoded),
            Arc::clone(&self.cfg),
            golden,
        ))
    }

    /// Peak heap footprint of the session's checkpoint store in bytes (0
    /// when the golden run has not been built or checkpointing is off).
    pub fn checkpoint_footprint_bytes(&self) -> usize {
        match self.golden.get() {
            Some(Ok(GoldenRun {
                checkpoints: Some(ck),
                ..
            })) => ck.store.footprint_bytes(),
            _ => 0,
        }
    }

    /// The golden checkpoints, when built and enabled (mainly for tests and
    /// diagnostics).
    pub fn golden_checkpoints(&self) -> Option<Arc<GoldenCheckpoints>> {
        match self.golden.get() {
            Some(Ok(g)) => g.checkpoints.clone(),
            _ => None,
        }
    }

    /// Gets or initialises a per-session extension value of type `T`.
    ///
    /// Extension traits in higher crates use this to cache expensive
    /// per-session artifacts (the ACE-like analysis, for instance) without
    /// `merlin-inject` depending on their types: values are keyed by
    /// `TypeId` and shared as `Arc<T>`.
    ///
    /// The initialiser runs under the extension-map lock, so it must not
    /// recursively call `ext_get_or_try_init` (calling [`Session::golden`]
    /// and the campaign methods is fine).
    ///
    /// # Errors
    ///
    /// Propagates the initialiser's error; nothing is cached on failure.
    pub fn ext_get_or_try_init<T, E, F>(&self, init: F) -> Result<Arc<T>, E>
    where
        T: Any + Send + Sync,
        F: FnOnce(&Session) -> Result<T, E>,
    {
        let mut map = lock_unpoisoned(&self.ext);
        if let Some(existing) = map.get(&TypeId::of::<T>()) {
            return Ok(Arc::clone(existing)
                .downcast::<T>()
                .expect("extension map entries are keyed by their TypeId"));
        }
        let value = Arc::new(init(self)?);
        map.insert(TypeId::of::<T>(), value.clone());
        Ok(value)
    }
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking initialiser poisons the lock but leaves the map in a
    // consistent state (entries are inserted only after successful init).
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Key of one cached session: a caller-chosen workload identifier plus the
/// context fingerprint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SessionKey {
    /// Workload identifier (benchmark name for the bundled workloads).
    pub id: String,
    /// Context fingerprint (see [`SessionBuilder::fingerprint`]).
    pub fingerprint: u64,
}

/// One cached session plus its recency stamp.
#[derive(Debug)]
struct CacheEntry {
    session: Arc<Session>,
    /// Monotone access counter value at the entry's last use (LRU order).
    last_used: u64,
}

/// Interior state of a [`SessionCache`].
#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<SessionKey, CacheEntry>,
    /// Monotone access counter driving the LRU order.
    tick: u64,
    /// Sessions evicted to enforce the byte budget, ever.
    evictions: u64,
}

/// A keyed cache of [`Session`]s, so configuration sweeps and repeated
/// campaign phases over the same `(workload, configuration)` pair share one
/// golden run.
///
/// With a disk directory attached, golden runs (checkpoint store included)
/// are serialised to `<dir>/<id>-<fingerprint>.golden` and re-loaded by
/// later processes — the instrumented golden run is then paid once per
/// context *ever*, not once per process.
///
/// With a byte budget attached ([`SessionCache::with_byte_budget`]), the
/// cache evicts least-recently-used sessions whenever the summed
/// [`Session::checkpoint_footprint_bytes`] of its residents exceeds the
/// budget — paper-scale sweeps (9 configurations × 10 benchmarks) then hold
/// a bounded working set instead of ~90 checkpoint stores.  Eviction only
/// drops the cache's reference: sessions still held by callers stay fully
/// usable, and a re-requested evicted context rebuilds — from its persisted
/// `.golden` file without re-simulating when a disk directory is attached.
///
/// # Examples
///
/// ```
/// use merlin_cpu::CpuConfig;
/// use merlin_inject::SessionCache;
/// use merlin_workloads::workload_by_name;
///
/// let cache = SessionCache::new();
/// let w = workload_by_name("sha").unwrap();
/// let cfg = CpuConfig::default();
/// let a = cache
///     .session(w.name, &w.program, &cfg, |b| b.max_cycles(10_000_000))
///     .unwrap();
/// let b = cache
///     .session(w.name, &w.program, &cfg, |b| b.max_cycles(10_000_000))
///     .unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b), "same context, same session");
/// ```
#[derive(Debug, Default)]
pub struct SessionCache {
    state: Mutex<CacheState>,
    disk_dir: Option<PathBuf>,
    byte_budget: Option<usize>,
    /// Corrupt `.golden` files quarantined at load, summed over every
    /// session this cache created (shared into each via
    /// [`SessionBuilder::reject_counter`]).
    artifact_rejects: Arc<AtomicU64>,
}

impl SessionCache {
    /// An in-memory cache (sessions shared within this process only),
    /// unbounded.
    pub fn new() -> Self {
        SessionCache::default()
    }

    /// A cache that additionally persists golden runs under `dir` for
    /// cross-process reuse.  The directory is created on first save.
    pub fn with_disk_dir(dir: impl Into<PathBuf>) -> Self {
        SessionCache {
            disk_dir: Some(dir.into()),
            ..SessionCache::default()
        }
    }

    /// Bounds the summed checkpoint footprint of resident sessions to
    /// `bytes`, evicting least-recently-used sessions past it (see the type
    /// docs).  The budget is enforced at every [`SessionCache::session`]
    /// request — golden runs are built lazily, so a session's footprint
    /// materialises after it is cached and is accounted for from the next
    /// request on.  Composes with [`SessionCache::with_disk_dir`]:
    ///
    /// ```
    /// use merlin_inject::SessionCache;
    /// let cache = SessionCache::with_disk_dir("/tmp/golden")
    ///     .with_byte_budget(256 << 20);
    /// ```
    pub fn with_byte_budget(mut self, bytes: usize) -> Self {
        self.byte_budget = Some(bytes);
        self
    }

    /// Returns the session for `(id, context)`, creating it on first
    /// request.  `tune` adjusts the builder (policy, cycle budget, threads);
    /// two requests whose tuned builders fingerprint identically share one
    /// session, golden run and checkpoint store.
    ///
    /// Execution-only knobs of later requests (the thread count) are
    /// ignored in favour of the cached session's.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::BadConfig`] for invalid configurations.
    pub fn session(
        &self,
        id: &str,
        program: &Program,
        cfg: &CpuConfig,
        tune: impl FnOnce(SessionBuilder) -> SessionBuilder,
    ) -> Result<Arc<Session>, CampaignError> {
        let mut builder = tune(Session::builder(program, cfg));
        let key = SessionKey {
            id: id.to_string(),
            fingerprint: builder.fingerprint(),
        };
        let mut state = lock_unpoisoned(&self.state);
        state.tick += 1;
        let tick = state.tick;
        if let Some(entry) = state.entries.get_mut(&key) {
            entry.last_used = tick;
            let session = Arc::clone(&entry.session);
            self.enforce_budget(&mut state, &key);
            return Ok(session);
        }
        if let Some(dir) = &self.disk_dir {
            builder = builder.persist_to(dir.join(golden_file_name(id, key.fingerprint)));
        }
        builder = builder.reject_counter(Arc::clone(&self.artifact_rejects));
        let session = Arc::new(builder.build()?);
        state.entries.insert(
            key.clone(),
            CacheEntry {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        self.enforce_budget(&mut state, &key);
        Ok(session)
    }

    /// Evicts least-recently-used sessions until the resident checkpoint
    /// footprint fits the budget.  The just-requested session (`current`) is
    /// never evicted — handing a caller a session the cache immediately
    /// forgot would make the next request rebuild it while the caller still
    /// holds it.  Sessions whose golden run is not built yet occupy no
    /// checkpoint memory and are skipped.
    fn enforce_budget(&self, state: &mut CacheState, current: &SessionKey) {
        let Some(budget) = self.byte_budget else {
            return;
        };
        loop {
            let total: usize = state
                .entries
                .values()
                .map(|e| e.session.checkpoint_footprint_bytes())
                .sum();
            if total <= budget {
                return;
            }
            let victim = state
                .entries
                .iter()
                .filter(|(k, e)| *k != current && e.session.checkpoint_footprint_bytes() > 0)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    state.entries.remove(&k);
                    state.evictions += 1;
                }
                // Nothing evictable (the overshoot is the current session
                // alone): an oversized context must still be usable.
                None => return,
            }
        }
    }

    /// Number of cached sessions.
    pub fn len(&self) -> usize {
        lock_unpoisoned(&self.state).entries.len()
    }

    /// `true` when no session has been created yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sessions evicted to enforce the byte budget since the cache was
    /// created (0 without a budget).
    pub fn evictions(&self) -> u64 {
        lock_unpoisoned(&self.state).evictions
    }

    /// Corrupt `.golden` files rejected (checksum or decode failure behind a
    /// matching header), quarantined to `<name>.golden.corrupt` and
    /// transparently rebuilt, across every session this cache created.
    pub fn artifact_rejects(&self) -> u64 {
        self.artifact_rejects.load(Ordering::Relaxed)
    }

    /// Summed checkpoint footprint of the resident sessions in bytes (only
    /// sessions whose golden run has been built contribute).
    pub fn resident_bytes(&self) -> usize {
        lock_unpoisoned(&self.state)
            .entries
            .values()
            .map(|e| e.session.checkpoint_footprint_bytes())
            .sum()
    }
}

// --- Disk persistence ----------------------------------------------------

const GOLDEN_MAGIC: &[u8; 8] = b"MRLNGLD\0";
/// Version 3: the file ends with a little-endian FNV-1a checksum over
/// everything before it, so content corruption is *detected and quarantined*
/// (renamed to `<name>.golden.corrupt`, counted in
/// [`SessionCache::artifact_rejects`]) instead of gambling on the decoder
/// happening to fail.  Version 2 encoded checkpoint memory as chunk-level
/// deltas, version 1 as dense images; older-version files are ordinary cache
/// misses and are rebuilt, not quarantined.
const GOLDEN_VERSION: u32 = 3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// Bytes of the fixed `.golden` header: magic, version, fingerprint.
const GOLDEN_HEADER_LEN: usize = GOLDEN_MAGIC.len() + 4 + 8;
/// Bytes of the v3 checksum trailer.
const GOLDEN_TRAILER_LEN: usize = 8;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

fn golden_file_name(id: &str, fingerprint: u64) -> String {
    let sanitized: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{sanitized}-{fingerprint:016x}.golden")
}

fn save_golden(path: &Path, fingerprint: u64, golden: &GoldenRun) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(GOLDEN_MAGIC);
    GOLDEN_VERSION.encode(&mut buf);
    fingerprint.encode(&mut buf);
    golden.result.encode(&mut buf);
    golden.timeout_cycles.encode(&mut buf);
    match &golden.checkpoints {
        None => buf.push(0),
        Some(ck) => {
            buf.push(1);
            ck.policy.encode(&mut buf);
            ck.store.encode(&mut buf);
        }
    }
    // v3 content checksum over header and payload, as the trailer.
    fnv1a(FNV_OFFSET, &buf).encode(&mut buf);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    // Write-then-rename so a concurrent reader never observes a torn file.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    fs::write(&tmp, &buf)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        // A failed rename must not leak the temp file (a read-only target
        // directory would otherwise accumulate one orphan per process).
        let _ = fs::remove_file(&tmp);
    })
}

/// Quarantines a corrupt artifact: renames it to `<path>.corrupt` so the
/// bytes survive for diagnosis (and cannot be re-read as a live artifact),
/// counts the rejection, and reports a cache miss so the caller rebuilds.
fn reject_corrupt(path: &Path, rejects: &AtomicU64) -> Option<GoldenRun> {
    let mut corrupt = path.as_os_str().to_owned();
    corrupt.push(".corrupt");
    let _ = fs::rename(path, PathBuf::from(corrupt));
    rejects.fetch_add(1, Ordering::Relaxed);
    None
}

fn load_golden(
    path: &Path,
    fingerprint: u64,
    mem_len: usize,
    rejects: &AtomicU64,
) -> Option<GoldenRun> {
    // A file that never claimed to be this context's v3 artifact (foreign
    // magic, older version, different fingerprint) is a silent cache miss.
    // A file whose header *does* match but whose content fails the checksum
    // or decode is corruption: quarantined via `reject_corrupt` so a flipped
    // bit can never be gambled through the decoder into wrong
    // classifications — and never silently overwritten either.
    let buf = fs::read(path).ok()?;
    let mut r = ByteReader::new(&buf);
    if r.take(GOLDEN_MAGIC.len()).ok()? != GOLDEN_MAGIC {
        return None;
    }
    if u32::decode(&mut r).ok()? != GOLDEN_VERSION {
        return None;
    }
    if u64::decode(&mut r).ok()? != fingerprint {
        return None;
    }
    // Header matched: from here on, failures are corruption.
    let Some(payload_end) = buf
        .len()
        .checked_sub(GOLDEN_TRAILER_LEN)
        .filter(|&end| end >= GOLDEN_HEADER_LEN)
    else {
        return reject_corrupt(path, rejects);
    };
    let mut t = ByteReader::new(&buf[payload_end..]);
    let stored = u64::decode(&mut t).ok()?;
    if fnv1a(FNV_OFFSET, &buf[..payload_end]) != stored {
        return reject_corrupt(path, rejects);
    }
    // Checksum verified: a decode failure now means the writer itself was
    // broken — still corruption, still quarantined.
    match decode_golden_payload(&buf[GOLDEN_HEADER_LEN..payload_end], mem_len) {
        Some(golden) => Some(golden),
        None => reject_corrupt(path, rejects),
    }
}

/// Decodes the payload between a `.golden` file's verified header and its
/// checksum trailer.  `None` on any decode failure or invariant violation.
fn decode_golden_payload(payload: &[u8], mem_len: usize) -> Option<GoldenRun> {
    let mut r = ByteReader::new(payload);
    let result = BinCode::decode(&mut r).ok()?;
    let timeout_cycles = u64::decode(&mut r).ok()?;
    let checkpoints = match u8::decode(&mut r).ok()? {
        0 => None,
        1 => {
            let policy = BinCode::decode(&mut r).ok()?;
            let store: merlin_cpu::CheckpointStore = BinCode::decode(&mut r).ok()?;
            // The memory size of every snapshot must match this context's
            // memory, or restoring would panic a campaign worker — the one
            // payload invariant the fingerprint header cannot vouch for.
            if !store.snapshots().all(|s| s.memory_dense_bytes() == mem_len) {
                return None;
            }
            Some(Arc::new(GoldenCheckpoints { store, policy }))
        }
        _ => return None,
    };
    if !r.is_at_end() {
        return None;
    }
    Some(GoldenRun {
        result,
        timeout_cycles,
        checkpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::FaultEffect;
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[5, 4, 3, 2, 1, 9, 8, 7]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    fn small_policy() -> CheckpointPolicy {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
            ..CheckpointPolicy::default()
        }
    }

    fn test_session() -> Session {
        Session::builder(&tiny_program(), &CpuConfig::default())
            .checkpoints(small_policy())
            .max_cycles(1_000_000)
            .threads(2)
            .build()
            .unwrap()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("merlin-session-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn golden_is_lazy_and_built_once() {
        let session = test_session();
        assert_eq!(session.golden_builds(), 0, "golden must be lazy");
        let cycles = session.golden().unwrap().result.cycles;
        assert!(cycles > 0);
        // Repeated phases reuse the same build.
        let faults = session.fault_list(Structure::RegisterFile, 40, 7).unwrap();
        let a = session.campaign(&faults).unwrap();
        let b = session.campaign_from_scratch(&faults).unwrap();
        let mut injector = session.injector().unwrap();
        let one = injector.run(faults[0]);
        assert_eq!(session.golden_builds(), 1);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(one, a.outcomes[0].effect);
        assert!(session.checkpoint_footprint_bytes() > 0);
        assert!(session.golden_checkpoints().is_some());
    }

    #[test]
    fn invalid_faults_are_rejected_at_the_boundary() {
        let session = test_session();
        let bad = FaultSpec {
            structure: Structure::RegisterFile,
            entry: 0,
            bit: 77,
            cycle: 10,
        };
        let good = FaultSpec::new(Structure::RegisterFile, 0, 3, 10);
        let err = session.campaign(&[good, bad]).unwrap_err();
        match err {
            CampaignError::InvalidFault(msg) => {
                assert!(msg.contains("#1"), "names the offending fault: {msg}");
                assert!(msg.contains("77"));
            }
            other => panic!("expected InvalidFault, got {other:?}"),
        }
        assert!(session.campaign_from_scratch(&[bad]).is_err());
        // Out-of-range *entries* are not errors — they are Masked, exactly
        // like the engine treats fault sites absent from a configuration.
        let absent = FaultSpec::new(Structure::RegisterFile, 100_000, 1, 10);
        let result = session.campaign(&[absent]).unwrap();
        assert_eq!(result.outcomes[0].effect, FaultEffect::Masked);
    }

    #[test]
    fn builder_validates_config() {
        let bad_cfg = CpuConfig::default().with_phys_regs(4);
        let err = Session::builder(&tiny_program(), &bad_cfg).build();
        assert!(matches!(err, Err(CampaignError::BadConfig(_))));
    }

    #[test]
    fn golden_failure_is_sticky_and_reported() {
        // Statically clean (reachable halt, initialised registers) but
        // dynamically infinite: passes admission, exhausts the budget.
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 0);
        let top = b.bind_label();
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Ge, reg(1), 0, top);
        b.halt();
        let session = Session::builder(&b.build().unwrap(), &CpuConfig::default())
            .max_cycles(10_000)
            .build()
            .unwrap();
        assert!(matches!(
            session.golden(),
            Err(CampaignError::GoldenRunFailed(_))
        ));
        assert!(session.campaign(&[]).is_err());
        // The failed build is not retried.
        assert!(session.golden().is_err());
        assert_eq!(session.golden_builds(), 1);
    }

    #[test]
    fn lint_rejects_bad_programs_at_the_session_boundary() {
        // An infinite jump loop leaves its halt unreachable.
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.jump(top);
        b.halt();
        match Session::builder(&b.build().unwrap(), &CpuConfig::default()).build() {
            Err(CampaignError::Lint(report)) => {
                assert!(!report.is_clean());
                assert!(report.to_string().contains("unreachable"));
            }
            other => panic!("expected lint rejection, got {other:?}"),
        }
        // A read of a register no instruction ever writes.
        let mut b = ProgramBuilder::new();
        b.out(reg(5));
        b.halt();
        assert!(matches!(
            Session::builder(&b.build().unwrap(), &CpuConfig::default()).build(),
            Err(CampaignError::Lint(_))
        ));
    }

    #[test]
    fn session_campaign_statically_prunes_dead_register_sites() {
        let session = test_session(); // tiny_program touches r1, r2, r10
        assert!(session.analysis().rf_entry_statically_dead(7));
        assert!(!session.analysis().rf_entry_statically_dead(2));
        let dead = FaultSpec::new(Structure::RegisterFile, 7, 1, 10);
        let live = FaultSpec::new(Structure::RegisterFile, 2, 1, 10);
        let pruned = session.campaign(&[dead, live]).unwrap();
        assert_eq!(pruned.schedule.static_prunes, 1);
        assert_eq!(pruned.outcomes[0].effect, FaultEffect::Masked);
        // The from-scratch baseline runs unpruned and fully simulates the
        // dead-entry fault; byte-identity is the soundness check.
        let scratch = session.campaign_from_scratch(&[dead, live]).unwrap();
        assert_eq!(scratch.schedule.static_prunes, 0);
        assert_eq!(pruned.outcomes, scratch.outcomes);
    }

    #[test]
    fn fingerprint_tracks_context_not_threads() {
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let base = Session::builder(&p, &cfg).threads(1).fingerprint();
        assert_eq!(base, Session::builder(&p, &cfg).threads(8).fingerprint());
        assert_ne!(
            base,
            Session::builder(&p, &cfg.clone().with_phys_regs(64)).fingerprint()
        );
        assert_ne!(base, Session::builder(&p, &cfg).max_cycles(1).fingerprint());
        assert_ne!(
            base,
            Session::builder(&p, &cfg)
                .checkpoints(CheckpointPolicy::disabled())
                .fingerprint()
        );
        let mut other = ProgramBuilder::new();
        other.out(reg(0));
        other.halt();
        assert_ne!(
            base,
            Session::builder(&other.build().unwrap(), &cfg).fingerprint()
        );
    }

    #[test]
    fn fingerprint_distinguishes_segment_layouts() {
        // A one-segment program whose byte stream happens to contain what a
        // naive (unprefixed) concatenation would produce for a two-segment
        // program must not collide with that two-segment program.
        use merlin_isa::DataSegment;
        let base = tiny_program();
        let addr2: u64 = 0x2_0000;
        let mut merged = addr2.to_le_bytes().to_vec();
        merged.push(7);
        let mut one_segment = base.clone();
        one_segment.data = vec![DataSegment {
            addr: 0x1_0000,
            bytes: {
                let mut b = vec![9];
                b.extend_from_slice(&merged);
                b
            },
        }];
        let mut two_segments = base.clone();
        two_segments.data = vec![
            DataSegment {
                addr: 0x1_0000,
                bytes: vec![9],
            },
            DataSegment {
                addr: addr2,
                bytes: vec![7],
            },
        ];
        let cfg = CpuConfig::default();
        assert_ne!(
            Session::builder(&one_segment, &cfg).fingerprint(),
            Session::builder(&two_segments, &cfg).fingerprint(),
            "segment layout must be part of the cache key"
        );
    }

    #[test]
    fn cache_shares_sessions_per_key() {
        let cache = SessionCache::new();
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let a = cache
            .session("w", &p, &cfg, |b| b.max_cycles(1_000_000))
            .unwrap();
        let b = cache
            .session("w", &p, &cfg, |b| b.max_cycles(1_000_000))
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // A different configuration gets its own session.
        let c = cache
            .session("w", &p, &cfg.clone().with_store_queue(16), |b| {
                b.max_cycles(1_000_000)
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.len(), 2);
        // A different workload id never collides, even with equal contexts.
        let d = cache
            .session("x", &p, &cfg, |b| b.max_cycles(1_000_000))
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert!(!cache.is_empty());
    }

    #[test]
    fn byte_budget_evicts_lru_sessions() {
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        // Unbounded: both sessions stay resident.
        let unbounded = SessionCache::new();
        let a = unbounded.session("a", &p, &cfg, tune).unwrap();
        a.golden().unwrap();
        let footprint = a.checkpoint_footprint_bytes();
        assert!(footprint > 0);
        let b = unbounded.session("b", &p, &cfg, tune).unwrap();
        b.golden().unwrap();
        assert_eq!(unbounded.len(), 2);
        assert_eq!(unbounded.evictions(), 0);
        assert_eq!(unbounded.resident_bytes(), 2 * footprint);

        // A budget that fits one store but not two: requesting a second
        // session evicts the least recently used one.
        let cache = SessionCache::new().with_byte_budget(footprint + footprint / 2);
        let a = cache.session("a", &p, &cfg, tune).unwrap();
        a.golden().unwrap();
        let b = cache.session("b", &p, &cfg, tune).unwrap();
        b.golden().unwrap();
        assert_eq!(
            cache.len(),
            2,
            "footprints are accounted from the next request"
        );
        // Touch "b", then request "a" again: the budget check runs, "b" is
        // the more recently used resident, so... "a" is the requested key
        // (never evicted) and "b" must go.
        let a2 = cache.session("a", &p, &cfg, tune).unwrap();
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 1);
        assert!(cache.resident_bytes() <= footprint + footprint / 2);
        // The evicted session's Arc stays fully usable.
        let faults = b.fault_list(Structure::RegisterFile, 10, 3).unwrap();
        assert_eq!(b.campaign(&faults).unwrap().classification.total(), 10);
        // The survivor is still the cached "a".
        assert!(Arc::ptr_eq(&a, &a2));
        // Re-requesting the evicted context rebuilds it (fresh session).
        let b2 = cache.session("b", &p, &cfg, tune).unwrap();
        assert!(!Arc::ptr_eq(&b, &b2));
        assert_eq!(
            b2.golden_builds(),
            0,
            "golden not built yet on the fresh session"
        );

        // An oversized single session is never evicted by its own request.
        let tight = SessionCache::new().with_byte_budget(1);
        let only = tight.session("solo", &p, &cfg, tune).unwrap();
        only.golden().unwrap();
        let again = tight.session("solo", &p, &cfg, tune).unwrap();
        assert!(Arc::ptr_eq(&only, &again));
        assert_eq!(tight.len(), 1);
    }

    #[test]
    fn evicted_sessions_fall_back_to_their_golden_files() {
        let dir = temp_dir("lru-disk");
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        let probe = SessionCache::with_disk_dir(&dir);
        let s = probe.session("w", &p, &cfg, tune).unwrap();
        s.golden().unwrap();
        let footprint = s.checkpoint_footprint_bytes();
        assert_eq!(s.golden_builds(), 1);
        drop((probe, s));

        // A budgeted cache over the same directory: the session loads from
        // disk, gets evicted by a sibling, and loads from disk again on
        // re-request — zero further golden simulations.
        let cache = SessionCache::with_disk_dir(&dir).with_byte_budget(footprint);
        let w = cache.session("w", &p, &cfg, tune).unwrap();
        w.golden().unwrap();
        assert_eq!(w.golden_builds(), 0, "first load comes from disk");
        let sibling = cache.session("x", &p, &cfg, tune).unwrap();
        sibling.golden().unwrap();
        let _ = cache.session("x", &p, &cfg, tune).unwrap();
        assert!(cache.evictions() >= 1, "the LRU resident must be evicted");
        let w2 = cache.session("w", &p, &cfg, tune).unwrap();
        assert!(!Arc::ptr_eq(&w, &w2));
        let golden = w2.golden().unwrap();
        assert_eq!(
            w2.golden_builds(),
            0,
            "eviction falls back to the .golden file"
        );
        assert_eq!(golden.result, w.golden().unwrap().result);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_cache_round_trips_the_golden_run() {
        let dir = temp_dir("roundtrip");
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        let first = SessionCache::with_disk_dir(&dir);
        let s1 = first.session("tiny", &p, &cfg, tune).unwrap();
        let faults = s1.fault_list(Structure::RegisterFile, 50, 13).unwrap();
        let r1 = s1.campaign(&faults).unwrap();
        assert_eq!(s1.golden_builds(), 1);

        // A second cache (standing in for a second process) loads the golden
        // run — checkpoint store included — without simulating.
        let second = SessionCache::with_disk_dir(&dir);
        let s2 = second.session("tiny", &p, &cfg, tune).unwrap();
        let golden2 = s2.golden().unwrap().clone();
        assert_eq!(s2.golden_builds(), 0, "disk hit must not re-simulate");
        assert_eq!(golden2.result, s1.golden().unwrap().result);
        assert_eq!(golden2.timeout_cycles, s1.golden().unwrap().timeout_cycles);
        let (ck1, ck2) = (
            s1.golden_checkpoints().unwrap(),
            golden2.checkpoints.unwrap(),
        );
        assert_eq!(ck1.store, ck2.store);
        assert_eq!(ck1.policy, ck2.policy);
        // And campaigns over the restored store classify identically.
        let r2 = s2.campaign(&faults).unwrap();
        assert_eq!(r1.outcomes, r2.outcomes);

        // A corrupt cache file falls back to rebuilding.
        let file = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        fs::write(&file, b"garbage").unwrap();
        let third = SessionCache::with_disk_dir(&dir);
        let s3 = third.session("tiny", &p, &cfg, tune).unwrap();
        assert_eq!(s3.golden().unwrap().result, golden2.result);
        assert_eq!(s3.golden_builds(), 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisted_delta_golden_is_compact_and_round_trips() {
        // The tiny program writes one 64-byte buffer out of a 64 KB+ memory,
        // so delta-encoded snapshots must beat the dense representation by
        // far more than the acceptance bar of 2x — on disk and in memory.
        let dir = temp_dir("deltasize");
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        let cache = SessionCache::with_disk_dir(&dir);
        let s1 = cache.session("tiny", &p, &cfg, tune).unwrap();
        s1.golden().unwrap();
        let store = &s1.golden_checkpoints().unwrap().store;
        let dense = store.dense_footprint_bytes();
        let delta = store.footprint_bytes();
        assert_eq!(delta, s1.checkpoint_footprint_bytes());
        assert!(
            delta * 2 <= dense,
            "in-memory store: delta {delta} vs dense {dense}"
        );

        let file = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let file_len = fs::metadata(&file).unwrap().len() as usize;
        assert!(
            file_len * 2 <= dense,
            "on-disk .golden: {file_len} bytes vs dense {dense}"
        );

        // The compact file restores byte-identically in a fresh cache.
        let second = SessionCache::with_disk_dir(&dir);
        let s2 = second.session("tiny", &p, &cfg, tune).unwrap();
        assert_eq!(s2.golden().unwrap(), s1.golden().unwrap());
        assert_eq!(s2.golden_builds(), 0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_golden_is_quarantined_counted_and_rebuilt() {
        let dir = temp_dir("checksum-reject");
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        let first = SessionCache::with_disk_dir(&dir);
        let s1 = first.session("tiny", &p, &cfg, tune).unwrap();
        let golden1 = s1.golden().unwrap().clone();
        assert_eq!(first.artifact_rejects(), 0);

        // Flip one payload bit: the header still matches, so the file claims
        // to be this exact artifact — the checksum must catch it.
        let file = dir.join(golden_file_name("tiny", s1.fingerprint()));
        let mut bytes = fs::read(&file).unwrap();
        let mid = GOLDEN_HEADER_LEN + (bytes.len() - GOLDEN_HEADER_LEN - GOLDEN_TRAILER_LEN) / 2;
        bytes[mid] ^= 0x01;
        fs::write(&file, &bytes).unwrap();

        let second = SessionCache::with_disk_dir(&dir);
        let s2 = second.session("tiny", &p, &cfg, tune).unwrap();
        assert_eq!(s2.golden().unwrap(), &golden1, "rebuild matches original");
        assert_eq!(s2.golden_builds(), 1, "the corrupt file must not be used");
        assert_eq!(second.artifact_rejects(), 1);
        assert_eq!(s2.artifact_rejects(), 1, "session shares the counter");
        // The rejected bytes were quarantined, not destroyed; the rebuild
        // then re-persisted a fresh artifact next to them.
        let corrupt = {
            let mut os = file.as_os_str().to_owned();
            os.push(".corrupt");
            PathBuf::from(os)
        };
        assert_eq!(fs::read(&corrupt).unwrap(), bytes);
        let third = SessionCache::with_disk_dir(&dir);
        let s3 = third.session("tiny", &p, &cfg, tune).unwrap();
        assert_eq!(s3.golden().unwrap(), &golden1);
        assert_eq!(s3.golden_builds(), 0, "the re-persisted artifact is live");
        assert_eq!(third.artifact_rejects(), 0);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn older_version_files_are_silent_misses_not_corruption() {
        let dir = temp_dir("version-miss");
        let p = tiny_program();
        let cfg = CpuConfig::default();
        let tune = |b: SessionBuilder| b.checkpoints(small_policy()).max_cycles(1_000_000);

        let first = SessionCache::with_disk_dir(&dir);
        let s1 = first.session("tiny", &p, &cfg, tune).unwrap();
        s1.golden().unwrap();
        // Rewrite the version field to the previous format's.
        let file = dir.join(golden_file_name("tiny", s1.fingerprint()));
        let mut bytes = fs::read(&file).unwrap();
        bytes[GOLDEN_MAGIC.len()..GOLDEN_MAGIC.len() + 4].copy_from_slice(&2u32.to_le_bytes());
        fs::write(&file, &bytes).unwrap();

        let second = SessionCache::with_disk_dir(&dir);
        let s2 = second.session("tiny", &p, &cfg, tune).unwrap();
        s2.golden().unwrap();
        assert_eq!(s2.golden_builds(), 1, "old version is a miss");
        assert_eq!(second.artifact_rejects(), 0, "a miss is not corruption");
        let mut corrupt_os = file.as_os_str().to_owned();
        corrupt_os.push(".corrupt");
        assert!(!PathBuf::from(corrupt_os).exists());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_rename_does_not_leak_the_temp_file() {
        let dir = temp_dir("tmp-leak");
        fs::create_dir_all(&dir).unwrap();
        // A directory squatting on the target path makes the final rename
        // fail after the temp file was written.
        let target = dir.join("blocked.golden");
        fs::create_dir_all(&target).unwrap();
        let session = test_session();
        let golden = session.golden().unwrap();
        let err = save_golden(&target, session.fingerprint(), golden);
        assert!(err.is_err(), "rename onto a directory must fail");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "blocked.golden")
            .collect();
        assert!(leftovers.is_empty(), "temp file leaked: {leftovers:?}");

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_golden_is_used_verbatim() {
        let session = test_session();
        let golden = session.golden().unwrap().clone();
        let seeded = Session::builder(&tiny_program(), &CpuConfig::default())
            .checkpoints(small_policy())
            .max_cycles(1_000_000)
            .golden(golden.clone())
            .build()
            .unwrap();
        assert_eq!(seeded.golden().unwrap(), &golden);
        assert_eq!(seeded.golden_builds(), 0);
    }

    #[test]
    fn ext_slots_cache_by_type() {
        let session = test_session();
        let mut calls = 0;
        let a: Arc<u64> = session
            .ext_get_or_try_init::<u64, (), _>(|_| {
                calls += 1;
                Ok(41)
            })
            .unwrap();
        let b: Arc<u64> = session
            .ext_get_or_try_init::<u64, (), _>(|_| {
                calls += 1;
                Ok(99)
            })
            .unwrap();
        assert_eq!((*a, *b, calls), (41, 41, 1));
        // Errors are not cached.
        let err: Result<Arc<String>, &str> = session.ext_get_or_try_init(|_| Err("nope"));
        assert!(err.is_err());
        let ok: Arc<String> = session
            .ext_get_or_try_init::<String, (), _>(|_| Ok("yes".into()))
            .unwrap();
        assert_eq!(&*ok, "yes");
    }
}
