//! Statistical fault sampling following Leveugle et al. (DATE 2009), the
//! procedure the paper uses to size its 60,000-fault (0.63% error margin,
//! 99.8% confidence) and 600,000-fault (0.19% margin) campaigns.

use merlin_cpu::{FaultSpec, Structure};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Statistical parameters of an injection campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingPlan {
    /// Confidence level in (0, 1), e.g. 0.998.
    pub confidence: f64,
    /// Error margin in (0, 1), e.g. 0.0063.
    pub error_margin: f64,
}

impl SamplingPlan {
    /// The paper's baseline plan: 99.8% confidence, 0.63% error margin
    /// (≈60,000 faults for the populations considered there).
    pub fn paper_baseline() -> Self {
        SamplingPlan {
            confidence: 0.998,
            error_margin: 0.0063,
        }
    }

    /// The paper's scaling-study plan: 99.8% confidence, 0.19% error margin
    /// (≈600,000 faults).
    pub fn paper_scaled() -> Self {
        SamplingPlan {
            confidence: 0.998,
            error_margin: 0.0019,
        }
    }

    /// Number of faults required for a population of `population` possible
    /// (bit, cycle) fault sites.
    ///
    /// Uses the finite-population corrected formula
    /// `n = N / (1 + e²(N−1)/(t²·p(1−p)))` with `p = 0.5`.
    pub fn sample_size(&self, population: u64) -> u64 {
        sample_size(population, self.confidence, self.error_margin)
    }
}

/// Inverse standard-normal CDF (probit) via Acklam's rational approximation;
/// accurate to ~1e-9 over (0, 1), far more than sampling needs.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit argument must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    let p_high = 1.0 - p_low;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= p_high {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided z-score ("cut-off point" t in Leveugle et al.) for a given
/// confidence level.
pub fn z_score(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    probit(0.5 + confidence / 2.0)
}

/// Finite-population sample size for proportion estimation with worst-case
/// variance (`p = 0.5`).
pub fn sample_size(population: u64, confidence: f64, error_margin: f64) -> u64 {
    assert!(error_margin > 0.0 && error_margin < 1.0);
    let n = population as f64;
    if population == 0 {
        return 0;
    }
    let t = z_score(confidence);
    let p = 0.5;
    let denom = 1.0 + error_margin * error_margin * (n - 1.0) / (t * t * p * (1.0 - p));
    (n / denom).ceil() as u64
}

/// Number of possible fault sites (bit × cycle pairs) for a structure with
/// `bits` storage bits over an execution of `cycles` cycles.
pub fn fault_population(bits: u64, cycles: u64) -> u64 {
    bits.saturating_mul(cycles)
}

/// Generates a uniformly sampled initial fault list: each fault picks an
/// entry, a bit within the entry and a cycle in `[1, cycles]`, independently
/// and uniformly, from a seeded deterministic RNG.
pub fn generate_fault_list(
    structure: Structure,
    entries: usize,
    cycles: u64,
    count: usize,
    seed: u64,
) -> Vec<FaultSpec> {
    assert!(entries > 0, "structure must have at least one entry");
    assert!(cycles > 0, "execution must last at least one cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            FaultSpec::new(
                structure,
                rng.gen_range(0..entries),
                rng.gen_range(0..structure.bits_per_entry()) as u8,
                rng.gen_range(1..=cycles),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probit_matches_known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959_964).abs() < 1e-4);
        assert!((probit(0.995) - 2.575_829).abs() < 1e-4);
        assert!((probit(0.999) - 3.090_232).abs() < 1e-4);
        assert!((probit(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn z_scores_for_common_confidences() {
        assert!((z_score(0.95) - 1.96).abs() < 0.01);
        assert!((z_score(0.99) - 2.576).abs() < 0.01);
        assert!((z_score(0.998) - 3.09).abs() < 0.01);
    }

    #[test]
    fn paper_sample_sizes_are_reproduced() {
        // §3.1.2: 256 64-bit registers over 100M cycles, 2.88% margin at 99%
        // confidence → about 2,000 faults.
        let population = fault_population(256 * 64, 100_000_000);
        let n = sample_size(population, 0.99, 0.0288);
        assert!((1_900..=2_100).contains(&n), "got {n}");
        // 0.63% margin at 99.8% confidence → about 60,000 faults.
        let n = SamplingPlan::paper_baseline().sample_size(population);
        assert!((58_000..=62_000).contains(&n), "got {n}");
        // 0.19% margin at 99.8% confidence → several hundred thousand.
        let n = SamplingPlan::paper_scaled().sample_size(population);
        assert!((550_000..=700_000).contains(&n), "got {n}");
    }

    #[test]
    fn probit_tail_behaviour() {
        // Deep tails stay finite, symmetric and monotone — the regime the
        // rational approximation switches branches in (p < 0.02425).
        for p in [1e-12, 1e-9, 1e-6, 1e-3, 0.02, 0.024249, 0.024251] {
            let lo = probit(p);
            let hi = probit(1.0 - p);
            assert!(lo.is_finite() && hi.is_finite(), "p={p}");
            assert!(lo < 0.0 && hi > 0.0, "p={p}");
            // Symmetry of the standard normal: probit(p) == -probit(1-p).
            // Tolerance is bounded by the rounding of `1.0 - p` itself (an
            // absolute error of ~1e-16 in p maps to ~1e-5 in z at p=1e-12),
            // not by the approximation.
            assert!((lo + hi).abs() < 1e-4, "p={p}: {lo} vs {hi}");
        }
        // Monotonicity across the branch boundaries.
        let grid: Vec<f64> = [1e-9, 1e-6, 0.01, 0.024, 0.025, 0.3, 0.5, 0.7, 0.976, 0.999]
            .into_iter()
            .collect();
        for w in grid.windows(2) {
            assert!(probit(w[0]) < probit(w[1]), "{} vs {}", w[0], w[1]);
        }
        // Known deep-tail quantile: Φ⁻¹(1e-9) ≈ -5.9978.
        assert!((probit(1e-9) + 5.9978).abs() < 1e-3);
    }

    #[test]
    #[should_panic]
    fn probit_rejects_zero() {
        let _ = probit(0.0);
    }

    #[test]
    #[should_panic]
    fn probit_rejects_one() {
        let _ = probit(1.0);
    }

    #[test]
    fn z_scores_cover_the_common_confidence_levels() {
        for (confidence, expected) in [
            (0.80, 1.2816),
            (0.90, 1.6449),
            (0.95, 1.9600),
            (0.98, 2.3263),
            (0.99, 2.5758),
            (0.995, 2.8070),
            (0.998, 3.0902),
            (0.999, 3.2905),
        ] {
            let z = z_score(confidence);
            assert!(
                (z - expected).abs() < 1e-3,
                "z({confidence}) = {z}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_size_edge_populations() {
        // Tiny populations: never over-sampled, and a population of 1 needs
        // exactly 1 sample.
        assert_eq!(sample_size(0, 0.998, 0.0063), 0);
        assert_eq!(sample_size(1, 0.998, 0.0063), 1);
        for n in [2u64, 3, 10, 50] {
            let s = sample_size(n, 0.998, 0.0063);
            assert!(s >= 1 && s <= n, "population {n} -> sample {s}");
        }
        // Huge populations: the size converges to the infinite-population
        // limit t²p(1-p)/e² and stops growing.
        let plan = SamplingPlan::paper_baseline();
        let big = plan.sample_size(u64::MAX);
        let medium = plan.sample_size(1 << 50);
        let t = z_score(plan.confidence);
        let limit = (t * t * 0.25 / (plan.error_margin * plan.error_margin)).ceil() as u64;
        assert_eq!(big, medium, "saturated regime must be flat");
        assert!(big.abs_diff(limit) <= 1, "got {big}, limit {limit}");
        // The paper's population (see fault_population) sits below but near
        // the limit.
        assert!(plan.sample_size(fault_population(256 * 64, 100_000_000)) <= limit);
        // Saturating population arithmetic for absurd inputs.
        assert_eq!(fault_population(u64::MAX, 2), u64::MAX);
    }

    #[test]
    fn sample_size_is_monotone() {
        let population = fault_population(64 * 64, 10_000_000);
        let loose = sample_size(population, 0.95, 0.05);
        let tight = sample_size(population, 0.998, 0.0063);
        assert!(tight > loose);
        assert!(loose >= 1);
        // Small populations are never over-sampled.
        assert!(sample_size(100, 0.998, 0.0063) <= 100);
        assert_eq!(sample_size(0, 0.99, 0.01), 0);
    }

    #[test]
    fn fault_lists_are_deterministic_uniform_and_in_range() {
        let a = generate_fault_list(Structure::RegisterFile, 128, 50_000, 5_000, 42);
        let b = generate_fault_list(Structure::RegisterFile, 128, 50_000, 5_000, 42);
        assert_eq!(a, b);
        let c = generate_fault_list(Structure::RegisterFile, 128, 50_000, 5_000, 43);
        assert_ne!(a, c);
        for f in &a {
            assert!(f.entry < 128);
            assert!(f.bit < 64);
            assert!(f.cycle >= 1 && f.cycle <= 50_000);
            assert_eq!(f.structure, Structure::RegisterFile);
        }
        // Roughly uniform across entries: every quarter of the file gets a
        // reasonable share.
        let low = a.iter().filter(|f| f.entry < 32).count();
        assert!((900..=1_600).contains(&low), "got {low}");
    }
}
