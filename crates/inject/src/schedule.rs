//! Restore-aware campaign scheduling: checkpoint-range buckets, worker
//! binding and whole-range work stealing.
//!
//! # Why ranges, not single faults
//!
//! The first dynamic engine handed faults to workers one at a time through a
//! global atomic index over the cycle-sorted order.  That balances load, but
//! consecutive grabs by one worker rarely restore from the *same* golden
//! snapshot — between two of its faults, other workers have claimed the
//! faults in between — so the restore source keeps leaving the worker's
//! cache.  The [`CampaignScheduler`] keeps dynamic scheduling but changes
//! the unit of work:
//!
//! 1. The cycle-sorted fault list is bucketed into **checkpoint ranges**:
//!    all faults whose restore source is the same golden snapshot (the
//!    latest checkpoint at or before their injection cycle) share a bucket.
//! 2. Each worker **binds** to a range — it claims a whole bucket and runs
//!    every fault in it against the one hot restore snapshot.
//! 3. When a worker drains its bucket it **steals a whole range**, never a
//!    single fault, so restore locality survives stealing.  Steals are
//!    counted in [`ScheduleStats::range_steals`].
//!
//! Combined with suffix-work checkpoint spacing
//! ([`SpacingStrategy::SuffixWork`](merlin_cpu::SpacingStrategy)) the
//! buckets carry roughly equal expected *work*, not equal fault counts, so
//! range-bound workers finish together instead of one worker dragging the
//! campaign's tail.
//!
//! Without a usable checkpoint store (from-scratch campaigns) the same
//! machinery runs over contiguous chunks of the cycle-sorted order — there
//! is no restore source to keep hot, but whole-chunk claiming keeps the
//! scheduling overhead independent of the fault count.
//!
//! # Determinism
//!
//! Scheduling decides only *who* simulates a fault and *when*; every fault's
//! classification is a pure function of (program, configuration, fault).
//! Outcomes are collected per original fault-list index and merged, so
//! [`CampaignResult::outcomes`] is byte-identical across thread counts and
//! against the from-scratch path.  Only [`ScheduleStats`] varies.

use crate::batch::{run_batched_range, BatchingPolicy, ForkPool};
use crate::campaign::{
    run_fault_from_checkpoint, run_single_fault_shared, CampaignResult, DiffCache, FaultOutcome,
    GoldenCheckpoints, GoldenRun,
};
use crate::classify::{Classification, FaultEffect};
use merlin_analyze::ProgramAnalysis;
use merlin_cpu::{Cpu, CpuConfig, FaultSpec, RestoredBytes, Structure};
use merlin_isa::{DecodedProgram, Program};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How many ranges per worker the from-scratch path chunks the fault list
/// into: enough that a slow chunk can be compensated by stealing, few enough
/// that claiming stays negligible.
const SCRATCH_RANGES_PER_WORKER: usize = 4;

/// A checkpoint range holding more than this multiple of the mean per-range
/// fault count is split into near-mean-sized sub-ranges (same restore
/// source), so one hot range no longer serialises on a single worker.
const SPLIT_FACTOR: usize = 2;

/// Aggregate scheduling statistics of one campaign (attached to
/// [`CampaignResult::schedule`]).
///
/// These describe *how* the campaign executed, never *what* it computed:
/// outcomes are byte-identical across thread counts while these counters
/// vary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Non-empty ranges the fault list was bucketed into (checkpoint ranges
    /// on the restore path, contiguous chunks on the from-scratch path).
    pub ranges: u64,
    /// Checkpoint restores performed (one per fault that reached the core on
    /// the restore path; 0 from scratch).
    pub restores: u64,
    /// Whole ranges claimed by workers beyond their initial binding.
    pub range_steals: u64,
    /// Extra ranges created by splitting oversized checkpoint ranges (a
    /// range whose fault count exceeds twice the mean is cut into
    /// near-mean-sized sub-ranges sharing the restore source).
    pub range_splits: u64,
    /// Restores that rewrote the full checkpoint state (the first restore a
    /// worker performs from a given snapshot).
    pub full_restores: u64,
    /// Restores served by the incremental same-snapshot path (only state
    /// touched since the worker's previous restore of the same snapshot was
    /// rewritten) — with range-bound workers, the overwhelming majority.
    pub incremental_restores: u64,
    /// Bytes rewritten across all restores, over *every* restored structure:
    /// memory chunks, cache lines, register file, rename state, fetch
    /// buffer, ROB, load/store queues and predictor tables.
    pub restored_bytes: u64,
    /// The same bytes broken down per pipeline structure — the honest
    /// account of where restore work goes, and the direct measure of how
    /// much the epoch-tagged incremental path avoids rewriting.
    pub restored_breakdown: RestoredBytes,
    /// Total cycles simulated across all faulty runs, from each fault's
    /// restore point (cycle 0 from scratch) to wherever its run ended — the
    /// work the checkpoint engine actually paid, directly comparable across
    /// spacing strategies and against `faults × golden_cycles` from scratch.
    pub suffix_cycles: u64,
    /// Faults classified [`Assert`](crate::FaultEffect::Assert) by the
    /// engine's failure containment: a panic during the fault's own
    /// simulation, a range whose retry also failed, a core that could not be
    /// constructed, or a worker that died without reporting.
    pub asserts: u64,
    /// Restores that lifted a core out of quarantine — the forced full
    /// restore following a per-fault panic on that core.
    pub poisoned_restores: u64,
    /// Ranges whose first attempt panicked at range level and were returned
    /// to the pool for one retry on a fresh core.
    pub range_retries: u64,
    /// Faults whose site does not exist in this configuration: classified
    /// Masked without simulating anything (previously invisible in stats).
    pub skipped_sites: u64,
    /// Faults proven Masked by static dataflow analysis before any
    /// simulation: register-file faults into a physical entry whose
    /// architectural register appears in no micro-op of the program text
    /// (see `merlin_analyze::ProgramAnalysis::rf_entry_statically_dead`).
    /// Zero work is paid for them — no restore, no suffix cycles.
    pub static_prunes: u64,
    /// Ranges executed by the fork-on-divergence batched driver (always 0
    /// under [`BatchingPolicy::PerFault`](crate::BatchingPolicy) and on
    /// the from-scratch path).
    pub batched_ranges: u64,
    /// Faulty cores forked from a live golden replay by the batched
    /// driver (one per simulated fault in a batched range).
    pub forks_spawned: u64,
    /// Forks retired early by the boundary re-convergence probe — the
    /// batched driver's share of [`CampaignResult::early_exits`]
    /// (merged followers of a retired fork are counted under
    /// [`ScheduleStats::forks_merged`] instead).
    ///
    /// [`CampaignResult::early_exits`]: crate::CampaignResult::early_exits
    pub forks_retired: u64,
    /// Forks whose complete post-injection state collided with an
    /// earlier live fork's (fault equivalence): they adopted that fork's
    /// eventual outcome and released their core without simulating their
    /// own suffix.
    ///
    /// Expect this near zero on sampled campaigns: merging requires two
    /// faults in the same range to produce *bit-identical* whole-core
    /// state at the same cycle, which in practice means duplicate
    /// (structure, entry, bit) sites injected at cycles that round to the
    /// same fetch — vanishingly rare under uniform sampling over
    /// `sites × cycles` (none occur in the 200-fault bench lists).  The
    /// counter pays its way on adversarial or exhaustive per-site lists,
    /// where duplicates are common.  Compare with
    /// [`ScheduleStats::merge_prefilter_hits`] to see how often the cheap
    /// fingerprint sent a candidate pair to the exact comparison at all.
    pub forks_merged: u64,
    /// Cycles the batched driver's shared golden cores replayed — the
    /// per-range prefix work paid *once* instead of per fault.  Kept
    /// separate from [`ScheduleStats::suffix_cycles`], which counts
    /// faulty-core cycles only, so batched and per-fault suffix work
    /// stay directly comparable.
    pub golden_replay_cycles: u64,
    /// Bytes the batched driver's copy-on-write forks actually copied at
    /// fork time.  Structural sharing makes [`Cpu::fork_from`](merlin_cpu::Cpu::fork_from)
    /// O(metadata): handles are adopted instead of bytes moved, so this
    /// stays tiny regardless of how much state the golden core touched.
    pub fork_bytes_copied: u64,
    /// Bytes an eager fork — the pre-CoW touched-entry copy — would have
    /// moved for the same forks: the baseline `fork_bytes_copied` is
    /// measured against.
    pub fork_bytes_eager: u64,
    /// Bytes whose content the forks adopted by O(1) handle sharing
    /// instead of copying.
    pub fork_bytes_shared: u64,
    /// Copy-on-write sharing breaks: structures privatised (copied after
    /// all) on their first write following a fork or a handle-sharing
    /// restore.  The deferred remainder of the copy work `fork_bytes_copied`
    /// avoided up front — only state a fork actually touches is ever paid
    /// for.
    pub cow_breaks: u64,
    /// Merge-prefilter fingerprint matches that advanced to the exact
    /// state comparison; [`ScheduleStats::forks_merged`] counts how many
    /// were confirmed.  Identical values mean the cheap fingerprint never
    /// sent a non-equivalent pair to the expensive comparison.
    pub merge_prefilter_hits: u64,
}

/// Per-worker tallies, merged into [`ScheduleStats`] after the join.  Also
/// used as the per-range-attempt delta, so a panicked attempt's partial
/// tallies are discarded wholesale with its partial outcomes.
#[derive(Default)]
struct WorkerStats {
    restores: u64,
    full_restores: u64,
    incremental_restores: u64,
    restored_bytes: u64,
    restored_breakdown: RestoredBytes,
    range_steals: u64,
    suffix_cycles: u64,
    early_exits: u64,
    asserts: u64,
    poisoned_restores: u64,
    range_retries: u64,
    skipped_sites: u64,
    static_prunes: u64,
    batched_ranges: u64,
    forks_spawned: u64,
    forks_retired: u64,
    forks_merged: u64,
    golden_replay_cycles: u64,
    fork_bytes_copied: u64,
    fork_bytes_eager: u64,
    fork_bytes_shared: u64,
    cow_breaks: u64,
    merge_prefilter_hits: u64,
}

impl WorkerStats {
    fn merge(&mut self, other: WorkerStats) {
        self.restores += other.restores;
        self.full_restores += other.full_restores;
        self.incremental_restores += other.incremental_restores;
        self.restored_bytes += other.restored_bytes;
        self.restored_breakdown += other.restored_breakdown;
        self.range_steals += other.range_steals;
        self.suffix_cycles += other.suffix_cycles;
        self.early_exits += other.early_exits;
        self.asserts += other.asserts;
        self.poisoned_restores += other.poisoned_restores;
        self.range_retries += other.range_retries;
        self.skipped_sites += other.skipped_sites;
        self.static_prunes += other.static_prunes;
        self.batched_ranges += other.batched_ranges;
        self.forks_spawned += other.forks_spawned;
        self.forks_retired += other.forks_retired;
        self.forks_merged += other.forks_merged;
        self.golden_replay_cycles += other.golden_replay_cycles;
        self.fork_bytes_copied += other.fork_bytes_copied;
        self.fork_bytes_eager += other.fork_bytes_eager;
        self.fork_bytes_shared += other.fork_bytes_shared;
        self.cow_breaks += other.cow_breaks;
        self.merge_prefilter_hits += other.merge_prefilter_hits;
    }
}

/// Executes one injection campaign: buckets the cycle-sorted fault list by
/// checkpoint range, binds workers to ranges and steals whole ranges on
/// drain (see the [module docs](self)).
///
/// Built once per campaign by [`Session::campaign`](crate::Session::campaign)
/// /[`Session::campaign_from_scratch`](crate::Session::campaign_from_scratch);
/// constructible directly for callers that want to inspect the bucketing or
/// drive a campaign without a session.
pub struct CampaignScheduler<'a> {
    program: Arc<Program>,
    decoded: Arc<DecodedProgram>,
    cfg: Arc<CpuConfig>,
    golden: &'a GoldenRun,
    ckpts: Option<Arc<GoldenCheckpoints>>,
    /// Ascending checkpoint cycles of the usable store (empty from scratch).
    boundaries: Vec<u64>,
    faults: &'a [FaultSpec],
    /// Fault-list indices per range, cycle-sorted within each range; no
    /// range is empty.
    buckets: Vec<Vec<usize>>,
    /// Extra ranges produced by splitting oversized buckets.
    splits: u64,
    threads: usize,
    /// Static dataflow analysis of the program, when the caller computed
    /// one: register-file faults into statically-dead entries are then
    /// classified Masked without touching a core.
    analysis: Option<&'a ProgramAnalysis>,
    /// How each range's faults are simulated: per-fault restore (the
    /// oracle) or the fork-on-divergence batched driver (see
    /// [`crate::batch`](crate::BatchingPolicy)).
    batching: BatchingPolicy,
}

impl<'a> CampaignScheduler<'a> {
    /// Plans a campaign over `faults`.  With `use_checkpoints` (and a golden
    /// run whose store is usable) faults are bucketed by restore source;
    /// otherwise the cycle-sorted order is chunked contiguously and every
    /// fault simulates from cycle 0.
    pub fn new(
        program: &Arc<Program>,
        cfg: &Arc<CpuConfig>,
        golden: &'a GoldenRun,
        use_checkpoints: bool,
        faults: &'a [FaultSpec],
        threads: usize,
    ) -> Self {
        let decoded = Arc::new(DecodedProgram::new(program));
        Self::with_predecoded(
            program,
            &decoded,
            cfg,
            golden,
            use_checkpoints,
            faults,
            threads,
        )
    }

    /// Like [`CampaignScheduler::new`] with an already-built pre-decoded
    /// micro-op table, so sessions share one table across the golden run and
    /// every campaign worker instead of re-decoding per scheduler.
    #[allow(clippy::too_many_arguments)]
    pub fn with_predecoded(
        program: &Arc<Program>,
        decoded: &Arc<DecodedProgram>,
        cfg: &Arc<CpuConfig>,
        golden: &'a GoldenRun,
        use_checkpoints: bool,
        faults: &'a [FaultSpec],
        threads: usize,
    ) -> Self {
        let threads = threads.max(1).min(faults.len().max(1));
        // Cycle-sorted, stable on the original index, so bucketing — and
        // therefore the whole schedule — is reproducible.
        let mut order: Vec<usize> = (0..faults.len()).collect();
        order.sort_by_key(|&i| (faults[i].cycle, i));
        let ckpts = if use_checkpoints {
            // A store without the cycle-0 snapshot cannot serve arbitrary
            // injection cycles; fall back to from-scratch simulation rather
            // than panicking a worker on the first early fault.
            golden
                .checkpoints
                .clone()
                .filter(|c| c.usable_for_campaigns())
        } else {
            None
        };
        let boundaries: Vec<u64> = ckpts
            .as_ref()
            .map(|c| c.store.cycles().collect())
            .unwrap_or_default();
        let mut splits = 0u64;
        let buckets = match &ckpts {
            Some(_) => {
                // One bucket per checkpoint range [c_k, c_{k+1}): every
                // fault in it restores from the snapshot at c_k.
                let mut buckets = Vec::new();
                let mut start = 0;
                for &upper in &boundaries[1..] {
                    let end = start + order[start..].partition_point(|&i| faults[i].cycle < upper);
                    if end > start {
                        buckets.push(order[start..end].to_vec());
                    }
                    start = end;
                }
                if start < order.len() {
                    buckets.push(order[start..].to_vec());
                }
                // Work-estimate-driven splitting: faults are sampled
                // uniformly over cycles, so a range's fault count is its
                // work estimate.  A range holding more than SPLIT_FACTOR×
                // the mean would serialise one worker while the rest drain;
                // cut it into near-mean-sized sub-ranges.  Sub-ranges keep
                // the shared restore source (same snapshot, still hot) and
                // the cycle-sorted order, so outcomes are untouched.
                if buckets.len() > 1 {
                    let mean = (order.len() / buckets.len()).max(1);
                    let threshold = SPLIT_FACTOR * mean;
                    if buckets.iter().any(|b| b.len() > threshold) {
                        let mut split_buckets = Vec::with_capacity(buckets.len());
                        for bucket in buckets {
                            if bucket.len() > threshold {
                                let pieces = bucket.len().div_ceil(mean);
                                let size = bucket.len().div_ceil(pieces);
                                splits += (bucket.len().div_ceil(size) - 1) as u64;
                                split_buckets.extend(bucket.chunks(size).map(<[usize]>::to_vec));
                            } else {
                                split_buckets.push(bucket);
                            }
                        }
                        buckets = split_buckets;
                    }
                }
                buckets
            }
            None if order.is_empty() => Vec::new(),
            None => {
                let chunks = (threads * SCRATCH_RANGES_PER_WORKER).min(order.len());
                let size = order.len().div_ceil(chunks);
                order.chunks(size).map(<[usize]>::to_vec).collect()
            }
        };
        CampaignScheduler {
            program: Arc::clone(program),
            decoded: Arc::clone(decoded),
            cfg: Arc::clone(cfg),
            golden,
            ckpts,
            boundaries,
            faults,
            // Never spawn more workers than ranges: the extras would only
            // contend on the claim counter and exit.
            threads: threads.min(buckets.len().max(1)),
            buckets,
            splits,
            analysis: None,
            batching: BatchingPolicy::default(),
        }
    }

    /// Attaches a static program analysis: register-file faults whose
    /// physical entry is [`statically dead`] are classified Masked with
    /// zero simulation and accounted as [`ScheduleStats::static_prunes`].
    ///
    /// The prune is *sound* — a fully simulated run of such a fault always
    /// classifies Masked — so outcomes stay byte-identical with and
    /// without it; property tests pin this.
    ///
    /// [`statically dead`]: ProgramAnalysis::rf_entry_statically_dead
    pub fn with_static_analysis(mut self, analysis: &'a ProgramAnalysis) -> Self {
        self.analysis = Some(analysis);
        self
    }

    /// Selects how each range's faults are simulated.
    /// [`BatchingPolicy::Batched`] drives one golden core per checkpoint
    /// range and forks faulty cores at their injection cycles instead of
    /// restoring and replaying the fault-free prefix per fault; outcomes
    /// are byte-identical to [`BatchingPolicy::PerFault`] at any thread
    /// count (only [`ScheduleStats`] differs).  Ignored on the
    /// from-scratch path, which has no checkpoint store to batch over.
    pub fn with_batching(mut self, batching: BatchingPolicy) -> Self {
        self.batching = batching;
        self
    }

    /// Number of non-empty ranges the fault list was bucketed into
    /// (oversized-range splits included).
    pub fn ranges(&self) -> usize {
        self.buckets.len()
    }

    /// Extra ranges created by splitting oversized checkpoint ranges.
    pub fn range_splits(&self) -> u64 {
        self.splits
    }

    /// Whether faults will restore golden checkpoints (false when the golden
    /// run has no usable store, or checkpointing was explicitly bypassed).
    pub fn uses_checkpoints(&self) -> bool {
        self.ckpts.is_some()
    }

    /// Executes one range on the per-fault path: restore, replay to the
    /// injection cycle and simulate the suffix, once per fault.  This is
    /// both the [`BatchingPolicy::PerFault`] engine and the fallback a
    /// batched range aborts to.
    fn run_bucket_per_fault(
        &self,
        bucket: &[usize],
        cpu: &mut Option<Cpu>,
        diffs: &mut DiffCache,
        local: &mut Vec<(usize, FaultOutcome)>,
        delta: &mut WorkerStats,
    ) {
        for &idx in bucket {
            let fault = self.faults[idx];
            // Static prune: a fault into a provably-dead register-file
            // entry is Masked by construction — skip the restore and the
            // suffix entirely.
            if let Some(analysis) = self.analysis {
                if fault.structure == Structure::RegisterFile
                    && analysis.rf_entry_statically_dead(fault.entry)
                {
                    delta.static_prunes += 1;
                    local.push((
                        idx,
                        FaultOutcome {
                            fault,
                            effect: FaultEffect::Masked,
                        },
                    ));
                    continue;
                }
            }
            let run = match &self.ckpts {
                Some(ckpts) => {
                    // One core per worker, restored per fault.
                    if cpu.is_none() {
                        *cpu = Cpu::with_predecoded(
                            Arc::clone(&self.program),
                            Arc::clone(&self.decoded),
                            (*self.cfg).clone(),
                        )
                        .ok();
                    }
                    match cpu.as_mut() {
                        Some(core) => run_fault_from_checkpoint(
                            core,
                            self.golden,
                            ckpts,
                            &self.boundaries,
                            diffs,
                            fault,
                        ),
                        None => {
                            delta.asserts += 1;
                            local.push((
                                idx,
                                FaultOutcome {
                                    fault,
                                    effect: FaultEffect::Assert,
                                },
                            ));
                            continue;
                        }
                    }
                }
                None => run_single_fault_shared(
                    &self.program,
                    &self.decoded,
                    &self.cfg,
                    self.golden,
                    fault,
                ),
            };
            delta.restores += u64::from(run.restored);
            delta.full_restores += u64::from(run.restored && !run.incremental);
            delta.incremental_restores += u64::from(run.restored && run.incremental);
            delta.restored_bytes += run.bytes.total();
            delta.restored_breakdown += run.bytes;
            delta.early_exits += u64::from(run.early_exit);
            delta.suffix_cycles += run.suffix_cycles;
            delta.asserts += u64::from(run.effect == FaultEffect::Assert);
            delta.poisoned_restores += u64::from(run.from_quarantine);
            delta.skipped_sites += u64::from(run.skipped_site);
            local.push((
                idx,
                FaultOutcome {
                    fault,
                    effect: run.effect,
                },
            ));
        }
        // Handle-sharing restores defer copies to first write; harvest the
        // break tally so per-fault campaigns report their CoW traffic too.
        if let Some(core) = cpu.as_mut() {
            delta.cow_breaks += core.take_cow_breaks();
        }
    }

    /// Executes one range through the fork-on-divergence batched driver
    /// (see [`crate::batch`](crate::BatchingPolicy)).  Statically-pruned
    /// and absent-site faults are resolved here without a core, exactly
    /// as on the per-fault path; the rest are handed to the driver as
    /// the cycle-sorted simulation list.  Returns `None` when the driver
    /// aborted (a panic or an unconstructible core), in which case
    /// nothing is committed and the caller re-runs the whole range per
    /// fault.
    fn run_bucket_batched(
        &self,
        bucket: &[usize],
        ckpts: &GoldenCheckpoints,
        pool: &mut ForkPool,
        diffs: &mut DiffCache,
    ) -> Option<(Vec<(usize, FaultOutcome)>, WorkerStats)> {
        let mut local: Vec<(usize, FaultOutcome)> = Vec::with_capacity(bucket.len());
        let mut delta = WorkerStats::default();
        let mut sim: Vec<usize> = Vec::with_capacity(bucket.len());
        for &idx in bucket {
            let fault = self.faults[idx];
            if let Some(analysis) = self.analysis {
                if fault.structure == Structure::RegisterFile
                    && analysis.rf_entry_statically_dead(fault.entry)
                {
                    delta.static_prunes += 1;
                    local.push((
                        idx,
                        FaultOutcome {
                            fault,
                            effect: FaultEffect::Masked,
                        },
                    ));
                    continue;
                }
            }
            if fault.entry >= self.cfg.structure_entries(fault.structure) {
                // Same semantics as the per-fault engine's site check: an
                // absent fault site cannot affect this configuration.
                delta.skipped_sites += 1;
                local.push((
                    idx,
                    FaultOutcome {
                        fault,
                        effect: FaultEffect::Masked,
                    },
                ));
                continue;
            }
            sim.push(idx);
        }
        let (runs, bstats) = run_batched_range(
            pool,
            self.golden,
            ckpts,
            &self.boundaries,
            diffs,
            self.faults,
            &sim,
        )?;
        delta.batched_ranges += 1;
        delta.forks_spawned += bstats.forks_spawned;
        delta.forks_retired += bstats.forks_retired;
        delta.forks_merged += bstats.forks_merged;
        delta.golden_replay_cycles += bstats.golden_replay_cycles;
        delta.fork_bytes_copied += bstats.fork_bytes.copied.total();
        delta.fork_bytes_eager += bstats.fork_bytes.eager.total();
        delta.fork_bytes_shared += bstats.fork_bytes.shared.total();
        delta.cow_breaks += bstats.cow_breaks;
        delta.merge_prefilter_hits += bstats.merge_prefilter_hits;
        delta.restores += bstats.golden_restores;
        delta.full_restores += bstats.golden_full_restores;
        delta.incremental_restores += bstats.golden_incremental_restores;
        delta.poisoned_restores += bstats.golden_poisoned_restores;
        delta.restored_bytes += bstats.golden_restored_bytes.total();
        delta.restored_breakdown += bstats.golden_restored_bytes;
        for (idx, run) in runs {
            delta.restores += u64::from(run.restored);
            delta.full_restores += u64::from(run.restored && !run.incremental);
            delta.incremental_restores += u64::from(run.restored && run.incremental);
            delta.restored_bytes += run.bytes.total();
            delta.restored_breakdown += run.bytes;
            delta.early_exits += u64::from(run.early_exit);
            delta.suffix_cycles += run.suffix_cycles;
            delta.asserts += u64::from(run.effect == FaultEffect::Assert);
            delta.poisoned_restores += u64::from(run.from_quarantine);
            delta.skipped_sites += u64::from(run.skipped_site);
            local.push((
                idx,
                FaultOutcome {
                    fault: self.faults[idx],
                    effect: run.effect,
                },
            ));
        }
        Some((local, delta))
    }

    /// Runs the campaign to completion and aggregates the result.
    ///
    /// Outcomes are byte-identical across thread counts; only
    /// [`CampaignResult::schedule`] (and `early_exits`, which counts the
    /// same events wherever they land) reflects the execution.
    ///
    /// # Failure containment
    ///
    /// A panic during one fault's simulation is caught inside the engine,
    /// classified [`Assert`](crate::FaultEffect::Assert), and quarantines
    /// the worker's core (next restore is a forced full restore).  A panic
    /// that tears through a worker's whole range attempt — outside the
    /// per-fault catch — discards that attempt's partial outcomes, returns
    /// the range to a retry pool and re-runs it once on a fresh core; a
    /// second range-level failure classifies every fault in the range
    /// deterministically as `Assert`.  Both classifications are pure
    /// functions of (program, configuration, fault), so outcomes stay
    /// byte-identical across thread counts even under panics.
    pub fn run(&self) -> CampaignResult {
        let threads = self.threads.max(1).min(self.buckets.len().max(1));
        let next = AtomicUsize::new(0);
        // Ranges whose first attempt panicked, awaiting their one retry.  A
        // poisoned lock only means a probe panicked while pushing is not in
        // progress (panics never unwind while the lock is held), so the
        // contents are always valid.
        let retries: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let pop_retry = || match retries.lock() {
            Ok(mut g) => g.pop(),
            Err(poisoned) => poisoned.into_inner().pop(),
        };
        let push_retry = |b: usize| match retries.lock() {
            Ok(mut g) => g.push(b),
            Err(poisoned) => poisoned.into_inner().push(b),
        };
        let run_worker = |collected: &mut Vec<(usize, FaultOutcome)>, stats: &mut WorkerStats| {
            let mut cpu: Option<Cpu> = None;
            // Core pool for the batched driver (golden replay core + one
            // per live fork); empty and unused under PerFault.
            let mut pool = ForkPool::new(&self.program, &self.decoded, &self.cfg);
            // Golden-to-golden diffs never depend on the core's state, so the
            // cache survives retries and core replacement.
            let mut diffs = DiffCache::new();
            let mut claimed = 0usize;
            loop {
                // Failed ranges take priority over fresh ones, and the
                // worker that pushed a retry always loops back to re-check
                // the pool — so a retry can never be stranded by the other
                // workers having already exited.
                let (b, is_retry) = match pop_retry() {
                    Some(b) => (b, true),
                    None => {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b < self.buckets.len() {
                            (b, false)
                        } else {
                            match pop_retry() {
                                Some(b) => (b, true),
                                None => break,
                            }
                        }
                    }
                };
                let bucket = &self.buckets[b];
                if !is_retry {
                    claimed += 1;
                    if claimed > 1 {
                        stats.range_steals += 1;
                    }
                } else {
                    // The issue under retry may have been the core itself:
                    // retries always start from fresh cores.
                    cpu = None;
                    pool.clear();
                }
                let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    crate::chaos::maybe_panic_range(bucket.iter().map(|&i| self.faults[i].cycle));
                    // Partial work is collected locally so a mid-range panic
                    // discards it atomically and the retry re-runs the whole
                    // range.
                    let mut local: Vec<(usize, FaultOutcome)> = Vec::with_capacity(bucket.len());
                    let mut delta = WorkerStats::default();
                    let mut done = false;
                    let batched = self.batching == BatchingPolicy::Batched && self.ckpts.is_some();
                    if batched {
                        let ckpts = self.ckpts.as_ref().expect("checked above");
                        match self.run_bucket_batched(bucket, ckpts, &mut pool, &mut diffs) {
                            Some((l, d)) => {
                                local = l;
                                delta = d;
                                done = true;
                            }
                            // An aborted batched attempt committed nothing;
                            // the whole range re-runs below on the per-fault
                            // path, counted like a range retry.
                            None => delta.range_retries += 1,
                        }
                    }
                    if !done {
                        if batched {
                            // The fallback reuses pool cores — the driver
                            // parks a quarantined core on top of the pool so
                            // its forced full restore happens here instead
                            // of the core rotting unobserved.
                            let mut slot = pool.take();
                            self.run_bucket_per_fault(
                                bucket, &mut slot, &mut diffs, &mut local, &mut delta,
                            );
                            if let Some(core) = slot {
                                pool.put(core);
                            }
                            delta.cow_breaks += pool.take_cow_breaks();
                        } else {
                            self.run_bucket_per_fault(
                                bucket, &mut cpu, &mut diffs, &mut local, &mut delta,
                            );
                        }
                    }
                    (local, delta)
                }));
                match attempt {
                    Ok((local, delta)) => {
                        collected.extend(local);
                        stats.merge(delta);
                    }
                    Err(_) => {
                        // The panic unwound outside the per-fault catch, so
                        // the worker's cores are in an unknown state: drop
                        // them, pool included.
                        cpu = None;
                        pool.clear();
                        if is_retry {
                            // Second failure: the range is deterministically
                            // poisoned — classify every fault in it Assert
                            // rather than retrying forever.
                            stats.asserts += bucket.len() as u64;
                            collected.extend(bucket.iter().map(|&idx| {
                                (
                                    idx,
                                    FaultOutcome {
                                        fault: self.faults[idx],
                                        effect: FaultEffect::Assert,
                                    },
                                )
                            }));
                        } else {
                            stats.range_retries += 1;
                            push_retry(b);
                        }
                    }
                }
            }
        };

        let mut per_thread: Vec<(Vec<(usize, FaultOutcome)>, WorkerStats)> = Vec::new();
        if threads == 1 {
            let mut collected = Vec::with_capacity(self.faults.len());
            let mut stats = WorkerStats::default();
            run_worker(&mut collected, &mut stats);
            per_thread.push((collected, stats));
        } else {
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..threads {
                    handles.push(scope.spawn(|| {
                        let mut collected = Vec::new();
                        let mut stats = WorkerStats::default();
                        run_worker(&mut collected, &mut stats);
                        (collected, stats)
                    }));
                }
                for h in handles {
                    // A worker that somehow died outside its range-level
                    // containment loses its outcomes; the merge below
                    // classifies whatever is missing as Assert instead of
                    // tearing the campaign down.
                    if let Ok(result) = h.join() {
                        per_thread.push(result);
                    }
                }
            });
        }

        let mut outcomes: Vec<Option<FaultOutcome>> = vec![None; self.faults.len()];
        let mut schedule = ScheduleStats {
            ranges: self.buckets.len() as u64,
            range_splits: self.splits,
            ..ScheduleStats::default()
        };
        let mut early_exits = 0u64;
        for (collected, stats) in per_thread {
            schedule.restores += stats.restores;
            schedule.full_restores += stats.full_restores;
            schedule.incremental_restores += stats.incremental_restores;
            schedule.restored_bytes += stats.restored_bytes;
            schedule.restored_breakdown += stats.restored_breakdown;
            schedule.range_steals += stats.range_steals;
            schedule.suffix_cycles += stats.suffix_cycles;
            schedule.asserts += stats.asserts;
            schedule.poisoned_restores += stats.poisoned_restores;
            schedule.range_retries += stats.range_retries;
            schedule.skipped_sites += stats.skipped_sites;
            schedule.static_prunes += stats.static_prunes;
            schedule.batched_ranges += stats.batched_ranges;
            schedule.forks_spawned += stats.forks_spawned;
            schedule.forks_retired += stats.forks_retired;
            schedule.forks_merged += stats.forks_merged;
            schedule.golden_replay_cycles += stats.golden_replay_cycles;
            schedule.fork_bytes_copied += stats.fork_bytes_copied;
            schedule.fork_bytes_eager += stats.fork_bytes_eager;
            schedule.fork_bytes_shared += stats.fork_bytes_shared;
            schedule.cow_breaks += stats.cow_breaks;
            schedule.merge_prefilter_hits += stats.merge_prefilter_hits;
            early_exits += stats.early_exits;
            for (idx, outcome) in collected {
                outcomes[idx] = Some(outcome);
            }
        }
        let outcomes: Vec<FaultOutcome> = outcomes
            .into_iter()
            .enumerate()
            .map(|(i, o)| {
                o.unwrap_or_else(|| {
                    schedule.asserts += 1;
                    FaultOutcome {
                        fault: self.faults[i],
                        effect: FaultEffect::Assert,
                    }
                })
            })
            .collect();
        let mut classification = Classification::default();
        for o in &outcomes {
            classification.record(o.effect, 1);
        }
        let runs_executed = outcomes.len() as u64;
        CampaignResult {
            outcomes,
            classification,
            runs_executed,
            early_exits,
            schedule,
        }
    }
}

/// Clone-free campaign entry used by the session layer: schedule and run in
/// one call.  `analysis` enables the static register-file prune; the
/// from-scratch path passes `None` so it stays the pure differential
/// baseline the soundness tests compare against.  `batching` selects the
/// per-range execution engine (per-fault restore vs fork-on-divergence
/// batching); it never changes outcomes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn campaign_shared(
    program: &Arc<Program>,
    decoded: &Arc<DecodedProgram>,
    cfg: &Arc<CpuConfig>,
    golden: &GoldenRun,
    use_checkpoints: bool,
    faults: &[FaultSpec],
    threads: usize,
    analysis: Option<&ProgramAnalysis>,
    batching: BatchingPolicy,
) -> CampaignResult {
    let mut sched = CampaignScheduler::with_predecoded(
        program,
        decoded,
        cfg,
        golden,
        use_checkpoints,
        faults,
        threads,
    )
    .with_batching(batching);
    if let Some(analysis) = analysis {
        sched = sched.with_static_analysis(analysis);
    }
    sched.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{
        build_golden_checkpointed, build_golden_plain, CampaignError, FaultInjector,
    };
    use crate::classify::FaultEffect;
    use crate::sampling::generate_fault_list;
    use merlin_cpu::{CheckpointPolicy, NullProbe, SpacingStrategy, Structure};
    use merlin_isa::{reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn golden_plain(
        program: &Program,
        cfg: &CpuConfig,
        max: u64,
    ) -> Result<GoldenRun, CampaignError> {
        let program = Arc::new(program.clone());
        let decoded = Arc::new(DecodedProgram::new(&program));
        build_golden_plain(&program, &decoded, cfg, max)
    }

    fn golden_ck(
        program: &Program,
        cfg: &CpuConfig,
        max: u64,
        policy: &CheckpointPolicy,
    ) -> Result<GoldenRun, CampaignError> {
        let program = Arc::new(program.clone());
        let decoded = Arc::new(DecodedProgram::new(&program));
        build_golden_checkpointed(&program, &decoded, cfg, max, policy)
    }

    fn campaign(
        program: &Program,
        cfg: &CpuConfig,
        golden: &GoldenRun,
        faults: &[FaultSpec],
        threads: usize,
    ) -> CampaignResult {
        campaign_shared(
            &Arc::new(program.clone()),
            &Arc::new(DecodedProgram::new(program)),
            &Arc::new(cfg.clone()),
            golden,
            true,
            faults,
            threads,
            None,
            BatchingPolicy::PerFault,
        )
    }

    fn campaign_scratch(
        program: &Program,
        cfg: &CpuConfig,
        golden: &GoldenRun,
        faults: &[FaultSpec],
        threads: usize,
    ) -> CampaignResult {
        campaign_shared(
            &Arc::new(program.clone()),
            &Arc::new(DecodedProgram::new(program)),
            &Arc::new(cfg.clone()),
            golden,
            false,
            faults,
            threads,
            None,
            BatchingPolicy::PerFault,
        )
    }

    fn tiny_program() -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[11, 22, 33, 44, 55, 66, 77, 88]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        b.movi(reg(2), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 8, top);
        b.out(reg(2));
        b.halt();
        b.build().unwrap()
    }

    fn small_policy() -> CheckpointPolicy {
        CheckpointPolicy {
            enabled: true,
            target_checkpoints: 8,
            min_interval: 8,
            early_exit: true,
            ..CheckpointPolicy::default()
        }
    }

    #[test]
    fn golden_run_succeeds_and_sets_timeout() {
        let g = golden_plain(&tiny_program(), &CpuConfig::default(), 1_000_000).unwrap();
        assert!(g.result.exit.is_halted());
        assert!(g.timeout_cycles >= 3 * g.result.cycles);
        assert!(g.checkpoints.is_none());
    }

    #[test]
    fn checkpointed_golden_run_matches_plain_golden_run() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let plain = golden_plain(&program, &cfg, 1_000_000).unwrap();
        for spacing in [SpacingStrategy::EqualCycles, SpacingStrategy::SuffixWork] {
            let ck = golden_ck(
                &program,
                &cfg,
                1_000_000,
                &small_policy().with_spacing(spacing),
            )
            .unwrap();
            assert_eq!(plain.result, ck.result);
            assert_eq!(plain.timeout_cycles, ck.timeout_cycles);
            let ckpts = ck.checkpoints.as_ref().unwrap();
            assert!(ckpts.store.len() >= 2);
        }
        // Disabled policy produces no store.
        let off = golden_ck(&program, &cfg, 1_000_000, &CheckpointPolicy::disabled()).unwrap();
        assert!(off.checkpoints.is_none());
    }

    #[test]
    fn golden_run_failure_is_reported() {
        let mut b = ProgramBuilder::new();
        let top = b.bind_label();
        b.jump(top);
        b.halt();
        let program = b.build().unwrap();
        let err = golden_plain(&program, &CpuConfig::default(), 10_000);
        assert!(matches!(err, Err(CampaignError::GoldenRunFailed(_))));
        let err = golden_ck(&program, &CpuConfig::default(), 10_000, &small_policy());
        assert!(matches!(err, Err(CampaignError::GoldenRunFailed(_))));
    }

    #[test]
    fn outcomes_are_identical_across_thread_counts() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        for spacing in [SpacingStrategy::EqualCycles, SpacingStrategy::SuffixWork] {
            let golden = golden_ck(
                &program,
                &cfg,
                1_000_000,
                &small_policy().with_spacing(spacing),
            )
            .unwrap();
            let faults = generate_fault_list(
                Structure::RegisterFile,
                cfg.phys_int_regs,
                golden.result.cycles,
                60,
                7,
            );
            let seq = campaign(&program, &cfg, &golden, &faults, 1);
            for threads in [2, 4, 8] {
                let par = campaign(&program, &cfg, &golden, &faults, threads);
                assert_eq!(seq.outcomes, par.outcomes, "{spacing:?} x{threads}");
                assert_eq!(seq.classification, par.classification);
            }
            assert_eq!(seq.classification.total(), 60);
        }
    }

    #[test]
    fn checkpointed_campaign_is_byte_identical_to_from_scratch() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let mut early_exits_with_policy_on = 0u64;
        for policy in [
            small_policy(),
            CheckpointPolicy {
                early_exit: false,
                ..small_policy()
            },
            small_policy().with_spacing(SpacingStrategy::EqualCycles),
        ] {
            let golden = golden_ck(&program, &cfg, 1_000_000, &policy).unwrap();
            for structure in [Structure::RegisterFile, Structure::StoreQueue] {
                let entries = cfg.structure_entries(structure);
                let faults = generate_fault_list(structure, entries, golden.result.cycles, 150, 13);
                let checkpointed = campaign(&program, &cfg, &golden, &faults, 4);
                let scratch = campaign_scratch(&program, &cfg, &golden, &faults, 4);
                assert_eq!(checkpointed.outcomes, scratch.outcomes, "{structure}");
                assert_eq!(checkpointed.classification, scratch.classification);
                assert_eq!(scratch.early_exits, 0);
                assert_eq!(scratch.schedule.restores, 0);
                // Every in-range fault restored a checkpoint.
                assert!(checkpointed.schedule.restores > 0);
                assert!(checkpointed.schedule.suffix_cycles > 0);
                assert!(
                    checkpointed.schedule.suffix_cycles < scratch.schedule.suffix_cycles,
                    "restore must cut simulated cycles ({} vs {})",
                    checkpointed.schedule.suffix_cycles,
                    scratch.schedule.suffix_cycles
                );
                if !policy.early_exit {
                    assert_eq!(checkpointed.early_exits, 0);
                }
                early_exits_with_policy_on +=
                    u64::from(policy.early_exit) * checkpointed.early_exits;
            }
        }
        // The convergence early exit must actually fire somewhere (dead
        // engine paths would hide bugs behind the identical-results check).
        assert!(early_exits_with_policy_on > 0);
    }

    #[test]
    fn scheduler_buckets_by_restore_source_and_steals_ranges() {
        let program = Arc::new(tiny_program());
        let cfg = Arc::new(CpuConfig::default());
        let decoded = Arc::new(DecodedProgram::new(&program));
        let golden =
            build_golden_checkpointed(&program, &decoded, &cfg, 1_000_000, &small_policy())
                .unwrap();
        let store_cycles: Vec<u64> = golden
            .checkpoints
            .as_ref()
            .unwrap()
            .store
            .cycles()
            .collect();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            120,
            3,
        );
        let sched = CampaignScheduler::new(&program, &cfg, &golden, true, &faults, 4);
        assert!(sched.uses_checkpoints());
        // No more ranges than checkpoints plus splits, and every bucket's
        // faults share one restore source (splitting preserves the source).
        assert!(sched.ranges() >= 1);
        assert!(sched.ranges() <= store_cycles.len() + sched.range_splits() as usize);
        for bucket in &sched.buckets {
            assert!(!bucket.is_empty());
            let restore_of = |f: FaultSpec| {
                store_cycles
                    .iter()
                    .rev()
                    .find(|&&c| c <= f.cycle)
                    .copied()
                    .unwrap()
            };
            let first = restore_of(faults[bucket[0]]);
            assert!(bucket.iter().all(|&i| restore_of(faults[i]) == first));
        }
        let result = sched.run();
        assert_eq!(result.schedule.ranges, sched.ranges() as u64);
        // A single worker claims every range: all but its binding are steals.
        let solo = CampaignScheduler::new(&program, &cfg, &golden, true, &faults, 1).run();
        assert_eq!(solo.schedule.range_steals, solo.schedule.ranges - 1);
        assert_eq!(solo.outcomes, result.outcomes);
    }

    #[test]
    fn oversized_ranges_are_split_with_shared_restore_source() {
        let program = Arc::new(tiny_program());
        let cfg = Arc::new(CpuConfig::default());
        let decoded = Arc::new(DecodedProgram::new(&program));
        let golden =
            build_golden_checkpointed(&program, &decoded, &cfg, 1_000_000, &small_policy())
                .unwrap();
        let store_cycles: Vec<u64> = golden
            .checkpoints
            .as_ref()
            .unwrap()
            .store
            .cycles()
            .collect();
        assert!(store_cycles.len() >= 3, "test needs several ranges");
        // A lopsided list: nearly every fault lands in the first checkpoint
        // range, a token few elsewhere — the hot range must be split instead
        // of serialising one worker.
        let hot_upper = store_cycles[1];
        let mut faults: Vec<FaultSpec> = (0..90)
            .map(|i| FaultSpec::new(Structure::RegisterFile, (i % 8) as usize, 5, i % hot_upper))
            .collect();
        for (i, &c) in store_cycles[1..].iter().enumerate() {
            faults.push(FaultSpec::new(Structure::RegisterFile, i % 8, 3, c + 1));
        }
        let sched = CampaignScheduler::new(&program, &cfg, &golden, true, &faults, 4);
        assert!(
            sched.range_splits() > 0,
            "a range holding ~90% of the faults must split"
        );
        let restore_of = |f: FaultSpec| {
            store_cycles
                .iter()
                .rev()
                .find(|&&c| c <= f.cycle)
                .copied()
                .unwrap()
        };
        // Splitting preserves the per-bucket shared restore source.
        for bucket in &sched.buckets {
            assert!(!bucket.is_empty());
            let first = restore_of(faults[bucket[0]]);
            assert!(bucket.iter().all(|&i| restore_of(faults[i]) == first));
        }
        let split = sched.run();
        assert_eq!(split.schedule.range_splits, sched.range_splits());
        assert_eq!(split.schedule.ranges, sched.ranges() as u64);
        // Outcomes are untouched by splitting: identical to from-scratch.
        let scratch = campaign_scratch(&program, &cfg, &golden, &faults, 4);
        assert_eq!(split.outcomes, scratch.outcomes);
        assert_eq!(scratch.schedule.range_splits, 0);
    }

    #[test]
    fn range_bound_workers_restore_incrementally() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            80,
            21,
        );
        let result = campaign(&program, &cfg, &golden, &faults, 2);
        let sched = result.schedule;
        assert_eq!(
            sched.full_restores + sched.incremental_restores,
            sched.restores,
            "every restore is exactly one of full/incremental"
        );
        // Workers run whole ranges against one snapshot: with far fewer
        // ranges than faults, back-to-back same-snapshot restores dominate.
        assert!(
            sched.incremental_restores > sched.full_restores,
            "expected mostly incremental restores, got {} incremental vs {} full",
            sched.incremental_restores,
            sched.full_restores
        );
        assert!(sched.restored_bytes > 0);
        // The from-scratch path never restores anything.
        let scratch = campaign_scratch(&program, &cfg, &golden, &faults, 2);
        assert_eq!(scratch.schedule.full_restores, 0);
        assert_eq!(scratch.schedule.incremental_restores, 0);
        assert_eq!(scratch.schedule.restored_bytes, 0);
        assert_eq!(result.outcomes, scratch.outcomes);
    }

    #[test]
    fn empty_fault_list_schedules_nothing() {
        let program = Arc::new(tiny_program());
        let cfg = Arc::new(CpuConfig::default());
        let decoded = Arc::new(DecodedProgram::new(&program));
        let golden =
            build_golden_checkpointed(&program, &decoded, &cfg, 1_000_000, &small_policy())
                .unwrap();
        for use_ck in [true, false] {
            let sched = CampaignScheduler::new(&program, &cfg, &golden, use_ck, &[], 4);
            assert_eq!(sched.ranges(), 0);
            let result = sched.run();
            assert!(result.outcomes.is_empty());
            assert_eq!(result.schedule, ScheduleStats::default());
        }
    }

    #[test]
    fn campaign_finds_both_masked_and_non_masked_faults() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let faults = generate_fault_list(
            Structure::RegisterFile,
            cfg.phys_int_regs,
            golden.result.cycles,
            200,
            99,
        );
        let result = campaign(&program, &cfg, &golden, &faults, 2);
        assert!(result.classification.masked > 0);
        // With 256 mostly-idle registers the masked fraction must dominate.
        assert!(result.classification.avf() < 0.5);
    }

    #[test]
    fn timeout_rule_is_single_sourced() {
        assert_eq!(GoldenRun::timeout_for(0), 1000);
        assert_eq!(GoldenRun::timeout_for(100), 1000);
        assert_eq!(GoldenRun::timeout_for(10_000), 30_000);
        assert_eq!(GoldenRun::timeout_for(u64::MAX), u64::MAX);
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let plain = golden_plain(&program, &cfg, 1_000_000).unwrap();
        let ck = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        assert_eq!(
            plain.timeout_cycles,
            GoldenRun::timeout_for(plain.result.cycles)
        );
        assert_eq!(ck.timeout_cycles, plain.timeout_cycles);
    }

    #[test]
    fn degenerate_store_falls_back_instead_of_panicking() {
        // Regression: a checkpoint store without the cycle-0 snapshot (built
        // on a mid-run core, or decoded from a foreign `.golden` file) used
        // to panic the campaign worker on the first fault before its first
        // checkpoint.  It now degrades to from-scratch simulation.
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let mut cpu = Cpu::new(Arc::new(program.clone()), cfg.clone()).unwrap();
        for _ in 0..17 {
            cpu.step(&mut NullProbe);
        }
        let (_, late_store) = cpu.run_with_checkpoints(1_000_000, &mut NullProbe, 8);
        assert!(!late_store.starts_at_reset());
        let crippled = GoldenRun {
            checkpoints: Some(Arc::new(GoldenCheckpoints {
                store: late_store,
                policy: small_policy(),
            })),
            ..golden.clone()
        };
        assert!(!crippled
            .checkpoints
            .as_ref()
            .unwrap()
            .usable_for_campaigns());
        let faults = [
            FaultSpec::new(Structure::RegisterFile, 3, 5, 2), // before cycle 17
            FaultSpec::new(Structure::RegisterFile, 3, 5, 40),
        ];
        let via_crippled = campaign(&program, &cfg, &crippled, &faults, 1);
        let via_scratch = campaign_scratch(&program, &cfg, &golden, &faults, 1);
        assert_eq!(via_crippled.outcomes, via_scratch.outcomes);
        assert_eq!(
            via_crippled.early_exits, 0,
            "fallback path cannot early-exit"
        );
        assert_eq!(via_crippled.schedule.restores, 0);
        // The single-fault injector degrades the same way.
        let mut injector = FaultInjector::new(&program, &cfg, &crippled);
        assert_eq!(injector.run(faults[0]), via_scratch.outcomes[0].effect);
    }

    #[test]
    fn out_of_range_fault_sites_are_masked() {
        let program = tiny_program();
        let cfg = CpuConfig::default().with_phys_regs(64);
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let mut injector = FaultInjector::new(&program, &cfg, &golden);
        let absent = FaultSpec::new(Structure::RegisterFile, 200, 1, 10);
        let (effect, cycles) = injector.run_with_cycles(absent);
        assert_eq!(effect, FaultEffect::Masked);
        assert_eq!(cycles, 0, "absent fault sites simulate nothing");
        // Same through the scheduler, which now accounts for the skip
        // instead of silently reporting Masked with zero context.
        let out = campaign(&program, &cfg, &golden, &[absent], 1);
        assert_eq!(out.outcomes[0].effect, FaultEffect::Masked);
        assert_eq!(out.schedule.restores, 0);
        assert_eq!(out.schedule.skipped_sites, 1);
        // A present site is not counted as skipped.
        let present = FaultSpec::new(Structure::RegisterFile, 3, 1, 10);
        let out = campaign(&program, &cfg, &golden, &[absent, present], 1);
        assert_eq!(out.schedule.skipped_sites, 1);
        // The from-scratch path counts skips identically.
        let scratch = campaign_scratch(&program, &cfg, &golden, &[absent, present], 1);
        assert_eq!(scratch.schedule.skipped_sites, 1);
        assert_eq!(out.outcomes, scratch.outcomes);
    }

    #[test]
    fn statically_dead_sites_are_pruned_without_simulation() {
        let program = tiny_program(); // touches r1, r2, r10 (+ temps)
        let cfg = CpuConfig::default().with_phys_regs(64);
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let decoded = DecodedProgram::new(&program);
        let analysis = ProgramAnalysis::of(&program, &decoded);
        assert!(analysis.rf_entry_statically_dead(7));
        assert!(!analysis.rf_entry_statically_dead(2));

        let dead = FaultSpec::new(Structure::RegisterFile, 7, 3, 50);
        let live = FaultSpec::new(Structure::RegisterFile, 2, 3, 50);
        let faults = [dead, live];
        let arc_program = Arc::new(program.clone());
        let arc_cfg = Arc::new(cfg.clone());
        let pruned = CampaignScheduler::new(&arc_program, &arc_cfg, &golden, true, &faults, 1)
            .with_static_analysis(&analysis)
            .run();
        assert_eq!(pruned.schedule.static_prunes, 1);
        assert_eq!(pruned.outcomes[0].effect, FaultEffect::Masked);
        // Only the live fault paid for a restore.
        assert_eq!(pruned.schedule.restores, 1);

        // Soundness, differentially: the unpruned run — which fully
        // simulates the dead-entry fault — produces byte-identical outcomes.
        let plain = campaign(&program, &cfg, &golden, &faults, 1);
        assert_eq!(plain.schedule.static_prunes, 0);
        assert_eq!(plain.schedule.restores, 2);
        assert_eq!(plain.outcomes, pruned.outcomes);
    }

    #[test]
    fn injector_reports_per_fault_cycles() {
        let program = tiny_program();
        let cfg = CpuConfig::default();
        let golden = golden_ck(&program, &cfg, 1_000_000, &small_policy()).unwrap();
        let mut injector = FaultInjector::new(&program, &cfg, &golden);
        // A late fault must simulate fewer cycles than an early one with the
        // same (masked-at-end) fate — that is the whole point of restoring.
        let early = FaultSpec::new(Structure::RegisterFile, 3, 5, 2);
        let late = FaultSpec::new(Structure::RegisterFile, 3, 5, golden.result.cycles - 2);
        let (_, early_cycles) = injector.run_with_cycles(early);
        let (_, late_cycles) = injector.run_with_cycles(late);
        assert!(early_cycles > 0 && late_cycles > 0);
        assert!(
            late_cycles < early_cycles,
            "late fault simulated {late_cycles} >= early fault's {early_cycles}"
        );
    }
}
