//! Vulnerable-interval repository.
//!
//! A *vulnerable interval* of a structure entry (paper §3.1.1) either starts
//! with a write and ends with a committed read of the same entry, or starts
//! with a committed read and ends with the next committed read.  Spans that
//! end with an overwrite or a deallocation (and entries that are never read)
//! are not vulnerable.  Each interval records the RIP and uPC of the reading
//! micro-op — the key of MeRLiN's grouping — plus the reader's dynamic
//! instance index and control-flow-path signature (used for representative
//! selection and for the Relyzer baseline, respectively).

use merlin_cpu::Structure;
use merlin_isa::{Rip, Upc};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One vulnerable interval of one entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Interval {
    /// Cycle of the write or read that opens the interval.
    pub start: u64,
    /// Cycle of the committed read that closes the interval.
    pub end: u64,
    /// RIP of the reading static instruction.
    pub rip: Rip,
    /// uPC of the reading micro-op.
    pub upc: Upc,
    /// Dynamic instance index of the reading instruction.
    pub dyn_instance: u64,
    /// Depth-5 control-flow-path signature at the reading instruction.
    pub path_sig: u64,
}

impl Interval {
    /// Number of cycles at which an injected fault would be consumed by this
    /// interval's closing read (a fault applied at the start of cycle `c`
    /// is consumed when `start < c <= end`).
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// `true` when the interval covers no injectable cycle.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a fault applied at the start of `cycle` lands in this
    /// interval.
    pub fn covers(&self, cycle: u64) -> bool {
        self.start < cycle && cycle <= self.end
    }
}

/// All vulnerable intervals of one structure for one program execution.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VulnerableIntervals {
    /// Per-entry interval lists, sorted by start cycle.
    per_entry: HashMap<usize, Vec<Interval>>,
    /// Number of entries the structure has (including never-touched ones).
    pub total_entries: usize,
    /// Bits per entry.
    pub bits_per_entry: u32,
    /// Total cycles of the profiled execution.
    pub total_cycles: u64,
}

impl VulnerableIntervals {
    /// Creates an empty repository for a structure with `total_entries`
    /// entries over an execution of `total_cycles` cycles.
    pub fn new(structure: Structure, total_entries: usize, total_cycles: u64) -> Self {
        VulnerableIntervals {
            per_entry: HashMap::new(),
            total_entries,
            bits_per_entry: structure.bits_per_entry(),
            total_cycles,
        }
    }

    /// Adds an interval for `entry` (intervals must be pushed in
    /// non-decreasing start order per entry, which the profiler guarantees).
    pub fn push(&mut self, entry: usize, interval: Interval) {
        let v = self.per_entry.entry(entry).or_default();
        debug_assert!(v.last().is_none_or(|last| last.start <= interval.start));
        v.push(interval);
    }

    /// The intervals of one entry (empty slice if the entry was never read).
    pub fn entry_intervals(&self, entry: usize) -> &[Interval] {
        self.per_entry.get(&entry).map_or(&[], |v| v.as_slice())
    }

    /// Finds the interval (if any) that a fault at `(entry, cycle)` lands in.
    pub fn lookup(&self, entry: usize, cycle: u64) -> Option<&Interval> {
        let intervals = self.per_entry.get(&entry)?;
        // Binary search on start, then check the candidate (intervals of one
        // entry never overlap: each starts where the previous one ended or
        // later).
        let idx = intervals.partition_point(|iv| iv.start < cycle);
        // The covering interval, if any, is the last one with start < cycle.
        if idx == 0 {
            return None;
        }
        let candidate = &intervals[idx - 1];
        candidate.covers(cycle).then_some(candidate)
    }

    /// Total number of vulnerable intervals.
    pub fn interval_count(&self) -> usize {
        self.per_entry.values().map(|v| v.len()).sum()
    }

    /// Number of entries with at least one vulnerable interval.
    pub fn touched_entries(&self) -> usize {
        self.per_entry.values().filter(|v| !v.is_empty()).count()
    }

    /// Total vulnerable bit-cycles (interval length × bits per entry summed
    /// over all intervals) — the numerator of the ACE-like AVF.
    pub fn vulnerable_bit_cycles(&self) -> u64 {
        let cycles: u64 = self
            .per_entry
            .values()
            .flat_map(|v| v.iter())
            .map(|iv| iv.len())
            .sum();
        cycles * self.bits_per_entry as u64
    }

    /// The ACE-like AVF: vulnerable bit-cycles over total bit-cycles.  This
    /// is the conservative estimate the paper compares against (Figure 16's
    /// "ACE-like" bars).
    pub fn ace_avf(&self) -> f64 {
        let total_bits = self.total_entries as u64 * self.bits_per_entry as u64;
        let total_bit_cycles = total_bits.saturating_mul(self.total_cycles);
        if total_bit_cycles == 0 {
            0.0
        } else {
            self.vulnerable_bit_cycles() as f64 / total_bit_cycles as f64
        }
    }

    /// Iterates over `(entry, interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Interval)> {
        self.per_entry
            .iter()
            .flat_map(|(e, v)| v.iter().map(move |iv| (*e, iv)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u64, end: u64, rip: Rip) -> Interval {
        Interval {
            start,
            end,
            rip,
            upc: 0,
            dyn_instance: 0,
            path_sig: 0,
        }
    }

    #[test]
    fn lookup_respects_half_open_semantics() {
        let mut r = VulnerableIntervals::new(Structure::RegisterFile, 8, 1000);
        r.push(3, iv(10, 20, 1));
        r.push(3, iv(20, 35, 2));
        r.push(3, iv(50, 60, 3));
        // A fault at the opening cycle is overwritten by the opening write.
        assert!(r.lookup(3, 10).is_none());
        assert_eq!(r.lookup(3, 11).unwrap().rip, 1);
        assert_eq!(r.lookup(3, 20).unwrap().rip, 1);
        assert_eq!(r.lookup(3, 21).unwrap().rip, 2);
        assert_eq!(r.lookup(3, 35).unwrap().rip, 2);
        assert!(r.lookup(3, 36).is_none());
        assert_eq!(r.lookup(3, 55).unwrap().rip, 3);
        assert!(r.lookup(3, 61).is_none());
        assert!(r.lookup(4, 15).is_none());
    }

    #[test]
    fn bit_cycle_accounting() {
        let mut r = VulnerableIntervals::new(Structure::StoreQueue, 4, 100);
        r.push(0, iv(0, 10, 1));
        r.push(1, iv(5, 15, 2));
        assert_eq!(r.interval_count(), 2);
        assert_eq!(r.touched_entries(), 2);
        assert_eq!(r.vulnerable_bit_cycles(), (10 + 10) * 64);
        let expected = (20 * 64) as f64 / (4.0 * 64.0 * 100.0);
        assert!((r.ace_avf() - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_repository_is_well_behaved() {
        let r = VulnerableIntervals::new(Structure::L1DCache, 1024, 0);
        assert_eq!(r.interval_count(), 0);
        assert_eq!(r.ace_avf(), 0.0);
        assert!(r.lookup(0, 5).is_none());
        assert!(r.entry_intervals(3).is_empty());
    }

    #[test]
    fn interval_len_and_covers() {
        let i = iv(7, 7, 0);
        assert!(i.is_empty());
        assert!(!i.covers(7));
        let i = iv(7, 9, 0);
        assert_eq!(i.len(), 2);
        assert!(i.covers(8));
        assert!(i.covers(9));
        assert!(!i.covers(7));
        assert!(!i.covers(10));
    }
}
