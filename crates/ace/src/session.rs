//! Session extension: the ACE-like analysis as a cached method on
//! [`Session`].
//!
//! The profiling run is a second instrumented execution of the session's
//! program (it cannot share the golden run's core, because it attaches the
//! interval-recording probe), but it is just as context-determined as the
//! golden run itself — so the session caches it the same way: built on first
//! use, shared by every later phase that needs vulnerable intervals.

use crate::profiler::{AceAnalysis, AceError};
use merlin_inject::Session;
use std::sync::Arc;

/// Adds the ACE-like profiling phase to [`Session`].
pub trait SessionAce {
    /// The ACE-like analysis of this session's program and configuration,
    /// profiled on first call and cached on the session afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`AceError`] if the profiled run does not halt within the
    /// session's cycle budget (errors are not cached; a later call retries).
    fn ace_profile(&self) -> Result<Arc<AceAnalysis>, AceError>;
}

impl SessionAce for Session {
    fn ace_profile(&self) -> Result<Arc<AceAnalysis>, AceError> {
        self.ext_get_or_try_init(|session| {
            AceAnalysis::run(session.program(), session.config(), session.max_cycles())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use merlin_cpu::{CpuConfig, Structure};
    use merlin_workloads::workload_by_name;

    #[test]
    fn ace_profile_is_cached_per_session() {
        let w = workload_by_name("sha").unwrap();
        let session = Session::builder(&w.program, &CpuConfig::default())
            .max_cycles(10_000_000)
            .build()
            .unwrap();
        let a = session.ace_profile().unwrap();
        let b = session.ace_profile().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second call must hit the cache");
        assert!(a.structure(Structure::RegisterFile).interval_count() > 0);
        // Profiling does not build the golden run.
        assert_eq!(session.golden_builds(), 0);
    }
}
