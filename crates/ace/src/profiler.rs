//! The ACE-like profiling run: a [`Probe`] implementation that turns the
//! core's lifetime events into [`VulnerableIntervals`] for the three target
//! structures in a single fault-free execution (the paper's "preprocessing"
//! phase, §3.1.1).

use crate::intervals::{Interval, VulnerableIntervals};
use merlin_analyze::ProgramAnalysis;
use merlin_cpu::{Cpu, CpuConfig, Probe, ReadInfo, RunResult, Structure};
use merlin_isa::Program;
use std::collections::HashMap;

/// A raw lifetime event collected during profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    Write,
    Read {
        rip: u32,
        upc: u8,
        dyn_instance: u64,
        path_sig: u64,
    },
    Invalidate,
}

#[derive(Debug, Clone, Copy)]
struct Event {
    cycle: u64,
    kind: EventKind,
}

/// Probe that records every lifetime event of the three target structures.
#[derive(Debug, Default)]
pub struct AceProfiler {
    events: HashMap<(Structure, usize), Vec<Event>>,
}

impl AceProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, structure: Structure, entry: usize, event: Event) {
        self.events
            .entry((structure, entry))
            .or_default()
            .push(event);
    }

    /// Converts the collected events into per-structure vulnerable-interval
    /// repositories.
    pub fn into_intervals(
        self,
        entry_counts: &HashMap<Structure, usize>,
        total_cycles: u64,
    ) -> HashMap<Structure, VulnerableIntervals> {
        let mut out: HashMap<Structure, VulnerableIntervals> = Structure::all()
            .iter()
            .map(|&s| {
                (
                    s,
                    VulnerableIntervals::new(
                        s,
                        entry_counts.get(&s).copied().unwrap_or(0),
                        total_cycles,
                    ),
                )
            })
            .collect();
        for ((structure, entry), mut events) in self.events {
            // Events arrive out of cycle order (reads are reported at commit
            // but carry their read cycle), so sort first.  Ties: writes
            // before reads before invalidations, mirroring the in-cycle
            // ordering of the core (a value written and read in the same
            // cycle was produced before it was consumed).
            events.sort_by_key(|e| {
                (
                    e.cycle,
                    match e.kind {
                        EventKind::Write => 0u8,
                        EventKind::Read { .. } => 1,
                        EventKind::Invalidate => 2,
                    },
                )
            });
            let repo = out.get_mut(&structure).expect("all structures present");
            let mut open_start: Option<u64> = None;
            for e in events {
                match e.kind {
                    EventKind::Write => open_start = Some(e.cycle),
                    EventKind::Invalidate => open_start = None,
                    EventKind::Read {
                        rip,
                        upc,
                        dyn_instance,
                        path_sig,
                    } => {
                        // Architectural initial state (registers holding
                        // zero at cycle 0, untouched-but-resident cache
                        // words) counts as written at cycle 0.
                        let start = open_start.unwrap_or(0);
                        repo.push(
                            entry,
                            Interval {
                                start,
                                end: e.cycle,
                                rip,
                                upc,
                                dyn_instance,
                                path_sig,
                            },
                        );
                        open_start = Some(e.cycle);
                    }
                }
            }
        }
        out
    }
}

impl Probe for AceProfiler {
    fn write(&mut self, structure: Structure, entry: usize, cycle: u64) {
        self.push(
            structure,
            entry,
            Event {
                cycle,
                kind: EventKind::Write,
            },
        );
    }

    fn committed_read(&mut self, structure: Structure, info: &ReadInfo) {
        self.push(
            structure,
            info.entry,
            Event {
                cycle: info.cycle,
                kind: EventKind::Read {
                    rip: info.rip,
                    upc: info.upc,
                    dyn_instance: info.dyn_instance,
                    path_sig: info.path_sig,
                },
            },
        );
    }

    fn invalidate(&mut self, structure: Structure, entry: usize, cycle: u64) {
        self.push(
            structure,
            entry,
            Event {
                cycle,
                kind: EventKind::Invalidate,
            },
        );
    }
}

/// Result of the ACE-like preprocessing run.
#[derive(Debug, Clone)]
pub struct AceAnalysis {
    /// The fault-free run the profile was collected on.
    pub golden: RunResult,
    /// Per-structure vulnerable intervals.
    pub intervals: HashMap<Structure, VulnerableIntervals>,
}

/// Errors from the ACE-like analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AceError {
    /// The profiled run did not halt.
    RunFailed(String),
    /// The processor configuration is invalid.
    BadConfig(String),
}

impl std::fmt::Display for AceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AceError::RunFailed(e) => write!(f, "ACE-like profiling run failed: {e}"),
            AceError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for AceError {}

/// Why a dynamic vulnerable interval contradicts the static analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticViolationKind {
    /// The interval lies on an identity physical entry of an architectural
    /// register the program text never mentions.  Such an entry keeps its
    /// reset value forever and can never be the target of a committed read,
    /// so no vulnerable interval may exist on it.
    StaticallyDeadEntry,
    /// The interval's closing read claims a RIP that is statically
    /// unreachable from the program entry (or outside the text) — a dynamic
    /// execution can only commit instructions the CFG can reach.
    UnreachableReader,
}

/// One inconsistency between a dynamic vulnerable interval and the static
/// dataflow analysis, reported by [`AceAnalysis::validate_static`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticViolation {
    /// The structure whose interval repository contains the contradiction.
    pub structure: Structure,
    /// The entry the interval lies on.
    pub entry: usize,
    /// The contradicting interval.
    pub interval: Interval,
    /// What the interval contradicts.
    pub kind: StaticViolationKind,
}

impl std::fmt::Display for StaticViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            StaticViolationKind::StaticallyDeadEntry => "lies on a statically dead entry",
            StaticViolationKind::UnreachableReader => "is closed by a statically unreachable read",
        };
        write!(
            f,
            "{} entry {} interval [{}, {}] read at rip {}.{} {what}",
            self.structure,
            self.entry,
            self.interval.start,
            self.interval.end,
            self.interval.rip,
            self.interval.upc,
        )
    }
}

impl AceAnalysis {
    /// Runs `program` once under `cfg` with the profiler attached and builds
    /// the vulnerable-interval repositories for all three structures.
    ///
    /// # Errors
    ///
    /// Returns [`AceError`] if the configuration is invalid or the program
    /// does not halt within `max_cycles`.
    pub fn run(program: &Program, cfg: &CpuConfig, max_cycles: u64) -> Result<Self, AceError> {
        let mut cpu = Cpu::new(program.clone(), cfg.clone())
            .map_err(|e| AceError::BadConfig(e.to_string()))?;
        let entry_counts: HashMap<Structure, usize> = Structure::all()
            .iter()
            .map(|&s| (s, cpu.structure_entries(s)))
            .collect();
        let mut profiler = AceProfiler::new();
        let golden = cpu.run(max_cycles, &mut profiler);
        if !golden.exit.is_halted() {
            return Err(AceError::RunFailed(format!(
                "exit {:?} after {} cycles",
                golden.exit, golden.cycles
            )));
        }
        let intervals = profiler.into_intervals(&entry_counts, golden.cycles);
        Ok(AceAnalysis { golden, intervals })
    }

    /// The vulnerable intervals of one structure.
    pub fn structure(&self, structure: Structure) -> &VulnerableIntervals {
        &self.intervals[&structure]
    }

    /// Cross-validates the dynamic vulnerable intervals against the static
    /// dataflow `analysis` of the same program.
    ///
    /// Two properties must hold for the profile to be consistent with the
    /// program text:
    ///
    /// * no register-file interval lies on a statically dead identity entry
    ///   (the static prune and the ACE-like prune must never disagree on
    ///   whether an entry can carry live data);
    /// * every interval, on every structure, is closed by a committed read
    ///   whose RIP the static CFG can reach from the entry point.
    ///
    /// # Errors
    ///
    /// Returns every contradicting interval; an empty result would be
    /// `Ok(())` instead.
    pub fn validate_static(&self, analysis: &ProgramAnalysis) -> Result<(), Vec<StaticViolation>> {
        let mut violations = Vec::new();
        for &structure in Structure::all() {
            for (entry, interval) in self.structure(structure).iter() {
                if structure == Structure::RegisterFile && analysis.rf_entry_statically_dead(entry)
                {
                    violations.push(StaticViolation {
                        structure,
                        entry,
                        interval: *interval,
                        kind: StaticViolationKind::StaticallyDeadEntry,
                    });
                }
                let rip = interval.rip;
                let in_text = (rip as usize) < analysis.cfg().num_instructions();
                if !in_text || !analysis.cfg().is_reachable(rip) {
                    violations.push(StaticViolation {
                        structure,
                        entry,
                        interval: *interval,
                        kind: StaticViolationKind::UnreachableReader,
                    });
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_construction_from_events() {
        let mut p = AceProfiler::new();
        let s = Structure::RegisterFile;
        // Entry 5: write@10, read@20 (rip 1), read@30 (rip 2), write@40,
        // invalidate@50, write@60, read@70 (rip 3).
        p.write(s, 5, 10);
        p.committed_read(s, &read_info(5, 20, 1));
        p.committed_read(s, &read_info(5, 30, 2));
        p.write(s, 5, 40);
        p.invalidate(s, 5, 50);
        p.write(s, 5, 60);
        p.committed_read(s, &read_info(5, 70, 3));
        let mut counts = HashMap::new();
        counts.insert(s, 8usize);
        counts.insert(Structure::StoreQueue, 4);
        counts.insert(Structure::L1DCache, 16);
        let repos = p.into_intervals(&counts, 100);
        let rf = &repos[&s];
        let ivs = rf.entry_intervals(5);
        assert_eq!(ivs.len(), 3);
        assert_eq!((ivs[0].start, ivs[0].end, ivs[0].rip), (10, 20, 1));
        assert_eq!((ivs[1].start, ivs[1].end, ivs[1].rip), (20, 30, 2));
        assert_eq!((ivs[2].start, ivs[2].end, ivs[2].rip), (60, 70, 3));
        // The write at 40 followed by the invalidate at 50 produced no
        // vulnerable interval.
        assert!(rf.lookup(5, 45).is_none());
        assert!(rf.lookup(5, 25).is_some());
    }

    #[test]
    fn out_of_order_event_arrival_is_sorted() {
        let mut p = AceProfiler::new();
        let s = Structure::StoreQueue;
        // The read is reported (at commit) before the write event of a
        // younger store to the same slot, but with an older cycle.
        p.write(s, 0, 10);
        p.committed_read(s, &read_info(0, 15, 9));
        p.write(s, 0, 12); // arrives after the read event but is older
        let mut counts = HashMap::new();
        for &st in Structure::all() {
            counts.insert(st, 4usize);
        }
        let repos = p.into_intervals(&counts, 50);
        let ivs = repos[&s].entry_intervals(0);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].start, 12);
        assert_eq!(ivs[0].end, 15);
    }

    #[test]
    fn read_of_initial_state_starts_at_cycle_zero() {
        let mut p = AceProfiler::new();
        let s = Structure::RegisterFile;
        p.committed_read(s, &read_info(2, 8, 4));
        let mut counts = HashMap::new();
        for &st in Structure::all() {
            counts.insert(st, 4usize);
        }
        let repos = p.into_intervals(&counts, 50);
        let ivs = repos[&s].entry_intervals(2);
        assert_eq!(ivs.len(), 1);
        assert_eq!(ivs[0].start, 0);
    }

    #[test]
    fn validate_static_flags_contradictory_intervals() {
        use merlin_isa::{reg, DecodedProgram, ProgramBuilder};
        let mut b = ProgramBuilder::new();
        b.movi(reg(1), 5);
        b.out(reg(1));
        b.halt();
        let program = b.build().unwrap();
        let decoded = DecodedProgram::new(&program);
        let analysis = ProgramAnalysis::of(&program, &decoded);
        let mut ace = AceAnalysis::run(&program, &CpuConfig::default(), 100_000).unwrap();
        ace.validate_static(&analysis).unwrap();

        // Tamper with the repository: an interval on the identity entry of
        // a register the text never mentions, and an interval closed by a
        // read outside the text.
        let iv = |rip| Interval {
            start: 1,
            end: 2,
            rip,
            upc: 0,
            dyn_instance: 0,
            path_sig: 0,
        };
        let rf = ace.intervals.get_mut(&Structure::RegisterFile).unwrap();
        rf.push(9, iv(0));
        rf.push(1, iv(40));
        let violations = ace.validate_static(&analysis).unwrap_err();
        assert_eq!(violations.len(), 2);
        assert!(violations
            .iter()
            .any(|v| v.kind == StaticViolationKind::StaticallyDeadEntry && v.entry == 9));
        assert!(violations
            .iter()
            .any(|v| v.kind == StaticViolationKind::UnreachableReader && v.entry == 1));
        for v in &violations {
            assert!(!v.to_string().is_empty());
        }
    }

    fn read_info(entry: usize, cycle: u64, rip: u32) -> ReadInfo {
        ReadInfo {
            entry,
            cycle,
            rip,
            upc: 0,
            dyn_instance: 0,
            path_sig: 0,
        }
    }
}
