//! # merlin-ace
//!
//! The ACE-like analysis of the MeRLiN reproduction: a single fault-free,
//! probe-instrumented execution that records every *vulnerable interval* of
//! every entry of the physical register file, the store-queue data field and
//! the L1D data array.
//!
//! MeRLiN uses the repository twice: faults landing outside any vulnerable
//! interval are pruned as Masked without simulation (the "ACE-like" speedup
//! component), and faults inside an interval inherit the interval's
//! (RIP, uPC) reader identity for the grouping step.  The repository also
//! yields the conservative ACE-style AVF upper bound the paper contrasts
//! against injection (Figure 16).
//!
//! # Examples
//!
//! ```
//! use merlin_ace::AceAnalysis;
//! use merlin_cpu::{CpuConfig, Structure};
//! use merlin_workloads::workload_by_name;
//!
//! let w = workload_by_name("sha").unwrap();
//! let ace = AceAnalysis::run(&w.program, &CpuConfig::default(), 10_000_000).unwrap();
//! let rf = ace.structure(Structure::RegisterFile);
//! assert!(rf.interval_count() > 0);
//! assert!(rf.ace_avf() > 0.0 && rf.ace_avf() < 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod intervals;
mod profiler;
mod session;

pub use intervals::{Interval, VulnerableIntervals};
pub use profiler::{AceAnalysis, AceError, AceProfiler, StaticViolation, StaticViolationKind};
pub use session::SessionAce;
