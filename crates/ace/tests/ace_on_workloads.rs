//! Integration tests: the ACE-like analysis against real workloads, and the
//! consistency property MeRLiN depends on — faults pruned by the ACE-like
//! step really are masked when injected.

use merlin_ace::{AceAnalysis, SessionAce};
use merlin_analyze::ProgramAnalysis;
use merlin_cpu::{CpuConfig, Structure};
use merlin_inject::{FaultEffect, Session};
use merlin_isa::DecodedProgram;
use merlin_workloads::workload_by_name;

#[test]
fn ace_avf_decreases_with_register_file_size() {
    // The paper's motivating observation (§1): larger register files have
    // more dead entries, so the AVF drops as the file grows.
    let w = workload_by_name("qsort").unwrap();
    let mut avfs = Vec::new();
    for regs in [64usize, 128, 256] {
        let cfg = CpuConfig::default().with_phys_regs(regs);
        let ace = AceAnalysis::run(&w.program, &cfg, 50_000_000).unwrap();
        avfs.push(ace.structure(Structure::RegisterFile).ace_avf());
    }
    assert!(
        avfs[0] > avfs[1] && avfs[1] > avfs[2],
        "ACE AVF must shrink as the register file grows: {avfs:?}"
    );
}

#[test]
fn intervals_exist_for_all_three_structures() {
    let w = workload_by_name("fft").unwrap();
    let ace = AceAnalysis::run(&w.program, &CpuConfig::default(), 50_000_000).unwrap();
    for &s in Structure::all() {
        let iv = ace.structure(s);
        assert!(iv.interval_count() > 0, "{s} has no vulnerable intervals");
        assert!(iv.ace_avf() > 0.0, "{s} ACE AVF is zero");
        assert!(iv.ace_avf() <= 1.0, "{s} ACE AVF above 1");
        // Intervals lie within the execution and are well formed.
        for (_, interval) in iv.iter() {
            assert!(interval.end >= interval.start);
            assert!(interval.end <= ace.golden.cycles);
        }
    }
}

#[test]
fn intervals_per_entry_do_not_overlap() {
    let w = workload_by_name("susan_e").unwrap();
    let cfg = CpuConfig::default().with_phys_regs(64);
    let ace = AceAnalysis::run(&w.program, &cfg, 50_000_000).unwrap();
    for &s in Structure::all() {
        let repo = ace.structure(s);
        for entry in 0..64 {
            let ivs = repo.entry_intervals(entry);
            for pair in ivs.windows(2) {
                assert!(
                    pair[1].start >= pair[0].end,
                    "{s} entry {entry}: overlapping intervals {:?} {:?}",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}

#[test]
fn dynamic_intervals_are_consistent_with_static_liveness() {
    // The ACE-like profile and the static dataflow analysis are two
    // independent views of the same program; they must never contradict:
    // no vulnerable interval on a statically dead register-file entry, no
    // interval closed by a statically unreachable read.
    for name in ["qsort", "sha", "fft"] {
        let w = workload_by_name(name).unwrap();
        let decoded = DecodedProgram::new(&w.program);
        let analysis = ProgramAnalysis::of(&w.program, &decoded);
        for regs in [64usize, 256] {
            let cfg = CpuConfig::default().with_phys_regs(regs);
            let ace = AceAnalysis::run(&w.program, &cfg, 50_000_000).unwrap();
            if let Err(violations) = ace.validate_static(&analysis) {
                panic!(
                    "{name} x{regs} regs: {} static violations, first: {}",
                    violations.len(),
                    violations[0]
                );
            }
        }
    }
}

#[test]
fn ace_pruned_faults_are_masked_when_injected() {
    // The soundness property behind MeRLiN's first phase: a statistically
    // sampled fault that lands outside every vulnerable interval must be
    // Masked in real injection.
    let w = workload_by_name("stringsearch").unwrap();
    let cfg = CpuConfig::default()
        .with_phys_regs(128)
        .with_store_queue(16);
    let session = Session::builder(&w.program, &cfg)
        .max_cycles(50_000_000)
        .build()
        .unwrap();
    let ace = session.ace_profile().unwrap();
    for &structure in Structure::all() {
        let faults = session.fault_list(structure, 120, 5).unwrap();
        let repo = ace.structure(structure);
        let mut injector = session.injector().unwrap();
        let mut pruned_checked = 0;
        for f in faults {
            if repo.lookup(f.entry, f.cycle).is_none() {
                pruned_checked += 1;
                if pruned_checked > 25 {
                    break; // keep the test fast; 25 samples per structure
                }
                let effect = injector.run(f);
                assert_eq!(
                    effect,
                    FaultEffect::Masked,
                    "{structure} fault {f} was pruned by ACE-like but not masked"
                );
            }
        }
        assert!(
            pruned_checked > 0,
            "{structure}: no pruned faults sampled at all"
        );
    }
}
