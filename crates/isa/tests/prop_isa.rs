//! Property-based tests for the ISA crate: cracking invariants, assembler
//! label resolution and ALU/branch semantics.

use merlin_isa::{
    decode, reg, AluOp, ArchReg, Cond, Inst, MemRef, MemSize, ProgramBuilder, MAX_UOPS_PER_INST,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = ArchReg> {
    (0usize..16).prop_map(reg)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(AluOp::all().to_vec())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::all().to_vec())
}

fn arb_size() -> impl Strategy<Value = MemSize> {
    prop::sample::select(MemSize::all().to_vec())
}

fn arb_memref() -> impl Strategy<Value = MemRef> {
    (
        arb_reg(),
        prop::option::of(arb_reg()),
        prop::sample::select(vec![1u8, 2, 4, 8]),
        -64i64..64,
    )
        .prop_map(|(base, index, scale, disp)| {
            let mut m = MemRef::base(base);
            if let Some(i) = index {
                m = m.indexed(i, scale);
            }
            m.disp(disp)
        })
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::AluRR { op, rd, rs1, rs2 }),
        (arb_alu_op(), arb_reg(), arb_reg(), -1000i64..1000)
            .prop_map(|(op, rd, rs1, imm)| Inst::AluRI { op, rd, rs1, imm }),
        (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::MovImm {
            rd,
            imm: imm as i64
        }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (arb_reg(), arb_memref(), arb_size(), any::<bool>()).prop_map(|(rd, mem, size, signed)| {
            Inst::Load {
                rd,
                mem,
                size,
                signed,
            }
        }),
        (arb_reg(), arb_memref(), arb_size()).prop_map(|(rs, mem, size)| Inst::Store {
            rs,
            mem,
            size
        }),
        (arb_alu_op(), arb_reg(), arb_memref(), arb_size())
            .prop_map(|(op, rd, mem, size)| Inst::LoadOp { op, rd, mem, size }),
        (arb_cond(), arb_reg(), arb_reg(), 0u32..100).prop_map(|(cond, rs1, rs2, target)| {
            Inst::BranchRR {
                cond,
                rs1,
                rs2,
                target,
            }
        }),
        (arb_cond(), arb_reg(), -100i64..100, 0u32..100).prop_map(|(cond, rs1, imm, target)| {
            Inst::BranchRI {
                cond,
                rs1,
                imm,
                target,
            }
        }),
        (0u32..100).prop_map(|target| Inst::Jump { target }),
        arb_reg().prop_map(|rs| Inst::JumpReg { rs }),
        (0u32..100, arb_reg()).prop_map(|(target, link)| Inst::Call { target, link }),
        arb_reg().prop_map(|rs| Inst::Out { rs }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    /// Every macro-instruction cracks into 1..=3 micro-ops with consecutive
    /// uPCs, correct RIP, and exactly one `last_in_inst`.
    #[test]
    fn cracking_invariants(inst in arb_inst(), rip in 0u32..10_000) {
        let uops = decode(rip, &inst);
        prop_assert!(!uops.is_empty());
        prop_assert!(uops.len() <= MAX_UOPS_PER_INST);
        for (i, u) in uops.iter().enumerate() {
            prop_assert_eq!(u.rip, rip);
            prop_assert_eq!(u.upc as usize, i);
            prop_assert_eq!(u.last_in_inst, i == uops.len() - 1);
            prop_assert!(u.num_sources() <= 3);
        }
        // Memory micro-ops always carry a size.
        for u in &uops {
            if u.kind.is_load() || u.kind == merlin_isa::UopKind::StoreAddr {
                prop_assert!(u.mem.is_some());
                prop_assert!(u.mem_size.is_some());
            }
        }
    }

    /// Temporaries produced by the cracker are always consumed within the
    /// same macro-instruction (they never leak as live-out destinations of
    /// the final micro-op unless also program-visible).
    #[test]
    fn temporaries_do_not_escape(inst in arb_inst(), rip in 0u32..1000) {
        let uops = decode(rip, &inst);
        if let Some(dst) = uops.last().unwrap().dst {
            // The architecturally visible result of an instruction is
            // written by its last micro-op (for our cracker); it must be a
            // program-visible register.
            prop_assert!(dst.is_gpr());
        }
    }

    /// ALU evaluation never panics and respects basic algebraic identities.
    #[test]
    fn alu_identities(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.eval(a, b).value, AluOp::Add.eval(b, a).value);
        prop_assert_eq!(AluOp::Xor.eval(a, a).value, 0);
        prop_assert_eq!(AluOp::And.eval(a, a).value, a);
        prop_assert_eq!(AluOp::Or.eval(a, 0).value, a);
        prop_assert_eq!(AluOp::Sub.eval(a, 0).value, a);
        let slt = AluOp::Slt.eval(a, b).value;
        prop_assert!(slt == 0 || slt == 1);
    }

    /// Branch conditions are exactly complementary to their negation.
    #[test]
    fn cond_complement(a in any::<u64>(), b in any::<u64>(), c in arb_cond()) {
        prop_assert_ne!(c.eval(a, b), c.negate().eval(a, b));
    }

    /// Effective address computation matches the reference expression.
    #[test]
    fn memref_effective_address(base in any::<u64>(), idx in any::<u64>(),
                                scale in prop::sample::select(vec![1u8,2,4,8]),
                                disp in -1_000i64..1_000) {
        let m = MemRef::base(reg(1)).indexed(reg(2), scale).disp(disp);
        let want = base
            .wrapping_add(idx.wrapping_mul(scale as u64))
            .wrapping_add(disp as u64);
        prop_assert_eq!(m.effective_address(base, idx), want);
    }

    /// Sign extension agrees with casting through the corresponding integer
    /// width.
    #[test]
    fn sign_extension_matches_reference(v in any::<u64>()) {
        prop_assert_eq!(MemSize::B1.sign_extend(v & 0xFF), (v as u8) as i8 as i64 as u64);
        prop_assert_eq!(MemSize::B2.sign_extend(v & 0xFFFF), (v as u16) as i16 as i64 as u64);
        prop_assert_eq!(MemSize::B4.sign_extend(v & 0xFFFF_FFFF), (v as u32) as i32 as i64 as u64);
    }

    /// Programs assembled with arbitrary loop structures resolve all labels
    /// to in-range targets.
    #[test]
    fn assembled_targets_in_range(n_blocks in 1usize..20) {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        let mut tops = Vec::new();
        for i in 0..n_blocks {
            let top = b.bind_label();
            tops.push(top);
            b.alu_ri(AluOp::Add, reg(1), reg(1), i as i64);
            b.branch_ri(Cond::Eq, reg(1), -1, end);
        }
        // Backward edges.
        for &t in &tops {
            b.branch_ri(Cond::Eq, reg(2), -2, t);
        }
        b.bind(end);
        b.halt();
        let p = b.build().unwrap();
        let len = p.len() as u32;
        for inst in &p.instructions {
            if let Some(t) = inst.direct_target() {
                prop_assert!(t < len);
            }
        }
    }
}
