//! Micro-op representation.
//!
//! Each macro-instruction cracks into 1–3 micro-ops.  The micro-op's index
//! within its macro-instruction is its *micro program counter* (uPC); MeRLiN
//! groups faults by the (RIP, uPC) pair of the micro-op that reads the faulty
//! entry at the end of a vulnerable interval, so the cracker keeps uPC
//! assignment stable and deterministic.

use crate::{AluOp, ArchReg, Cond, MemRef, MemSize, Rip};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Micro program counter: index of a micro-op within its macro-instruction.
pub type Upc = u8;

/// The operation class of a micro-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UopKind {
    /// Integer ALU operation on the sources, writing the destination.
    Alu(AluOp),
    /// Load from memory into the destination register.
    Load,
    /// Store-address generation (x86 STA): computes the effective address of
    /// the parent store and deposits it in the store-queue entry.
    StoreAddr,
    /// Store-data (x86 STD): reads the data source register and deposits the
    /// value in the store-queue entry's data field.
    StoreData,
    /// Conditional branch comparing the two sources.
    Branch(Cond),
    /// Unconditional direct jump.
    Jump,
    /// Indirect jump through the first source register.
    JumpReg,
    /// Direct call, writing the return address to the destination register.
    Call,
    /// Emits the first source register's value to the output stream at commit.
    Out,
    /// Stops the program.
    Halt,
    /// No operation.
    Nop,
}

impl UopKind {
    /// Whether this micro-op can redirect control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            UopKind::Branch(_) | UopKind::Jump | UopKind::JumpReg | UopKind::Call
        )
    }

    /// Whether this micro-op reads data memory.
    pub fn is_load(&self) -> bool {
        matches!(self, UopKind::Load)
    }

    /// Whether this micro-op is part of a store (address or data half).
    pub fn is_store(&self) -> bool {
        matches!(self, UopKind::StoreAddr | UopKind::StoreData)
    }
}

/// A micro-op, the unit the out-of-order core renames, issues and executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uop {
    /// Instruction pointer of the parent macro-instruction.
    pub rip: Rip,
    /// Micro program counter within the parent macro-instruction.
    pub upc: Upc,
    /// Operation class.
    pub kind: UopKind,
    /// Source registers (up to three: e.g. store-address with base + index).
    pub srcs: [Option<ArchReg>; 3],
    /// Destination register, if any.
    pub dst: Option<ArchReg>,
    /// Immediate operand (ALU immediate, branch/jump/call target, or the
    /// comparison immediate of an immediate branch).
    pub imm: i64,
    /// Memory reference for loads and store-address micro-ops.
    pub mem: Option<MemRef>,
    /// Access width for memory micro-ops.
    pub mem_size: Option<MemSize>,
    /// Sign-extend loaded values.
    pub mem_signed: bool,
    /// For ALU micro-ops: `true` when the second operand is `imm` rather
    /// than a register.  For branch micro-ops: `true` when the second
    /// comparison operand is `cmp_imm` rather than a register.
    pub cmp_with_imm: bool,
    /// Comparison immediate of an immediate-form branch (`imm` holds the
    /// branch target, so the comparison constant travels separately).
    pub cmp_imm: i64,
    /// `true` on the last micro-op of the macro-instruction: committing this
    /// micro-op retires the whole instruction.
    pub last_in_inst: bool,
}

impl Uop {
    /// A builder-style blank micro-op used by the cracker.
    pub(crate) fn blank(rip: Rip, upc: Upc, kind: UopKind) -> Self {
        Uop {
            rip,
            upc,
            kind,
            srcs: [None, None, None],
            dst: None,
            imm: 0,
            mem: None,
            mem_size: None,
            mem_signed: false,
            cmp_with_imm: false,
            cmp_imm: 0,
            last_in_inst: false,
        }
    }

    /// Iterates over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().filter_map(|s| *s)
    }

    /// Number of source registers.
    pub fn num_sources(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Execution latency in cycles (the core adds cache latency on top for
    /// memory operations).
    pub fn latency(&self) -> u64 {
        match self.kind {
            UopKind::Alu(op) => op.latency(),
            UopKind::Load => 1,
            UopKind::StoreAddr | UopKind::StoreData => 1,
            UopKind::Branch(_) | UopKind::Jump | UopKind::JumpReg | UopKind::Call => 1,
            UopKind::Out | UopKind::Halt | UopKind::Nop => 1,
        }
    }
}

impl fmt::Display for Uop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}.{}] ", self.rip, self.upc)?;
        match self.kind {
            UopKind::Alu(op) => write!(f, "alu.{op}")?,
            UopKind::Load => write!(f, "load")?,
            UopKind::StoreAddr => write!(f, "sta")?,
            UopKind::StoreData => write!(f, "std")?,
            UopKind::Branch(c) => write!(f, "br.{c}")?,
            UopKind::Jump => write!(f, "jmp")?,
            UopKind::JumpReg => write!(f, "jmpr")?,
            UopKind::Call => write!(f, "call")?,
            UopKind::Out => write!(f, "out")?,
            UopKind::Halt => write!(f, "halt")?,
            UopKind::Nop => write!(f, "nop")?,
        }
        if let Some(d) = self.dst {
            write!(f, " -> {d}")?;
        }
        let srcs: Vec<String> = self.sources().map(|s| s.to_string()).collect();
        if !srcs.is_empty() {
            write!(f, " src[{}]", srcs.join(","))?;
        }
        if let Some(m) = self.mem {
            write!(f, " {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg;

    #[test]
    fn kind_predicates() {
        assert!(UopKind::Branch(Cond::Eq).is_control());
        assert!(UopKind::Call.is_control());
        assert!(!UopKind::Alu(AluOp::Add).is_control());
        assert!(UopKind::Load.is_load());
        assert!(UopKind::StoreAddr.is_store());
        assert!(UopKind::StoreData.is_store());
        assert!(!UopKind::Load.is_store());
    }

    #[test]
    fn sources_iteration() {
        let mut u = Uop::blank(3, 1, UopKind::Alu(AluOp::Add));
        u.srcs = [Some(reg(1)), None, Some(reg(2))];
        let srcs: Vec<_> = u.sources().collect();
        assert_eq!(srcs, vec![reg(1), reg(2)]);
        assert_eq!(u.num_sources(), 2);
    }

    #[test]
    fn display_contains_rip_and_upc() {
        let u = Uop::blank(17, 2, UopKind::Load);
        let s = u.to_string();
        assert!(s.contains("[17.2]"));
        assert!(s.contains("load"));
    }

    #[test]
    fn latency_positive() {
        for kind in [
            UopKind::Alu(AluOp::Div),
            UopKind::Load,
            UopKind::StoreAddr,
            UopKind::Branch(Cond::Ne),
            UopKind::Halt,
        ] {
            assert!(Uop::blank(0, 0, kind).latency() >= 1);
        }
    }
}
