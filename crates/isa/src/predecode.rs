//! Pre-decoded program images: every static instruction cracked exactly once.
//!
//! The cycle-level core fetches micro-ops for the same static instructions
//! over and over — once per dynamic instance, every cycle of every run — and
//! cracking on the fetch path means a heap-allocated `Vec<Uop>` per fetched
//! instruction per cycle.  A [`DecodedProgram`] removes that cost
//! structurally: at program load, [`decode_into`](crate::decode_into) runs
//! once per *static* instruction into a single flat arena (`Box<[Uop]>`),
//! with a per-RIP offset table mapping an instruction pointer to its
//! micro-op slice.  Fetch then copies `Copy`able [`Uop`]s straight out of
//! the shared table — no decoding, no allocation, ever, on the hot path.
//!
//! The table is immutable and derived purely from the [`Program`], so one
//! `Arc<DecodedProgram>` is shared by every core of a fault-injection
//! campaign (golden run, per-worker cores, single-fault injectors alike);
//! it is never persisted, because rebuilding it costs one linear pass over
//! the program text.
//!
//! Equivalence with the per-fetch cracker is structural — both paths run
//! the same [`decode_into`](crate::decode_into) — and pinned by tests that
//! compare the arena against [`decode`](crate::decode) instruction by
//! instruction.

use crate::decode::{decode_into, MAX_UOPS_PER_INST};
use crate::{Program, Rip, Uop};
use std::fmt;
use std::hash::{Hash, Hasher};

/// A program's complete micro-op stream, decoded once at load time.
///
/// Indexing is by RIP: [`DecodedProgram::uops`] returns the micro-op slice
/// of the instruction at that address, in cracking order (uPC order).  The
/// arena holds exactly the micro-ops [`decode`](crate::decode) would
/// produce for each instruction, so a core fetching from the table behaves
/// byte-identically to one cracking at fetch.
///
/// # Examples
///
/// ```
/// use merlin_isa::{decode, DecodedProgram, reg, ProgramBuilder};
///
/// let mut b = ProgramBuilder::new();
/// b.movi(reg(1), 7);
/// b.out(reg(1));
/// b.halt();
/// let program = b.build().unwrap();
///
/// let decoded = DecodedProgram::new(&program);
/// assert_eq!(decoded.num_instructions(), 3);
/// for (rip, inst) in program.instructions.iter().enumerate() {
///     assert_eq!(decoded.uops(rip as u32), decode(rip as u32, inst));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    /// All micro-ops of the program, instruction-major, uPC-minor.
    uops: Box<[Uop]>,
    /// `offsets[rip]..offsets[rip + 1]` is the arena range of instruction
    /// `rip`; `len + 1` entries, so the slice math needs no bounds special
    /// case for the last instruction.
    offsets: Box<[u32]>,
    /// Hash of the source instruction stream, so a consumer can verify a
    /// table really belongs to its program (instruction count alone cannot
    /// tell two equal-length programs apart).
    program_hash: u64,
}

/// Hash of a program's instruction stream (the part the table derives from).
fn instruction_hash(program: &Program) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    program.instructions.hash(&mut h);
    h.finish()
}

impl DecodedProgram {
    /// Decodes every static instruction of `program` exactly once.
    pub fn new(program: &Program) -> Self {
        let n = program.len();
        let mut uops = Vec::with_capacity(n * 2);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for (rip, inst) in program.instructions.iter().enumerate() {
            decode_into(rip as Rip, inst, &mut uops);
            debug_assert!(uops.len() - offsets[rip] as usize <= MAX_UOPS_PER_INST);
            offsets.push(u32::try_from(uops.len()).expect("program exceeds u32 micro-ops"));
        }
        DecodedProgram {
            uops: uops.into_boxed_slice(),
            offsets: offsets.into_boxed_slice(),
            program_hash: instruction_hash(program),
        }
    }

    /// Whether this table was built from `program`'s instruction stream —
    /// the check consumers run before fetching from a shared table, since a
    /// table from a *different* program of equal length would otherwise
    /// silently execute the wrong micro-ops.
    pub fn matches_program(&self, program: &Program) -> bool {
        self.num_instructions() == program.len() && self.program_hash == instruction_hash(program)
    }

    /// The micro-op sequence of the instruction at `rip`, in uPC order.
    ///
    /// # Panics
    ///
    /// Panics if `rip` is outside the program text; callers gate on
    /// [`DecodedProgram::num_instructions`] exactly as they gate fetch on
    /// `Program::len`.
    #[inline]
    pub fn uops(&self, rip: Rip) -> &[Uop] {
        let rip = rip as usize;
        &self.uops[self.offsets[rip] as usize..self.offsets[rip + 1] as usize]
    }

    /// Number of static instructions the table covers.
    pub fn num_instructions(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total micro-ops in the arena.
    pub fn num_uops(&self) -> usize {
        self.uops.len()
    }

    /// `true` when the table covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.num_instructions() == 0
    }

    /// Heap footprint of the arena in bytes (shared once per campaign, not
    /// per core).
    pub fn footprint_bytes(&self) -> usize {
        self.uops.len() * std::mem::size_of::<Uop>()
            + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl fmt::Display for DecodedProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decoded program: {} instructions, {} micro-ops",
            self.num_instructions(),
            self.num_uops()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, reg, AluOp, Cond, MemRef, ProgramBuilder};

    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let data = b.alloc_words(&[1, 2, 3, 4]);
        b.movi(reg(10), data as i64);
        b.movi(reg(1), 0);
        let top = b.bind_label();
        b.load_op(AluOp::Add, reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.store(reg(2), MemRef::base(reg(10)).indexed(reg(1), 8));
        b.alu_ri(AluOp::Add, reg(1), reg(1), 1);
        b.branch_ri(Cond::Lt, reg(1), 4, top);
        b.load(reg(3), MemRef::base(reg(10)));
        b.out(reg(3));
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn arena_matches_per_instruction_decode() {
        let program = mixed_program();
        let decoded = DecodedProgram::new(&program);
        assert_eq!(decoded.num_instructions(), program.len());
        let mut total = 0;
        for (rip, inst) in program.instructions.iter().enumerate() {
            let expected = decode(rip as Rip, inst);
            assert_eq!(decoded.uops(rip as Rip), expected, "rip {rip}");
            total += expected.len();
        }
        assert_eq!(decoded.num_uops(), total);
        assert!(decoded.footprint_bytes() > 0);
        assert!(decoded.to_string().contains("micro-ops"));
    }

    #[test]
    fn empty_program_decodes_to_empty_table() {
        let program = Program {
            instructions: vec![],
            data: vec![],
            data_size: 0,
            entry: 0,
        };
        let decoded = DecodedProgram::new(&program);
        assert!(decoded.is_empty());
        assert_eq!(decoded.num_uops(), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_rip_panics() {
        let program = mixed_program();
        let decoded = DecodedProgram::new(&program);
        let _ = decoded.uops(program.len() as Rip);
    }
}
